/root/repo/target/debug/examples/radix_study-97d0667a8b78d35e.d: examples/radix_study.rs Cargo.toml

/root/repo/target/debug/examples/libradix_study-97d0667a8b78d35e.rmeta: examples/radix_study.rs Cargo.toml

examples/radix_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
