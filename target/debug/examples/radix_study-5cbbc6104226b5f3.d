/root/repo/target/debug/examples/radix_study-5cbbc6104226b5f3.d: examples/radix_study.rs

/root/repo/target/debug/examples/radix_study-5cbbc6104226b5f3: examples/radix_study.rs

examples/radix_study.rs:
