/root/repo/target/debug/examples/latency_vs_load-2d35c9ed715179ec.d: examples/latency_vs_load.rs

/root/repo/target/debug/examples/latency_vs_load-2d35c9ed715179ec: examples/latency_vs_load.rs

examples/latency_vs_load.rs:
