/root/repo/target/debug/examples/custom_noc-496d177d3d98b6e9.d: examples/custom_noc.rs

/root/repo/target/debug/examples/custom_noc-496d177d3d98b6e9: examples/custom_noc.rs

examples/custom_noc.rs:
