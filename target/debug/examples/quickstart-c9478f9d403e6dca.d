/root/repo/target/debug/examples/quickstart-c9478f9d403e6dca.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c9478f9d403e6dca: examples/quickstart.rs

examples/quickstart.rs:
