/root/repo/target/debug/examples/trace_workflow-3ac2da1986cc1db6.d: examples/trace_workflow.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_workflow-3ac2da1986cc1db6.rmeta: examples/trace_workflow.rs Cargo.toml

examples/trace_workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
