/root/repo/target/debug/examples/latency_vs_load-379b683ecf4c6724.d: examples/latency_vs_load.rs Cargo.toml

/root/repo/target/debug/examples/liblatency_vs_load-379b683ecf4c6724.rmeta: examples/latency_vs_load.rs Cargo.toml

examples/latency_vs_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
