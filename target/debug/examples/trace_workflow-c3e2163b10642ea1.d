/root/repo/target/debug/examples/trace_workflow-c3e2163b10642ea1.d: examples/trace_workflow.rs

/root/repo/target/debug/examples/trace_workflow-c3e2163b10642ea1: examples/trace_workflow.rs

examples/trace_workflow.rs:
