/root/repo/target/debug/examples/quickstart-20a2bc200c75cbdd.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-20a2bc200c75cbdd.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
