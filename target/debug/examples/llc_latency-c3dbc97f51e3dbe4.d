/root/repo/target/debug/examples/llc_latency-c3dbc97f51e3dbe4.d: examples/llc_latency.rs Cargo.toml

/root/repo/target/debug/examples/libllc_latency-c3dbc97f51e3dbe4.rmeta: examples/llc_latency.rs Cargo.toml

examples/llc_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
