/root/repo/target/debug/examples/llc_latency-0c947bfc024c6e75.d: examples/llc_latency.rs

/root/repo/target/debug/examples/llc_latency-0c947bfc024c6e75: examples/llc_latency.rs

examples/llc_latency.rs:
