/root/repo/target/debug/examples/custom_noc-1a84417b9b1050cb.d: examples/custom_noc.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_noc-1a84417b9b1050cb.rmeta: examples/custom_noc.rs Cargo.toml

examples/custom_noc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
