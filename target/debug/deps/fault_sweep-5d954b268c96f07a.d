/root/repo/target/debug/deps/fault_sweep-5d954b268c96f07a.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/debug/deps/fault_sweep-5d954b268c96f07a: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
