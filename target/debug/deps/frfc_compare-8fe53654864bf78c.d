/root/repo/target/debug/deps/frfc_compare-8fe53654864bf78c.d: crates/bench/src/bin/frfc_compare.rs

/root/repo/target/debug/deps/frfc_compare-8fe53654864bf78c: crates/bench/src/bin/frfc_compare.rs

crates/bench/src/bin/frfc_compare.rs:
