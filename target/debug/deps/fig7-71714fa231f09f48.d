/root/repo/target/debug/deps/fig7-71714fa231f09f48.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-71714fa231f09f48: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
