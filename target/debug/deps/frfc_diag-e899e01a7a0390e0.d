/root/repo/target/debug/deps/frfc_diag-e899e01a7a0390e0.d: crates/bench/src/bin/frfc_diag.rs

/root/repo/target/debug/deps/frfc_diag-e899e01a7a0390e0: crates/bench/src/bin/frfc_diag.rs

crates/bench/src/bin/frfc_diag.rs:
