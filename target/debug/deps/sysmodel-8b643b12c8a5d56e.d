/root/repo/target/debug/deps/sysmodel-8b643b12c8a5d56e.d: crates/sysmodel/src/lib.rs crates/sysmodel/src/core.rs crates/sysmodel/src/llc.rs crates/sysmodel/src/memory.rs crates/sysmodel/src/params.rs crates/sysmodel/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libsysmodel-8b643b12c8a5d56e.rmeta: crates/sysmodel/src/lib.rs crates/sysmodel/src/core.rs crates/sysmodel/src/llc.rs crates/sysmodel/src/memory.rs crates/sysmodel/src/params.rs crates/sysmodel/src/system.rs Cargo.toml

crates/sysmodel/src/lib.rs:
crates/sysmodel/src/core.rs:
crates/sysmodel/src/llc.rs:
crates/sysmodel/src/memory.rs:
crates/sysmodel/src/params.rs:
crates/sysmodel/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
