/root/repo/target/debug/deps/techmodel-726667018b0f8561.d: crates/techmodel/src/lib.rs crates/techmodel/src/buffer.rs crates/techmodel/src/chip.rs crates/techmodel/src/crossbar.rs crates/techmodel/src/density.rs crates/techmodel/src/noc_area.rs crates/techmodel/src/power.rs crates/techmodel/src/sram.rs crates/techmodel/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libtechmodel-726667018b0f8561.rmeta: crates/techmodel/src/lib.rs crates/techmodel/src/buffer.rs crates/techmodel/src/chip.rs crates/techmodel/src/crossbar.rs crates/techmodel/src/density.rs crates/techmodel/src/noc_area.rs crates/techmodel/src/power.rs crates/techmodel/src/sram.rs crates/techmodel/src/wire.rs Cargo.toml

crates/techmodel/src/lib.rs:
crates/techmodel/src/buffer.rs:
crates/techmodel/src/chip.rs:
crates/techmodel/src/crossbar.rs:
crates/techmodel/src/density.rs:
crates/techmodel/src/noc_area.rs:
crates/techmodel/src/power.rs:
crates/techmodel/src/sram.rs:
crates/techmodel/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
