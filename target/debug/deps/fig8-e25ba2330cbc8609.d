/root/repo/target/debug/deps/fig8-e25ba2330cbc8609.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-e25ba2330cbc8609.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
