/root/repo/target/debug/deps/pra_protocol-9d18d845cb96a81e.d: crates/core/tests/pra_protocol.rs

/root/repo/target/debug/deps/pra_protocol-9d18d845cb96a81e: crates/core/tests/pra_protocol.rs

crates/core/tests/pra_protocol.rs:
