/root/repo/target/debug/deps/fig7-774ab8048a0b641a.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-774ab8048a0b641a: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
