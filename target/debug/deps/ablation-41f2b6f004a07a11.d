/root/repo/target/debug/deps/ablation-41f2b6f004a07a11.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-41f2b6f004a07a11: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
