/root/repo/target/debug/deps/table1-863786b563c929c2.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-863786b563c929c2: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
