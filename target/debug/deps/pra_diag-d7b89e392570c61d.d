/root/repo/target/debug/deps/pra_diag-d7b89e392570c61d.d: crates/bench/src/bin/pra_diag.rs Cargo.toml

/root/repo/target/debug/deps/libpra_diag-d7b89e392570c61d.rmeta: crates/bench/src/bin/pra_diag.rs Cargo.toml

crates/bench/src/bin/pra_diag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
