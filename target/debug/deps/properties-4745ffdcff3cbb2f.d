/root/repo/target/debug/deps/properties-4745ffdcff3cbb2f.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-4745ffdcff3cbb2f.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
