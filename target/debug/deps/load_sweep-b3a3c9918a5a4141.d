/root/repo/target/debug/deps/load_sweep-b3a3c9918a5a4141.d: crates/bench/src/bin/load_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libload_sweep-b3a3c9918a5a4141.rmeta: crates/bench/src/bin/load_sweep.rs Cargo.toml

crates/bench/src/bin/load_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
