/root/repo/target/debug/deps/all_figures-ddf91b713559cf1e.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-ddf91b713559cf1e: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
