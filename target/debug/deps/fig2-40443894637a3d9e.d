/root/repo/target/debug/deps/fig2-40443894637a3d9e.d: crates/bench/src/bin/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-40443894637a3d9e.rmeta: crates/bench/src/bin/fig2.rs Cargo.toml

crates/bench/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
