/root/repo/target/debug/deps/table1-10a718ff1e5cc1fb.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-10a718ff1e5cc1fb: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
