/root/repo/target/debug/deps/pra-b5563720ae216b69.d: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/frfc.rs crates/core/src/lsd.rs crates/core/src/network.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libpra-b5563720ae216b69.rlib: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/frfc.rs crates/core/src/lsd.rs crates/core/src/network.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libpra-b5563720ae216b69.rmeta: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/frfc.rs crates/core/src/lsd.rs crates/core/src/network.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/control.rs:
crates/core/src/frfc.rs:
crates/core/src/lsd.rs:
crates/core/src/network.rs:
crates/core/src/stats.rs:
