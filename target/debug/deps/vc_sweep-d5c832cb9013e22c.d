/root/repo/target/debug/deps/vc_sweep-d5c832cb9013e22c.d: crates/bench/src/bin/vc_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libvc_sweep-d5c832cb9013e22c.rmeta: crates/bench/src/bin/vc_sweep.rs Cargo.toml

crates/bench/src/bin/vc_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
