/root/repo/target/debug/deps/fig2-a395737b43524848.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-a395737b43524848: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
