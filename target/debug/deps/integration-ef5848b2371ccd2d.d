/root/repo/target/debug/deps/integration-ef5848b2371ccd2d.d: crates/techmodel/tests/integration.rs

/root/repo/target/debug/deps/integration-ef5848b2371ccd2d: crates/techmodel/tests/integration.rs

crates/techmodel/tests/integration.rs:
