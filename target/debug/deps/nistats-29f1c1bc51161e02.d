/root/repo/target/debug/deps/nistats-29f1c1bc51161e02.d: crates/stats/src/lib.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/rng.rs crates/stats/src/sampling.rs crates/stats/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libnistats-29f1c1bc51161e02.rmeta: crates/stats/src/lib.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/rng.rs crates/stats/src/sampling.rs crates/stats/src/summary.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/histogram.rs:
crates/stats/src/json.rs:
crates/stats/src/rng.rs:
crates/stats/src/sampling.rs:
crates/stats/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
