/root/repo/target/debug/deps/pra-2e75f4a1428003e5.d: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/frfc.rs crates/core/src/lsd.rs crates/core/src/network.rs crates/core/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libpra-2e75f4a1428003e5.rmeta: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/frfc.rs crates/core/src/lsd.rs crates/core/src/network.rs crates/core/src/stats.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/control.rs:
crates/core/src/frfc.rs:
crates/core/src/lsd.rs:
crates/core/src/network.rs:
crates/core/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
