/root/repo/target/debug/deps/sysmodel-3d8b321ac5b687d0.d: crates/sysmodel/src/lib.rs crates/sysmodel/src/core.rs crates/sysmodel/src/llc.rs crates/sysmodel/src/memory.rs crates/sysmodel/src/params.rs crates/sysmodel/src/system.rs

/root/repo/target/debug/deps/libsysmodel-3d8b321ac5b687d0.rlib: crates/sysmodel/src/lib.rs crates/sysmodel/src/core.rs crates/sysmodel/src/llc.rs crates/sysmodel/src/memory.rs crates/sysmodel/src/params.rs crates/sysmodel/src/system.rs

/root/repo/target/debug/deps/libsysmodel-3d8b321ac5b687d0.rmeta: crates/sysmodel/src/lib.rs crates/sysmodel/src/core.rs crates/sysmodel/src/llc.rs crates/sysmodel/src/memory.rs crates/sysmodel/src/params.rs crates/sysmodel/src/system.rs

crates/sysmodel/src/lib.rs:
crates/sysmodel/src/core.rs:
crates/sysmodel/src/llc.rs:
crates/sysmodel/src/memory.rs:
crates/sysmodel/src/params.rs:
crates/sysmodel/src/system.rs:
