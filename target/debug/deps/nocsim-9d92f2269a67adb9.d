/root/repo/target/debug/deps/nocsim-9d92f2269a67adb9.d: crates/bench/src/bin/nocsim.rs Cargo.toml

/root/repo/target/debug/deps/libnocsim-9d92f2269a67adb9.rmeta: crates/bench/src/bin/nocsim.rs Cargo.toml

crates/bench/src/bin/nocsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
