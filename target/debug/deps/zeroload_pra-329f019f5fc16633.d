/root/repo/target/debug/deps/zeroload_pra-329f019f5fc16633.d: crates/bench/src/bin/zeroload_pra.rs

/root/repo/target/debug/deps/zeroload_pra-329f019f5fc16633: crates/bench/src/bin/zeroload_pra.rs

crates/bench/src/bin/zeroload_pra.rs:
