/root/repo/target/debug/deps/tail_latency-d71360a2e9b15f22.d: crates/bench/src/bin/tail_latency.rs Cargo.toml

/root/repo/target/debug/deps/libtail_latency-d71360a2e9b15f22.rmeta: crates/bench/src/bin/tail_latency.rs Cargo.toml

crates/bench/src/bin/tail_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
