/root/repo/target/debug/deps/vc_sweep-d44ffeadca69fbbf.d: crates/bench/src/bin/vc_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libvc_sweep-d44ffeadca69fbbf.rmeta: crates/bench/src/bin/vc_sweep.rs Cargo.toml

crates/bench/src/bin/vc_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
