/root/repo/target/debug/deps/hpc_sweep-650c5e4ab96e807f.d: crates/bench/src/bin/hpc_sweep.rs

/root/repo/target/debug/deps/hpc_sweep-650c5e4ab96e807f: crates/bench/src/bin/hpc_sweep.rs

crates/bench/src/bin/hpc_sweep.rs:
