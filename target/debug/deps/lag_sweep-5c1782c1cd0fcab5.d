/root/repo/target/debug/deps/lag_sweep-5c1782c1cd0fcab5.d: crates/bench/src/bin/lag_sweep.rs Cargo.toml

/root/repo/target/debug/deps/liblag_sweep-5c1782c1cd0fcab5.rmeta: crates/bench/src/bin/lag_sweep.rs Cargo.toml

crates/bench/src/bin/lag_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
