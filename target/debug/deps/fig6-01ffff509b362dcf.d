/root/repo/target/debug/deps/fig6-01ffff509b362dcf.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-01ffff509b362dcf: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
