/root/repo/target/debug/deps/workloads-e1120eebea12fc3e.d: crates/workloads/src/lib.rs crates/workloads/src/profile.rs crates/workloads/src/stream.rs

/root/repo/target/debug/deps/workloads-e1120eebea12fc3e: crates/workloads/src/lib.rs crates/workloads/src/profile.rs crates/workloads/src/stream.rs

crates/workloads/src/lib.rs:
crates/workloads/src/profile.rs:
crates/workloads/src/stream.rs:
