/root/repo/target/debug/deps/frfc_compare-c1a7053a2e0cc266.d: crates/bench/src/bin/frfc_compare.rs

/root/repo/target/debug/deps/frfc_compare-c1a7053a2e0cc266: crates/bench/src/bin/frfc_compare.rs

crates/bench/src/bin/frfc_compare.rs:
