/root/repo/target/debug/deps/load_sweep-53423d6142ef3e09.d: crates/bench/src/bin/load_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libload_sweep-53423d6142ef3e09.rmeta: crates/bench/src/bin/load_sweep.rs Cargo.toml

crates/bench/src/bin/load_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
