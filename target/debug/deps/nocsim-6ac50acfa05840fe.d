/root/repo/target/debug/deps/nocsim-6ac50acfa05840fe.d: crates/bench/src/bin/nocsim.rs Cargo.toml

/root/repo/target/debug/deps/libnocsim-6ac50acfa05840fe.rmeta: crates/bench/src/bin/nocsim.rs Cargo.toml

crates/bench/src/bin/nocsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
