/root/repo/target/debug/deps/ablation-16d7ff0d53f02fd1.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-16d7ff0d53f02fd1.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
