/root/repo/target/debug/deps/integration-fda50ccdec736757.d: crates/techmodel/tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-fda50ccdec736757.rmeta: crates/techmodel/tests/integration.rs Cargo.toml

crates/techmodel/tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
