/root/repo/target/debug/deps/hpc_sweep-f25f89ff980ce148.d: crates/bench/src/bin/hpc_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libhpc_sweep-f25f89ff980ce148.rmeta: crates/bench/src/bin/hpc_sweep.rs Cargo.toml

crates/bench/src/bin/hpc_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
