/root/repo/target/debug/deps/zeroload_pra-e16b7707b2222990.d: crates/bench/src/bin/zeroload_pra.rs Cargo.toml

/root/repo/target/debug/deps/libzeroload_pra-e16b7707b2222990.rmeta: crates/bench/src/bin/zeroload_pra.rs Cargo.toml

crates/bench/src/bin/zeroload_pra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
