/root/repo/target/debug/deps/fig8-fc1cb6ccd10fe7ab.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-fc1cb6ccd10fe7ab: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
