/root/repo/target/debug/deps/fig9-704ef89dc037dfea.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-704ef89dc037dfea: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
