/root/repo/target/debug/deps/workloads-91718c993fe9e5ae.d: crates/workloads/src/lib.rs crates/workloads/src/profile.rs crates/workloads/src/stream.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-91718c993fe9e5ae.rmeta: crates/workloads/src/lib.rs crates/workloads/src/profile.rs crates/workloads/src/stream.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/profile.rs:
crates/workloads/src/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
