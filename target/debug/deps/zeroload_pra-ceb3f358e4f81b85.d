/root/repo/target/debug/deps/zeroload_pra-ceb3f358e4f81b85.d: crates/bench/src/bin/zeroload_pra.rs

/root/repo/target/debug/deps/zeroload_pra-ceb3f358e4f81b85: crates/bench/src/bin/zeroload_pra.rs

crates/bench/src/bin/zeroload_pra.rs:
