/root/repo/target/debug/deps/flows-a0364f2fa321fca4.d: crates/sysmodel/tests/flows.rs

/root/repo/target/debug/deps/flows-a0364f2fa321fca4: crates/sysmodel/tests/flows.rs

crates/sysmodel/tests/flows.rs:
