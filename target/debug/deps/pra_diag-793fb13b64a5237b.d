/root/repo/target/debug/deps/pra_diag-793fb13b64a5237b.d: crates/bench/src/bin/pra_diag.rs

/root/repo/target/debug/deps/pra_diag-793fb13b64a5237b: crates/bench/src/bin/pra_diag.rs

crates/bench/src/bin/pra_diag.rs:
