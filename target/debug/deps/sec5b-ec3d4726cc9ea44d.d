/root/repo/target/debug/deps/sec5b-ec3d4726cc9ea44d.d: crates/bench/src/bin/sec5b.rs Cargo.toml

/root/repo/target/debug/deps/libsec5b-ec3d4726cc9ea44d.rmeta: crates/bench/src/bin/sec5b.rs Cargo.toml

crates/bench/src/bin/sec5b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
