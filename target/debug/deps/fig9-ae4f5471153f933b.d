/root/repo/target/debug/deps/fig9-ae4f5471153f933b.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-ae4f5471153f933b.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
