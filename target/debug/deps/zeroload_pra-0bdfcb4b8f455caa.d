/root/repo/target/debug/deps/zeroload_pra-0bdfcb4b8f455caa.d: crates/bench/src/bin/zeroload_pra.rs Cargo.toml

/root/repo/target/debug/deps/libzeroload_pra-0bdfcb4b8f455caa.rmeta: crates/bench/src/bin/zeroload_pra.rs Cargo.toml

crates/bench/src/bin/zeroload_pra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
