/root/repo/target/debug/deps/nocsim-db5fad871cb2855c.d: crates/bench/src/bin/nocsim.rs

/root/repo/target/debug/deps/nocsim-db5fad871cb2855c: crates/bench/src/bin/nocsim.rs

crates/bench/src/bin/nocsim.rs:
