/root/repo/target/debug/deps/frfc_diag-492611091eae41da.d: crates/bench/src/bin/frfc_diag.rs Cargo.toml

/root/repo/target/debug/deps/libfrfc_diag-492611091eae41da.rmeta: crates/bench/src/bin/frfc_diag.rs Cargo.toml

crates/bench/src/bin/frfc_diag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
