/root/repo/target/debug/deps/mesh_microarch-d02f579f4ded4d78.d: crates/noc/tests/mesh_microarch.rs

/root/repo/target/debug/deps/mesh_microarch-d02f579f4ded4d78: crates/noc/tests/mesh_microarch.rs

crates/noc/tests/mesh_microarch.rs:
