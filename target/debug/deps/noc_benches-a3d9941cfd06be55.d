/root/repo/target/debug/deps/noc_benches-a3d9941cfd06be55.d: crates/bench/benches/noc_benches.rs

/root/repo/target/debug/deps/noc_benches-a3d9941cfd06be55: crates/bench/benches/noc_benches.rs

crates/bench/benches/noc_benches.rs:
