/root/repo/target/debug/deps/frfc_compare-81ad9cd025da0bc6.d: crates/bench/src/bin/frfc_compare.rs Cargo.toml

/root/repo/target/debug/deps/libfrfc_compare-81ad9cd025da0bc6.rmeta: crates/bench/src/bin/frfc_compare.rs Cargo.toml

crates/bench/src/bin/frfc_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
