/root/repo/target/debug/deps/fault_sweep-9cb03df7d685d7db.d: crates/bench/src/bin/fault_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfault_sweep-9cb03df7d685d7db.rmeta: crates/bench/src/bin/fault_sweep.rs Cargo.toml

crates/bench/src/bin/fault_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
