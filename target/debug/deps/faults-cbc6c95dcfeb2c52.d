/root/repo/target/debug/deps/faults-cbc6c95dcfeb2c52.d: crates/noc/tests/faults.rs

/root/repo/target/debug/deps/faults-cbc6c95dcfeb2c52: crates/noc/tests/faults.rs

crates/noc/tests/faults.rs:
