/root/repo/target/debug/deps/mesh_microarch-35a520f814277694.d: crates/noc/tests/mesh_microarch.rs Cargo.toml

/root/repo/target/debug/deps/libmesh_microarch-35a520f814277694.rmeta: crates/noc/tests/mesh_microarch.rs Cargo.toml

crates/noc/tests/mesh_microarch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
