/root/repo/target/debug/deps/noc-b826c4a0d9b3a3f0.d: crates/noc/src/lib.rs crates/noc/src/arbiter.rs crates/noc/src/buffer.rs crates/noc/src/config.rs crates/noc/src/credit.rs crates/noc/src/faults.rs crates/noc/src/flit.rs crates/noc/src/ideal.rs crates/noc/src/mesh.rs crates/noc/src/network.rs crates/noc/src/reserve.rs crates/noc/src/routing.rs crates/noc/src/smart.rs crates/noc/src/stats.rs crates/noc/src/trace.rs crates/noc/src/traffic.rs crates/noc/src/types.rs crates/noc/src/watchdog.rs crates/noc/src/zeroload.rs Cargo.toml

/root/repo/target/debug/deps/libnoc-b826c4a0d9b3a3f0.rmeta: crates/noc/src/lib.rs crates/noc/src/arbiter.rs crates/noc/src/buffer.rs crates/noc/src/config.rs crates/noc/src/credit.rs crates/noc/src/faults.rs crates/noc/src/flit.rs crates/noc/src/ideal.rs crates/noc/src/mesh.rs crates/noc/src/network.rs crates/noc/src/reserve.rs crates/noc/src/routing.rs crates/noc/src/smart.rs crates/noc/src/stats.rs crates/noc/src/trace.rs crates/noc/src/traffic.rs crates/noc/src/types.rs crates/noc/src/watchdog.rs crates/noc/src/zeroload.rs Cargo.toml

crates/noc/src/lib.rs:
crates/noc/src/arbiter.rs:
crates/noc/src/buffer.rs:
crates/noc/src/config.rs:
crates/noc/src/credit.rs:
crates/noc/src/faults.rs:
crates/noc/src/flit.rs:
crates/noc/src/ideal.rs:
crates/noc/src/mesh.rs:
crates/noc/src/network.rs:
crates/noc/src/reserve.rs:
crates/noc/src/routing.rs:
crates/noc/src/smart.rs:
crates/noc/src/stats.rs:
crates/noc/src/trace.rs:
crates/noc/src/traffic.rs:
crates/noc/src/types.rs:
crates/noc/src/watchdog.rs:
crates/noc/src/zeroload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
