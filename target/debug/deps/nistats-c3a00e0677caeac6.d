/root/repo/target/debug/deps/nistats-c3a00e0677caeac6.d: crates/stats/src/lib.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/rng.rs crates/stats/src/sampling.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/nistats-c3a00e0677caeac6: crates/stats/src/lib.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/rng.rs crates/stats/src/sampling.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/histogram.rs:
crates/stats/src/json.rs:
crates/stats/src/rng.rs:
crates/stats/src/sampling.rs:
crates/stats/src/summary.rs:
