/root/repo/target/debug/deps/bench-8928a87a0aef79f6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-8928a87a0aef79f6.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-8928a87a0aef79f6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
