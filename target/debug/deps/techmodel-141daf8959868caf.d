/root/repo/target/debug/deps/techmodel-141daf8959868caf.d: crates/techmodel/src/lib.rs crates/techmodel/src/buffer.rs crates/techmodel/src/chip.rs crates/techmodel/src/crossbar.rs crates/techmodel/src/density.rs crates/techmodel/src/noc_area.rs crates/techmodel/src/power.rs crates/techmodel/src/sram.rs crates/techmodel/src/wire.rs

/root/repo/target/debug/deps/libtechmodel-141daf8959868caf.rlib: crates/techmodel/src/lib.rs crates/techmodel/src/buffer.rs crates/techmodel/src/chip.rs crates/techmodel/src/crossbar.rs crates/techmodel/src/density.rs crates/techmodel/src/noc_area.rs crates/techmodel/src/power.rs crates/techmodel/src/sram.rs crates/techmodel/src/wire.rs

/root/repo/target/debug/deps/libtechmodel-141daf8959868caf.rmeta: crates/techmodel/src/lib.rs crates/techmodel/src/buffer.rs crates/techmodel/src/chip.rs crates/techmodel/src/crossbar.rs crates/techmodel/src/density.rs crates/techmodel/src/noc_area.rs crates/techmodel/src/power.rs crates/techmodel/src/sram.rs crates/techmodel/src/wire.rs

crates/techmodel/src/lib.rs:
crates/techmodel/src/buffer.rs:
crates/techmodel/src/chip.rs:
crates/techmodel/src/crossbar.rs:
crates/techmodel/src/density.rs:
crates/techmodel/src/noc_area.rs:
crates/techmodel/src/power.rs:
crates/techmodel/src/sram.rs:
crates/techmodel/src/wire.rs:
