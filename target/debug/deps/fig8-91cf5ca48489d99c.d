/root/repo/target/debug/deps/fig8-91cf5ca48489d99c.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-91cf5ca48489d99c: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
