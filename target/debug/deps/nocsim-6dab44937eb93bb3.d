/root/repo/target/debug/deps/nocsim-6dab44937eb93bb3.d: crates/bench/src/bin/nocsim.rs

/root/repo/target/debug/deps/nocsim-6dab44937eb93bb3: crates/bench/src/bin/nocsim.rs

crates/bench/src/bin/nocsim.rs:
