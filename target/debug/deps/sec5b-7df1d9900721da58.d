/root/repo/target/debug/deps/sec5b-7df1d9900721da58.d: crates/bench/src/bin/sec5b.rs

/root/repo/target/debug/deps/sec5b-7df1d9900721da58: crates/bench/src/bin/sec5b.rs

crates/bench/src/bin/sec5b.rs:
