/root/repo/target/debug/deps/sec5e-9bd506afa525dd8e.d: crates/bench/src/bin/sec5e.rs Cargo.toml

/root/repo/target/debug/deps/libsec5e-9bd506afa525dd8e.rmeta: crates/bench/src/bin/sec5e.rs Cargo.toml

crates/bench/src/bin/sec5e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
