/root/repo/target/debug/deps/nistats-e9e6ecf8f2af02da.d: crates/stats/src/lib.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/rng.rs crates/stats/src/sampling.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/libnistats-e9e6ecf8f2af02da.rlib: crates/stats/src/lib.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/rng.rs crates/stats/src/sampling.rs crates/stats/src/summary.rs

/root/repo/target/debug/deps/libnistats-e9e6ecf8f2af02da.rmeta: crates/stats/src/lib.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/rng.rs crates/stats/src/sampling.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/histogram.rs:
crates/stats/src/json.rs:
crates/stats/src/rng.rs:
crates/stats/src/sampling.rs:
crates/stats/src/summary.rs:
