/root/repo/target/debug/deps/lag_sweep-9d62cc21d1edfb56.d: crates/bench/src/bin/lag_sweep.rs Cargo.toml

/root/repo/target/debug/deps/liblag_sweep-9d62cc21d1edfb56.rmeta: crates/bench/src/bin/lag_sweep.rs Cargo.toml

crates/bench/src/bin/lag_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
