/root/repo/target/debug/deps/load_sweep-428d23ec7dde9e74.d: crates/bench/src/bin/load_sweep.rs

/root/repo/target/debug/deps/load_sweep-428d23ec7dde9e74: crates/bench/src/bin/load_sweep.rs

crates/bench/src/bin/load_sweep.rs:
