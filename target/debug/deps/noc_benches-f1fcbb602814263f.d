/root/repo/target/debug/deps/noc_benches-f1fcbb602814263f.d: crates/bench/benches/noc_benches.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_benches-f1fcbb602814263f.rmeta: crates/bench/benches/noc_benches.rs Cargo.toml

crates/bench/benches/noc_benches.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
