/root/repo/target/debug/deps/frfc_diag-35311781332acc0c.d: crates/bench/src/bin/frfc_diag.rs Cargo.toml

/root/repo/target/debug/deps/libfrfc_diag-35311781332acc0c.rmeta: crates/bench/src/bin/frfc_diag.rs Cargo.toml

crates/bench/src/bin/frfc_diag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
