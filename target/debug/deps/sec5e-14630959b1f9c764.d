/root/repo/target/debug/deps/sec5e-14630959b1f9c764.d: crates/bench/src/bin/sec5e.rs Cargo.toml

/root/repo/target/debug/deps/libsec5e-14630959b1f9c764.rmeta: crates/bench/src/bin/sec5e.rs Cargo.toml

crates/bench/src/bin/sec5e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
