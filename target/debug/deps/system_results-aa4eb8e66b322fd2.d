/root/repo/target/debug/deps/system_results-aa4eb8e66b322fd2.d: tests/system_results.rs Cargo.toml

/root/repo/target/debug/deps/libsystem_results-aa4eb8e66b322fd2.rmeta: tests/system_results.rs Cargo.toml

tests/system_results.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
