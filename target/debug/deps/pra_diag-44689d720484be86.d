/root/repo/target/debug/deps/pra_diag-44689d720484be86.d: crates/bench/src/bin/pra_diag.rs Cargo.toml

/root/repo/target/debug/deps/libpra_diag-44689d720484be86.rmeta: crates/bench/src/bin/pra_diag.rs Cargo.toml

crates/bench/src/bin/pra_diag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
