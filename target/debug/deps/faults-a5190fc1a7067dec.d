/root/repo/target/debug/deps/faults-a5190fc1a7067dec.d: crates/noc/tests/faults.rs Cargo.toml

/root/repo/target/debug/deps/libfaults-a5190fc1a7067dec.rmeta: crates/noc/tests/faults.rs Cargo.toml

crates/noc/tests/faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
