/root/repo/target/debug/deps/pra_protocol-7f01027e751eb444.d: crates/core/tests/pra_protocol.rs Cargo.toml

/root/repo/target/debug/deps/libpra_protocol-7f01027e751eb444.rmeta: crates/core/tests/pra_protocol.rs Cargo.toml

crates/core/tests/pra_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
