/root/repo/target/debug/deps/fault_sweep-43851675fbc32f16.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/debug/deps/fault_sweep-43851675fbc32f16: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
