/root/repo/target/debug/deps/load_sweep-3c6e010d5f5ef776.d: crates/bench/src/bin/load_sweep.rs

/root/repo/target/debug/deps/load_sweep-3c6e010d5f5ef776: crates/bench/src/bin/load_sweep.rs

crates/bench/src/bin/load_sweep.rs:
