/root/repo/target/debug/deps/near_ideal_noc-20b987b4e024f3ce.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnear_ideal_noc-20b987b4e024f3ce.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
