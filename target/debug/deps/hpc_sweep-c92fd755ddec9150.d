/root/repo/target/debug/deps/hpc_sweep-c92fd755ddec9150.d: crates/bench/src/bin/hpc_sweep.rs

/root/repo/target/debug/deps/hpc_sweep-c92fd755ddec9150: crates/bench/src/bin/hpc_sweep.rs

crates/bench/src/bin/hpc_sweep.rs:
