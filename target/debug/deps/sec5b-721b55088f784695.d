/root/repo/target/debug/deps/sec5b-721b55088f784695.d: crates/bench/src/bin/sec5b.rs

/root/repo/target/debug/deps/sec5b-721b55088f784695: crates/bench/src/bin/sec5b.rs

crates/bench/src/bin/sec5b.rs:
