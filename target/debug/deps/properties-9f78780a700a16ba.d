/root/repo/target/debug/deps/properties-9f78780a700a16ba.d: tests/properties.rs

/root/repo/target/debug/deps/properties-9f78780a700a16ba: tests/properties.rs

tests/properties.rs:
