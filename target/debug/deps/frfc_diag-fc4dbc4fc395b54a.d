/root/repo/target/debug/deps/frfc_diag-fc4dbc4fc395b54a.d: crates/bench/src/bin/frfc_diag.rs

/root/repo/target/debug/deps/frfc_diag-fc4dbc4fc395b54a: crates/bench/src/bin/frfc_diag.rs

crates/bench/src/bin/frfc_diag.rs:
