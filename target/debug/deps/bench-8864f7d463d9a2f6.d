/root/repo/target/debug/deps/bench-8864f7d463d9a2f6.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-8864f7d463d9a2f6.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
