/root/repo/target/debug/deps/vc_sweep-e5c0cb8b7ee1fa0a.d: crates/bench/src/bin/vc_sweep.rs

/root/repo/target/debug/deps/vc_sweep-e5c0cb8b7ee1fa0a: crates/bench/src/bin/vc_sweep.rs

crates/bench/src/bin/vc_sweep.rs:
