/root/repo/target/debug/deps/ablation-7759b5ae9b63c391.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-7759b5ae9b63c391: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
