/root/repo/target/debug/deps/tail_latency-5e676986c0fda4ae.d: crates/bench/src/bin/tail_latency.rs

/root/repo/target/debug/deps/tail_latency-5e676986c0fda4ae: crates/bench/src/bin/tail_latency.rs

crates/bench/src/bin/tail_latency.rs:
