/root/repo/target/debug/deps/lag_sweep-d626e774f296769b.d: crates/bench/src/bin/lag_sweep.rs

/root/repo/target/debug/deps/lag_sweep-d626e774f296769b: crates/bench/src/bin/lag_sweep.rs

crates/bench/src/bin/lag_sweep.rs:
