/root/repo/target/debug/deps/heatmap-6fe4e8e102bb7d15.d: crates/bench/src/bin/heatmap.rs Cargo.toml

/root/repo/target/debug/deps/libheatmap-6fe4e8e102bb7d15.rmeta: crates/bench/src/bin/heatmap.rs Cargo.toml

crates/bench/src/bin/heatmap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
