/root/repo/target/debug/deps/network_contracts-207252cf4e74d706.d: crates/noc/tests/network_contracts.rs

/root/repo/target/debug/deps/network_contracts-207252cf4e74d706: crates/noc/tests/network_contracts.rs

crates/noc/tests/network_contracts.rs:
