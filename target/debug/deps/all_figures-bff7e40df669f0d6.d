/root/repo/target/debug/deps/all_figures-bff7e40df669f0d6.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-bff7e40df669f0d6: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
