/root/repo/target/debug/deps/sysmodel-b426eff7108eb63f.d: crates/sysmodel/src/lib.rs crates/sysmodel/src/core.rs crates/sysmodel/src/llc.rs crates/sysmodel/src/memory.rs crates/sysmodel/src/params.rs crates/sysmodel/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libsysmodel-b426eff7108eb63f.rmeta: crates/sysmodel/src/lib.rs crates/sysmodel/src/core.rs crates/sysmodel/src/llc.rs crates/sysmodel/src/memory.rs crates/sysmodel/src/params.rs crates/sysmodel/src/system.rs Cargo.toml

crates/sysmodel/src/lib.rs:
crates/sysmodel/src/core.rs:
crates/sysmodel/src/llc.rs:
crates/sysmodel/src/memory.rs:
crates/sysmodel/src/params.rs:
crates/sysmodel/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
