/root/repo/target/debug/deps/sysmodel-8ed20f632a285e9e.d: crates/sysmodel/src/lib.rs crates/sysmodel/src/core.rs crates/sysmodel/src/llc.rs crates/sysmodel/src/memory.rs crates/sysmodel/src/params.rs crates/sysmodel/src/system.rs

/root/repo/target/debug/deps/sysmodel-8ed20f632a285e9e: crates/sysmodel/src/lib.rs crates/sysmodel/src/core.rs crates/sysmodel/src/llc.rs crates/sysmodel/src/memory.rs crates/sysmodel/src/params.rs crates/sysmodel/src/system.rs

crates/sysmodel/src/lib.rs:
crates/sysmodel/src/core.rs:
crates/sysmodel/src/llc.rs:
crates/sysmodel/src/memory.rs:
crates/sysmodel/src/params.rs:
crates/sysmodel/src/system.rs:
