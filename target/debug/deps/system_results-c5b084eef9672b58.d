/root/repo/target/debug/deps/system_results-c5b084eef9672b58.d: tests/system_results.rs

/root/repo/target/debug/deps/system_results-c5b084eef9672b58: tests/system_results.rs

tests/system_results.rs:
