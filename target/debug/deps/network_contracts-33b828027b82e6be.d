/root/repo/target/debug/deps/network_contracts-33b828027b82e6be.d: crates/noc/tests/network_contracts.rs Cargo.toml

/root/repo/target/debug/deps/libnetwork_contracts-33b828027b82e6be.rmeta: crates/noc/tests/network_contracts.rs Cargo.toml

crates/noc/tests/network_contracts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
