/root/repo/target/debug/deps/sec5e-b1d3d492206e70c1.d: crates/bench/src/bin/sec5e.rs

/root/repo/target/debug/deps/sec5e-b1d3d492206e70c1: crates/bench/src/bin/sec5e.rs

crates/bench/src/bin/sec5e.rs:
