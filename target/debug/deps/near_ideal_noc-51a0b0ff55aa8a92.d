/root/repo/target/debug/deps/near_ideal_noc-51a0b0ff55aa8a92.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnear_ideal_noc-51a0b0ff55aa8a92.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
