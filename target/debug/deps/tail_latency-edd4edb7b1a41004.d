/root/repo/target/debug/deps/tail_latency-edd4edb7b1a41004.d: crates/bench/src/bin/tail_latency.rs Cargo.toml

/root/repo/target/debug/deps/libtail_latency-edd4edb7b1a41004.rmeta: crates/bench/src/bin/tail_latency.rs Cargo.toml

crates/bench/src/bin/tail_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
