/root/repo/target/debug/deps/pra-bb1dae976167b8f5.d: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/frfc.rs crates/core/src/lsd.rs crates/core/src/network.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/pra-bb1dae976167b8f5: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/frfc.rs crates/core/src/lsd.rs crates/core/src/network.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/control.rs:
crates/core/src/frfc.rs:
crates/core/src/lsd.rs:
crates/core/src/network.rs:
crates/core/src/stats.rs:
