/root/repo/target/debug/deps/zeroload_validation-f23005e3644d6d24.d: tests/zeroload_validation.rs Cargo.toml

/root/repo/target/debug/deps/libzeroload_validation-f23005e3644d6d24.rmeta: tests/zeroload_validation.rs Cargo.toml

tests/zeroload_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
