/root/repo/target/debug/deps/fig6-8f4b5832a04a58c5.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-8f4b5832a04a58c5: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
