/root/repo/target/debug/deps/near_ideal_noc-1779a3db90414114.d: src/lib.rs

/root/repo/target/debug/deps/near_ideal_noc-1779a3db90414114: src/lib.rs

src/lib.rs:
