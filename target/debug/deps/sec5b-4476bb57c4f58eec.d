/root/repo/target/debug/deps/sec5b-4476bb57c4f58eec.d: crates/bench/src/bin/sec5b.rs Cargo.toml

/root/repo/target/debug/deps/libsec5b-4476bb57c4f58eec.rmeta: crates/bench/src/bin/sec5b.rs Cargo.toml

crates/bench/src/bin/sec5b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
