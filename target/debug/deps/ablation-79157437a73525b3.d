/root/repo/target/debug/deps/ablation-79157437a73525b3.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-79157437a73525b3.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
