/root/repo/target/debug/deps/heatmap-86d664ff2176e838.d: crates/bench/src/bin/heatmap.rs Cargo.toml

/root/repo/target/debug/deps/libheatmap-86d664ff2176e838.rmeta: crates/bench/src/bin/heatmap.rs Cargo.toml

crates/bench/src/bin/heatmap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
