/root/repo/target/debug/deps/heatmap-873708867bb77a34.d: crates/bench/src/bin/heatmap.rs

/root/repo/target/debug/deps/heatmap-873708867bb77a34: crates/bench/src/bin/heatmap.rs

crates/bench/src/bin/heatmap.rs:
