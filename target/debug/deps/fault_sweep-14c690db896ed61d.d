/root/repo/target/debug/deps/fault_sweep-14c690db896ed61d.d: crates/bench/src/bin/fault_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfault_sweep-14c690db896ed61d.rmeta: crates/bench/src/bin/fault_sweep.rs Cargo.toml

crates/bench/src/bin/fault_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
