/root/repo/target/debug/deps/fig2-0059699e58350346.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-0059699e58350346: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
