/root/repo/target/debug/deps/hpc_sweep-65ad1ae7623663ad.d: crates/bench/src/bin/hpc_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libhpc_sweep-65ad1ae7623663ad.rmeta: crates/bench/src/bin/hpc_sweep.rs Cargo.toml

crates/bench/src/bin/hpc_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
