/root/repo/target/debug/deps/nistats-cf9b0e6eed464bfa.d: crates/stats/src/lib.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/rng.rs crates/stats/src/sampling.rs crates/stats/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libnistats-cf9b0e6eed464bfa.rmeta: crates/stats/src/lib.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/rng.rs crates/stats/src/sampling.rs crates/stats/src/summary.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/histogram.rs:
crates/stats/src/json.rs:
crates/stats/src/rng.rs:
crates/stats/src/sampling.rs:
crates/stats/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
