/root/repo/target/debug/deps/near_ideal_noc-5c7569a7f6024c75.d: src/lib.rs

/root/repo/target/debug/deps/libnear_ideal_noc-5c7569a7f6024c75.rlib: src/lib.rs

/root/repo/target/debug/deps/libnear_ideal_noc-5c7569a7f6024c75.rmeta: src/lib.rs

src/lib.rs:
