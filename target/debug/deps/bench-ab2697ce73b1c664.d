/root/repo/target/debug/deps/bench-ab2697ce73b1c664.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-ab2697ce73b1c664: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
