/root/repo/target/debug/deps/vc_sweep-128679f71155f2a2.d: crates/bench/src/bin/vc_sweep.rs

/root/repo/target/debug/deps/vc_sweep-128679f71155f2a2: crates/bench/src/bin/vc_sweep.rs

crates/bench/src/bin/vc_sweep.rs:
