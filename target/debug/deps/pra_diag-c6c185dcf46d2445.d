/root/repo/target/debug/deps/pra_diag-c6c185dcf46d2445.d: crates/bench/src/bin/pra_diag.rs

/root/repo/target/debug/deps/pra_diag-c6c185dcf46d2445: crates/bench/src/bin/pra_diag.rs

crates/bench/src/bin/pra_diag.rs:
