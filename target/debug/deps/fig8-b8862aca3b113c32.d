/root/repo/target/debug/deps/fig8-b8862aca3b113c32.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-b8862aca3b113c32.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
