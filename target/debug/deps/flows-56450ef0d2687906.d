/root/repo/target/debug/deps/flows-56450ef0d2687906.d: crates/sysmodel/tests/flows.rs Cargo.toml

/root/repo/target/debug/deps/libflows-56450ef0d2687906.rmeta: crates/sysmodel/tests/flows.rs Cargo.toml

crates/sysmodel/tests/flows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
