/root/repo/target/debug/deps/techmodel-6ed3fa58a77ade14.d: crates/techmodel/src/lib.rs crates/techmodel/src/buffer.rs crates/techmodel/src/chip.rs crates/techmodel/src/crossbar.rs crates/techmodel/src/density.rs crates/techmodel/src/noc_area.rs crates/techmodel/src/power.rs crates/techmodel/src/sram.rs crates/techmodel/src/wire.rs

/root/repo/target/debug/deps/techmodel-6ed3fa58a77ade14: crates/techmodel/src/lib.rs crates/techmodel/src/buffer.rs crates/techmodel/src/chip.rs crates/techmodel/src/crossbar.rs crates/techmodel/src/density.rs crates/techmodel/src/noc_area.rs crates/techmodel/src/power.rs crates/techmodel/src/sram.rs crates/techmodel/src/wire.rs

crates/techmodel/src/lib.rs:
crates/techmodel/src/buffer.rs:
crates/techmodel/src/chip.rs:
crates/techmodel/src/crossbar.rs:
crates/techmodel/src/density.rs:
crates/techmodel/src/noc_area.rs:
crates/techmodel/src/power.rs:
crates/techmodel/src/sram.rs:
crates/techmodel/src/wire.rs:
