/root/repo/target/debug/deps/bench-554efba8ea3018b5.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-554efba8ea3018b5.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
