/root/repo/target/debug/deps/workloads-c54383eeba957c7f.d: crates/workloads/src/lib.rs crates/workloads/src/profile.rs crates/workloads/src/stream.rs

/root/repo/target/debug/deps/libworkloads-c54383eeba957c7f.rlib: crates/workloads/src/lib.rs crates/workloads/src/profile.rs crates/workloads/src/stream.rs

/root/repo/target/debug/deps/libworkloads-c54383eeba957c7f.rmeta: crates/workloads/src/lib.rs crates/workloads/src/profile.rs crates/workloads/src/stream.rs

crates/workloads/src/lib.rs:
crates/workloads/src/profile.rs:
crates/workloads/src/stream.rs:
