/root/repo/target/debug/deps/tail_latency-29b38666048b4aae.d: crates/bench/src/bin/tail_latency.rs

/root/repo/target/debug/deps/tail_latency-29b38666048b4aae: crates/bench/src/bin/tail_latency.rs

crates/bench/src/bin/tail_latency.rs:
