/root/repo/target/debug/deps/heatmap-8d7329536f094393.d: crates/bench/src/bin/heatmap.rs

/root/repo/target/debug/deps/heatmap-8d7329536f094393: crates/bench/src/bin/heatmap.rs

crates/bench/src/bin/heatmap.rs:
