/root/repo/target/debug/deps/zeroload_validation-37e8fd6f1ce63d96.d: tests/zeroload_validation.rs

/root/repo/target/debug/deps/zeroload_validation-37e8fd6f1ce63d96: tests/zeroload_validation.rs

tests/zeroload_validation.rs:
