/root/repo/target/debug/deps/fig9-a5fc1021bc4b0c39.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-a5fc1021bc4b0c39: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
