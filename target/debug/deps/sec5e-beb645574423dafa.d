/root/repo/target/debug/deps/sec5e-beb645574423dafa.d: crates/bench/src/bin/sec5e.rs

/root/repo/target/debug/deps/sec5e-beb645574423dafa: crates/bench/src/bin/sec5e.rs

crates/bench/src/bin/sec5e.rs:
