/root/repo/target/debug/deps/lag_sweep-420fa711af1afa0a.d: crates/bench/src/bin/lag_sweep.rs

/root/repo/target/debug/deps/lag_sweep-420fa711af1afa0a: crates/bench/src/bin/lag_sweep.rs

crates/bench/src/bin/lag_sweep.rs:
