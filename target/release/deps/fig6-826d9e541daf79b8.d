/root/repo/target/release/deps/fig6-826d9e541daf79b8.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-826d9e541daf79b8: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
