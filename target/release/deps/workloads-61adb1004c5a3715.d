/root/repo/target/release/deps/workloads-61adb1004c5a3715.d: crates/workloads/src/lib.rs crates/workloads/src/profile.rs crates/workloads/src/stream.rs

/root/repo/target/release/deps/libworkloads-61adb1004c5a3715.rlib: crates/workloads/src/lib.rs crates/workloads/src/profile.rs crates/workloads/src/stream.rs

/root/repo/target/release/deps/libworkloads-61adb1004c5a3715.rmeta: crates/workloads/src/lib.rs crates/workloads/src/profile.rs crates/workloads/src/stream.rs

crates/workloads/src/lib.rs:
crates/workloads/src/profile.rs:
crates/workloads/src/stream.rs:
