/root/repo/target/release/deps/bench-4de03312987c6ee9.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-4de03312987c6ee9.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-4de03312987c6ee9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
