/root/repo/target/release/deps/fig7-e52a0b8c9d579713.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-e52a0b8c9d579713: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
