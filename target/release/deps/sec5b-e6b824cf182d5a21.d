/root/repo/target/release/deps/sec5b-e6b824cf182d5a21.d: crates/bench/src/bin/sec5b.rs

/root/repo/target/release/deps/sec5b-e6b824cf182d5a21: crates/bench/src/bin/sec5b.rs

crates/bench/src/bin/sec5b.rs:
