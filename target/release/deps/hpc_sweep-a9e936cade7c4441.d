/root/repo/target/release/deps/hpc_sweep-a9e936cade7c4441.d: crates/bench/src/bin/hpc_sweep.rs

/root/repo/target/release/deps/hpc_sweep-a9e936cade7c4441: crates/bench/src/bin/hpc_sweep.rs

crates/bench/src/bin/hpc_sweep.rs:
