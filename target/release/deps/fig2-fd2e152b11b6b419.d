/root/repo/target/release/deps/fig2-fd2e152b11b6b419.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-fd2e152b11b6b419: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
