/root/repo/target/release/deps/nistats-24fe96fc99a6777a.d: crates/stats/src/lib.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/rng.rs crates/stats/src/sampling.rs crates/stats/src/summary.rs

/root/repo/target/release/deps/libnistats-24fe96fc99a6777a.rlib: crates/stats/src/lib.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/rng.rs crates/stats/src/sampling.rs crates/stats/src/summary.rs

/root/repo/target/release/deps/libnistats-24fe96fc99a6777a.rmeta: crates/stats/src/lib.rs crates/stats/src/histogram.rs crates/stats/src/json.rs crates/stats/src/rng.rs crates/stats/src/sampling.rs crates/stats/src/summary.rs

crates/stats/src/lib.rs:
crates/stats/src/histogram.rs:
crates/stats/src/json.rs:
crates/stats/src/rng.rs:
crates/stats/src/sampling.rs:
crates/stats/src/summary.rs:
