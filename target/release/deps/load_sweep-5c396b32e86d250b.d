/root/repo/target/release/deps/load_sweep-5c396b32e86d250b.d: crates/bench/src/bin/load_sweep.rs

/root/repo/target/release/deps/load_sweep-5c396b32e86d250b: crates/bench/src/bin/load_sweep.rs

crates/bench/src/bin/load_sweep.rs:
