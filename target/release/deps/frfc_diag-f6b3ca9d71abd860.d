/root/repo/target/release/deps/frfc_diag-f6b3ca9d71abd860.d: crates/bench/src/bin/frfc_diag.rs

/root/repo/target/release/deps/frfc_diag-f6b3ca9d71abd860: crates/bench/src/bin/frfc_diag.rs

crates/bench/src/bin/frfc_diag.rs:
