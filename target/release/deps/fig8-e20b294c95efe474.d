/root/repo/target/release/deps/fig8-e20b294c95efe474.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-e20b294c95efe474: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
