/root/repo/target/release/deps/sec5e-6ed9f1ffbce3798a.d: crates/bench/src/bin/sec5e.rs

/root/repo/target/release/deps/sec5e-6ed9f1ffbce3798a: crates/bench/src/bin/sec5e.rs

crates/bench/src/bin/sec5e.rs:
