/root/repo/target/release/deps/heatmap-9ddb022925a3a9e3.d: crates/bench/src/bin/heatmap.rs

/root/repo/target/release/deps/heatmap-9ddb022925a3a9e3: crates/bench/src/bin/heatmap.rs

crates/bench/src/bin/heatmap.rs:
