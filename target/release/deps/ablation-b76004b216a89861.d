/root/repo/target/release/deps/ablation-b76004b216a89861.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-b76004b216a89861: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
