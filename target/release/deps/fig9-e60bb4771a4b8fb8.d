/root/repo/target/release/deps/fig9-e60bb4771a4b8fb8.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-e60bb4771a4b8fb8: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
