/root/repo/target/release/deps/lag_sweep-c9cb72dd3463af1c.d: crates/bench/src/bin/lag_sweep.rs

/root/repo/target/release/deps/lag_sweep-c9cb72dd3463af1c: crates/bench/src/bin/lag_sweep.rs

crates/bench/src/bin/lag_sweep.rs:
