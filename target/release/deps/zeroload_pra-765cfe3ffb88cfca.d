/root/repo/target/release/deps/zeroload_pra-765cfe3ffb88cfca.d: crates/bench/src/bin/zeroload_pra.rs

/root/repo/target/release/deps/zeroload_pra-765cfe3ffb88cfca: crates/bench/src/bin/zeroload_pra.rs

crates/bench/src/bin/zeroload_pra.rs:
