/root/repo/target/release/deps/table1-acbf31e3b7e91ed7.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-acbf31e3b7e91ed7: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
