/root/repo/target/release/deps/frfc_compare-e9d2e2ccf0a64d2a.d: crates/bench/src/bin/frfc_compare.rs

/root/repo/target/release/deps/frfc_compare-e9d2e2ccf0a64d2a: crates/bench/src/bin/frfc_compare.rs

crates/bench/src/bin/frfc_compare.rs:
