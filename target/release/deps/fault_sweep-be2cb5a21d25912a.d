/root/repo/target/release/deps/fault_sweep-be2cb5a21d25912a.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/release/deps/fault_sweep-be2cb5a21d25912a: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
