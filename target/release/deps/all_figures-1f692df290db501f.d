/root/repo/target/release/deps/all_figures-1f692df290db501f.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-1f692df290db501f: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
