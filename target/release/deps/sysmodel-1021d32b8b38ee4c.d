/root/repo/target/release/deps/sysmodel-1021d32b8b38ee4c.d: crates/sysmodel/src/lib.rs crates/sysmodel/src/core.rs crates/sysmodel/src/llc.rs crates/sysmodel/src/memory.rs crates/sysmodel/src/params.rs crates/sysmodel/src/system.rs

/root/repo/target/release/deps/libsysmodel-1021d32b8b38ee4c.rlib: crates/sysmodel/src/lib.rs crates/sysmodel/src/core.rs crates/sysmodel/src/llc.rs crates/sysmodel/src/memory.rs crates/sysmodel/src/params.rs crates/sysmodel/src/system.rs

/root/repo/target/release/deps/libsysmodel-1021d32b8b38ee4c.rmeta: crates/sysmodel/src/lib.rs crates/sysmodel/src/core.rs crates/sysmodel/src/llc.rs crates/sysmodel/src/memory.rs crates/sysmodel/src/params.rs crates/sysmodel/src/system.rs

crates/sysmodel/src/lib.rs:
crates/sysmodel/src/core.rs:
crates/sysmodel/src/llc.rs:
crates/sysmodel/src/memory.rs:
crates/sysmodel/src/params.rs:
crates/sysmodel/src/system.rs:
