/root/repo/target/release/deps/techmodel-8c535a8a5b503314.d: crates/techmodel/src/lib.rs crates/techmodel/src/buffer.rs crates/techmodel/src/chip.rs crates/techmodel/src/crossbar.rs crates/techmodel/src/density.rs crates/techmodel/src/noc_area.rs crates/techmodel/src/power.rs crates/techmodel/src/sram.rs crates/techmodel/src/wire.rs

/root/repo/target/release/deps/libtechmodel-8c535a8a5b503314.rlib: crates/techmodel/src/lib.rs crates/techmodel/src/buffer.rs crates/techmodel/src/chip.rs crates/techmodel/src/crossbar.rs crates/techmodel/src/density.rs crates/techmodel/src/noc_area.rs crates/techmodel/src/power.rs crates/techmodel/src/sram.rs crates/techmodel/src/wire.rs

/root/repo/target/release/deps/libtechmodel-8c535a8a5b503314.rmeta: crates/techmodel/src/lib.rs crates/techmodel/src/buffer.rs crates/techmodel/src/chip.rs crates/techmodel/src/crossbar.rs crates/techmodel/src/density.rs crates/techmodel/src/noc_area.rs crates/techmodel/src/power.rs crates/techmodel/src/sram.rs crates/techmodel/src/wire.rs

crates/techmodel/src/lib.rs:
crates/techmodel/src/buffer.rs:
crates/techmodel/src/chip.rs:
crates/techmodel/src/crossbar.rs:
crates/techmodel/src/density.rs:
crates/techmodel/src/noc_area.rs:
crates/techmodel/src/power.rs:
crates/techmodel/src/sram.rs:
crates/techmodel/src/wire.rs:
