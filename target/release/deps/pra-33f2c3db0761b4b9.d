/root/repo/target/release/deps/pra-33f2c3db0761b4b9.d: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/frfc.rs crates/core/src/lsd.rs crates/core/src/network.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libpra-33f2c3db0761b4b9.rlib: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/frfc.rs crates/core/src/lsd.rs crates/core/src/network.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libpra-33f2c3db0761b4b9.rmeta: crates/core/src/lib.rs crates/core/src/control.rs crates/core/src/frfc.rs crates/core/src/lsd.rs crates/core/src/network.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/control.rs:
crates/core/src/frfc.rs:
crates/core/src/lsd.rs:
crates/core/src/network.rs:
crates/core/src/stats.rs:
