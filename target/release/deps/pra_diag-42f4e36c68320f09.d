/root/repo/target/release/deps/pra_diag-42f4e36c68320f09.d: crates/bench/src/bin/pra_diag.rs

/root/repo/target/release/deps/pra_diag-42f4e36c68320f09: crates/bench/src/bin/pra_diag.rs

crates/bench/src/bin/pra_diag.rs:
