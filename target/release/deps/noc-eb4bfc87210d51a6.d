/root/repo/target/release/deps/noc-eb4bfc87210d51a6.d: crates/noc/src/lib.rs crates/noc/src/arbiter.rs crates/noc/src/buffer.rs crates/noc/src/config.rs crates/noc/src/credit.rs crates/noc/src/faults.rs crates/noc/src/flit.rs crates/noc/src/ideal.rs crates/noc/src/mesh.rs crates/noc/src/network.rs crates/noc/src/reserve.rs crates/noc/src/routing.rs crates/noc/src/smart.rs crates/noc/src/stats.rs crates/noc/src/trace.rs crates/noc/src/traffic.rs crates/noc/src/types.rs crates/noc/src/watchdog.rs crates/noc/src/zeroload.rs

/root/repo/target/release/deps/libnoc-eb4bfc87210d51a6.rlib: crates/noc/src/lib.rs crates/noc/src/arbiter.rs crates/noc/src/buffer.rs crates/noc/src/config.rs crates/noc/src/credit.rs crates/noc/src/faults.rs crates/noc/src/flit.rs crates/noc/src/ideal.rs crates/noc/src/mesh.rs crates/noc/src/network.rs crates/noc/src/reserve.rs crates/noc/src/routing.rs crates/noc/src/smart.rs crates/noc/src/stats.rs crates/noc/src/trace.rs crates/noc/src/traffic.rs crates/noc/src/types.rs crates/noc/src/watchdog.rs crates/noc/src/zeroload.rs

/root/repo/target/release/deps/libnoc-eb4bfc87210d51a6.rmeta: crates/noc/src/lib.rs crates/noc/src/arbiter.rs crates/noc/src/buffer.rs crates/noc/src/config.rs crates/noc/src/credit.rs crates/noc/src/faults.rs crates/noc/src/flit.rs crates/noc/src/ideal.rs crates/noc/src/mesh.rs crates/noc/src/network.rs crates/noc/src/reserve.rs crates/noc/src/routing.rs crates/noc/src/smart.rs crates/noc/src/stats.rs crates/noc/src/trace.rs crates/noc/src/traffic.rs crates/noc/src/types.rs crates/noc/src/watchdog.rs crates/noc/src/zeroload.rs

crates/noc/src/lib.rs:
crates/noc/src/arbiter.rs:
crates/noc/src/buffer.rs:
crates/noc/src/config.rs:
crates/noc/src/credit.rs:
crates/noc/src/faults.rs:
crates/noc/src/flit.rs:
crates/noc/src/ideal.rs:
crates/noc/src/mesh.rs:
crates/noc/src/network.rs:
crates/noc/src/reserve.rs:
crates/noc/src/routing.rs:
crates/noc/src/smart.rs:
crates/noc/src/stats.rs:
crates/noc/src/trace.rs:
crates/noc/src/traffic.rs:
crates/noc/src/types.rs:
crates/noc/src/watchdog.rs:
crates/noc/src/zeroload.rs:
