/root/repo/target/release/deps/near_ideal_noc-b507c11184db16eb.d: src/lib.rs

/root/repo/target/release/deps/libnear_ideal_noc-b507c11184db16eb.rlib: src/lib.rs

/root/repo/target/release/deps/libnear_ideal_noc-b507c11184db16eb.rmeta: src/lib.rs

src/lib.rs:
