/root/repo/target/release/deps/tail_latency-d48a92f918eef367.d: crates/bench/src/bin/tail_latency.rs

/root/repo/target/release/deps/tail_latency-d48a92f918eef367: crates/bench/src/bin/tail_latency.rs

crates/bench/src/bin/tail_latency.rs:
