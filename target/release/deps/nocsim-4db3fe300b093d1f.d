/root/repo/target/release/deps/nocsim-4db3fe300b093d1f.d: crates/bench/src/bin/nocsim.rs

/root/repo/target/release/deps/nocsim-4db3fe300b093d1f: crates/bench/src/bin/nocsim.rs

crates/bench/src/bin/nocsim.rs:
