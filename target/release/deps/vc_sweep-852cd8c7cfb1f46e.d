/root/repo/target/release/deps/vc_sweep-852cd8c7cfb1f46e.d: crates/bench/src/bin/vc_sweep.rs

/root/repo/target/release/deps/vc_sweep-852cd8c7cfb1f46e: crates/bench/src/bin/vc_sweep.rs

crates/bench/src/bin/vc_sweep.rs:
