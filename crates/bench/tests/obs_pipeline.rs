//! End-to-end observability pipeline tests: Chrome-trace export
//! round-trip (serialize → parse → schema-validate), CSV export, and the
//! full-stack `System::attach_obs` path.
#![cfg(feature = "obs")]

use bench::{build_network, Organization};
use nistats::Json;
use noc::network::Network;
use noc::traffic::{Pattern, TrafficGen};
use sysmodel::{System, SystemParams};
use workloads::WorkloadKind;

/// Runs a small PRA simulation through `BoxedNet` with a recorder
/// attached and returns the recorder.
fn recorded_pra_run() -> niobs::Recorder {
    let cfg = noc::config::NocConfigBuilder::new()
        .build()
        .expect("valid config");
    let mut net = build_network(Organization::MeshPra, cfg.clone());
    let shared = niobs::Recorder::default().into_shared();
    net.install_obs(shared.clone());
    let mut gen = TrafficGen::new(cfg, Pattern::UniformRandom, 0.03, 5);
    for _ in 0..2_000 {
        gen.tick(&mut net);
        net.step();
        net.drain_delivered();
    }
    gen.stop();
    net.run_to_drain(10_000);
    let rec = shared.borrow().clone();
    rec
}

#[test]
fn chrome_trace_round_trips_and_validates() {
    let rec = recorded_pra_run();
    assert!(
        !rec.flights.completed().is_empty(),
        "the run must complete flights"
    );
    let instants: Vec<niobs::TimedEvent> = rec.log.iter().cloned().collect();
    let doc = niobs::chrome_trace(rec.flights.completed(), &instants);

    // Round-trip through the serialized form, exactly as a viewer would
    // consume it.
    let text = doc.to_string();
    let parsed = Json::parse(&text).expect("export must be well-formed JSON");
    let summary =
        niobs::validate_chrome_trace(&parsed).expect("export must satisfy the trace_event schema");
    assert!(summary.events > 2, "more than the two metadata events");
    assert!(summary.tracks > 1, "per-packet tracks plus metadata");
    assert!(summary.max_ts > 0);

    // The validator must actually reject broken documents: drop `ph`
    // from a real event.
    let bad = Json::parse(&text.replacen("\"ph\":\"X\"", "\"pH\":\"X\"", 1))
        .expect("still well-formed JSON");
    assert!(
        niobs::validate_chrome_trace(&bad).is_err(),
        "validator must reject an event without ph"
    );
}

#[test]
fn csv_export_covers_every_completed_flight() {
    let rec = recorded_pra_run();
    let csv = niobs::flights_to_csv(rec.flights.completed());
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(
        lines.len(),
        rec.flights.completed().len() + 1,
        "header plus one row per flight"
    );
    assert!(lines[0].starts_with("packet,src,dest,class,len_flits"));
}

#[test]
fn system_attach_obs_feeds_all_layers() {
    let params = SystemParams::paper();
    let net = pra::network::PraNetwork::new(params.noc.clone());
    let mut sys = System::new(params, net, WorkloadKind::WebSearch, 1);
    let shared = niobs::Recorder::default().into_shared();
    sys.attach_obs(shared.clone());
    sys.run(3_000);

    let rec = shared.borrow();
    let m = &rec.metrics;
    assert!(m.counter("events.packet_injected") > 0, "data layer");
    assert!(m.counter("events.packet_ejected") > 0, "data layer");
    assert!(m.counter("events.llc_window") > 0, "system layer");
    assert!(
        m.counter("events.control_injected") > 0,
        "control layer (LLC windows launch control packets)"
    );
    assert!(
        m.histogram("packet.latency_cycles").is_some(),
        "latency histogram populated from completed flights"
    );
}
