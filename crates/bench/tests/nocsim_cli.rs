//! Command-line contract of the `nocsim` binary: unknown flags are
//! rejected with a nonzero exit, and the default report covers the
//! measured window (warm-up excluded) unless `--include-warmup` asks
//! for the old cumulative behaviour.

use std::process::Command;

fn nocsim(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_nocsim"))
        .args(args)
        .output()
        .expect("nocsim must spawn")
}

#[test]
fn unknown_flag_is_rejected_with_nonzero_exit() {
    let out = nocsim(&["--no-such-flag", "1"]);
    assert_eq!(out.status.code(), Some(2), "unknown flags must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown flag '--no-such-flag'"),
        "stderr must name the bad flag: {stderr}"
    );
}

#[test]
fn flag_missing_its_value_is_rejected() {
    let out = nocsim(&["--rate"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("missing value for --rate"), "{stderr}");
}

#[test]
fn default_report_is_the_measured_window() {
    let out = nocsim(&["--warmup", "500", "--cycles", "2000", "--seed", "7"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("== results (measured window, warm-up excluded) =="),
        "default must report the measured window: {stdout}"
    );
    assert!(
        stdout.contains("cycles simulated       2000"),
        "reported interval must be the measured cycles only: {stdout}"
    );
}

#[test]
fn include_warmup_restores_cumulative_stats() {
    let args = ["--warmup", "500", "--cycles", "2000", "--seed", "7"];
    let windowed = nocsim(&args);
    let cumulative = nocsim(
        &args
            .iter()
            .copied()
            .chain(["--include-warmup"])
            .collect::<Vec<_>>(),
    );
    assert!(windowed.status.success() && cumulative.status.success());
    let cum_out = String::from_utf8_lossy(&cumulative.stdout);
    assert!(
        cum_out.contains("== results (cumulative, warm-up included) =="),
        "{cum_out}"
    );
    assert!(cum_out.contains("cycles simulated       2500"), "{cum_out}");

    // The cumulative run counts strictly more deliveries than the
    // measured window — the warm-up traffic is the difference.
    let delivered = |s: &str| {
        s.lines()
            .find_map(|l| l.strip_prefix("packets delivered      "))
            .and_then(|v| v.trim().parse::<u64>().ok())
            .expect("report must include a delivered count")
    };
    let win = delivered(&String::from_utf8_lossy(&windowed.stdout));
    let cum = delivered(&cum_out);
    assert!(
        cum > win,
        "cumulative ({cum}) must exceed the measured window ({win})"
    );
}
