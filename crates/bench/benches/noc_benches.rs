//! Criterion micro-benchmarks: simulator throughput per organisation and
//! zero-load packet latency (simulation speed, not modelled latency).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc::config::NocConfig;
use noc::network::Network;
use noc::traffic::{Pattern, TrafficGen};
use bench::{build_network, Organization};

fn simulator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_1k_cycles_uniform_0.05");
    for org in Organization::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(org.name()), &org, |b, &org| {
            b.iter(|| {
                let cfg = NocConfig::paper();
                let mut net = build_network(org, cfg.clone());
                let mut gen = TrafficGen::new(cfg, Pattern::UniformRandom, 0.05, 7);
                for _ in 0..1_000 {
                    gen.tick(&mut net);
                    net.step();
                    net.drain_delivered();
                }
                net.stats().delivered()
            })
        });
    }
    group.finish();
}

fn zero_load_delivery(c: &mut Criterion) {
    use noc::flit::Packet;
    use noc::types::{MessageClass, NodeId, PacketId};
    let mut group = c.benchmark_group("zero_load_corner_to_corner");
    for org in Organization::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(org.name()), &org, |b, &org| {
            b.iter(|| {
                let mut net = build_network(org, NocConfig::paper());
                net.inject(Packet::new(
                    PacketId(1),
                    NodeId::new(0),
                    NodeId::new(63),
                    MessageClass::Request,
                    1,
                ));
                let mut out = Vec::new();
                let deadline = 1_000;
                while net.in_flight() > 0 && net.now() < deadline {
                    net.step();
                    out.extend(net.drain_delivered());
                }
                out.len()
            })
        });
    }
    group.finish();
}

fn full_system_cycle(c: &mut Criterion) {
    use sysmodel::{System, SystemParams};
    use workloads::WorkloadKind;
    let mut group = c.benchmark_group("system_500_cycles");
    group.sample_size(10);
    for org in Organization::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(org.name()), &org, |b, &org| {
            b.iter(|| {
                let params = SystemParams::paper();
                let net = build_network(org, params.noc.clone());
                let mut sys = System::new(params, net, WorkloadKind::WebSearch, 1);
                sys.run(500);
                sys.committed_instructions()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, simulator_throughput, zero_load_delivery, full_system_cycle);
criterion_main!(benches);
