//! Micro-benchmarks: simulator throughput per organisation and zero-load
//! packet latency (simulation speed, not modelled latency).
//!
//! A plain `std::time::Instant` harness (`harness = false`) so the
//! workspace needs no external benchmark framework. Run with
//! `cargo bench`; each case reports mean wall time per iteration.

use bench::{build_network, Organization};
use noc::config::NocConfig;
use noc::network::Network;
use noc::traffic::{Pattern, TrafficGen};
use std::time::Instant;

/// Times `f` over enough iterations to fill ~0.5 s and reports the mean.
fn bench_case(group: &str, name: &str, mut f: impl FnMut() -> u64) {
    // Warm up and estimate cost.
    let t0 = Instant::now();
    let mut sink = f();
    let est = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.5 / est) as u64).clamp(3, 1_000);
    let t1 = Instant::now();
    for _ in 0..iters {
        sink = sink.wrapping_add(f());
    }
    let per_iter = t1.elapsed().as_secs_f64() / iters as f64;
    println!(
        "{group}/{name:<10} {:>12.3} ms/iter  ({iters} iters, checksum {sink})",
        per_iter * 1e3
    );
}

fn simulator_throughput() {
    for org in Organization::ALL {
        bench_case("simulate_1k_cycles_uniform_0.05", org.name(), || {
            let cfg = NocConfig::paper();
            let mut net = build_network(org, cfg.clone());
            let mut gen = TrafficGen::new(cfg, Pattern::UniformRandom, 0.05, 7);
            for _ in 0..1_000 {
                gen.tick(&mut net);
                net.step();
                net.drain_delivered();
            }
            net.stats().delivered()
        });
    }
}

fn zero_load_delivery() {
    use noc::flit::Packet;
    use noc::types::{MessageClass, NodeId, PacketId};
    for org in Organization::ALL {
        bench_case("zero_load_corner_to_corner", org.name(), || {
            let mut net = build_network(org, NocConfig::paper());
            net.inject(Packet::new(
                PacketId(1),
                NodeId::new(0),
                NodeId::new(63),
                MessageClass::Request,
                1,
            ));
            let mut out = Vec::new();
            let deadline = 1_000;
            while net.in_flight() > 0 && net.now() < deadline {
                net.step();
                out.extend(net.drain_delivered());
            }
            out.len() as u64
        });
    }
}

fn full_system_cycle() {
    use sysmodel::{System, SystemParams};
    use workloads::WorkloadKind;
    for org in Organization::ALL {
        bench_case("system_500_cycles", org.name(), || {
            let params = SystemParams::paper();
            let net = build_network(org, params.noc.clone());
            let mut sys = System::new(params, net, WorkloadKind::WebSearch, 1);
            sys.run(500);
            sys.committed_instructions()
        });
    }
}

/// Observability overhead: identical mesh runs with hooks compiled in but
/// no sink attached (one `Option` branch per hook) versus a full
/// `Recorder` attached. The hook-free build is a separate compile
/// (`--no-default-features`); CI smoke-runs it to guard the disabled
/// path's throughput.
#[cfg(feature = "obs")]
fn obs_overhead() {
    let run = |attach: bool| {
        let cfg = NocConfig::paper();
        let mut net = build_network(Organization::Mesh, cfg.clone());
        if attach {
            net.install_obs(niobs::Recorder::default().into_shared());
        }
        let mut gen = TrafficGen::new(cfg, Pattern::UniformRandom, 0.05, 7);
        for _ in 0..1_000 {
            gen.tick(&mut net);
            net.step();
            net.drain_delivered();
        }
        net.stats().delivered()
    };
    bench_case("obs_overhead_1k_cycles", "no-sink", || run(false));
    bench_case("obs_overhead_1k_cycles", "recorder", || run(true));
}

/// Driver-loop observation overhead: the point driver batches digest
/// sampling, cycle budgets and cancellation polling behind a single
/// precomputed next-event cycle (`CycleGate` in `runner::point`), so a
/// run with everything disabled pays one branch per cycle. The three
/// cases pin that design: fully disabled, digests every 64 cycles, and
/// a (generous) wall budget that arms coarse cancel polling. The
/// disabled case regressing toward the enabled ones means per-cycle
/// work leaked out from behind the gate.
fn driver_poll_overhead() {
    use runner::{run_point_full, Organization as Org, SweepSpec};
    let base = || {
        SweepSpec::new("bench-driver")
            .orgs(&[Org::Mesh])
            .windows(100, 900)
            .points()
            .remove(0)
    };
    bench_case("driver_poll_1k_cycles", "disabled", || {
        let p = base();
        run_point_full(&p).record.delivered
    });
    bench_case("driver_poll_1k_cycles", "digest-64", || {
        let mut p = base();
        p.digest_interval = 64;
        let out = run_point_full(&p);
        out.record.delivered + out.trail.len() as u64
    });
    bench_case("driver_poll_1k_cycles", "wall-poll", || {
        let mut p = base();
        p.wall_budget_ms = 3_600_000; // arms cancel polling, never trips
        run_point_full(&p).record.delivered
    });
}

fn main() {
    simulator_throughput();
    zero_load_delivery();
    full_system_cycle();
    driver_poll_overhead();
    #[cfg(feature = "obs")]
    obs_overhead();
}
