//! # bench — the figure/table regeneration harness
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md's
//! experiment index), plus shared plumbing: building each network
//! organisation, running the sampled system simulation, and formatting
//! result rows.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use nistats::{geometric_mean, Json, SampleSpec, Summary};
use noc::network::Network as _;
use pra::network::PraNetwork;
use pra::{ControlConfig, PraStats};
use sysmodel::{System, SystemParams};
use workloads::WorkloadKind;

pub use runner::{build_network, with_network, BoxedNet, NetVisitor, Organization};

pub mod gate;

/// Runs `count` independent measurement closures across the runner's
/// work-stealing pool (`NOC_THREADS`, default: all cores) and returns
/// the results in index order — so a sweep binary prints exactly what
/// its serial loop printed, just faster. Each closure must be a pure
/// function of its index (build the network inside it, derive nothing
/// from shared mutable state). A panicking point aborts the binary with
/// the panic message; sweeps that tolerate per-point failure should go
/// through [`runner::run_points`] instead.
pub fn run_grid<T: Send>(count: usize, task: impl Fn(usize) -> T + Sync) -> Vec<T> {
    run_grid_budgeted(count, |i, _| task(i))
}

/// Wall-clock budget per grid point from `NOC_POINT_WALL_MS` (unset,
/// unparsable, or 0 = unlimited). Lets CI put a ceiling under every
/// figure binary without touching their flags.
pub fn point_wall_budget_ms() -> u64 {
    std::env::var("NOC_POINT_WALL_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0)
}

/// [`run_grid`], but each closure receives a [`noc::cancel::CancelToken`]
/// pre-armed with the `NOC_POINT_WALL_MS` wall-clock budget. Install it
/// into the point's network (`Network::install_cancel`) and a point that
/// overruns stops simulating — its remaining cycles free-run to the end
/// of the loop — instead of wedging the whole binary. Overruns are
/// reported on stderr; the budget never appears in artifacts.
pub fn run_grid_budgeted<T: Send>(
    count: usize,
    task: impl Fn(usize, noc::cancel::CancelToken) -> T + Sync,
) -> Vec<T> {
    let threads = runner::threads_from_env();
    let budget_ms = point_wall_budget_ms();
    let budgeted = |i: usize| {
        let token = noc::cancel::CancelToken::new();
        let _wall = runner::WallGuard::arm(budget_ms, token.clone());
        let out = task(i, token.clone());
        if token.is_cancelled() {
            eprintln!(
                "bench: point {i} exceeded the {budget_ms}ms wall budget \
                 (NOC_POINT_WALL_MS); its row is truncated"
            );
        }
        out
    };
    runner::run_tasks(count, threads, budgeted, |_, _| {})
        .into_iter()
        .map(|outcome| match outcome {
            runner::Outcome::Done(v) => v,
            runner::Outcome::Panicked { task, message } => {
                eprintln!("bench: sweep point {task} panicked: {message}");
                std::process::exit(1);
            }
        })
        .collect()
}

/// One sample's wall-clock budget: a cancel token installed into the
/// network plus the watchdog enforcing `NOC_POINT_WALL_MS` on it. Keep
/// it alive across the measurement; call [`BudgetGuard::report`] after.
struct BudgetGuard {
    token: noc::cancel::CancelToken,
    _wall: runner::WallGuard,
}

impl BudgetGuard {
    fn arm<N: noc::network::Network + ?Sized>(net: &mut N) -> BudgetGuard {
        let token = noc::cancel::CancelToken::new();
        net.install_cancel(token.clone());
        BudgetGuard {
            _wall: runner::WallGuard::arm(point_wall_budget_ms(), token.clone()),
            token,
        }
    }

    fn report(&self, what: &str) {
        if self.token.is_cancelled() {
            eprintln!(
                "bench: {what} exceeded the {}ms wall budget \
                 (NOC_POINT_WALL_MS); its sample is truncated",
                point_wall_budget_ms()
            );
        }
    }
}

/// One sampled system measurement, generic over the concrete network
/// type so the whole system loop runs with static dispatch (see
/// [`runner::with_network`]).
struct SystemSample<'a> {
    params: &'a SystemParams,
    workload: WorkloadKind,
    spec: &'a SampleSpec,
    seed: u64,
    label: &'static str,
}

impl NetVisitor for SystemSample<'_> {
    type Out = f64;
    fn visit<N: noc::network::Network>(self, mut net: N) -> f64 {
        let budget = BudgetGuard::arm(&mut net);
        let mut sys = System::new(self.params.clone(), net, self.workload, self.seed);
        let out = sys.measure(self.spec.warmup_cycles, self.spec.measure_cycles);
        budget.report(self.label);
        out
    }
}

/// Measures one `(workload, organisation)` point with the given sampling
/// spec; returns the performance summary over samples. Each sample runs
/// under the `NOC_POINT_WALL_MS` wall budget when one is set.
pub fn measure_performance(
    org: Organization,
    workload: WorkloadKind,
    spec: &SampleSpec,
) -> Summary {
    let params = SystemParams::paper();
    spec.run(|seed| {
        with_network(
            org,
            params.noc.clone(),
            SystemSample {
                params: &params,
                workload,
                spec,
                seed,
                label: org.name(),
            },
        )
    })
}

/// Measures Mesh+PRA with explicit control configuration (ablations).
pub fn measure_pra_with(ctrl: ControlConfig, workload: WorkloadKind, spec: &SampleSpec) -> Summary {
    let params = SystemParams::paper();
    spec.run(|seed| {
        let mut net = PraNetwork::with_control(params.noc.clone(), ctrl.clone());
        let budget = BudgetGuard::arm(&mut net);
        let mut sys = System::new(params.clone(), net, workload, seed);
        let out = sys.measure(spec.warmup_cycles, spec.measure_cycles);
        budget.report("mesh_pra");
        out
    })
}

/// Measures Mesh+PRA and returns `(performance summary, control stats,
/// data network stats)` for the Figure 7 / Section V.B analyses.
pub fn measure_pra_detail(
    workload: WorkloadKind,
    spec: &SampleSpec,
) -> (Summary, PraStats, noc::stats::NetStats) {
    let params = SystemParams::paper();
    let mut agg_pra = PraStats::new();
    let mut agg_net = noc::stats::NetStats::new();
    let perf = spec.run(|seed| {
        let mut net = PraNetwork::with_control(params.noc.clone(), ControlConfig::default());
        let budget = BudgetGuard::arm(&mut net);
        let mut sys = System::new(params.clone(), net, workload, seed);
        let perf = sys.measure(spec.warmup_cycles, spec.measure_cycles);
        budget.report("mesh_pra detail");
        let net = sys.into_network();
        merge_pra(&mut agg_pra, net.pra_stats());
        merge_net(&mut agg_net, net.stats());
        perf
    });
    (perf, agg_pra, agg_net)
}

fn merge_pra(acc: &mut PraStats, s: &PraStats) {
    acc.injected_llc += s.injected_llc;
    acc.injected_lsd += s.injected_lsd;
    acc.refused_at_ni += s.refused_at_ni;
    for i in 0..acc.lag_at_drop.len() {
        acc.lag_at_drop[i] += s.lag_at_drop[i];
    }
    for i in 0..acc.drops_by_reason.len() {
        acc.drops_by_reason[i] += s.drops_by_reason[i];
    }
    acc.hops_preallocated += s.hops_preallocated;
    acc.segments_processed += s.segments_processed;
    for i in 0..acc.alloc_fail_kinds.len() {
        acc.alloc_fail_kinds[i] += s.alloc_fail_kinds[i];
    }
}

fn merge_net(acc: &mut noc::stats::NetStats, s: &noc::stats::NetStats) {
    acc.total_latency += s.total_latency;
    acc.total_queue_latency += s.total_queue_latency;
    acc.total_hops += s.total_hops;
    acc.blocked_by_reservation_cycles += s.blocked_by_reservation_cycles;
    acc.reserved_moves += s.reserved_moves;
    acc.wasted_reservations += s.wasted_reservations;
    acc.link_traversals += s.link_traversals;
    acc.local_grants += s.local_grants;
    for i in 0..3 {
        acc.packets_delivered[i] += s.packets_delivered[i];
        acc.packets_injected[i] += s.packets_injected[i];
        acc.flits_delivered[i] += s.flits_delivered[i];
    }
    acc.cycles += s.cycles;
}

/// Writes a Chrome/Perfetto `trace_event` JSON file assembled from a
/// recorder's completed flights plus the control-plane instants still in
/// its ring log.
pub fn write_chrome_trace(rec: &niobs::Recorder, path: &str) -> std::io::Result<()> {
    let instants: Vec<niobs::TimedEvent> = rec.log.iter().cloned().collect();
    let doc = niobs::chrome_trace(rec.flights.completed(), &instants);
    std::fs::write(path, doc.to_string())
}

/// Formats a normalized-performance table (rows = workloads + GMean,
/// columns normalized to the first organisation).
pub fn format_normalized_table(
    title: &str,
    workloads: &[WorkloadKind],
    orgs: &[Organization],
    raw: &[Vec<f64>],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    out.push_str(&format!("{:<16}", "Workload"));
    for org in orgs {
        out.push_str(&format!("{:>10}", org.name()));
    }
    out.push('\n');
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); orgs.len()];
    for (w, workload) in workloads.iter().enumerate() {
        out.push_str(&format!("{:<16}", workload.name()));
        for o in 0..orgs.len() {
            let r = raw[w][o] / raw[w][0];
            ratios[o].push(r);
            out.push_str(&format!("{:>10.3}", r));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<16}", "GMean"));
    for r in &ratios {
        out.push_str(&format!("{:>10.3}", geometric_mean(r)));
    }
    out.push('\n');
    out
}

/// A machine-readable record of one figure's results, written next to the
/// human-readable table when `NOC_RESULTS_JSON` names a file.
#[derive(Debug, Clone)]
pub struct FigureResults {
    /// Figure identifier (e.g. "fig6").
    pub figure: String,
    /// Row labels (workloads).
    pub rows: Vec<String>,
    /// Column labels (organisations).
    pub columns: Vec<String>,
    /// Raw values, `values[row][column]`.
    pub values: Vec<Vec<f64>>,
}

impl FigureResults {
    /// Writes the record as JSON to the path in `NOC_RESULTS_JSON`
    /// (appending a `.{figure}.json` suffix); does nothing when the
    /// variable is unset. IO errors are reported to stderr, not fatal —
    /// the human-readable output already went to stdout.
    pub fn write_if_requested(&self) {
        let Ok(base) = std::env::var("NOC_RESULTS_JSON") else {
            return;
        };
        let path = format!("{base}.{}.json", self.figure);
        let json = self.to_json().to_string_pretty(2);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: cannot write {path}: {e}");
        } else {
            eprintln!("results written to {path}");
        }
    }

    /// The record as a JSON tree.
    pub fn to_json(&self) -> Json {
        let strings =
            |xs: &[String]| Json::Array(xs.iter().map(|s| Json::from(s.as_str())).collect());
        Json::object(vec![
            ("figure".into(), Json::from(self.figure.as_str())),
            ("rows".into(), strings(&self.rows)),
            ("columns".into(), strings(&self.columns)),
            (
                "values".into(),
                Json::Array(
                    self.values
                        .iter()
                        .map(|row| Json::Array(row.iter().map(|&v| Json::Float(v)).collect()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// The sampling spec selected by the `NOC_SAMPLES` environment variable:
/// `full` (paper windows), `mid`, or anything else/unset (quick windows).
pub fn spec_from_env() -> SampleSpec {
    match std::env::var("NOC_SAMPLES").as_deref() {
        Ok("full") => SampleSpec::paper(),
        Ok("mid") => SampleSpec {
            warmup_cycles: 20_000,
            measure_cycles: 30_000,
            samples: 3,
        },
        _ => SampleSpec {
            warmup_cycles: 5_000,
            measure_cycles: 15_000,
            samples: 2,
        },
    }
}
