//! The `perf_baseline` regression gate.
//!
//! Two checks run against a committed `BENCH_pra.json`:
//!
//! 1. **Relative**: the PRA/mesh cycles-per-sec *ratio* within one run.
//!    Host speed cancels out, so this is robust to CI landing on a slow
//!    machine — but a *uniform* slowdown (both orgs 10× slower) keeps
//!    the ratio intact and sails through.
//! 2. **Absolute**: each organisation's cycles/sec must clear a floor
//!    expressed as a fraction of the committed baseline (default 0.6,
//!    leaving headroom for CI-runner jitter). This is the check that
//!    catches the uniform slowdown the ratio is blind to.
//!
//! The functions here are pure (no IO, no JSON) so both failure modes
//! are unit-testable; `perf_baseline` owns the file parsing.

/// Simulator throughput of the two gated organisations, in simulated
/// cycles per wall-clock second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughputs {
    /// `baseline-mesh` cycles/sec.
    pub mesh: f64,
    /// `pra` cycles/sec.
    pub pra: f64,
}

impl Throughputs {
    /// PRA throughput relative to the mesh (0 when the mesh is 0).
    pub fn ratio(&self) -> f64 {
        if self.mesh > 0.0 {
            self.pra / self.mesh
        } else {
            0.0
        }
    }
}

/// The checks a passing gate performed, one log line each.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Human-readable summaries in check order.
    pub lines: Vec<String>,
}

/// Checks `fresh` against `committed`: the ratio check first, then the
/// absolute per-organisation floor. A `floor_fraction` of 0 disables
/// the absolute check (the pre-floor behaviour).
///
/// # Errors
///
/// The first failing check, as the message `perf_baseline` prints
/// before exiting with status 5.
pub fn check(
    committed: Throughputs,
    fresh: Throughputs,
    ratio_tolerance: f64,
    floor_fraction: f64,
) -> Result<GateReport, String> {
    let mut lines = Vec::new();
    let committed_ratio = committed.ratio();
    let fresh_ratio = fresh.ratio();
    let ratio_floor = committed_ratio * (1.0 - ratio_tolerance);
    lines.push(format!(
        "gate: pra/mesh cycles-per-sec ratio {fresh_ratio:.3} vs committed {committed_ratio:.3} \
         (floor {ratio_floor:.3}, tolerance {ratio_tolerance:.2})"
    ));
    if fresh_ratio < ratio_floor {
        return Err(format!(
            "relative simulator throughput regressed: pra/mesh ratio {fresh_ratio:.3} \
             is below {ratio_floor:.3} ({committed_ratio:.3} committed minus \
             {ratio_tolerance:.2} tolerance)"
        ));
    }
    if floor_fraction > 0.0 {
        let orgs = [
            ("baseline-mesh", fresh.mesh, committed.mesh),
            ("pra", fresh.pra, committed.pra),
        ];
        for (org, fresh_cps, committed_cps) in orgs {
            let floor = committed_cps * floor_fraction;
            lines.push(format!(
                "gate: {org} {fresh_cps:.0} cycles/sec vs committed {committed_cps:.0} \
                 (absolute floor {floor:.0}, fraction {floor_fraction:.2})"
            ));
            if fresh_cps < floor {
                return Err(format!(
                    "absolute simulator throughput regressed: {org} at {fresh_cps:.0} \
                     cycles/sec is below the floor {floor:.0} ({floor_fraction:.2} of \
                     the committed {committed_cps:.0}); a uniform slowdown passes the \
                     ratio check, which is exactly what this floor catches"
                ));
            }
        }
    }
    Ok(GateReport { lines })
}

#[cfg(test)]
mod tests {
    use super::*;

    const COMMITTED: Throughputs = Throughputs {
        mesh: 200_000.0,
        pra: 180_000.0,
    };

    #[test]
    fn identical_run_passes_both_checks() {
        let report = check(COMMITTED, COMMITTED, 0.25, 0.6).expect("must pass");
        assert_eq!(report.lines.len(), 3, "ratio line plus one per org");
    }

    #[test]
    fn faster_run_passes() {
        let fresh = Throughputs {
            mesh: 400_000.0,
            pra: 390_000.0,
        };
        assert!(check(COMMITTED, fresh, 0.25, 0.6).is_ok());
    }

    #[test]
    fn pra_side_regression_fails_the_ratio_check() {
        // PRA halves while the mesh holds: the ratio drops to 0.45 of
        // the committed 0.9, well past a 0.25 tolerance.
        let fresh = Throughputs {
            mesh: 200_000.0,
            pra: 90_000.0,
        };
        let err = check(COMMITTED, fresh, 0.25, 0.6).expect_err("must fail");
        assert!(err.contains("relative"), "wrong failure mode: {err}");
    }

    #[test]
    fn uniform_slowdown_passes_ratio_but_fails_the_floor() {
        // Both orgs 10× slower: the ratio is untouched, so only the
        // absolute floor can catch it.
        let fresh = Throughputs {
            mesh: 20_000.0,
            pra: 18_000.0,
        };
        let err = check(COMMITTED, fresh, 0.25, 0.6).expect_err("must fail");
        assert!(err.contains("absolute"), "wrong failure mode: {err}");
        // The old ratio-only behaviour (floor disabled) let it through.
        assert!(check(COMMITTED, fresh, 0.25, 0.0).is_ok());
    }

    #[test]
    fn jitter_within_the_floor_fraction_passes() {
        let fresh = Throughputs {
            mesh: 130_000.0,
            pra: 115_000.0,
        };
        assert!(check(COMMITTED, fresh, 0.25, 0.6).is_ok());
    }

    #[test]
    fn zero_mesh_throughput_is_a_ratio_failure_not_a_panic() {
        let fresh = Throughputs {
            mesh: 0.0,
            pra: 0.0,
        };
        assert!(check(COMMITTED, fresh, 0.25, 0.6).is_err());
    }
}
