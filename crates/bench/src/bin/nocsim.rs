//! `nocsim` — a standalone command-line NoC simulator (BookSim-style).
//!
//! ```sh
//! nocsim --org pra --pattern uniform --rate 0.03 --cycles 20000
//! nocsim --org mesh --pattern hotspot:27 --rate 0.01 --radix 4
//! nocsim --org smart --trace trace.json
//! ```
//!
//! Run with `--help` for the full option list.

use bench::{build_network, Organization};
use niobs::MetricsRegistry;
use noc::config::{NocConfig, NocConfigBuilder};
use noc::network::Network;
use noc::trace::{replay, Trace};
use noc::traffic::{InjectionProcess, Pattern, TrafficGen};
use noc::types::MessageClass;
use runner::{
    injection_from_key, injection_key, pattern_from_key, INJECTION_KEYS, ORG_KEYS, PATTERN_KEYS,
};
use workloads::{WorkloadKind, WORKLOAD_KEYS};

#[derive(Debug)]
struct Options {
    org: Organization,
    pattern: Pattern,
    pattern_set: bool,
    injection: InjectionProcess,
    injection_set: bool,
    workload: Option<WorkloadKind>,
    class_priority: Option<[u8; 3]>,
    rate: f64,
    response_fraction: f64,
    warmup: u64,
    cycles: u64,
    seed: u64,
    radix: u16,
    vc_depth: u8,
    hpc: u8,
    fault_ppb: u32,
    fault_seed: u64,
    retry_budget: Option<u8>,
    ack_timeout: Option<u64>,
    backoff_base: Option<u64>,
    include_warmup: bool,
    trace: Option<String>,
    record: Option<String>,
    trace_out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            org: Organization::Mesh,
            pattern: Pattern::UniformRandom,
            pattern_set: false,
            injection: InjectionProcess::Bernoulli,
            injection_set: false,
            workload: None,
            class_priority: None,
            rate: 0.02,
            response_fraction: 0.5,
            warmup: 2_000,
            cycles: 20_000,
            seed: 1,
            radix: 8,
            vc_depth: 5,
            hpc: 2,
            fault_ppb: 0,
            fault_seed: 0,
            retry_budget: None,
            ack_timeout: None,
            backoff_base: None,
            include_warmup: false,
            trace: None,
            record: None,
            trace_out: None,
        }
    }
}

const HELP: &str = "\
nocsim — cycle-accurate NoC simulation (near-ideal-noc reproduction)

USAGE: nocsim [OPTIONS]

  --org ORG          mesh | smart | pra | ideal | frfc [mesh]
  --pattern PAT      uniform | transpose | complement |
                     core_to_llc | hotspot:<node>      [uniform]
  --injection PROC   bernoulli | onoff:<on>:<off> |
                     mmpp:<boost>:<lo>:<hi>:<max>      [bernoulli]
  --workload NAME    preset pattern+burst shape from a
                     CloudSuite workload profile (explicit
                     --pattern/--injection still win)
  --class-priority R,C,S
                     arbitration priority per class
                     (request,coherence,response; higher wins)
  --rate F           injection rate, packets/node/cycle [0.02]
  --response-frac F  fraction of multi-flit responses   [0.5]
  --warmup N         warm-up cycles                     [2000]
  --cycles N         measured cycles                    [20000]
  --seed N           RNG seed                           [1]
  --radix N          mesh radix (NxN)                   [8]
  --vc-depth N       flits per virtual channel          [5]
  --hpc N            max hops per cycle                 [2]
  --fault-ppb N      transient fault rate, events per
                     billion cycle-resources            [0 = off]
  --fault-seed N     fault plan RNG seed                [0]
  --retry-budget N   enable end-to-end reliable delivery:
                     retransmissions per packet before
                     escalation (0..=32)                [off]
  --ack-timeout N    reliable delivery: cycles before an
                     unacked packet retransmits (>= 1,
                     doubles per attempt; implies the
                     overlay, default 256)
  --backoff-base N   reliable delivery: retransmission
                     jitter bound in cycles (implies the
                     overlay, default 32)
  --include-warmup   report cumulative statistics (warm-up
                     included) instead of the default
                     measured window
  --trace FILE       replay a JSON trace instead of
                     synthetic traffic
  --record FILE      record the synthetic injections to a
                     replayable JSON trace
  --trace-out FILE   write a Chrome/Perfetto trace of the run
                     (requires the `obs` build feature)
  --help             this text
";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            print!("{HELP}");
            std::process::exit(0);
        }
        if flag == "--include-warmup" {
            opts.include_warmup = true;
            continue;
        }
        let value = args
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--org" => {
                opts.org = Organization::from_key(&value).ok_or_else(|| {
                    format!("unknown organisation '{value}' (valid values: {ORG_KEYS}, pra)")
                })?;
            }
            "--pattern" => {
                // `corellc` is the historical nocsim spelling of the
                // sweep-spec key `core_to_llc`; both stay accepted.
                opts.pattern = if value == "corellc" {
                    Pattern::CoreToLlc
                } else {
                    pattern_from_key(&value).ok_or_else(|| {
                        format!("unknown pattern '{value}' (valid values: {PATTERN_KEYS})")
                    })?
                };
                opts.pattern_set = true;
            }
            "--injection" => {
                opts.injection = injection_from_key(&value).ok_or_else(|| {
                    format!("unknown injection process '{value}' (valid values: {INJECTION_KEYS})")
                })?;
                opts.injection_set = true;
            }
            "--workload" => {
                opts.workload = Some(WorkloadKind::from_key(&value).ok_or_else(|| {
                    format!("unknown workload '{value}' (valid values: {WORKLOAD_KEYS})")
                })?);
            }
            "--class-priority" => {
                let parts: Vec<&str> = value.split(',').collect();
                if parts.len() != 3 {
                    return Err(format!(
                        "bad --class-priority '{value}' (expected three \
                         comma-separated integers: request,coherence,response)"
                    ));
                }
                let mut prio = [0u8; 3];
                for (slot, part) in prio.iter_mut().zip(&parts) {
                    *slot = part
                        .parse()
                        .map_err(|_| format!("bad --class-priority entry '{part}'"))?;
                }
                opts.class_priority = Some(prio);
            }
            "--rate" => opts.rate = value.parse().map_err(|_| "bad --rate".to_string())?,
            "--response-frac" => {
                opts.response_fraction = value
                    .parse()
                    .map_err(|_| "bad --response-frac".to_string())?
            }
            "--warmup" => opts.warmup = value.parse().map_err(|_| "bad --warmup".to_string())?,
            "--cycles" => opts.cycles = value.parse().map_err(|_| "bad --cycles".to_string())?,
            "--seed" => opts.seed = value.parse().map_err(|_| "bad --seed".to_string())?,
            "--radix" => opts.radix = value.parse().map_err(|_| "bad --radix".to_string())?,
            "--vc-depth" => {
                opts.vc_depth = value.parse().map_err(|_| "bad --vc-depth".to_string())?
            }
            "--hpc" => opts.hpc = value.parse().map_err(|_| "bad --hpc".to_string())?,
            "--fault-ppb" => {
                opts.fault_ppb = value
                    .parse()
                    .map_err(|_| format!("bad --fault-ppb '{value}' (valid values: 0..=4294967295 events per billion cycle-resources)"))?;
            }
            "--fault-seed" => {
                opts.fault_seed = value.parse().map_err(|_| {
                    format!("bad --fault-seed '{value}' (valid values: a u64 seed)")
                })?;
            }
            "--retry-budget" => {
                opts.retry_budget = Some(
                    value
                        .parse::<u8>()
                        .ok()
                        .filter(|&b| b <= 32)
                        .ok_or_else(|| {
                            format!(
                                "bad --retry-budget '{value}' (valid values: 0..=32 \
                                 retransmissions before escalation)"
                            )
                        })?,
                );
            }
            "--ack-timeout" => {
                opts.ack_timeout = Some(value.parse::<u64>().ok().filter(|&t| t >= 1).ok_or_else(
                    || format!("bad --ack-timeout '{value}' (valid values: cycles >= 1)"),
                )?);
            }
            "--backoff-base" => {
                opts.backoff_base = Some(value.parse::<u64>().map_err(|_| {
                    format!("bad --backoff-base '{value}' (valid values: a cycle count)")
                })?);
            }
            "--trace" => opts.trace = Some(value),
            "--record" => opts.record = Some(value),
            "--trace-out" => opts.trace_out = Some(value),
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    // A workload preset fills in whatever pattern/burst shape the user
    // did not pin explicitly.
    if let Some(workload) = opts.workload {
        if !opts.pattern_set {
            opts.pattern = Pattern::CoreToLlc;
        }
        if !opts.injection_set {
            let shape = workload.profile().burst_shape();
            opts.injection = InjectionProcess::OnOff {
                on_len: shape.on_len,
                off_len: shape.off_len,
            };
        }
    }
    Ok(opts)
}

fn config_for(opts: &Options) -> Result<NocConfig, String> {
    let mut b = NocConfigBuilder::new()
        .radix(opts.radix)
        .vc_depth(opts.vc_depth)
        .max_hops_per_cycle(opts.hpc);
    if let Some(priority) = opts.class_priority {
        b = b.class_priority(priority);
    }
    if opts.fault_ppb > 0 {
        b = b.faults(
            noc::faults::FaultPlan::new(opts.fault_seed).transient_rate_ppb(opts.fault_ppb),
        );
    }
    // Any reliability knob switches the overlay on; missing knobs take
    // the production defaults, and the overlay's jitter RNG reuses the
    // traffic seed so one `--seed` pins the whole run.
    if opts.retry_budget.is_some() || opts.ack_timeout.is_some() || opts.backoff_base.is_some() {
        let mut rel = noc::reliable::ReliabilityConfig::with_seed(opts.seed);
        if let Some(budget) = opts.retry_budget {
            rel.retry_budget = budget;
        }
        if let Some(timeout) = opts.ack_timeout {
            rel.ack_timeout = timeout;
        }
        if let Some(base) = opts.backoff_base {
            rel.backoff_base = base;
        }
        b = b.reliability(rel);
    }
    b.build().map_err(|e| e.to_string())
}

/// Stable lower-case class labels for metric keys and report rows.
const CLASS_LABELS: [&str; 3] = ["request", "coherence", "response"];

/// The per-class latency metric key for a virtual-channel index.
fn class_metric(vc: usize) -> String {
    format!("packet.latency_cycles.{}", CLASS_LABELS[vc])
}

/// Records one delivery batch into the metrics registry (exact sparse
/// histograms — unlike `NetStats`' capped buckets, these keep full
/// resolution at any latency), overall and per message class.
fn observe_deliveries(metrics: &mut MetricsRegistry, delivered: &[noc::network::Delivered]) {
    for d in delivered {
        metrics.inc("nocsim.packets_delivered", 1);
        let latency = d.delivered.saturating_sub(d.packet.created);
        metrics.observe("packet.latency_cycles", latency);
        metrics.observe(&class_metric(d.packet.class.vc()), latency);
        metrics.observe("packet.hops", u64::from(d.hops));
    }
}

fn report(net: &dyn Network, total_cycles: u64, metrics: &MetricsRegistry, window: &str) {
    let s = net.stats();
    println!("\n== results ({window}) ==");
    println!("cycles simulated       {total_cycles}");
    println!("packets delivered      {}", s.delivered());
    println!(
        "  requests / coherence / responses   {} / {} / {}",
        s.packets_delivered[0], s.packets_delivered[1], s.packets_delivered[2]
    );
    println!("avg packet latency     {:.2} cycles", s.avg_latency());
    println!(
        "  requests {:.2} / responses {:.2}",
        s.avg_latency_of(MessageClass::Request),
        s.avg_latency_of(MessageClass::Response)
    );
    println!("avg source queueing    {:.2} cycles", s.avg_queue_latency());
    // Exact percentiles from the metrics registry when the run fed it;
    // the capped `NetStats` histogram is the fallback (trace replay).
    let percentiles = match metrics.histogram("packet.latency_cycles") {
        Some(h) => (h.percentile(0.50), h.percentile(0.95), h.percentile(0.99)),
        None => (
            s.latency_percentile(0.50),
            s.latency_percentile(0.95),
            s.latency_percentile(0.99),
        ),
    };
    if let (Some(p50), Some(p95), Some(p99)) = percentiles {
        println!("latency p50/p95/p99    {p50} / {p95} / {p99} cycles");
    }
    // Per-class latency summary (exact histograms; silent for classes
    // that delivered nothing in the window).
    for (vc, label) in CLASS_LABELS.iter().enumerate() {
        if let Some(h) = metrics.histogram(&class_metric(vc)) {
            if let (Some(p50), Some(p95), Some(p99), Some(max)) = (
                h.percentile(0.50),
                h.percentile(0.95),
                h.percentile(0.99),
                h.percentile(1.0),
            ) {
                println!("  {label:<9} p50/p95/p99/max  {p50} / {p95} / {p99} / {max} cycles");
            }
        }
    }
    println!("avg hops               {:.2}", s.avg_hops());
    println!("max latency            {} cycles", s.max_latency);
    println!(
        "throughput             {:.3} packets/cycle",
        s.delivered() as f64 / total_cycles.max(1) as f64
    );
    println!("link traversals        {}", s.link_traversals);
    if s.reserved_moves > 0 {
        println!("-- PRA activity --");
        println!("reserved-slot moves    {}", s.reserved_moves);
        println!("wasted reservations    {}", s.wasted_reservations);
        println!(
            "blocked-by-reservation {:.4}% of packet latency",
            s.reservation_blocking_fraction() * 100.0
        );
    }
    // Lifetime overlay counters (never reset at the warm-up boundary),
    // so the partition below covers the whole run, not the window.
    if let Some(rel) = net.reliable_stats() {
        println!("-- reliability --");
        println!("packets tracked        {}", rel.tracked);
        println!("retransmits            {}", rel.retransmits);
        println!("duplicates suppressed  {}", rel.duplicates_suppressed);
        println!("escalations            {}", rel.escalations);
        println!(
            "delivered or escalated {} of {} tracked",
            rel.delivered + rel.escalations,
            rel.tracked
        );
    }
}

#[cfg(feature = "obs")]
fn write_trace(path: &str, rec: &std::rc::Rc<std::cell::RefCell<niobs::Recorder>>) {
    match bench::write_chrome_trace(&rec.borrow(), path) {
        Ok(()) => println!("trace written to {path}"),
        Err(e) => {
            eprintln!("nocsim: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("nocsim: {e}");
            std::process::exit(2);
        }
    };
    let cfg = match config_for(&opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("nocsim: invalid configuration: {e}");
            std::process::exit(2);
        }
    };
    let mut net = build_network(opts.org, cfg.clone());
    let mut metrics = MetricsRegistry::new();
    #[cfg(feature = "obs")]
    let recorder = opts.trace_out.as_ref().map(|_| {
        let rec = niobs::Recorder::default().into_shared();
        net.install_obs(rec.clone());
        rec
    });
    #[cfg(not(feature = "obs"))]
    if opts.trace_out.is_some() {
        eprintln!("nocsim: --trace-out requires a build with the `obs` feature");
        std::process::exit(2);
    }
    println!(
        "nocsim: {} on {}x{} mesh, {} flits/VC, {} hops/cycle",
        opts.org.name(),
        cfg.radix,
        cfg.radix,
        cfg.vc_depth,
        cfg.max_hops_per_cycle
    );

    if let Some(path) = &opts.trace {
        let json = match std::fs::read_to_string(path) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("nocsim: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        let trace = match Trace::from_json(&json) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("nocsim: bad trace {path}: {e}");
                std::process::exit(1);
            }
        };
        if let Err(i) = trace.validate(cfg.nodes() as u16) {
            eprintln!("nocsim: trace entry {i} is invalid for this mesh");
            std::process::exit(1);
        }
        println!("replaying {} packets from {path}", trace.len());
        let (delivered, cycles) = replay(&mut net, trace);
        println!("delivered {delivered} packets in {cycles} cycles");
        report(&net, cycles, &metrics, "trace replay, cumulative");
        #[cfg(feature = "obs")]
        if let (Some(out), Some(rec)) = (&opts.trace_out, &recorder) {
            write_trace(out, rec);
        }
        return;
    }

    println!(
        "pattern {:?}, injection {}, rate {}, responses {:.0}%, {}+{} cycles, seed {}",
        opts.pattern,
        injection_key(opts.injection),
        opts.rate,
        opts.response_fraction * 100.0,
        opts.warmup,
        opts.cycles,
        opts.seed
    );
    if let Some(workload) = opts.workload {
        println!("workload preset: {}", workload.name());
    }
    let mut gen = TrafficGen::new(cfg, opts.pattern, opts.rate, opts.seed)
        .response_fraction(opts.response_fraction)
        .injection(opts.injection);
    if opts.record.is_some() {
        gen = gen.record_trace();
    }
    for _ in 0..opts.warmup {
        gen.tick(&mut net);
        net.step();
        observe_deliveries(&mut metrics, &net.drain_delivered());
    }
    if !opts.include_warmup {
        // Open the measured window: drop everything accumulated during
        // warm-up so the reported statistics cover only `--cycles`.
        net.reset_stats();
        metrics.begin_epoch();
    }
    for _ in 0..opts.cycles {
        gen.tick(&mut net);
        net.step();
        observe_deliveries(&mut metrics, &net.drain_delivered());
    }
    let (reported_cycles, window) = if opts.include_warmup {
        (opts.warmup + opts.cycles, "cumulative, warm-up included")
    } else {
        (opts.cycles, "measured window, warm-up excluded")
    };
    report(&net, reported_cycles, &metrics, window);
    if let Some(path) = &opts.record {
        let trace = gen.take_trace();
        match std::fs::write(path, trace.to_json()) {
            Ok(()) => println!("recorded {} injections to {path}", trace.len()),
            Err(e) => {
                eprintln!("nocsim: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    #[cfg(feature = "obs")]
    if let (Some(out), Some(rec)) = (&opts.trace_out, &recorder) {
        write_trace(out, rec);
    }
}
