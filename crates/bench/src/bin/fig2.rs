//! Figure 2: SMART and Ideal performance normalized to the mesh on the
//! two representative workloads (Media Streaming, Web Search).

use bench::{measure_performance, spec_from_env, Organization};
use nistats::geometric_mean;
use workloads::WorkloadKind;

fn main() {
    let spec = spec_from_env();
    let workloads = [WorkloadKind::MediaStreaming, WorkloadKind::WebSearch];
    let orgs = [Organization::Mesh, Organization::Smart, Organization::Ideal];
    println!("## Figure 2 — SMART and Ideal vs Mesh\n");
    println!("{:<16}{:>10}{:>10}", "Workload", "SMART", "Ideal");
    let mut smart = Vec::new();
    let mut ideal = Vec::new();
    for wl in workloads {
        let perfs: Vec<f64> = orgs
            .iter()
            .map(|o| measure_performance(*o, wl, &spec).mean)
            .collect();
        let (s, i) = (perfs[1] / perfs[0], perfs[2] / perfs[0]);
        smart.push(s);
        ideal.push(i);
        println!("{:<16}{:>10.3}{:>10.3}", wl.name(), s, i);
    }
    println!(
        "{:<16}{:>10.3}{:>10.3}",
        "GMean",
        geometric_mean(&smart),
        geometric_mean(&ideal)
    );
    println!("\npaper: SMART ≈ mesh; ideal ≈ +28% average on these workloads");
}
