//! Runs every figure/table harness in sequence — the one-shot
//! reproduction driver. Set `NOC_SAMPLES=full` for paper-scale windows.

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "fig2",
        "fig6",
        "fig7",
        "sec5b",
        "fig8",
        "fig9",
        "sec5e",
        "ablation",
        "lag_sweep",
        "frfc_compare",
        "tail_latency",
    ];
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe directory");
    for bin in bins {
        let path = dir.join(bin);
        eprintln!("==> {bin}");
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
        println!();
    }
}
