//! Figure 7: distribution of control packets' lag when dropped
//! (Mesh+PRA, all six workloads). Workloads run in parallel on the
//! runner pool.

use bench::{measure_pra_detail, run_grid, spec_from_env};
use workloads::WorkloadKind;

fn main() {
    let spec = spec_from_env();
    let details = run_grid(WorkloadKind::ALL.len(), |i| {
        measure_pra_detail(WorkloadKind::ALL[i], &spec)
    });
    println!("## Figure 7 — control-packet lag at drop time\n");
    println!(
        "{:<16}{:>8}{:>8}{:>8}{:>8}{:>8}",
        "Workload", "Lag0", "Lag1", "Lag2", "Lag3", "Lag4+"
    );
    for (wl, (_, pra, _)) in WorkloadKind::ALL.iter().zip(&details) {
        let d = pra.lag_distribution(4);
        let lag4plus: f64 =
            d[4] + pra.lag_at_drop[5..].iter().sum::<u64>() as f64 / pra.dropped().max(1) as f64;
        println!(
            "{:<16}{:>7.1}%{:>7.1}%{:>7.1}%{:>7.1}%{:>7.1}%",
            wl.name(),
            d[0] * 100.0,
            d[1] * 100.0,
            d[2] * 100.0,
            d[3] * 100.0,
            lag4plus * 100.0
        );
    }
    println!("\npaper: Lag0 53–67% (avg 61%), Lag1 15–20%, Lag2 17–27%, >2 below 2%");
}
