//! Link-utilization heatmap: run traffic on the mesh and render each
//! router's aggregate link load as ASCII art — a quick visual check of
//! traffic patterns and hotspots.

use noc::config::NocConfig;
use noc::mesh::MeshNetwork;
use noc::network::Network;
use noc::traffic::{Pattern, TrafficGen};
use noc::types::{Direction, NodeId};

fn main() {
    let cfg = NocConfig::paper();
    let radix = cfg.radix;
    for (name, pattern) in [
        ("uniform random", Pattern::UniformRandom),
        ("hotspot node 27", Pattern::Hotspot(NodeId::new(27))),
        ("transpose", Pattern::Transpose),
    ] {
        let mut net = MeshNetwork::new(cfg.clone());
        let mut gen = TrafficGen::new(cfg.clone(), pattern, 0.02, 7);
        for _ in 0..10_000 {
            gen.tick(&mut net);
            net.step();
            net.drain_delivered();
        }
        // Aggregate outbound flit-traversals per router.
        let mut loads = vec![0u64; cfg.nodes()];
        for (n, load) in loads.iter_mut().enumerate() {
            for d in Direction::ALL {
                *load += net.link_use(NodeId::new(n as u16), d);
            }
        }
        let max = *loads.iter().max().unwrap_or(&1) as f64;
        const SHADES: [char; 8] = [' ', '.', ':', '-', '=', '+', '#', '@'];
        println!("\n== {name} (max {max} flit-links/router) ==");
        for y in 0..radix {
            let mut row = String::new();
            for x in 0..radix {
                let n = (y * radix + x) as usize;
                let level = ((loads[n] as f64 / max) * (SHADES.len() - 1) as f64).round() as usize;
                row.push(SHADES[level]);
                row.push(SHADES[level]); // double width for aspect ratio
            }
            println!("  {row}");
        }
    }
    println!("\nXY routing concentrates hotspot traffic on the destination's");
    println!("row and column; uniform traffic loads the centre bisection.");
}
