//! Ablation: the contribution of each PRA opportunity window.
//!
//! The paper's two windows are the LLC serial-lookup interval and
//! in-network blocking (LSD). This reproduction adds the symmetric
//! L1-miss window for requests (see DESIGN.md §5); the ablation
//! quantifies each source on Media Streaming.

use bench::{measure_performance, spec_from_env, Organization};
use pra::network::PraNetwork;
use pra::ControlConfig;
use sysmodel::{System, SystemParams};
use workloads::WorkloadKind;

fn run(
    ctrl: ControlConfig,
    announce_requests: bool,
    announce_fills: bool,
    spec: &nistats::SampleSpec,
) -> f64 {
    let mut params = SystemParams::paper();
    params.announce_requests = announce_requests;
    params.announce_fills = announce_fills;
    spec.run(|seed| {
        let net = PraNetwork::with_control(params.noc.clone(), ctrl.clone());
        let mut sys = System::new(params.clone(), net, WorkloadKind::MediaStreaming, seed);
        sys.measure(spec.warmup_cycles, spec.measure_cycles)
    })
    .mean
}

fn main() {
    let spec = spec_from_env();
    let mesh = measure_performance(Organization::Mesh, WorkloadKind::MediaStreaming, &spec).mean;
    let ideal = measure_performance(Organization::Ideal, WorkloadKind::MediaStreaming, &spec).mean;
    println!("## Ablation — PRA opportunity windows (Media Streaming)\n");
    println!("{:<44}{:>10}{:>12}", "Configuration", "perf", "vs mesh");
    println!("{:<44}{:>10.2}{:>11.1}%", "Mesh baseline", mesh, 0.0);
    let cases: [(&str, ControlConfig, bool, bool); 5] = [
        (
            "PRA: LLC window only (paper text, no LSD)",
            ControlConfig {
                llc_window: true,
                lsd: false,
                max_lag: 4,
            },
            false,
            false,
        ),
        (
            "PRA: LSD only",
            ControlConfig {
                llc_window: false,
                lsd: true,
                max_lag: 4,
            },
            false,
            false,
        ),
        (
            "PRA: LLC window + LSD (paper text)",
            ControlConfig::default(),
            false,
            false,
        ),
        (
            "PRA: + L1-miss window (requests)",
            ControlConfig::default(),
            true,
            false,
        ),
        (
            "PRA: + MC fill window (full reproduction)",
            ControlConfig::default(),
            true,
            true,
        ),
    ];
    for (name, ctrl, reqs, fills) in cases {
        let p = run(ctrl, reqs, fills, &spec);
        println!("{:<44}{:>10.2}{:>11.1}%", name, p, (p / mesh - 1.0) * 100.0);
    }
    println!(
        "{:<44}{:>10.2}{:>11.1}%",
        "Ideal (zero router delay)",
        ideal,
        (ideal / mesh - 1.0) * 100.0
    );
}
