//! Table I: evaluation parameters of the reproduction.

use noc::config::NocConfig;
use sysmodel::SystemParams;
use techmodel::ChipModel;
use workloads::WorkloadKind;

fn main() {
    let cfg = NocConfig::paper();
    let sys = SystemParams::paper();
    let chip = ChipModel::paper();
    println!("## Table I — evaluation parameters\n");
    println!("Technology            32 nm, 0.9 V, 2 GHz");
    println!(
        "Processor             {} cores, {} MB NUCA LLC, {} DDR3-1600 channels",
        chip.cores,
        chip.llc_mb,
        sys.memory_controllers.len()
    );
    println!(
        "Core                  ARM Cortex-A15-like, {} mm², {} W",
        chip.core_area_mm2, chip.core_power_w
    );
    println!(
        "LLC slice             {} mm²/MB, {} mW/MB, {}-cycle tag / {}-cycle data",
        chip.sram.area_mm2_per_mb,
        chip.sram.power_w_per_mb * 1000.0,
        sys.llc_tag_cycles,
        sys.llc_data_cycles
    );
    println!(
        "Mesh                  {}x{} mesh, {} VCs/port, {} flits/VC, {}-bit links",
        cfg.radix, cfg.radix, cfg.vcs_per_port, cfg.vc_depth, cfg.link_width_bits
    );
    println!(
        "Multi-hop ceiling     {} tiles/cycle (85 ps/mm wires, ~1.8 mm tiles)",
        cfg.max_hops_per_cycle
    );
    println!(
        "Memory                {} cycles DRAM latency, {} cycles/line occupancy",
        sys.dram_latency, sys.dram_line_cycles
    );
    println!("\nWorkloads (ILP / MLP / I-MPKI / D-MPKI / LLC hit):");
    for wl in WorkloadKind::ALL {
        let p = wl.profile();
        println!(
            "  {:<16} {:.1} / {} / {:>4.1} / {:>4.1} / {:.2}{}",
            wl.name(),
            p.ilp,
            p.mlp,
            p.i_mpki,
            p.d_mpki,
            p.llc_hit_ratio,
            if wl.is_batch() { "  (batch)" } else { "" }
        );
    }
}
