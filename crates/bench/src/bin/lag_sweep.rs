//! Ablation: the maximum control-packet lag.
//!
//! The paper fixes the maximum lag at 4 (the LLC data-lookup window).
//! A lag budget of L covers 1 + 2(L-1) route hops; this sweep shows the
//! diminishing returns past the mesh's average hop count and the cost of
//! shrinking the window. Points run in parallel on the runner pool.

use bench::{measure_performance, measure_pra_with, run_grid, spec_from_env, Organization};
use pra::ControlConfig;
use workloads::WorkloadKind;

const LAGS: [u8; 6] = [1, 2, 3, 4, 6, 8];

fn main() {
    let spec = spec_from_env();
    let wl = WorkloadKind::MediaStreaming;
    // Points 0/1 are the mesh and ideal anchors; 2.. are the lag grid.
    let perfs = run_grid(2 + LAGS.len(), |i| match i {
        0 => measure_performance(Organization::Mesh, wl, &spec).mean,
        1 => measure_performance(Organization::Ideal, wl, &spec).mean,
        _ => {
            measure_pra_with(
                ControlConfig {
                    max_lag: LAGS[i - 2],
                    ..ControlConfig::default()
                },
                wl,
                &spec,
            )
            .mean
        }
    });
    let (mesh, ideal) = (perfs[0], perfs[1]);
    println!("## Max-lag sweep (Media Streaming)\n");
    println!(
        "{:>8} {:>10} {:>10} {:>14}",
        "max_lag", "perf", "vs mesh", "hops covered"
    );
    for (max_lag, p) in LAGS.iter().zip(&perfs[2..]) {
        println!(
            "{:>8} {:>10.2} {:>9.1}% {:>14}",
            max_lag,
            p,
            (p / mesh - 1.0) * 100.0,
            1 + 2 * u32::from(*max_lag).saturating_sub(1)
        );
    }
    println!(
        "\nmesh {:.2}, ideal {:.2} ({:+.1}%); the paper's lag 4 covers 7 hops —",
        mesh,
        ideal,
        (ideal / mesh - 1.0) * 100.0
    );
    println!("beyond the 8x8 mesh's 5.3-hop average, returns flatten.");
}
