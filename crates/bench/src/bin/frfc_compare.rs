//! Related-work comparison: PRA vs flit-reservation flow control.
//!
//! Section VI of the paper argues FRFC "does not support single-cycle
//! multi-hop traversal"; this harness makes the comparison quantitative,
//! at the system level and at zero load (where the crossover with route
//! length is visible: FRFC's constant-lead wave covers arbitrarily long
//! paths at 1 cycle/hop, PRA covers up to its lag budget at 0.5).

use bench::{measure_performance, spec_from_env, Organization};
use noc::config::NocConfig;
use noc::flit::Packet;
use noc::network::Network;
use noc::types::{MessageClass, NodeId, PacketId};
use workloads::WorkloadKind;

fn zero_load(org: Organization, dest: u16, len: u8) -> u64 {
    let cfg = NocConfig::paper();
    let mut net = bench::build_network(org, cfg);
    let class = if len > 1 {
        MessageClass::Response
    } else {
        MessageClass::Request
    };
    let p = Packet::new(PacketId(1), NodeId::new(0), NodeId::new(dest), class, len);
    net.announce(&p, 4);
    for _ in 0..4 {
        net.step();
    }
    let now = net.now();
    net.inject(p.at(now));
    let mut d = Vec::new();
    while net.in_flight() > 0 && net.now() < 2_000 {
        net.step();
        d.extend(net.drain_delivered());
    }
    d[0].delivered - d[0].packet.created
}

fn main() {
    let spec = spec_from_env();
    println!("## PRA vs flit-reservation flow control\n");
    println!("zero-load announced latency (single flit):");
    println!("{:>6} {:>10} {:>10}", "hops", "Mesh+PRA", "Mesh+FRFC");
    for (dest, hops) in [(2u16, 2), (4, 4), (7, 7), (27, 6), (63, 14)] {
        println!(
            "{:>6} {:>10} {:>10}",
            hops,
            zero_load(Organization::MeshPra, dest, 1),
            zero_load(Organization::Frfc, dest, 1)
        );
    }
    println!("\nsystem performance (normalized to mesh):");
    println!("{:<16}{:>10}{:>12}", "Workload", "Mesh+PRA", "Mesh+FRFC");
    for wl in [
        WorkloadKind::MediaStreaming,
        WorkloadKind::WebSearch,
        WorkloadKind::DataServing,
    ] {
        let mesh = measure_performance(Organization::Mesh, wl, &spec).mean;
        let pra = measure_performance(Organization::MeshPra, wl, &spec).mean;
        let frfc = measure_performance(Organization::Frfc, wl, &spec).mean;
        println!("{:<16}{:>9.3} {:>11.3}", wl.name(), pra / mesh, frfc / mesh);
    }
    println!("\nFRFC's constant-lead wave wins on long zero-load paths, and cuts");
    println!("request latency sharply — but its whole-route, per-packet slot");
    println!("windows serialize competing multi-flit responses, so the system-");
    println!("level gain nets out near zero. PRA's bounded multi-hop windows");
    println!("deliver instead: the quantitative form of the paper's Section VI");
    println!("argument for not building on flit-reservation flow control.");
}
