//! Section V.E: power analysis — NOC power vs core power.

use bench::{build_network, spec_from_env, Organization};
use noc::network::Network;
use sysmodel::{System, SystemParams};
use techmodel::{ChipModel, NocPower};
use workloads::WorkloadKind;

fn main() {
    let spec = spec_from_env();
    let params = SystemParams::paper();
    let chip = ChipModel::paper();
    println!("## Section V.E — power analysis (Web Search)\n");
    println!(
        "{:<10}{:>10}{:>12}{:>12}{:>12}{:>10}",
        "Org", "links W", "buffers W", "xbar W", "leakage W", "total W"
    );
    for org in [
        Organization::Mesh,
        Organization::Smart,
        Organization::MeshPra,
    ] {
        let net = build_network(org, params.noc.clone());
        let mut sys = System::new(params.clone(), net, WorkloadKind::WebSearch, 1);
        sys.measure(spec.warmup_cycles, spec.measure_cycles);
        let p = NocPower::from_activity(&params.noc, sys.network().stats(), 2.0);
        println!(
            "{:<10}{:>10.3}{:>12.3}{:>12.3}{:>12.3}{:>10.3}",
            org.name(),
            p.links_w,
            p.buffers_w,
            p.crossbar_w,
            p.leakage_w,
            p.total_w()
        );
    }
    println!(
        "\ncores: {:.1} W, LLC: {:.1} W — paper: NOC below 2 W, cores above 60 W",
        chip.cores_power_w(),
        chip.llc_power_w()
    );
}
