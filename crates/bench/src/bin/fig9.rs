//! Figure 9: performance density (performance per mm²), normalized to
//! the mesh. The ideal network is idealistically booked at mesh area.
//! The (workload, organisation) points run in parallel on the runner
//! pool.

use bench::{measure_performance, run_grid, spec_from_env, Organization};
use nistats::geometric_mean;
use noc::config::NocConfig;
use techmodel::{performance_density, NocAreaBreakdown, NocOrganization};
use workloads::WorkloadKind;

fn main() {
    let spec = spec_from_env();
    let cfg = NocConfig::paper();
    let areas = [
        NocAreaBreakdown::compute(NocOrganization::Mesh, &cfg).total_mm2(),
        NocAreaBreakdown::compute(NocOrganization::Smart, &cfg).total_mm2(),
        NocAreaBreakdown::compute(NocOrganization::MeshPra, &cfg).total_mm2(),
        NocAreaBreakdown::compute(NocOrganization::Mesh, &cfg).total_mm2(), // ideal at mesh area
    ];
    let orgs = Organization::ALL;
    let perfs = run_grid(WorkloadKind::ALL.len() * orgs.len(), |i| {
        measure_performance(
            orgs[i % orgs.len()],
            WorkloadKind::ALL[i / orgs.len()],
            &spec,
        )
        .mean
    });
    println!("## Figure 9 — performance density (normalized to Mesh)\n");
    println!(
        "{:<16}{:>10}{:>10}{:>10}{:>10}",
        "Workload", "Mesh", "SMART", "Mesh+PRA", "Ideal"
    );
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (w, wl) in WorkloadKind::ALL.iter().enumerate() {
        let dens: Vec<f64> = areas
            .iter()
            .enumerate()
            .map(|(o, area)| performance_density(perfs[w * orgs.len() + o], *area))
            .collect();
        print!("{:<16}", wl.name());
        for (i, d) in dens.iter().enumerate() {
            let r = d / dens[0];
            ratios[i].push(r);
            print!("{:>10.3}", r);
        }
        println!();
    }
    print!("{:<16}", "GMean");
    for r in &ratios {
        print!("{:>10.3}", geometric_mean(r));
    }
    println!();
    println!("\npaper: Mesh+PRA +14% vs Mesh, +12% vs SMART, −5% vs Ideal");
}
