//! Section V.B: control packets per data packet and the
//! reservation-blocking (resource underutilisation) fraction.

use bench::{measure_pra_detail, spec_from_env};
use workloads::WorkloadKind;

fn main() {
    let spec = spec_from_env();
    println!("## Section V.B — why is PRA effective?\n");
    println!(
        "{:<16}{:>12}{:>14}{:>16}{:>14}",
        "Workload", "ctrl/data", "prealloc-hops", "blocked-frac", "wasted-frac"
    );
    for wl in WorkloadKind::ALL {
        let (_, pra, net) = measure_pra_detail(wl, &spec);
        let data = net.delivered();
        println!(
            "{:<16}{:>12.2}{:>14.2}{:>15.4}%{:>13.2}%",
            wl.name(),
            pra.controls_per_data_packet(data),
            pra.hops_preallocated as f64 / data.max(1) as f64,
            net.reservation_blocking_fraction() * 100.0,
            net.wasted_reservations as f64 / net.reserved_moves.max(1) as f64 * 100.0
        );
    }
    println!("\npaper: 1.60–1.89 control packets per data packet;");
    println!("       ≈0.01% of end-to-end latency blocked by reservations");
}
