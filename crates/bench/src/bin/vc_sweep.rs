//! Buffer-depth sweep: how VC depth interacts with PRA's whole-packet
//! buffer reservation rule.
//!
//! The paper fixes 5 flits/VC ("the minimum needed to cover the
//! round-trip credit time"); since PRA reserves a full packet at each
//! provisional landing, VC depth == packet length makes the reservation
//! demand an *empty* buffer. Deeper VCs relax that, shallower ones break
//! it (the builder rejects depth < packet length).

use bench::{build_network, Organization};
use noc::config::NocConfigBuilder;
use noc::traffic::{measure_latency, Pattern, TrafficGen};

fn main() {
    println!("## VC-depth sweep (uniform @0.03, 50% responses)\n");
    println!(
        "{:>6} {:>8} {:>9} {:>9}",
        "depth", "Mesh", "Mesh+PRA", "Ideal"
    );
    for depth in [5u8, 6, 8, 10] {
        let cfg = NocConfigBuilder::new()
            .vc_depth(depth)
            .build()
            .expect("valid config");
        let mut row = Vec::new();
        for org in [
            Organization::Mesh,
            Organization::MeshPra,
            Organization::Ideal,
        ] {
            let mut net = build_network(org, cfg.clone());
            let mut gen = TrafficGen::new(cfg.clone(), Pattern::UniformRandom, 0.03, 11)
                .response_fraction(0.5);
            row.push(measure_latency(&mut net, &mut gen, 1_000, 4_000));
        }
        println!(
            "{:>6} {:>8.1} {:>9.1} {:>9.1}",
            depth, row[0], row[1], row[2]
        );
    }
    println!("\n(PRA here runs without announcements — LSD only — so the gap");
    println!("to the mesh shows pure in-network-blocking recovery.)");
}
