//! Buffer-depth sweep: how VC depth interacts with PRA's whole-packet
//! buffer reservation rule.
//!
//! The paper fixes 5 flits/VC ("the minimum needed to cover the
//! round-trip credit time"); since PRA reserves a full packet at each
//! provisional landing, VC depth == packet length makes the reservation
//! demand an *empty* buffer. Deeper VCs relax that, shallower ones break
//! it (the builder rejects depth < packet length). Points run in
//! parallel on the runner pool.

use bench::{build_network, run_grid_budgeted, Organization};
use noc::config::NocConfigBuilder;
use noc::network::Network as _;
use noc::traffic::{measure_latency, Pattern, TrafficGen};

const DEPTHS: [u8; 4] = [5, 6, 8, 10];
const ORGS: [Organization; 3] = [
    Organization::Mesh,
    Organization::MeshPra,
    Organization::Ideal,
];

fn main() {
    let lat = run_grid_budgeted(DEPTHS.len() * ORGS.len(), |i, token| {
        let (depth, org) = (DEPTHS[i / ORGS.len()], ORGS[i % ORGS.len()]);
        let cfg = NocConfigBuilder::new()
            .vc_depth(depth)
            .build()
            .expect("valid config");
        let mut net = build_network(org, cfg.clone());
        net.install_cancel(token);
        let mut gen = TrafficGen::new(cfg, Pattern::UniformRandom, 0.03, 11).response_fraction(0.5);
        measure_latency(&mut net, &mut gen, 1_000, 4_000)
    });
    println!("## VC-depth sweep (uniform @0.03, 50% responses)\n");
    println!(
        "{:>6} {:>8} {:>9} {:>9}",
        "depth", "Mesh", "Mesh+PRA", "Ideal"
    );
    for (d, depth) in DEPTHS.iter().enumerate() {
        let row = &lat[d * ORGS.len()..(d + 1) * ORGS.len()];
        println!(
            "{:>6} {:>8.1} {:>9.1} {:>9.1}",
            depth, row[0], row[1], row[2]
        );
    }
    println!("\n(PRA here runs without announcements — LSD only — so the gap");
    println!("to the mesh shows pure in-network-blocking recovery.)");
}
