//! Experiment: how the Mesh / Mesh+PRA / Ideal performance gaps react to
//! traffic intensity (miss-rate scaling) — a calibration aid, not a paper
//! figure. Points run in parallel on the runner pool (`NOC_THREADS`);
//! the rows are byte-identical to the old serial loop.

use bench::{build_network, run_grid_budgeted, Organization};
use noc::network::Network as _;
use sysmodel::{System, SystemParams};
use workloads::{WorkloadKind, WorkloadProfileBuilder};

const SCALES: [f64; 5] = [0.4, 0.6, 0.8, 1.0, 1.5];
const ORGS: [Organization; 3] = [
    Organization::Mesh,
    Organization::MeshPra,
    Organization::Ideal,
];

fn main() {
    let params = SystemParams::paper();
    let perfs = run_grid_budgeted(SCALES.len() * ORGS.len(), |i, token| {
        let (scale, org) = (SCALES[i / ORGS.len()], ORGS[i % ORGS.len()]);
        let profile = WorkloadProfileBuilder::from(WorkloadKind::MediaStreaming)
            .scale_misses(scale)
            .build();
        let mut net = build_network(org, params.noc.clone());
        net.install_cancel(token);
        let mut sys = System::with_profile(params.clone(), net, profile, 1);
        sys.measure(5_000, 15_000)
    });
    for (s, scale) in SCALES.iter().enumerate() {
        let row = &perfs[s * ORGS.len()..(s + 1) * ORGS.len()];
        println!(
            "scale {:.1}: mesh {:.2} pra {:.2} ({:+.1}%) ideal {:.2} ({:+.1}%)  pra captures {:.0}% of ideal gain",
            scale,
            row[0],
            row[1],
            (row[1] / row[0] - 1.0) * 100.0,
            row[2],
            (row[2] / row[0] - 1.0) * 100.0,
            (row[1] - row[0]) / (row[2] - row[0]) * 100.0
        );
    }
}
