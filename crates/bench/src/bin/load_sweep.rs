//! Experiment: how the Mesh / Mesh+PRA / Ideal performance gaps react to
//! traffic intensity (miss-rate scaling) — a calibration aid, not a paper
//! figure.

use bench::{build_network, Organization};
use sysmodel::{System, SystemParams};
use workloads::{WorkloadKind, WorkloadProfileBuilder};

fn main() {
    let params = SystemParams::paper();
    for scale in [0.4, 0.6, 0.8, 1.0, 1.5] {
        let profile = WorkloadProfileBuilder::from(WorkloadKind::MediaStreaming)
            .scale_misses(scale)
            .build();
        let mut perfs = Vec::new();
        for org in [
            Organization::Mesh,
            Organization::MeshPra,
            Organization::Ideal,
        ] {
            let net = build_network(org, params.noc.clone());
            let mut sys = System::with_profile(params.clone(), net, profile, 1);
            perfs.push(sys.measure(5_000, 15_000));
        }
        println!(
            "scale {:.1}: mesh {:.2} pra {:.2} ({:+.1}%) ideal {:.2} ({:+.1}%)  pra captures {:.0}% of ideal gain",
            scale,
            perfs[0],
            perfs[1],
            (perfs[1] / perfs[0] - 1.0) * 100.0,
            perfs[2],
            (perfs[2] / perfs[0] - 1.0) * 100.0,
            (perfs[1] - perfs[0]) / (perfs[2] - perfs[0]) * 100.0
        );
    }
}
