//! Ablation: hops-per-cycle (the paper's wire-budget argument).
//!
//! Section II-C argues SMART shines in SoCs (lean tiles, modest clocks →
//! ~8 tiles/cycle) but not in servers (fat tiles, 2 GHz → 2 tiles/cycle).
//! This sweep varies the single-cycle multi-hop ceiling and reports the
//! average packet latency of every organisation under LLC-like traffic,
//! plus the zero-load crossover the argument rests on.

use bench::{build_network, Organization};
use noc::config::NocConfigBuilder;
use noc::traffic::{measure_latency, Pattern, TrafficGen};
use noc::types::NodeId;
use noc::zeroload::{ideal_latency, mesh_latency, smart_latency};
use techmodel::wire::WireModel;

fn main() {
    let wire = WireModel::paper();
    println!("## Hops-per-cycle sweep (uniform LLC-like traffic @0.02)\n");
    println!(
        "wire reach at 2 GHz: {:.1} mm  (server tile ≈ 1.8 mm → hpc 2)",
        wire.reach_mm_per_cycle(2.0)
    );
    println!(
        "wire reach at 1 GHz: {:.1} mm  (SoC tile ≈ 1.0 mm → hpc 8+)\n",
        wire.reach_mm_per_cycle(1.0)
    );
    println!(
        "{:>4} {:>8} {:>8} {:>9} {:>8}   zero-load corner-to-corner (mesh/smart/ideal)",
        "hpc", "Mesh", "SMART", "Mesh+PRA", "Ideal"
    );
    for hpc in [1u8, 2, 3, 4] {
        let cfg = NocConfigBuilder::new()
            .max_hops_per_cycle(hpc)
            .build()
            .expect("valid config");
        let mut row = Vec::new();
        for org in Organization::ALL {
            let mut net = build_network(org, cfg.clone());
            let mut gen =
                TrafficGen::new(cfg.clone(), Pattern::CoreToLlc, 0.02, 5).response_fraction(0.5);
            row.push(measure_latency(&mut net, &mut gen, 1_000, 4_000));
        }
        let (s, d) = (NodeId::new(0), NodeId::new(63));
        println!(
            "{:>4} {:>8.1} {:>8.1} {:>9.1} {:>8.1}   {}/{}/{}",
            hpc,
            row[0],
            row[1],
            row[2],
            row[3],
            mesh_latency(&cfg, s, d, 1),
            smart_latency(&cfg, s, d, 1),
            ideal_latency(&cfg, s, d, 1),
        );
    }
    println!("\nAt hpc 1 SMART degenerates to a slower mesh (setup stage, no");
    println!("bypass); the gap SMART closes grows with the wire budget, which");
    println!("is exactly why the paper needs PRA at server-class hpc 2.");
}
