//! Ablation: hops-per-cycle (the paper's wire-budget argument).
//!
//! Section II-C argues SMART shines in SoCs (lean tiles, modest clocks →
//! ~8 tiles/cycle) but not in servers (fat tiles, 2 GHz → 2 tiles/cycle).
//! This sweep varies the single-cycle multi-hop ceiling and reports the
//! average packet latency of every organisation under LLC-like traffic,
//! plus the zero-load crossover the argument rests on. Points run in
//! parallel on the runner pool.

use bench::{build_network, run_grid_budgeted, Organization};
use noc::config::NocConfigBuilder;
use noc::network::Network as _;
use noc::traffic::{measure_latency, Pattern, TrafficGen};
use noc::types::NodeId;
use noc::zeroload::{ideal_latency, mesh_latency, smart_latency};
use techmodel::wire::WireModel;

const HPCS: [u8; 4] = [1, 2, 3, 4];

fn main() {
    let wire = WireModel::paper();
    let orgs = Organization::ALL;
    let lat = run_grid_budgeted(HPCS.len() * orgs.len(), |i, token| {
        let (hpc, org) = (HPCS[i / orgs.len()], orgs[i % orgs.len()]);
        let cfg = NocConfigBuilder::new()
            .max_hops_per_cycle(hpc)
            .build()
            .expect("valid config");
        let mut net = build_network(org, cfg.clone());
        net.install_cancel(token);
        let mut gen = TrafficGen::new(cfg, Pattern::CoreToLlc, 0.02, 5).response_fraction(0.5);
        measure_latency(&mut net, &mut gen, 1_000, 4_000)
    });
    println!("## Hops-per-cycle sweep (uniform LLC-like traffic @0.02)\n");
    println!(
        "wire reach at 2 GHz: {:.1} mm  (server tile ≈ 1.8 mm → hpc 2)",
        wire.reach_mm_per_cycle(2.0)
    );
    println!(
        "wire reach at 1 GHz: {:.1} mm  (SoC tile ≈ 1.0 mm → hpc 8+)\n",
        wire.reach_mm_per_cycle(1.0)
    );
    println!(
        "{:>4} {:>8} {:>8} {:>9} {:>8}   zero-load corner-to-corner (mesh/smart/ideal)",
        "hpc", "Mesh", "SMART", "Mesh+PRA", "Ideal"
    );
    for (h, hpc) in HPCS.iter().enumerate() {
        let cfg = NocConfigBuilder::new()
            .max_hops_per_cycle(*hpc)
            .build()
            .expect("valid config");
        let row = &lat[h * orgs.len()..(h + 1) * orgs.len()];
        let (s, d) = (NodeId::new(0), NodeId::new(63));
        println!(
            "{:>4} {:>8.1} {:>8.1} {:>9.1} {:>8.1}   {}/{}/{}",
            hpc,
            row[0],
            row[1],
            row[2],
            row[3],
            mesh_latency(&cfg, s, d, 1),
            smart_latency(&cfg, s, d, 1),
            ideal_latency(&cfg, s, d, 1),
        );
    }
    println!("\nAt hpc 1 SMART degenerates to a slower mesh (setup stage, no");
    println!("bypass); the gap SMART closes grows with the wire budget, which");
    println!("is exactly why the paper needs PRA at server-class hpc 2.");
}
