//! Figure 6: system performance of Mesh, SMART, Mesh+PRA and Ideal over
//! the six CloudSuite workloads, normalized to the mesh. The 24
//! (workload, organisation) points run in parallel on the runner pool.

use bench::{
    format_normalized_table, measure_performance, run_grid, spec_from_env, FigureResults,
    Organization,
};
use workloads::WorkloadKind;

fn main() {
    let spec = spec_from_env();
    eprintln!(
        "fig6: warmup {} / measure {} / {} samples",
        spec.warmup_cycles, spec.measure_cycles, spec.samples
    );
    let orgs = Organization::ALL;
    let summaries = run_grid(WorkloadKind::ALL.len() * orgs.len(), |i| {
        measure_performance(
            orgs[i % orgs.len()],
            WorkloadKind::ALL[i / orgs.len()],
            &spec,
        )
    });
    let mut raw = Vec::new();
    for (w, workload) in WorkloadKind::ALL.iter().enumerate() {
        let mut row = Vec::new();
        for (o, org) in orgs.iter().enumerate() {
            let s = &summaries[w * orgs.len() + o];
            eprintln!(
                "  {:<16} {:<9} perf {:>7.2} ± {:.2}",
                workload.name(),
                org.name(),
                s.mean,
                s.ci95
            );
            row.push(s.mean);
        }
        raw.push(row);
    }
    println!(
        "{}",
        format_normalized_table(
            "Figure 6 — system performance (normalized to Mesh)",
            &WorkloadKind::ALL,
            &orgs,
            &raw
        )
    );
    FigureResults {
        figure: "fig6".into(),
        rows: WorkloadKind::ALL.iter().map(|w| w.name().into()).collect(),
        columns: orgs.iter().map(|o| o.name().into()).collect(),
        values: raw,
    }
    .write_if_requested();
}
