//! Figure 6: system performance of Mesh, SMART, Mesh+PRA and Ideal over
//! the six CloudSuite workloads, normalized to the mesh.

use bench::{
    format_normalized_table, measure_performance, spec_from_env, FigureResults, Organization,
};
use workloads::WorkloadKind;

fn main() {
    let spec = spec_from_env();
    eprintln!(
        "fig6: warmup {} / measure {} / {} samples",
        spec.warmup_cycles, spec.measure_cycles, spec.samples
    );
    let mut raw = Vec::new();
    for workload in WorkloadKind::ALL {
        let mut row = Vec::new();
        for org in Organization::ALL {
            let s = measure_performance(org, workload, &spec);
            eprintln!(
                "  {:<16} {:<9} perf {:>7.2} ± {:.2}",
                workload.name(),
                org.name(),
                s.mean,
                s.ci95
            );
            row.push(s.mean);
        }
        raw.push(row);
    }
    println!(
        "{}",
        format_normalized_table(
            "Figure 6 — system performance (normalized to Mesh)",
            &WorkloadKind::ALL,
            &Organization::ALL,
            &raw
        )
    );
    FigureResults {
        figure: "fig6".into(),
        rows: WorkloadKind::ALL.iter().map(|w| w.name().into()).collect(),
        columns: Organization::ALL.iter().map(|o| o.name().into()).collect(),
        values: raw,
    }
    .write_if_requested();
}
