//! Tail latency of NoC packets per organisation — the QoS lens.
//!
//! The paper's whole motivation is QoS-constrained server workloads
//! ("latency requirements as part of their service-level agreement").
//! Mean speedups understate what PRA does for the tail: a reactive mesh's
//! p99 packet latency includes every unlucky arbitration loss, while
//! pre-allocated paths are contention-immune by construction.

use bench::{build_network, Organization};
use noc::network::Network;
use noc::types::MessageClass;
use sysmodel::{System, SystemParams};
use workloads::WorkloadKind;

fn main() {
    let params = SystemParams::paper();
    println!("## NoC packet latency distribution (Web Search, 20k cycles)\n");
    println!(
        "{:<12}{:>8}{:>8}{:>8}{:>8}{:>10}{:>10}",
        "Org", "mean", "p50", "p95", "p99", "resp-mean", "max"
    );
    for org in [
        Organization::Mesh,
        Organization::Smart,
        Organization::MeshPra,
        Organization::Frfc,
        Organization::Ideal,
    ] {
        let net = build_network(org, params.noc.clone());
        let mut sys = System::new(params.clone(), net, WorkloadKind::WebSearch, 1);
        sys.run(20_000);
        let s = sys.network().stats();
        println!(
            "{:<12}{:>8.1}{:>8}{:>8}{:>8}{:>10.1}{:>10}",
            org.name(),
            s.avg_latency(),
            s.latency_percentile(0.50).unwrap_or(0),
            s.latency_percentile(0.95).unwrap_or(0),
            s.latency_percentile(0.99).unwrap_or(0),
            s.avg_latency_of(MessageClass::Response),
            s.max_latency,
        );
    }
    println!("\nPRA halves the median (a reserved path cannot lose an arbitration");
    println!("it never enters) while its p99 stays mesh-like — the tail is the");
    println!("packets whose control packets were dropped. FRFC's whole-route");
    println!("slot windows actively lengthen the response tail.");
}
