//! Diagnostic: PRA control-plane effectiveness in the full system.

use noc::network::Network;
use pra::network::PraNetwork;
use sysmodel::{System, SystemParams};
use workloads::WorkloadKind;

fn main() {
    let params = SystemParams::paper();
    let scale: f64 = std::env::var("SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    {
        let wl = WorkloadKind::MediaStreaming;
        let mut profile = wl.profile();
        profile.i_mpki *= scale;
        profile.d_mpki *= scale;
        let net = PraNetwork::new(params.noc.clone());
        let mut sys = System::with_profile(params.clone(), net, profile, 1);
        let perf = sys.measure(5_000, 15_000);
        let net = sys.into_network();
        let ps = net.pra_stats();
        let ns = net.stats();
        let delivered = ns.delivered();
        let responses = ns.packets_delivered[2];
        println!("== {} perf {:.2}", wl.name(), perf);
        println!(
            "  packets delivered {} (responses {})",
            delivered, responses
        );
        println!(
            "  avg latency {:.1} (queue {:.1}) hops {:.1} | req {:.1} resp {:.1}",
            ns.avg_latency(),
            ns.avg_queue_latency(),
            ns.avg_hops(),
            ns.avg_latency_of(noc::types::MessageClass::Request),
            ns.avg_latency_of(noc::types::MessageClass::Response)
        );
        println!(
            "  ctrl injected: llc {} lsd {} refused_ni {}",
            ps.injected_llc, ps.injected_lsd, ps.refused_at_ni
        );
        println!(
            "  ctrl/data = {:.2}",
            ps.controls_per_data_packet(delivered)
        );
        println!(
            "  drops by reason [compl, lag, alloc, conflict, ni]: {:?}",
            ps.drops_by_reason
        );
        println!("  lag at drop: {:?}", &ps.lag_at_drop[..5]);
        println!(
            "  hops preallocated {} segments {}",
            ps.hops_preallocated, ps.segments_processed
        );
        println!(
            "  alloc fail kinds [slot, committed, nobuf, latch, conv, caughtup]: {:?}",
            ps.alloc_fail_kinds
        );
        println!(
            "  reserved moves {} wasted {} blockedcycles {}",
            ns.reserved_moves, ns.wasted_reservations, ns.blocked_by_reservation_cycles
        );
    }
    // Compare against mesh and ideal latencies for scale
    for wl in [WorkloadKind::MediaStreaming] {
        let mut profile = wl.profile();
        profile.i_mpki *= scale;
        profile.d_mpki *= scale;
        for (name, mut sys) in [
            (
                "mesh",
                System::with_profile(
                    params.clone(),
                    bench::build_network(bench::Organization::Mesh, params.noc.clone()),
                    profile,
                    1,
                ),
            ),
            (
                "ideal",
                System::with_profile(
                    params.clone(),
                    bench::build_network(bench::Organization::Ideal, params.noc.clone()),
                    profile,
                    1,
                ),
            ),
        ] {
            let perf = sys.measure(5_000, 15_000);
            let ns = sys.network().stats();
            println!(
                "{}: perf {:.2} avg latency {:.1} | req {:.1} resp {:.1}",
                name,
                perf,
                ns.avg_latency(),
                ns.avg_latency_of(noc::types::MessageClass::Request),
                ns.avg_latency_of(noc::types::MessageClass::Response)
            );
        }
    }
}
