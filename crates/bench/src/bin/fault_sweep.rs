//! Experiment: fault-rate × load degradation sweep (robustness study, not
//! a paper figure).
//!
//! For each transient link-fault rate and offered load, runs Mesh and
//! Mesh+PRA under uniform-random traffic with the invariant watchdog
//! observing every audit interval, then reports throughput, mean latency
//! and the watchdog verdict. The contract under test: faults degrade
//! latency, never correctness — any invariant violation or delivered-flit
//! conservation mismatch makes the binary exit non-zero.

use noc::config::{NocConfig, NocConfigBuilder};
use noc::faults::FaultPlan;
use noc::network::Network;
use noc::traffic::{Pattern, TrafficGen};
use noc::watchdog::Watchdog;

use bench::{build_network, run_grid_budgeted, Organization};

const WARMUP: u64 = 1_000;
const MEASURE: u64 = 5_000;
const DRAIN_BUDGET: u64 = 100_000;

/// One sweep point's results.
struct Point {
    delivered: u64,
    injected: u64,
    lost: u64,
    mean_latency: f64,
    violations: usize,
    conserved: bool,
    drained: bool,
}

fn config_with(ppb: u32) -> NocConfig {
    let mut b = NocConfigBuilder::new();
    if ppb > 0 {
        b = b.faults(FaultPlan::new(0xFA17).transient_rate_ppb(ppb));
    }
    b.build().expect("paper config with faults is valid")
}

fn run_point(org: Organization, ppb: u32, load: f64, token: noc::cancel::CancelToken) -> Point {
    let cfg = config_with(ppb);
    let mut net = build_network(org, cfg.clone());
    net.install_cancel(token);
    let mut gen = TrafficGen::new(cfg, Pattern::UniformRandom, load, 42);
    let mut wd = Watchdog::default();

    let observe = |net: &dyn Network, wd: &mut Watchdog| {
        if wd.due(net.now()) {
            if let Some(report) = net.audit() {
                wd.observe(&report);
            }
        }
    };

    let mut total_latency = 0u64;
    let mut measured = 0u64;
    for cycle in 0..WARMUP + MEASURE {
        gen.tick(&mut net);
        net.step();
        observe(&net, &mut wd);
        for d in net.drain_delivered() {
            if cycle >= WARMUP {
                total_latency += d.delivered - d.packet.created;
                measured += 1;
            }
        }
    }
    gen.stop();
    let deadline = net.now() + DRAIN_BUDGET;
    while net.in_flight() > 0 && net.now() < deadline {
        net.step();
        observe(&net, &mut wd);
        net.drain_delivered();
    }

    let lost = net.audit().map_or(0, |r| r.lost_packets);
    let injected = net.stats().injected();
    let delivered = net.stats().delivered();
    Point {
        delivered,
        injected,
        lost,
        mean_latency: if measured == 0 {
            0.0
        } else {
            total_latency as f64 / measured as f64
        },
        violations: wd.violations().len(),
        conserved: delivered + lost == injected,
        drained: net.in_flight() == 0,
    }
}

fn main() {
    // ppb = parts-per-billion per link per cycle: 100_000 ≈ 1e-4/cycle.
    let rates: [(u32, &str); 4] = [
        (0, "0"),
        (10_000, "1e-5"),
        (100_000, "1e-4"),
        (1_000_000, "1e-3"),
    ];
    let loads = [0.02, 0.05, 0.10];
    let orgs = [Organization::Mesh, Organization::MeshPra];

    // Expand the grid in print order, run every point on the pool, then
    // report the reassembled rows — identical to the old serial loop.
    let mut grid: Vec<(Organization, u32, &str, f64)> = Vec::new();
    for &org in &orgs {
        for &(ppb, rate) in &rates {
            for &load in &loads {
                grid.push((org, ppb, rate, load));
            }
        }
    }
    let points = run_grid_budgeted(grid.len(), |i, token| {
        let (org, ppb, _, load) = grid[i];
        run_point(org, ppb, load, token)
    });

    println!("## Latency/throughput degradation under transient link faults\n");
    println!(
        "{:<10}{:>8}{:>7}{:>10}{:>10}{:>8}{:>10}{:>6}{:>10}",
        "Org", "Rate", "Load", "Injected", "Delivered", "Lost", "Latency", "Viol", "Conserved"
    );
    let mut failures = 0u32;
    for ((org, _, rate, load), p) in grid.iter().zip(&points) {
        let ok = p.violations == 0 && p.conserved && p.drained;
        println!(
            "{:<10}{:>8}{:>7.2}{:>10}{:>10}{:>8}{:>10.2}{:>6}{:>10}",
            org.name(),
            rate,
            load,
            p.injected,
            p.delivered,
            p.lost,
            p.mean_latency,
            p.violations,
            if ok { "yes" } else { "NO" }
        );
        if !ok {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("\n{failures} sweep point(s) violated invariants");
        std::process::exit(1);
    }
    println!("\nAll sweep points conserved flits with zero invariant violations.");
}
