//! Zero-load latency of announced packets on Mesh+PRA vs mesh/ideal.

use noc::config::NocConfig;
use noc::flit::Packet;
use noc::network::Network;
use noc::types::{MessageClass, NodeId, PacketId};
use pra::network::PraNetwork;

fn run(dest: u16, class: MessageClass, len: u8) -> (u64, u64) {
    let cfg = NocConfig::paper();
    let mut net = PraNetwork::new(cfg.clone());
    let p = Packet::new(PacketId(1), NodeId::new(0), NodeId::new(dest), class, len);
    net.announce(&p, 4);
    for _ in 0..4 {
        net.step();
    }
    let p = p.at(net.now());
    net.inject(p);
    let d = net.run_to_drain(500);
    let lat = d[0].delivered - d[0].packet.created;
    let wasted = net.mesh().stats().wasted_reservations;
    (lat, wasted)
}

fn main() {
    let cfg = NocConfig::paper();
    for (dest, hops) in [(2u16, 2u32), (5, 5), (7, 7), (18, 4), (63, 14)] {
        let (rq, w1) = run(dest, MessageClass::Request, 1);
        let (rs, w2) = run(dest, MessageClass::Response, 5);
        println!(
            "hops {:>2}: pra req {:>2} (ideal {:>2}, mesh {:>2})  pra resp {:>2} (ideal {:>2}, mesh {:>2})  waste {}/{}",
            hops,
            rq,
            noc::zeroload::ideal_latency(&cfg, NodeId::new(0), NodeId::new(dest), 1),
            noc::zeroload::mesh_latency(&cfg, NodeId::new(0), NodeId::new(dest), 1),
            rs,
            noc::zeroload::ideal_latency(&cfg, NodeId::new(0), NodeId::new(dest), 5),
            noc::zeroload::mesh_latency(&cfg, NodeId::new(0), NodeId::new(dest), 5),
            w1, w2
        );
    }
}
