//! Diagnostic: FRFC control-plane effectiveness in the full system
//! (companion to `pra_diag`).

use noc::network::Network;
use pra::frfc::FrfcNetwork;
use sysmodel::{System, SystemParams};
use workloads::WorkloadKind;

fn main() {
    let params = SystemParams::paper();
    let net = FrfcNetwork::new(params.noc.clone());
    let mut sys = System::new(params, net, WorkloadKind::MediaStreaming, 1);
    let perf = sys.measure(5_000, 15_000);
    let net = sys.into_network();
    let fs = net.frfc_stats();
    let ns = net.stats();
    println!("perf {:.2}", perf);
    println!(
        "latency {:.1} | req {:.1} resp {:.1}",
        ns.avg_latency(),
        ns.avg_latency_of(noc::types::MessageClass::Request),
        ns.avg_latency_of(noc::types::MessageClass::Response)
    );
    println!(
        "waves injected {} refused {} hops preallocated {}",
        fs.injected(),
        fs.refused_at_ni,
        fs.hops_preallocated
    );
    println!(
        "drops [compl, lag, alloc, conflict, ni]: {:?}",
        fs.drops_by_reason
    );
    println!(
        "reserved moves {} wasted {} blocked {}",
        ns.reserved_moves, ns.wasted_reservations, ns.blocked_by_reservation_cycles
    );
    println!("delivered {}", ns.delivered());
}
