//! Figure 8: NOC area breakdown (links / buffers / crossbars).

use noc::config::NocConfig;
use techmodel::{NocAreaBreakdown, NocOrganization};

fn main() {
    let cfg = NocConfig::paper();
    println!("## Figure 8 — NOC area breakdown (mm²)\n");
    println!(
        "{:<10}{:>8}{:>9}{:>10}{:>8}",
        "Org", "Links", "Buffers", "Crossbar", "Total"
    );
    for org in NocOrganization::ALL {
        let b = NocAreaBreakdown::compute(org, &cfg);
        println!(
            "{:<10}{:>8.2}{:>9.2}{:>10.2}{:>8.2}",
            org.name(),
            b.links_mm2,
            b.buffers_mm2,
            b.crossbar_mm2,
            b.total_mm2()
        );
    }
    println!("\npaper: Mesh 3.5 mm², SMART 4.5 mm² (+31%), Mesh+PRA 4.9 mm² (+40%)");
}
