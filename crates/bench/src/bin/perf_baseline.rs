//! `perf_baseline` — the performance-baseline pipeline.
//!
//! Runs the standard baseline-mesh and Mesh+PRA configurations under
//! uniform-random synthetic traffic, derives exact p50/p95/p99 packet
//! latency (from the `niobs` metrics registry) and simulator throughput
//! (simulated cycles per wall-clock second), and emits a machine-readable
//! `BENCH_pra.json`. Built with the `obs` feature (the default) it also
//! exports a Chrome/Perfetto `trace_event` JSON of the PRA run.
//!
//! ```sh
//! perf_baseline                         # paper-size run, BENCH_pra.json
//! perf_baseline --cycles 3000 --out /tmp/b.json --trace-out /tmp/t.json
//! perf_baseline --no-trace              # skip the trace export
//! ```

use std::time::Instant;

use bench::gate::Throughputs;
use bench::{with_network, NetVisitor, Organization};
use niobs::MetricsRegistry;
use nistats::Json;
use noc::config::{NocConfig, NocConfigBuilder};
use noc::network::Network;
use noc::traffic::{Pattern, TrafficGen};

#[derive(Debug)]
struct Options {
    warmup: u64,
    cycles: u64,
    rate: f64,
    radix: u16,
    seed: u64,
    include_warmup: bool,
    out: String,
    trace_out: Option<String>,
    gate: Option<String>,
    gate_tolerance: f64,
    gate_floor: f64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            warmup: 2_000,
            cycles: 20_000,
            rate: 0.02,
            radix: 8,
            seed: 1,
            include_warmup: false,
            out: "BENCH_pra.json".to_string(),
            trace_out: Some("pra.trace.json".to_string()),
            gate: None,
            gate_tolerance: 0.25,
            gate_floor: 0.6,
        }
    }
}

const HELP: &str = "\
perf_baseline — packet-latency percentiles + simulator throughput

USAGE: perf_baseline [OPTIONS]

  --warmup N         warm-up cycles                     [2000]
  --cycles N         measured cycles                    [20000]
  --rate F           injection rate, packets/node/cycle [0.02]
  --radix N          mesh radix (NxN)                   [8]
  --seed N           RNG seed                           [1]
  --include-warmup   report cumulative statistics (warm-up
                     included) instead of the default
                     measured window
  --out FILE         result JSON path                   [BENCH_pra.json]
  --trace-out FILE   Chrome trace of the PRA run        [pra.trace.json]
  --no-trace         skip the Chrome-trace export
  --gate FILE        regression gate: compare this run's
                     relative simulator throughput (PRA
                     cycles/sec ÷ mesh cycles/sec) AND each
                     org's absolute cycles/sec against a
                     committed result file; exit 5 when
                     either regresses beyond its tolerance
  --gate-tolerance F allowed relative-throughput regression
                     before --gate fails                [0.25]
  --gate-floor F     absolute floor as a fraction of the
                     committed cycles/sec (0 disables the
                     absolute check)                    [0.6]
  --help             this text
";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            print!("{HELP}");
            std::process::exit(0);
        }
        if flag == "--no-trace" {
            opts.trace_out = None;
            continue;
        }
        if flag == "--include-warmup" {
            opts.include_warmup = true;
            continue;
        }
        let value = args
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--warmup" => opts.warmup = value.parse().map_err(|_| "bad --warmup".to_string())?,
            "--cycles" => opts.cycles = value.parse().map_err(|_| "bad --cycles".to_string())?,
            "--rate" => opts.rate = value.parse().map_err(|_| "bad --rate".to_string())?,
            "--radix" => opts.radix = value.parse().map_err(|_| "bad --radix".to_string())?,
            "--seed" => opts.seed = value.parse().map_err(|_| "bad --seed".to_string())?,
            "--out" => opts.out = value,
            "--trace-out" => opts.trace_out = Some(value),
            "--gate" => opts.gate = Some(value),
            "--gate-tolerance" => {
                opts.gate_tolerance = value
                    .parse()
                    .map_err(|_| "bad --gate-tolerance".to_string())?;
                if !(0.0..1.0).contains(&opts.gate_tolerance) {
                    return Err("--gate-tolerance must be in [0, 1)".to_string());
                }
            }
            "--gate-floor" => {
                opts.gate_floor = value.parse().map_err(|_| "bad --gate-floor".to_string())?;
                if !(0.0..1.0).contains(&opts.gate_floor) {
                    return Err("--gate-floor must be in [0, 1)".to_string());
                }
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    if opts.gate.as_deref() == Some(opts.out.as_str()) {
        return Err(
            "--gate and --out name the same file; the result would overwrite the \
             baseline before the comparison (pick a different --out)"
                .to_string(),
        );
    }
    Ok(opts)
}

/// Extracts `cycles_per_sec` for the named organisation from a
/// `BENCH_pra.json`-shaped document.
fn cycles_per_sec_of(doc: &Json, org: &str) -> Option<f64> {
    doc.get("runs")?
        .as_array()?
        .iter()
        .find(|run| run.get("org").and_then(Json::as_str) == Some(org))?
        .get("cycles_per_sec")?
        .as_f64()
}

/// The cycles/sec regression gate: the relative PRA/mesh ratio plus the
/// absolute per-organisation floor (see [`bench::gate`] for why both
/// checks exist). Returns an error message when the gate cannot be
/// evaluated or either check regressed beyond its tolerance.
fn check_gate(
    runs: &[RunResult],
    baseline_path: &str,
    tolerance: f64,
    floor_fraction: f64,
) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {baseline_path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("bad JSON in {baseline_path}: {e}"))?;
    let committed = match (
        cycles_per_sec_of(&doc, "baseline-mesh"),
        cycles_per_sec_of(&doc, "pra"),
    ) {
        (Some(mesh), Some(pra)) => Throughputs { mesh, pra },
        _ => {
            return Err(format!(
                "{baseline_path} has no baseline-mesh/pra cycles_per_sec runs"
            ))
        }
    };
    let mesh = runs.iter().find(|r| r.name == "baseline-mesh");
    let pra = runs.iter().find(|r| r.name == "pra");
    let fresh = match (mesh, pra) {
        (Some(m), Some(p)) => Throughputs {
            mesh: m.cycles_per_sec(),
            pra: p.cycles_per_sec(),
        },
        _ => return Err("this run is missing a baseline-mesh or pra result".to_string()),
    };
    let report = bench::gate::check(committed, fresh, tolerance, floor_fraction)?;
    for line in &report.lines {
        println!("{line}");
    }
    Ok(())
}

/// One measured configuration: the run's latency registry plus wall-clock
/// timing. `window_cycles` is the interval the statistics cover (the
/// measured window by default); `sim_cycles` is everything simulated
/// including warm-up, which is what the wall clock paid for.
struct RunResult {
    name: &'static str,
    metrics: MetricsRegistry,
    delivered: u64,
    window_cycles: u64,
    sim_cycles: u64,
    wall_seconds: f64,
}

impl RunResult {
    fn cycles_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.sim_cycles as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Json {
        let latency = self
            .metrics
            .histogram("packet.latency_cycles")
            .map(niobs::SparseHistogram::to_json)
            .unwrap_or(Json::Null);
        Json::object(vec![
            ("org".to_string(), Json::from(self.name)),
            ("delivered".to_string(), Json::UInt(self.delivered)),
            ("cycles".to_string(), Json::UInt(self.window_cycles)),
            ("sim_cycles".to_string(), Json::UInt(self.sim_cycles)),
            ("latency_cycles".to_string(), latency),
            ("wall_seconds".to_string(), Json::Float(self.wall_seconds)),
            (
                "cycles_per_sec".to_string(),
                Json::Float(self.cycles_per_sec()),
            ),
            (
                "packets_per_cycle".to_string(),
                Json::Float(self.delivered as f64 / self.window_cycles.max(1) as f64),
            ),
        ])
    }
}

/// One organisation's measurement loop, monomorphized per network type
/// (see [`bench::with_network`]) so the cycles/sec being measured is the
/// statically-dispatched driver sweeps actually run.
struct BaselineRun<'a> {
    name: &'static str,
    cfg: &'a NocConfig,
    opts: &'a Options,
    trace_out: Option<&'a str>,
}

impl NetVisitor for BaselineRun<'_> {
    type Out = RunResult;

    fn visit<N: Network>(self, mut net: N) -> RunResult {
        let (name, cfg, opts, trace_out) = (self.name, self.cfg, self.opts, self.trace_out);
        #[cfg(feature = "obs")]
        let recorder = trace_out.map(|_| {
            let rec = niobs::Recorder::default().into_shared();
            net.install_obs(rec.clone());
            rec
        });
        #[cfg(not(feature = "obs"))]
        let _ = trace_out;

        let mut metrics = MetricsRegistry::new();
        let mut delivered = 0u64;
        let mut buf: Vec<noc::network::Delivered> = Vec::new();
        let mut gen = TrafficGen::new(cfg.clone(), Pattern::UniformRandom, opts.rate, opts.seed);
        let sim_cycles = opts.warmup + opts.cycles;
        let wall = Instant::now();
        for _ in 0..opts.warmup {
            gen.tick(&mut net);
            net.step();
            net.drain_delivered_into(&mut buf);
            for d in buf.drain(..) {
                delivered += 1;
                metrics.observe(
                    "packet.latency_cycles",
                    d.delivered.saturating_sub(d.packet.created),
                );
            }
        }
        if !opts.include_warmup {
            // The measured window opens here; warm-up deliveries are dropped.
            net.reset_stats();
            metrics.begin_epoch();
            delivered = 0;
        }
        for _ in 0..opts.cycles {
            gen.tick(&mut net);
            net.step();
            net.drain_delivered_into(&mut buf);
            for d in buf.drain(..) {
                delivered += 1;
                metrics.observe(
                    "packet.latency_cycles",
                    d.delivered.saturating_sub(d.packet.created),
                );
            }
        }
        let wall_seconds = wall.elapsed().as_secs_f64();
        let window_cycles = if opts.include_warmup {
            sim_cycles
        } else {
            opts.cycles
        };

        #[cfg(feature = "obs")]
        if let (Some(path), Some(rec)) = (trace_out, &recorder) {
            match bench::write_chrome_trace(&rec.borrow(), path) {
                Ok(()) => eprintln!("trace written to {path}"),
                Err(e) => {
                    eprintln!("perf_baseline: cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }

        RunResult {
            name,
            metrics,
            delivered,
            window_cycles,
            sim_cycles,
            wall_seconds,
        }
    }
}

/// Runs one organisation start-to-finish; `trace_out` (PRA only, `obs`
/// builds only) additionally captures and writes a Chrome trace.
fn run_one(
    name: &'static str,
    org: Organization,
    cfg: &NocConfig,
    opts: &Options,
    trace_out: Option<&str>,
) -> RunResult {
    with_network(
        org,
        cfg.clone(),
        BaselineRun {
            name,
            cfg,
            opts,
            trace_out,
        },
    )
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("perf_baseline: {e}");
            std::process::exit(2);
        }
    };
    let cfg = match NocConfigBuilder::new().radix(opts.radix).build() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("perf_baseline: invalid configuration: {e}");
            std::process::exit(2);
        }
    };
    if cfg!(not(feature = "obs")) && opts.trace_out.is_some() {
        eprintln!("note: built without the `obs` feature; skipping trace export");
    }

    // Both configurations go through the runner pool for uniformity, but
    // pinned to a single worker: cycles/sec against the wall clock IS the
    // measurement here, and concurrent runs sharing cores would corrupt it.
    let grid: [(&str, Organization, Option<&str>); 2] = [
        ("baseline-mesh", Organization::Mesh, None),
        ("pra", Organization::MeshPra, opts.trace_out.as_deref()),
    ];
    let runs: Vec<RunResult> = runner::run_tasks(
        grid.len(),
        1,
        |i| {
            let (name, org, trace) = grid[i];
            run_one(name, org, &cfg, &opts, trace)
        },
        |_, _| {},
    )
    .into_iter()
    .map(|outcome| match outcome {
        runner::Outcome::Done(r) => r,
        runner::Outcome::Panicked { task, message } => {
            eprintln!("perf_baseline: run {task} panicked: {message}");
            std::process::exit(1);
        }
    })
    .collect();

    println!("== perf_baseline ==");
    for r in &runs {
        let h = r.metrics.histogram("packet.latency_cycles");
        let fmt = |q: f64| {
            h.and_then(|h| h.percentile(q))
                .map_or("-".to_string(), |v| v.to_string())
        };
        println!(
            "{:<14} delivered {:>8}  p50/p95/p99 {:>4}/{:>4}/{:>4} cycles  {:>10.0} cycles/sec",
            r.name,
            r.delivered,
            fmt(0.50),
            fmt(0.95),
            fmt(0.99),
            r.cycles_per_sec(),
        );
    }

    let doc = Json::object(vec![
        ("bench".to_string(), Json::from("perf_baseline")),
        (
            "config".to_string(),
            Json::object(vec![
                ("radix".to_string(), Json::UInt(u64::from(opts.radix))),
                ("rate".to_string(), Json::Float(opts.rate)),
                ("warmup".to_string(), Json::UInt(opts.warmup)),
                ("cycles".to_string(), Json::UInt(opts.cycles)),
                ("seed".to_string(), Json::UInt(opts.seed)),
                (
                    "include_warmup".to_string(),
                    Json::Bool(opts.include_warmup),
                ),
            ]),
        ),
        (
            "runs".to_string(),
            Json::Array(runs.iter().map(RunResult::to_json).collect()),
        ),
    ]);
    if let Err(e) = std::fs::write(&opts.out, doc.to_string_pretty(2)) {
        eprintln!("perf_baseline: cannot write {}: {e}", opts.out);
        std::process::exit(1);
    }
    println!("results written to {}", opts.out);
    if let Some(baseline) = &opts.gate {
        if let Err(e) = check_gate(&runs, baseline, opts.gate_tolerance, opts.gate_floor) {
            eprintln!("perf_baseline: gate FAILED: {e}");
            std::process::exit(5);
        }
        println!("gate passed");
    }
}
