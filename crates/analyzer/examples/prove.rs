//! Runs the full static-verification battery on the paper's 8×8 mesh
//! and then demonstrates the negative case: the seeded-cyclic
//! checkerboard routing is rejected with its dependency cycle printed
//! channel by channel.
//!
//! ```console
//! $ cargo run -p analyzer --example prove
//! ```

use analyzer::{analyze, verify_routing, CheckerboardAdaptive};
use noc::config::NocConfig;

fn main() {
    let cfg = NocConfig::paper();
    match analyze(&cfg, 4) {
        Ok(report) => {
            println!("paper mesh (8x8) verifies:");
            for (name, deps) in &report.routings {
                println!("  routing '{name}': acyclic CDG, {deps} dependency edges");
            }
            println!(
                "  segment schedule: {} pairs, {} steps, longest walk {}",
                report.segments.pairs_checked,
                report.segments.steps_checked,
                report.segments.max_steps
            );
            println!(
                "  lag: guarded arithmetic safe for radices 2..={} (max_lag {})",
                report.lag.proofs.last().map_or(0, |p| p.radix),
                report.lag.max_lag
            );
            println!(
                "  faults: {} link cuts + {} router deaths all acyclic (max {} orphaned pairs)",
                report.faults.link_plans,
                report.faults.router_plans,
                report.faults.max_unroutable_pairs
            );
        }
        Err(e) => {
            eprintln!("verification FAILED: {e}");
            std::process::exit(1);
        }
    }

    println!();
    match verify_routing(&cfg, &CheckerboardAdaptive) {
        Err(e) => println!("negative control rejected as expected:\n  {e}"),
        Ok(deps) => {
            eprintln!("BUG: cyclic routing verified ({deps} edges)");
            std::process::exit(1);
        }
    }
}
