//! Explicit-state model checking of the end-to-end reliable-delivery
//! protocol.
//!
//! [`check_reliable_protocol`] breadth-first explores every reachable
//! state of a small abstract fabric — each tracked packet's window
//! entry, its live retransmission copies, and the nondeterministic
//! interleaving of arrivals, fault purges and ack-timeout firings —
//! and proves four invariants:
//!
//! 1. **Eventual delivery** — every execution terminates, and every
//!    terminal state has every packet resolved exactly one way:
//!    delivered once, or escalated to permanent-fault handling.
//! 2. **No duplicate ejection** — no interleaving of retransmissions
//!    and stragglers ever commits the same packet twice at its
//!    destination NI.
//! 3. **No wraparound hazard** — a window entry is never retired while
//!    copies of it still roam the fabric, so its sequence number can
//!    never be reused against a stale copy.
//! 4. **Bounded retransmission storm** — no packet is ever re-sent
//!    more than its retry budget allows.
//!
//! The checker consumes the *same pure rules* the runtime executes —
//! [`noc::reliable::retry_or_escalate`],
//! [`noc::reliable::eject_disposition`] and
//! [`noc::reliable::can_retire`], parameterised by
//! [`noc::reliable::RetrySemantics`] — so the verified model cannot
//! drift from the implementation, and the seeded bug doubles
//! ([`RetrySemantics::ack_before_commit`],
//! [`RetrySemantics::unbounded_retry`]) are refuted with shortest
//! counterexample traces.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use noc::reliable::{
    can_retire, eject_disposition, retry_or_escalate, EjectOutcome, EntryState, LossOutcome,
    RetrySemantics,
};

/// Exploration bounds for the reliable-delivery model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelBounds {
    /// Tracked packets explored concurrently.
    pub packets: usize,
    /// Retry budget each packet carries.
    pub retry_budget: u8,
    /// Hard cap on distinct states (a Termination violation if hit).
    pub max_states: usize,
}

impl RelBounds {
    /// The CI configuration: two interleaved packets, budget 2.
    #[must_use]
    pub fn standard() -> Self {
        RelBounds {
            packets: 2,
            retry_budget: 2,
            max_states: 500_000,
        }
    }

    /// A small configuration for interpreted runs (Miri).
    #[must_use]
    pub fn reduced() -> Self {
        RelBounds {
            packets: 1,
            retry_budget: 1,
            max_states: 20_000,
        }
    }
}

/// Which reliable-delivery invariant a violation falls under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelInvariant {
    /// Invariant 1: every execution resolves every packet exactly once.
    EventualDelivery,
    /// Invariant 2: no packet is ever committed twice at its NI.
    DuplicateEjection,
    /// Invariant 3: no entry retires while its copies still roam.
    WraparoundHazard,
    /// Invariant 4: retransmissions never exceed the retry budget.
    RetransmissionStorm,
    /// The exploration itself failed to converge (a cycle or bound).
    Termination,
}

impl fmt::Display for RelInvariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RelInvariant::EventualDelivery => "every packet is delivered or escalated exactly once",
            RelInvariant::DuplicateEjection => "no duplicate ejection at the destination NI",
            RelInvariant::WraparoundHazard => {
                "no retirement while copies roam (sequence-number wraparound hazard)"
            }
            RelInvariant::RetransmissionStorm => "retransmissions stay within the retry budget",
            RelInvariant::Termination => "every execution terminates",
        };
        f.write_str(name)
    }
}

/// A proven-reachable violation of the reliable-delivery protocol:
/// which invariant broke, how, and the shortest action sequence that
/// reaches it.
#[derive(Debug, Clone)]
pub struct RelViolation {
    /// The invariant that broke.
    pub invariant: RelInvariant,
    /// What exactly went wrong in the violating state.
    pub detail: String,
    /// The shortest counterexample: one fabric action per line.
    pub trace: Vec<String>,
}

impl fmt::Display for RelViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "reliable-delivery invariant violated: {}",
            self.invariant
        )?;
        writeln!(f, "  {}", self.detail)?;
        writeln!(f, "counterexample ({} step(s)):", self.trace.len())?;
        for (i, action) in self.trace.iter().enumerate() {
            writeln!(f, "  {:2}. {action}", i + 1)?;
        }
        Ok(())
    }
}

/// Exploration statistics for a proven-clean protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelReport {
    /// Distinct states explored.
    pub states: usize,
    /// Transitions taken (including ones into already-seen states).
    pub transitions: usize,
    /// Terminal states where every packet delivered on some flight.
    pub terminal_delivered: usize,
    /// Terminal states where at least one packet escalated.
    pub terminal_escalated: usize,
    /// Most copies of one packet ever simultaneously in flight.
    pub max_live_copies: u8,
}

/// One tracked packet in the abstract fabric: its window entry (or
/// `None` once retired), retry charge, live copy count, and the ghost
/// record of commits and escalation the invariants are stated over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct PacketModel {
    /// Window entry state; `None` = retired (entry dropped, sequence
    /// number reusable).
    entry: Option<EntryState>,
    /// Retransmissions charged so far.
    attempt: u8,
    /// Copies currently in the fabric (the original counts as one).
    live: u8,
    /// Ghost: times this packet was committed at its NI.
    ejections: u8,
    /// Ghost: whether the packet was escalated.
    escalated: bool,
}

type State = Vec<PacketModel>;

struct Node {
    state: State,
    parent: Option<(usize, String)>,
}

/// One enabled transition of packet `i` in `state`, as (label, successor).
fn steps_of(state: &State, bounds: RelBounds, semantics: RetrySemantics) -> Vec<(String, State)> {
    let mut out = Vec::new();
    for (i, p) in state.iter().enumerate() {
        match p.entry {
            Some(st) => {
                if p.live > 0 {
                    // A copy reaches the destination NI.
                    let mut s = state.clone();
                    let q = &mut s[i];
                    q.live -= 1;
                    match eject_disposition(st) {
                        EjectOutcome::Commit => {
                            q.entry = Some(EntryState::Delivered);
                            q.ejections += 1;
                        }
                        EjectOutcome::Suppress => {}
                    }
                    retire_if_allowed(&mut s[i], semantics);
                    out.push((format!("packet {i}: copy arrives and ejects at the NI"), s));

                    // A copy is purged by a fault.
                    let mut s = state.clone();
                    s[i].live -= 1;
                    retire_if_allowed(&mut s[i], semantics);
                    out.push((format!("packet {i}: in-fabric copy purged by a fault"), s));
                }
                if st == EntryState::InFlight {
                    // The ack deadline fires (timeout, or NACK-on-purge
                    // when no copy is left).
                    let mut s = state.clone();
                    let label;
                    match retry_or_escalate(p.attempt, bounds.retry_budget, semantics) {
                        LossOutcome::Retransmit => {
                            s[i].attempt += 1;
                            s[i].live += 1;
                            label = format!(
                                "packet {i}: ack deadline fires, retransmission {} launched",
                                s[i].attempt
                            );
                        }
                        LossOutcome::Escalate => {
                            s[i].entry = Some(EntryState::Escalated);
                            s[i].escalated = true;
                            s[i].live = 0; // escalation purges live copies
                            label = format!(
                                "packet {i}: retry budget exhausted, escalated to \
                                 permanent-fault handling"
                            );
                        }
                    }
                    retire_if_allowed(&mut s[i], semantics);
                    out.push((label, s));
                }
            }
            None if p.live > 0 => {
                // The entry is gone but copies still roam: the layer has
                // no tombstone left, so an arrival is a plain delivery.
                let mut s = state.clone();
                s[i].live -= 1;
                s[i].ejections += 1;
                out.push((
                    format!("packet {i}: stale copy arrives after retirement and ejects"),
                    s,
                ));
                let mut s = state.clone();
                s[i].live -= 1;
                out.push((format!("packet {i}: stale copy purged by a fault"), s));
            }
            None => {}
        }
    }
    out
}

/// Applies the pure retirement rule to a resolved entry.
fn retire_if_allowed(p: &mut PacketModel, semantics: RetrySemantics) {
    if let Some(st) = p.entry {
        if st != EntryState::InFlight && can_retire(st, p.live, semantics) {
            p.entry = None;
        }
    }
}

/// Checks the per-state invariants (2, 3 and 4) for a freshly reached
/// state.
fn check_state(state: &State, bounds: RelBounds) -> Result<(), (RelInvariant, String)> {
    for (i, p) in state.iter().enumerate() {
        if p.ejections > 1 {
            return Err((
                RelInvariant::DuplicateEjection,
                format!(
                    "packet {i} was committed {} times at its destination NI",
                    p.ejections
                ),
            ));
        }
        if p.entry.is_none() && p.live > 0 {
            return Err((
                RelInvariant::WraparoundHazard,
                format!(
                    "packet {i}'s window entry retired while {} cop{} still roam the fabric; \
                     its sequence number can be reused against a stale arrival",
                    p.live,
                    if p.live == 1 { "y" } else { "ies" }
                ),
            ));
        }
        if p.attempt > bounds.retry_budget {
            return Err((
                RelInvariant::RetransmissionStorm,
                format!(
                    "packet {i} was retransmitted {} times, past its budget of {}",
                    p.attempt, bounds.retry_budget
                ),
            ));
        }
    }
    Ok(())
}

/// Exhaustively explores the reliable-delivery protocol under
/// `semantics` within `bounds` and proves the four invariants, or
/// returns the shortest counterexample.
///
/// # Errors
///
/// A [`RelViolation`] naming the broken invariant, the concrete
/// failure, and the action trace that reaches it.
pub fn check_reliable_protocol(
    bounds: RelBounds,
    semantics: RetrySemantics,
) -> Result<RelReport, Box<RelViolation>> {
    let init: State = vec![
        PacketModel {
            entry: Some(EntryState::InFlight),
            attempt: 0,
            live: 1,
            ejections: 0,
            escalated: false,
        };
        bounds.packets
    ];
    let mut nodes = vec![Node {
        state: init.clone(),
        parent: None,
    }];
    let mut seen: BTreeMap<State, usize> = BTreeMap::new();
    seen.insert(init, 0);
    let mut edges: Vec<Vec<usize>> = vec![Vec::new()];
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    let mut report = RelReport {
        states: 1,
        transitions: 0,
        terminal_delivered: 0,
        terminal_escalated: 0,
        max_live_copies: 1,
    };

    while let Some(n) = queue.pop_front() {
        let steps = steps_of(&nodes[n].state, bounds, semantics);
        if steps.is_empty() {
            classify_terminal(&nodes, n, &mut report)?;
            continue;
        }
        for (label, state) in steps {
            report.transitions += 1;
            let trace = || trace_to(&nodes, n, Some(label.clone()));
            check_state(&state, bounds)
                .map_err(|(invariant, detail)| violation(invariant, detail, trace()))?;
            for p in &state {
                report.max_live_copies = report.max_live_copies.max(p.live);
            }
            if let Some(&id) = seen.get(&state) {
                edges[n].push(id);
                continue;
            }
            let id = nodes.len();
            if id >= bounds.max_states {
                return Err(violation(
                    RelInvariant::Termination,
                    format!(
                        "exploration exceeded the {}-state bound without converging",
                        bounds.max_states
                    ),
                    trace(),
                ));
            }
            seen.insert(state.clone(), id);
            nodes.push(Node {
                state,
                parent: Some((n, label)),
            });
            edges.push(Vec::new());
            edges[n].push(id);
            queue.push_back(id);
            report.states += 1;
        }
    }

    if let Some(id) = find_cycle(&edges) {
        return Err(violation(
            RelInvariant::Termination,
            "the protocol can loop forever (a reachable state can recur)".to_string(),
            trace_to(&nodes, id, None),
        ));
    }
    Ok(report)
}

/// A terminal state must be a fully resolved fabric: every entry
/// retired, no copy roaming, and the ghost partition exact — each
/// packet delivered once XOR escalated.
fn classify_terminal(
    nodes: &[Node],
    id: usize,
    report: &mut RelReport,
) -> Result<(), Box<RelViolation>> {
    let node = &nodes[id];
    let mut any_escalated = false;
    for (i, p) in node.state.iter().enumerate() {
        let resolved_once = (p.ejections == 1) ^ p.escalated;
        if p.entry.is_some() || p.live > 0 || !resolved_once {
            return Err(violation(
                RelInvariant::EventualDelivery,
                format!(
                    "execution stops with packet {i} unresolved \
                     (entry {:?}, {} live cop{}, {} ejection(s), escalated: {})",
                    p.entry,
                    p.live,
                    if p.live == 1 { "y" } else { "ies" },
                    p.ejections,
                    p.escalated
                ),
                trace_to(nodes, id, None),
            ));
        }
        any_escalated |= p.escalated;
    }
    if any_escalated {
        report.terminal_escalated += 1;
    } else {
        report.terminal_delivered += 1;
    }
    Ok(())
}

/// Rebuilds the action trace from the root to `id` (plus an optional
/// final action).
fn trace_to(nodes: &[Node], id: usize, last: Option<String>) -> Vec<String> {
    let mut trace = Vec::new();
    let mut at = id;
    while let Some((parent, label)) = &nodes[at].parent {
        trace.push(label.clone());
        at = *parent;
    }
    trace.reverse();
    trace.extend(last);
    trace
}

/// Iterative three-colour DFS over the explored graph; returns a node
/// on a cycle if one exists.
fn find_cycle(edges: &[Vec<usize>]) -> Option<usize> {
    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let mut colour = vec![WHITE; edges.len()];
    for root in 0..edges.len() {
        if colour[root] != WHITE {
            continue;
        }
        let mut stack = vec![(root, 0usize)];
        colour[root] = GREY;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if let Some(&child) = edges[node].get(*next) {
                *next += 1;
                match colour[child] {
                    GREY => return Some(child),
                    WHITE => {
                        colour[child] = GREY;
                        stack.push((child, 0));
                    }
                    _ => {}
                }
            } else {
                colour[node] = BLACK;
                stack.pop();
            }
        }
    }
    None
}

fn violation(invariant: RelInvariant, detail: String, trace: Vec<String>) -> Box<RelViolation> {
    Box::new(RelViolation {
        invariant,
        detail,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> RelBounds {
        if cfg!(miri) {
            RelBounds::reduced()
        } else {
            RelBounds::standard()
        }
    }

    #[test]
    fn the_shipped_protocol_upholds_all_four_invariants() {
        let report = check_reliable_protocol(bounds(), RetrySemantics::correct())
            .unwrap_or_else(|v| panic!("unexpected violation:\n{v}"));
        assert!(report.states > 50, "exploration was non-trivial");
        assert!(report.transitions > report.states);
        assert!(
            report.terminal_delivered > 0,
            "some executions deliver everything"
        );
        assert!(
            report.terminal_escalated > 0,
            "some executions escalate a packet"
        );
        assert!(
            report.max_live_copies > 1,
            "duplicate copies were genuinely in flight"
        );
    }

    #[test]
    fn the_reduced_bounds_also_prove_the_invariants() {
        // The exact configuration the Miri CI job explores.
        let report = check_reliable_protocol(RelBounds::reduced(), RetrySemantics::correct())
            .unwrap_or_else(|v| panic!("unexpected violation:\n{v}"));
        assert!(report.terminal_delivered > 0);
        assert!(report.terminal_escalated > 0);
    }

    #[test]
    fn ack_before_commit_yields_a_wraparound_counterexample() {
        let v = check_reliable_protocol(bounds(), RetrySemantics::ack_before_commit())
            .expect_err("the ack-before-commit bug double must be caught");
        assert_eq!(v.invariant, RelInvariant::WraparoundHazard);
        assert!(!v.trace.is_empty());
        assert!(
            v.trace.last().is_some_and(|l| l.contains("ejects")),
            "the counterexample ends on the premature commit-and-retire: {:?}",
            v.trace
        );
        let text = v.to_string();
        assert!(text.contains("counterexample ("));
        assert!(text.contains("   1. "), "trace lines are numbered: {text}");
    }

    #[test]
    fn unbounded_retry_yields_a_storm_counterexample() {
        let v = check_reliable_protocol(bounds(), RetrySemantics::unbounded_retry())
            .expect_err("the unbounded-retry bug double must be caught");
        assert_eq!(v.invariant, RelInvariant::RetransmissionStorm);
        assert!(
            v.trace.last().is_some_and(|l| l.contains("retransmission")),
            "the counterexample ends on the over-budget retransmission: {:?}",
            v.trace
        );
    }

    #[test]
    fn stale_copies_after_a_buggy_retirement_eject_twice() {
        // Deepening check on the ack-before-commit double: if the
        // wraparound check is suspended, the very next consequence the
        // model reaches is a duplicate ejection — the two invariants
        // guard the same bug at adjacent depths.
        let semantics = RetrySemantics::ack_before_commit();
        let b = bounds();
        // First arrival commits and (buggily) retires despite the
        // second live copy.
        let state = vec![PacketModel {
            entry: Some(EntryState::InFlight),
            attempt: 0,
            live: 2, // original + one timeout duplicate
            ejections: 0,
            escalated: false,
        }];
        let steps = steps_of(&state, b, semantics);
        let (_, after) = steps
            .iter()
            .find(|(l, _)| l.contains("ejects"))
            .expect("an arrival is enabled");
        assert_eq!(after[0].entry, None, "retired with a copy live");
        assert_eq!(after[0].live, 1);
        // The stale copy then ejects as a plain (duplicate) delivery.
        let steps = steps_of(after, b, semantics);
        let (_, last) = steps
            .iter()
            .find(|(l, _)| l.contains("stale copy arrives"))
            .expect("the stale arrival is enabled");
        assert_eq!(last[0].ejections, 2, "the packet was delivered twice");
        assert!(check_state(last, b).is_err());
    }
}
