//! Interval analysis of the control-packet lag arithmetic.
//!
//! A control packet launches with `lag = due0 - process_at`, clamped by
//! the launch contract to `0 ..= max_lag`. Each processed segment
//! shrinks the lag by one (control covers a segment in two cycles,
//! pre-allocated data in one); a data stall can hand a cycle back
//! (bounded by the clamp at `max_lag`); at lag 0 the packet is dropped.
//! The lag lives in a `u8`, so the safety question is: **can any
//! schedule drive it below zero (wrapping to 255) or above `max_lag`?**
//!
//! [`verify_lag`] answers by abstract interpretation over intervals: it
//! starts from the launch interval, applies every enabled transition to
//! a fixpoint for each mesh radix up to the requested bound, and checks
//! `0 ≤ lag ≤ max_lag` after every step. Two arithmetic models are
//! analysed:
//!
//! * [`LagArith::Guarded`] — the implementation's semantics: a due
//!   packet at lag 0 is dropped as `LagExhausted` *before* it can
//!   process another segment, so a segment only ever decrements
//!   survivors with lag ≥ 1 (a plain `lag -= 1`; the CI profile's
//!   overflow checks would catch any violation). This model must verify.
//! * [`LagArith::Wrapping`] — the unguarded variant (`lag -= 1` with no
//!   drop-at-zero), which a correct analyzer must *reject* with a
//!   concrete counterexample trace: launch at lag 0, one segment,
//!   underflow. Keeping the unsafe model in the suite proves the
//!   analysis has teeth.

/// A closed interval of lag values, tracked in `i64` so underflows are
/// visible instead of wrapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LagInterval {
    /// Smallest reachable lag.
    pub lo: i64,
    /// Largest reachable lag.
    pub hi: i64,
}

impl std::fmt::Display for LagInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Which arithmetic the transfer function models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LagArith {
    /// The implementation: a due packet at lag 0 drops before processing
    /// a segment — only survivors with lag ≥ 1 are ever decremented.
    Guarded,
    /// The unsafe strawman: every processed segment decrements,
    /// including lag 0. Must be rejected.
    Wrapping,
}

/// One step of the counterexample trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LagTraceStep {
    /// Segment number (0 = launch).
    pub step: usize,
    /// Interval before the step.
    pub before: LagInterval,
    /// Interval after the step.
    pub after: LagInterval,
}

/// The lag invariant `0 ≤ lag ≤ max_lag` failed.
#[must_use]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LagViolation {
    /// Mesh radix under analysis when the invariant broke.
    pub radix: u16,
    /// The analysed arithmetic model.
    pub arith: LagArith,
    /// Steps from launch to the violation.
    pub trace: Vec<LagTraceStep>,
}

impl std::fmt::Display for LagViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "lag invariant broken on radix-{} mesh under {:?} arithmetic:",
            self.radix, self.arith
        )?;
        for s in &self.trace {
            writeln!(f, "  segment {}: {} -> {}", s.step, s.before, s.after)?;
        }
        f.write_str("  (lag below 0 wraps a u8 to 255 — an unbounded phantom reservation window)")
    }
}

impl std::error::Error for LagViolation {}

/// Proof summary for one radix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LagRadixProof {
    /// Mesh radix.
    pub radix: u16,
    /// Segments a maximal route needs (the iteration bound actually
    /// analysed; the interval reaches fixpoint at or before it).
    pub segments: usize,
    /// The invariant interval that held at every step.
    pub invariant: LagInterval,
}

/// The full lag-safety proof across radices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LagReport {
    /// Configured maximum launch lag.
    pub max_lag: u8,
    /// Per-radix proofs, radix 2 up to the requested bound.
    pub proofs: Vec<LagRadixProof>,
}

/// Runs the interval analysis for every mesh radix in `2..=max_radix`.
///
/// The per-segment transfer function, `J` being interval join:
///
/// ```text
/// survivors(I)        = [max(lo, 1), hi]          (guarded; ∅ if hi < 1)
/// advance(I)          = survivors(I) - 1          (guarded)
///                     | I - 1                     (wrapping)
/// stall_gain(I)       = [lo, min(hi + 1, max_lag)]
/// step(I)             = advance(I) J stall_gain(I)
/// ```
///
/// A maximal route on a radix-`r` mesh has `2(r-1)` hops and therefore
/// at most `2(r-1)` segments (each segment advances ≥ 1 position), which
/// bounds the iteration count; the interval in fact reaches a fixpoint
/// within a couple of steps, so the proof covers schedules of any
/// length.
///
/// # Errors
///
/// Returns a [`LagViolation`] with a step-by-step trace when an interval
/// escapes `0 ..= max_lag` — which [`LagArith::Wrapping`] does on the
/// very first segment (launch at lag 0).
pub fn verify_lag(max_lag: u8, max_radix: u16, arith: LagArith) -> Result<LagReport, LagViolation> {
    let mut proofs = Vec::new();
    for radix in 2..=max_radix {
        let segments = 2 * (radix as usize - 1);
        let launch = LagInterval {
            lo: 0,
            hi: i64::from(max_lag),
        };
        let mut cur = launch;
        let mut trace = vec![LagTraceStep {
            step: 0,
            before: launch,
            after: launch,
        }];
        let mut invariant = launch;
        for step in 1..=segments {
            let advanced = match arith {
                LagArith::Guarded => {
                    // Packets at lag 0 were dropped (LagExhausted) before
                    // this segment; survivors have lag ≥ 1.
                    let lo = cur.lo.max(1);
                    if cur.hi < lo {
                        break; // nothing survives: every schedule ended
                    }
                    LagInterval {
                        lo: lo - 1,
                        hi: cur.hi - 1,
                    }
                }
                LagArith::Wrapping => LagInterval {
                    lo: cur.lo - 1,
                    hi: cur.hi - 1,
                },
            };
            // A data stall can return a cycle, clamped at max_lag.
            let gained = LagInterval {
                lo: cur.lo,
                hi: (cur.hi + 1).min(i64::from(max_lag)),
            };
            let next = LagInterval {
                lo: advanced.lo.min(gained.lo),
                hi: advanced.hi.max(gained.hi),
            };
            trace.push(LagTraceStep {
                step,
                before: cur,
                after: next,
            });
            if next.lo < 0 || next.hi > i64::from(max_lag) {
                return Err(LagViolation {
                    radix,
                    arith,
                    trace,
                });
            }
            invariant = LagInterval {
                lo: invariant.lo.min(next.lo),
                hi: invariant.hi.max(next.hi),
            };
            if next == cur {
                break; // fixpoint: further segments cannot change the set
            }
            cur = next;
        }
        proofs.push(LagRadixProof {
            radix,
            segments,
            invariant,
        });
    }
    Ok(LagReport { max_lag, proofs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarded_arithmetic_verifies_for_all_radices() {
        let report =
            verify_lag(4, 16, LagArith::Guarded).expect("implementation semantics are safe");
        assert_eq!(report.proofs.len(), 15);
        for p in &report.proofs {
            assert!(p.invariant.lo >= 0, "radix {}", p.radix);
            assert!(p.invariant.hi <= 4, "radix {}", p.radix);
        }
    }

    #[test]
    fn wrapping_arithmetic_is_rejected_with_a_launch_zero_trace() {
        let violation =
            verify_lag(4, 16, LagArith::Wrapping).expect_err("unguarded decrement underflows");
        assert_eq!(violation.radix, 2, "first analysed radix already fails");
        let last = violation.trace.last().expect("non-empty trace");
        assert!(last.after.lo < 0);
        assert!(violation.to_string().contains("wraps a u8"));
    }

    #[test]
    fn max_lag_upper_bound_is_tight_under_stall_gain() {
        let report = verify_lag(4, 8, LagArith::Guarded).expect("guarded is safe");
        for p in &report.proofs {
            assert_eq!(
                p.invariant.hi, 4,
                "stall gain reaches but never exceeds max_lag"
            );
        }
    }
}
