//! Static protocol verifier for the PRA NoC.
//!
//! The simulator in `crates/noc` and `crates/pra` *executes* the
//! paper's protocols; this crate *proves* the properties those
//! protocols rely on, without running a single simulated cycle:
//!
//! * **Deadlock freedom** ([`cdg`]) — the Dally/Seitz argument: build
//!   the channel-dependency graph of a routing function over every
//!   (src, dst) pair and prove it acyclic, or print the offending cycle.
//!   Covers the production XY routing and the west-first detour tables.
//! * **Segment-schedule sanity** ([`segments`]) — the control network's
//!   2-hop multi-drop walk claims distinct latches, advances
//!   contiguously, never revisits a latch, and arbitrates under a
//!   strict total priority order.
//! * **Lag safety** ([`lag`]) — interval analysis over the control
//!   packet's lag arithmetic proving it never underflows its `u8` for
//!   any mesh radix up to 16 (and rejecting the unguarded variant with
//!   a counterexample).
//! * **Fault tolerance** ([`faultplans`]) — re-verification of the
//!   detour routing against every single-link-cut and single-router
//!   permanent-fault plan, using the exact tables the runtime builds.
//! * **Crash-recovery safety** ([`protocol`], [`modelcheck`]) — an
//!   explicit-state model checker over the sweep harness's
//!   journal/lease/supervisor stack: every interleaving of torn
//!   writes, SIGKILLs, stale-lease takeovers and resumes within
//!   bounds, proving trusted-prefix monotonicity, single-writer
//!   fencing, zombie-write exclusion, resume equivalence and
//!   termination — with shortest counterexample traces when a seeded
//!   bug double breaks one.
//! * **Reliable delivery** ([`reliable`]) — an explicit-state checker
//!   over the end-to-end retransmission protocol's pure rules
//!   (`noc::reliable`): every interleaving of arrivals, fault purges,
//!   duplicate stragglers and ack timeouts within bounds, proving
//!   eventual delivery-or-escalation, no duplicate ejection, no
//!   sequence-number wraparound hazard and a bounded retransmission
//!   storm — refuting the `ack_before_commit` and `unbounded_retry`
//!   bug doubles with shortest counterexamples.
//!
//! [`analyze`] runs the whole battery for one configuration and returns
//! a combined report; the CI `static-analysis` job runs it via
//! `cargo test -p analyzer` and `cargo xtask verify-protocol`.
//!
//! The crate deliberately consumes the *same* pure artifacts the
//! runtime executes — [`noc::faults::DetourTables`], [`pra::schedule`],
//! [`runner::protocol`] — so the verified model cannot drift from the
//! implementation.

pub mod cdg;
pub mod faultplans;
pub mod lag;
pub mod modelcheck;
pub mod protocol;
pub mod reliable;
pub mod routing;
pub mod segments;
pub mod wcla;

pub use cdg::{Cdg, Channel, DependencyCycle};
pub use faultplans::{
    single_fault_plans, verify_single_fault_plans, FaultCase, FaultSweepError, FaultSweepSummary,
};
pub use lag::{verify_lag, LagArith, LagInterval, LagReport, LagViolation};
pub use modelcheck::{check_protocol, InvariantKind, ModelReport, ProtocolViolation};
pub use protocol::{Model, ModelBounds, Semantics};
pub use reliable::{check_reliable_protocol, RelBounds, RelInvariant, RelReport, RelViolation};
pub use routing::{CheckerboardAdaptive, RouteError, RoutingSpec, WestFirstDetour, XyRouting};
pub use segments::{verify_segment_schedule, SegmentSummary, SegmentViolation};
pub use wcla::{analyze_scenario, ScenarioBounds};

use noc::config::NocConfig;

/// Radix bound for the lag interval analysis (ISSUE contract: prove up
/// to 16×16 meshes).
pub const LAG_RADIX_BOUND: u16 = 16;

/// One verification failed; the variants carry printable
/// counterexamples.
#[must_use]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// A fault-free routing function admits a dependency cycle.
    Deadlock {
        /// Name of the routing function ([`RoutingSpec::name`]).
        routing: &'static str,
        /// The offending cycle.
        cycle: DependencyCycle,
    },
    /// A routing function produced malformed routes.
    Routes {
        /// Name of the routing function.
        routing: &'static str,
        /// The underlying route error.
        error: RouteError,
    },
    /// The control segment schedule violated an invariant.
    Segments(SegmentViolation),
    /// The lag arithmetic can escape `0 ..= max_lag`.
    Lag(LagViolation),
    /// A single-fault plan broke the detour routing.
    FaultSweep(FaultSweepError),
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Deadlock { routing, cycle } => {
                write!(f, "routing '{routing}' is not deadlock-free: {cycle}")
            }
            AnalysisError::Routes { routing, error } => {
                write!(f, "routing '{routing}' is malformed: {error}")
            }
            AnalysisError::Segments(v) => write!(f, "segment schedule: {v}"),
            AnalysisError::Lag(v) => write!(f, "lag analysis: {v}"),
            AnalysisError::FaultSweep(e) => write!(f, "fault sweep: {e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Combined report of a clean full analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Dependency-edge counts per verified fault-free routing, by name.
    pub routings: Vec<(&'static str, usize)>,
    /// Segment-schedule sweep summary.
    pub segments: SegmentSummary,
    /// Lag proof (guarded semantics, radices up to
    /// [`LAG_RADIX_BOUND`]).
    pub lag: LagReport,
    /// Single-fault sweep summary.
    pub faults: FaultSweepSummary,
}

/// Proves one routing deadlock-free, returning its dependency count.
///
/// # Errors
///
/// Returns [`AnalysisError::Routes`] for malformed routes and
/// [`AnalysisError::Deadlock`] with the printable cycle otherwise.
pub fn verify_routing(cfg: &NocConfig, spec: &dyn RoutingSpec) -> Result<usize, AnalysisError> {
    let cdg = Cdg::build(cfg, spec).map_err(|error| AnalysisError::Routes {
        routing: spec.name(),
        error,
    })?;
    cdg.verify_acyclic()
        .map_err(|cycle| AnalysisError::Deadlock {
            routing: spec.name(),
            cycle,
        })?;
    Ok(cdg.dependencies())
}

/// Runs the full verification battery for `cfg`: deadlock freedom of
/// XY and fault-free west-first detours, the segment-schedule sweep,
/// the lag interval proof (guarded semantics, radices up to
/// [`LAG_RADIX_BOUND`]), and the exhaustive single-fault sweep.
///
/// # Errors
///
/// Returns the first failed check with its counterexample.
pub fn analyze(cfg: &NocConfig, max_lag: u8) -> Result<AnalysisReport, AnalysisError> {
    let mut routings = Vec::new();
    let xy_deps = verify_routing(cfg, &XyRouting)?;
    routings.push((XyRouting.name(), xy_deps));
    let wf = WestFirstDetour::fault_free(cfg);
    let wf_deps = verify_routing(cfg, &wf)?;
    routings.push((wf.name(), wf_deps));

    let segments = verify_segment_schedule(cfg).map_err(AnalysisError::Segments)?;
    let lag =
        verify_lag(max_lag, LAG_RADIX_BOUND, LagArith::Guarded).map_err(AnalysisError::Lag)?;
    let faults = verify_single_fault_plans(cfg).map_err(AnalysisError::FaultSweep)?;

    Ok(AnalysisReport {
        routings,
        segments,
        lag,
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_analysis_passes_on_the_paper_mesh() {
        let cfg = NocConfig::paper();
        let report = analyze(&cfg, 4).expect("paper configuration verifies");
        assert_eq!(report.routings.len(), 2);
        assert!(report.routings.iter().all(|&(_, deps)| deps > 0));
    }

    #[test]
    fn seeded_cyclic_routing_is_reported_as_deadlock() {
        let cfg = NocConfig::paper();
        let err =
            verify_routing(&cfg, &CheckerboardAdaptive).expect_err("checkerboard must be rejected");
        match err {
            AnalysisError::Deadlock { routing, cycle } => {
                assert_eq!(routing, "checkerboard-xy-yx");
                assert!(cycle.channels.len() >= 4);
            }
            other => panic!("wrong error class: {other}"),
        }
    }
}
