//! Static checks over the control network's multi-drop segment schedule.
//!
//! The runtime control plane executes the schedule produced by
//! [`pra::schedule::segment_schedule`]; this module verifies that model
//! for **every** routable (src, dst) pair and both control origins:
//!
//! * each step claims one or two latches, all distinct — a step that
//!   claimed the same latch twice could never win arbitration against
//!   itself;
//! * route positions advance strictly and contiguously (by one router,
//!   or two when a straight multi-drop pair is taken), so every router
//!   on the route is allocated exactly once;
//! * a packet never claims the same multi-drop latch twice across its
//!   whole walk — the walk is a simple path through the latch space, so
//!   static-priority arbitration between *different* packets is the only
//!   source of conflicts (and [`pra::schedule::priority_rank`] plus the
//!   unique-id tiebreak makes that a strict total order, checked here);
//! * the walk takes at most `hops` steps and covers the route in the
//!   `2 × steps` cycles the protocol budgets for it.

use noc::config::NocConfig;
use noc::routing::Route;
use noc::types::NodeId;
use pra::schedule::{priority_rank, segment_schedule, ClaimKey, SegmentStep};
use pra::stats::ControlOrigin;

/// A violation of the segment-schedule invariants.
#[must_use]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentViolation {
    /// A step claimed zero or more than two latches, or repeated one.
    MalformedClaims {
        /// Source node of the offending route.
        src: NodeId,
        /// Destination node of the offending route.
        dest: NodeId,
        /// Control origin under which the walk was scheduled.
        origin: ControlOrigin,
        /// Step index within the walk.
        step: usize,
        /// Number of claims the step produced.
        claims: usize,
    },
    /// Consecutive steps did not allocate contiguous, strictly
    /// advancing route positions.
    NonContiguousWalk {
        /// Source node of the offending route.
        src: NodeId,
        /// Destination node of the offending route.
        dest: NodeId,
        /// Step index within the walk.
        step: usize,
        /// First position this step allocated.
        got: usize,
        /// Position the walk should have resumed at.
        expected: usize,
    },
    /// The packet claimed one multi-drop latch at two different steps.
    RepeatedLatch {
        /// Source node of the offending route.
        src: NodeId,
        /// Destination node of the offending route.
        dest: NodeId,
        /// The latch claimed twice.
        key: ClaimKey,
        /// The earlier step holding the latch.
        first_step: usize,
        /// The later step re-claiming it.
        second_step: usize,
    },
    /// The walk took more steps than the route has hops.
    OverlongWalk {
        /// Source node of the offending route.
        src: NodeId,
        /// Destination node of the offending route.
        dest: NodeId,
        /// Steps the schedule produced.
        steps: usize,
        /// Hop count of the route.
        hops: usize,
    },
    /// Two distinct (continuing, origin) packet classes received the
    /// same priority rank while only one of them was continuing —
    /// arbitration between them would not be a total order by rank+id.
    PriorityCollision {
        /// Rank shared by both classes.
        rank: u8,
    },
}

impl std::fmt::Display for SegmentViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SegmentViolation::MalformedClaims {
                src,
                dest,
                origin,
                step,
                claims,
            } => write!(
                f,
                "route {src} -> {dest} ({origin:?}): step {step} claims {claims} latches (want 1 or 2, distinct)"
            ),
            SegmentViolation::NonContiguousWalk {
                src,
                dest,
                step,
                got,
                expected,
            } => write!(
                f,
                "route {src} -> {dest}: step {step} starts at position {got}, expected {expected}"
            ),
            SegmentViolation::RepeatedLatch {
                src,
                dest,
                ref key,
                first_step,
                second_step,
            } => write!(
                f,
                "route {src} -> {dest}: latch {key:?} claimed at steps {first_step} and {second_step}"
            ),
            SegmentViolation::OverlongWalk {
                src,
                dest,
                steps,
                hops,
            } => write!(
                f,
                "route {src} -> {dest}: {steps} segment steps for a {hops}-hop route"
            ),
            SegmentViolation::PriorityCollision { rank } => write!(
                f,
                "continuing and fresh control packets share priority rank {rank}"
            ),
        }
    }
}

impl std::error::Error for SegmentViolation {}

/// Summary of a clean segment-schedule sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentSummary {
    /// Ordered (src, dst) pairs checked (× both origins).
    pub pairs_checked: usize,
    /// Total segment steps validated.
    pub steps_checked: usize,
    /// Longest walk seen, in steps.
    pub max_steps: usize,
}

fn check_walk(
    src: NodeId,
    dest: NodeId,
    origin: ControlOrigin,
    route: &Route,
    steps: &[SegmentStep],
) -> Result<(), SegmentViolation> {
    let hops = route.hops();
    if steps.len() > hops {
        return Err(SegmentViolation::OverlongWalk {
            src,
            dest,
            steps: steps.len(),
            hops,
        });
    }
    let mut expected_pos = 0usize;
    let mut held: Vec<(ClaimKey, usize)> = Vec::new();
    for s in steps {
        let n = s.claims.len();
        let duplicate_pair = n == 2 && s.claims[0] == s.claims[1];
        if n == 0 || n > 2 || duplicate_pair {
            return Err(SegmentViolation::MalformedClaims {
                src,
                dest,
                origin,
                step: s.step,
                claims: n,
            });
        }
        if s.positions.0 != expected_pos {
            return Err(SegmentViolation::NonContiguousWalk {
                src,
                dest,
                step: s.step,
                got: s.positions.0,
                expected: expected_pos,
            });
        }
        if let Some(b) = s.positions.1 {
            if b != s.positions.0 + 1 {
                return Err(SegmentViolation::NonContiguousWalk {
                    src,
                    dest,
                    step: s.step,
                    got: b,
                    expected: s.positions.0 + 1,
                });
            }
        }
        for key in &s.claims {
            if let ClaimKey::MultiDrop(..) = key {
                if let Some(&(_, first_step)) = held.iter().find(|(k, _)| k == key) {
                    return Err(SegmentViolation::RepeatedLatch {
                        src,
                        dest,
                        key: *key,
                        first_step,
                        second_step: s.step,
                    });
                }
                held.push((*key, s.step));
            }
        }
        expected_pos = s.positions.1.unwrap_or(s.positions.0) + 1;
    }
    // The walk must cover the whole route.
    if expected_pos != hops && hops > 0 {
        return Err(SegmentViolation::NonContiguousWalk {
            src,
            dest,
            step: steps.len(),
            got: hops,
            expected: expected_pos,
        });
    }
    Ok(())
}

/// Verifies the maximal segment walk of every routable pair, under both
/// control origins, against the schedule invariants.
///
/// # Errors
///
/// Returns the first [`SegmentViolation`] found (deterministic sweep
/// order: src-major, then dest, LLC before LSD).
pub fn verify_segment_schedule(cfg: &NocConfig) -> Result<SegmentSummary, SegmentViolation> {
    // Static-priority totality: continuing outranks every fresh class,
    // and the two fresh classes are mutually ordered.
    let cont = priority_rank(true, ControlOrigin::Llc);
    for origin in [ControlOrigin::Llc, ControlOrigin::Lsd] {
        if priority_rank(false, origin) == cont {
            return Err(SegmentViolation::PriorityCollision { rank: cont });
        }
    }
    if priority_rank(false, ControlOrigin::Llc) == priority_rank(false, ControlOrigin::Lsd) {
        return Err(SegmentViolation::PriorityCollision {
            rank: priority_rank(false, ControlOrigin::Llc),
        });
    }

    let n = cfg.nodes();
    let mut pairs_checked = 0usize;
    let mut steps_checked = 0usize;
    let mut max_steps = 0usize;
    for src in 0..n {
        for dest in 0..n {
            if src == dest {
                continue;
            }
            let src = NodeId::new(src as u16);
            let dest = NodeId::new(dest as u16);
            let route = Route::compute(cfg, src, dest);
            for origin in [ControlOrigin::Llc, ControlOrigin::Lsd] {
                let steps = segment_schedule(cfg, &route, origin);
                check_walk(src, dest, origin, &route, &steps)?;
                steps_checked += steps.len();
                max_steps = max_steps.max(steps.len());
            }
            pairs_checked += 1;
        }
    }
    Ok(SegmentSummary {
        pairs_checked,
        steps_checked,
        max_steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc::config::NocConfigBuilder;

    #[test]
    fn paper_mesh_schedule_is_conflict_free() {
        let cfg = NocConfig::paper();
        let summary = verify_segment_schedule(&cfg).expect("paper schedule verifies");
        assert_eq!(summary.pairs_checked, 64 * 63);
        // Longest route is 14 hops; multi-drop pairs cut the walk below
        // the hop count but a turn-heavy route can still need one step
        // per hop.
        assert!(summary.max_steps <= 14);
        assert!(summary.steps_checked > 0);
    }

    #[test]
    fn small_mesh_schedule_is_conflict_free() {
        let cfg = NocConfigBuilder::new()
            .radix(4)
            .build()
            .expect("valid test configuration");
        let summary = verify_segment_schedule(&cfg).expect("4x4 schedule verifies");
        assert_eq!(summary.pairs_checked, 16 * 15);
    }

    #[test]
    fn malformed_walk_is_rejected() {
        let cfg = NocConfig::paper();
        let route = Route::compute(&cfg, NodeId::new(0), NodeId::new(5));
        let mut steps = segment_schedule(&cfg, &route, ControlOrigin::Llc);
        assert!(steps.len() >= 3, "walk long enough to corrupt");
        // Corrupt the walk: repeat the first multi-drop claim later on.
        let stolen = steps[1].claims[0];
        if let Some(last) = steps.last_mut() {
            last.claims[0] = stolen;
        }
        let err = check_walk(
            NodeId::new(0),
            NodeId::new(5),
            ControlOrigin::Llc,
            &route,
            &steps,
        )
        .expect_err("repeated latch must be caught");
        assert!(matches!(err, SegmentViolation::RepeatedLatch { .. }));
    }
}
