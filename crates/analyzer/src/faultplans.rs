//! Fault-plan-aware re-verification of the detour routing.
//!
//! The mesh degrades to west-first detour routing ([`noc::faults`]) when
//! a permanent fault lands. The runtime rebuilds its next-hop tables
//! from the damaged topology; this module proves that for **every**
//! single permanent fault — each physical channel cut, each router
//! killed — the resulting tables still route every surviving pair
//! deadlock-free (acyclic channel-dependency graph, see [`crate::cdg`]).
//!
//! Plans are enumerated exhaustively, not sampled: a radix-`r` mesh has
//! `2·r·(r−1)` physical channels and `r²` routers, so an 8×8 sweep is
//! 176 plans, each a full CDG build and acyclicity proof over the exact
//! [`DetourTables`] the runtime would use.

use noc::config::NocConfig;
use noc::faults::{permanent_damage, DetourTables, FaultEvent, FaultPlan};
use noc::routing::neighbor;
use noc::types::{Direction, NodeId};

use crate::cdg::{Cdg, DependencyCycle};
use crate::routing::{RouteError, WestFirstDetour};

/// A human-readable description of one enumerated fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultCase {
    /// Both directions of the physical channel between `node` and its
    /// `dir` neighbour are dead.
    LinkCut {
        /// Router on the canonical (east/south) end of the link.
        node: NodeId,
        /// Direction of the cut link from `node`.
        dir: Direction,
    },
    /// Router `node` and all four adjacent links are dead.
    RouterDown {
        /// The dead router.
        node: NodeId,
    },
}

impl std::fmt::Display for FaultCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FaultCase::LinkCut { node, dir } => write!(f, "link {node}→{dir} cut"),
            FaultCase::RouterDown { node } => write!(f, "router {node} down"),
        }
    }
}

/// Verification failed for one fault plan.
#[must_use]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSweepError {
    /// The detour tables under this fault admit a dependency cycle.
    Cyclic {
        /// The fault that produced the cyclic tables.
        case: FaultCase,
        /// The offending cycle, printable channel by channel.
        cycle: DependencyCycle,
    },
    /// The detour tables under this fault are internally broken
    /// (non-terminating walk or mid-route dead end).
    BrokenRoutes {
        /// The fault that produced the broken tables.
        case: FaultCase,
        /// The underlying route error.
        error: RouteError,
    },
    /// The runtime's detour tables disagree with an independent
    /// reachability computation over the west-first turn-model state
    /// graph: either the tables strand a pair the turn model can route
    /// (lost connectivity), or they claim a route the turn model
    /// forbids (a west hop after a non-west hop — a deadlock hazard).
    ReachabilityMismatch {
        /// The fault under test.
        case: FaultCase,
        /// Source of the disagreeing pair.
        src: NodeId,
        /// Destination of the disagreeing pair.
        dest: NodeId,
        /// Whether the runtime tables route the pair.
        table_routes: bool,
    },
}

impl std::fmt::Display for FaultSweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSweepError::Cyclic { case, cycle } => {
                write!(f, "fault plan [{case}]: {cycle}")
            }
            FaultSweepError::BrokenRoutes { case, error } => {
                write!(f, "fault plan [{case}]: {error}")
            }
            FaultSweepError::ReachabilityMismatch {
                case,
                src,
                dest,
                table_routes,
            } => write!(
                f,
                "fault plan [{case}]: pair {src} -> {dest} is {} by the detour tables but the west-first turn model says otherwise",
                if *table_routes { "routed" } else { "stranded" }
            ),
        }
    }
}

impl std::error::Error for FaultSweepError {}

/// Summary of a clean single-fault sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSweepSummary {
    /// Link-cut plans verified.
    pub link_plans: usize,
    /// Router-down plans verified.
    pub router_plans: usize,
    /// Largest unroutable-pair count seen across all plans (router-down
    /// plans orphan the pairs involving the dead router).
    pub max_unroutable_pairs: usize,
}

/// Every single-permanent-fault plan for `cfg`: one [`FaultPlan`] per
/// physical channel (cutting a link kills both directions, so only the
/// east/south representative of each channel is enumerated) and one per
/// router.
pub fn single_fault_plans(cfg: &NocConfig) -> Vec<(FaultCase, FaultPlan)> {
    let mut plans = Vec::new();
    for node in 0..cfg.nodes() {
        let node = NodeId::new(node as u16);
        for dir in [Direction::East, Direction::South] {
            if neighbor(cfg, node, dir).is_some() {
                plans.push((
                    FaultCase::LinkCut { node, dir },
                    FaultPlan::new(0).with_event(FaultEvent::PermanentLink { at: 0, node, dir }),
                ));
            }
        }
        plans.push((
            FaultCase::RouterDown { node },
            FaultPlan::new(0).with_event(FaultEvent::RouterDown { at: 0, node }),
        ));
    }
    plans
}

/// Destinations the west-first turn model can reach from `src` on the
/// surviving topology, by forward BFS over the state graph
/// `(node, all-hops-so-far-were-west)`. Independent of the backward
/// construction [`DetourTables::build`] uses, so agreement between the
/// two is a real cross-check rather than the same algorithm run twice.
fn turn_model_reachable(
    cfg: &NocConfig,
    dead_link: &[bool],
    dead_router: &[bool],
    src: NodeId,
) -> Vec<bool> {
    let n = cfg.nodes();
    let mut seen = vec![false; n * 2]; // state index = node * 2 + west_ok
    let mut reach = vec![false; n];
    if dead_router[src.index()] {
        return reach;
    }
    let mut queue = std::collections::VecDeque::new();
    seen[src.index() * 2 + 1] = true;
    reach[src.index()] = true;
    queue.push_back((src, true));
    while let Some((here, west_ok)) = queue.pop_front() {
        for dir in Direction::ALL {
            if dir == Direction::West && !west_ok {
                continue; // west hops only while every hop so far was west
            }
            if dead_link[here.index() * 4 + dir as usize] {
                continue;
            }
            let Some(next) = neighbor(cfg, here, dir) else {
                continue;
            };
            if dead_router[next.index()] {
                continue;
            }
            let next_west_ok = west_ok && dir == Direction::West;
            let state = next.index() * 2 + usize::from(next_west_ok);
            if !seen[state] {
                seen[state] = true;
                reach[next.index()] = true;
                queue.push_back((next, next_west_ok));
            }
        }
    }
    reach
}

/// Builds the runtime's detour tables for every single-fault plan,
/// cross-checks their routed-pair set against independent turn-model
/// reachability, and proves each plan's channel-dependency graph
/// acyclic.
///
/// # Errors
///
/// Returns the first failing plan with its counterexample: a printable
/// [`DependencyCycle`], a broken-table diagnosis, or a pair on which
/// the tables and the turn model disagree.
pub fn verify_single_fault_plans(cfg: &NocConfig) -> Result<FaultSweepSummary, FaultSweepError> {
    let n = cfg.nodes();
    let mut summary = FaultSweepSummary {
        link_plans: 0,
        router_plans: 0,
        max_unroutable_pairs: 0,
    };
    for (case, plan) in single_fault_plans(cfg) {
        let (dead_link, dead_router) = permanent_damage(cfg, &plan);
        let tables = DetourTables::for_plan(cfg, &plan);
        let spec = WestFirstDetour::new(tables);
        let cdg = match Cdg::build(cfg, &spec) {
            Ok(cdg) => cdg,
            Err(error) => {
                return Err(FaultSweepError::BrokenRoutes { case, error });
            }
        };
        // The tables must route exactly the turn-model-reachable pairs:
        // stranding a reachable pair loses connectivity the hardware
        // still has; routing an unreachable one means a forbidden turn.
        for src in 0..n {
            let src = NodeId::new(src as u16);
            let reach = turn_model_reachable(cfg, &dead_link, &dead_router, src);
            for (dest, &reachable) in reach.iter().enumerate() {
                if dest == src.index() {
                    continue;
                }
                let dest_id = NodeId::new(dest as u16);
                let table_routes = spec.tables().next_hop(src, dest_id, true).is_some()
                    && !dead_router[src.index()];
                if table_routes != reachable {
                    return Err(FaultSweepError::ReachabilityMismatch {
                        case,
                        src,
                        dest: dest_id,
                        table_routes,
                    });
                }
            }
        }
        if let Err(cycle) = cdg.verify_acyclic() {
            return Err(FaultSweepError::Cyclic { case, cycle });
        }
        summary.max_unroutable_pairs = summary.max_unroutable_pairs.max(cdg.unroutable_pairs());
        match case {
            FaultCase::LinkCut { .. } => summary.link_plans += 1,
            FaultCase::RouterDown { .. } => summary.router_plans += 1,
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc::config::NocConfigBuilder;

    fn mesh(radix: u16) -> NocConfig {
        NocConfigBuilder::new()
            .radix(radix)
            .build()
            .expect("valid test configuration")
    }

    #[test]
    fn plan_enumeration_is_exhaustive() {
        let cfg = mesh(4);
        let plans = single_fault_plans(&cfg);
        // 2·r·(r−1) physical channels + r² routers.
        let links = plans
            .iter()
            .filter(|(c, _)| matches!(c, FaultCase::LinkCut { .. }))
            .count();
        let routers = plans
            .iter()
            .filter(|(c, _)| matches!(c, FaultCase::RouterDown { .. }))
            .count();
        assert_eq!(links, 2 * 4 * 3);
        assert_eq!(routers, 16);
    }

    #[test]
    fn all_single_faults_keep_detours_acyclic_on_4x4() {
        let cfg = mesh(4);
        let summary = verify_single_fault_plans(&cfg).expect("4x4 sweep verifies");
        assert_eq!(summary.link_plans, 24);
        assert_eq!(summary.router_plans, 16);
        // A dead router orphans at least its own 2·(n−1) pairs.
        assert!(summary.max_unroutable_pairs >= 2 * 15);
    }
}
