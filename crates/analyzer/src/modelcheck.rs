//! Explicit-state model checking of the crash-recovery protocol.
//!
//! [`check_protocol`] breadth-first explores every reachable state of
//! the [`crate::protocol`] model — every interleaving of appends,
//! fsyncs, torn writes, worker and supervisor SIGKILLs, heartbeats,
//! stale-lease takeovers, resumes and quarantines within the given
//! bounds — and proves five invariants:
//!
//! 1. **Trusted-prefix monotonicity** — a row committed to the main
//!    journal is never lost or rewritten by any later transition, and
//!    the main journal always replays.
//! 2. **One live writer per shard generation** — no two live worker
//!    processes ever hold the same `(shard, generation)` claim.
//! 3. **No zombie writes** — no harvest (reap or resume) ever accepts
//!    a row written by a process other than the journal's rightful
//!    owner.
//! 4. **Resume equivalence** — from *any* reachable state, the
//!    reconstruction a resume would perform equals the ghost record of
//!    durably-committed rows, exactly and in both directions.
//! 5. **Termination** — the transition graph is acyclic and every
//!    terminal state is a completed sweep (each point finished or
//!    quarantined); the supervisor never abandons the grid.
//!
//! Because breadth-first order visits states by depth, the first
//! violation found yields a **shortest counterexample trace**, printed
//! as a numbered list of protocol actions.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use crate::protocol::{ApplyViolation, Model, ModelBounds, Phase, Semantics, State, Sup};

/// Which of the five protocol invariants a violation falls under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// Invariant 1: committed main-journal rows are immutable and the
    /// main journal always replays.
    TrustedPrefix,
    /// Invariant 2: at most one live writer per `(shard, generation)`.
    OneWriterPerGeneration,
    /// Invariant 3: harvests only accept rows from the rightful owner.
    NoZombieWrites,
    /// Invariant 4: resume reconstruction equals the committed truth.
    ResumeEquivalence,
    /// Invariant 5: every execution completes or quarantines.
    Termination,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InvariantKind::TrustedPrefix => "trusted-prefix monotonicity",
            InvariantKind::OneWriterPerGeneration => "at most one live writer per shard generation",
            InvariantKind::NoZombieWrites => "no zombie writes into a successor's journal",
            InvariantKind::ResumeEquivalence => "resume reconstructs exactly the committed rows",
            InvariantKind::Termination => "every execution completes or quarantines",
        };
        f.write_str(name)
    }
}

/// A proven-reachable protocol violation: which invariant broke, how,
/// and the shortest action sequence that reaches it from the initial
/// state.
#[derive(Debug, Clone)]
pub struct ProtocolViolation {
    /// The invariant that broke.
    pub invariant: InvariantKind,
    /// What exactly went wrong in the violating state.
    pub detail: String,
    /// The shortest counterexample: one protocol action per line.
    pub trace: Vec<String>,
}

impl fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "protocol invariant violated: {}", self.invariant)?;
        writeln!(f, "  {}", self.detail)?;
        writeln!(f, "counterexample ({} step(s)):", self.trace.len())?;
        for (i, action) in self.trace.iter().enumerate() {
            writeln!(f, "  {:2}. {action}", i + 1)?;
        }
        Ok(())
    }
}

/// Exploration statistics for a proven-clean protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelReport {
    /// Distinct states explored.
    pub states: usize,
    /// Transitions taken (including ones into already-seen states).
    pub transitions: usize,
    /// Terminal states where every point completed normally.
    pub terminal_completed: usize,
    /// Terminal states where at least one point was quarantined.
    pub terminal_quarantined: usize,
    /// Highest lease generation any worker reached.
    pub max_generation: u64,
}

struct Node {
    state: State,
    rows: BTreeMap<usize, String>,
    parent: Option<(usize, String)>,
}

/// Exhaustively explores the protocol under `semantics` within
/// `bounds` and proves the five invariants, or returns the shortest
/// counterexample.
///
/// # Errors
///
/// A [`ProtocolViolation`] naming the broken invariant, the concrete
/// failure, and the action trace that reaches it.
pub fn check_protocol(
    bounds: ModelBounds,
    semantics: Semantics,
) -> Result<ModelReport, Box<ProtocolViolation>> {
    let model = Model::new(bounds, semantics);
    let init = model.init();
    let init_rows = model
        .main_rows(&init)
        .map_err(|e| violation(InvariantKind::TrustedPrefix, e, Vec::new()))?;
    let mut nodes = vec![Node {
        state: init.clone(),
        rows: init_rows,
        parent: None,
    }];
    let mut seen: BTreeMap<State, usize> = BTreeMap::new();
    seen.insert(init, 0);
    let mut edges: Vec<Vec<usize>> = vec![Vec::new()];
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    let mut report = ModelReport {
        states: 1,
        transitions: 0,
        terminal_completed: 0,
        terminal_quarantined: 0,
        max_generation: 0,
    };

    while let Some(n) = queue.pop_front() {
        let steps = model.steps(&nodes[n].state);
        if steps.is_empty() {
            classify_terminal(&model, &nodes, n, &mut report)?;
            continue;
        }
        for step in steps {
            report.transitions += 1;
            let trace = || trace_to(&nodes, n, Some(step.label.clone()));
            if let Some(v) = &step.violation {
                let (kind, detail) = match v {
                    ApplyViolation::ZombieWrite(d) => (InvariantKind::NoZombieWrites, d.clone()),
                    ApplyViolation::Abandoned(d) => (InvariantKind::Termination, d.clone()),
                };
                return Err(violation(kind, detail, trace()));
            }
            let rows = check_state(&model, &step.state, &nodes[n].rows)
                .map_err(|(kind, detail)| violation(kind, detail, trace()))?;
            for inst in &step.state.instances {
                report.max_generation = report.max_generation.max(inst.generation);
            }
            if let Some(&id) = seen.get(&step.state) {
                edges[n].push(id);
                continue;
            }
            let id = nodes.len();
            if id >= bounds.max_states {
                return Err(violation(
                    InvariantKind::Termination,
                    format!(
                        "exploration exceeded the {}-state bound without converging",
                        bounds.max_states
                    ),
                    trace(),
                ));
            }
            seen.insert(step.state.clone(), id);
            nodes.push(Node {
                state: step.state,
                rows,
                parent: Some((n, step.label)),
            });
            edges.push(Vec::new());
            edges[n].push(id);
            queue.push_back(id);
            report.states += 1;
        }
    }

    if let Some(id) = find_cycle(&edges) {
        return Err(violation(
            InvariantKind::Termination,
            "the protocol can loop forever (a reachable state can recur)".to_string(),
            trace_to(&nodes, id, None),
        ));
    }
    Ok(report)
}

/// Checks the per-state invariants (1, 2 and 4) for a freshly reached
/// state and returns its main-journal rows for reuse.
fn check_state(
    model: &Model,
    state: &State,
    parent_rows: &BTreeMap<usize, String>,
) -> Result<BTreeMap<usize, String>, (InvariantKind, String)> {
    // Invariant 1: the main journal replays, and every previously
    // committed row survives unchanged.
    let rows = model
        .main_rows(state)
        .map_err(|e| (InvariantKind::TrustedPrefix, e))?;
    for (i, line) in parent_rows {
        if rows.get(i) != Some(line) {
            return Err((
                InvariantKind::TrustedPrefix,
                format!(
                    "the committed row for point {i} ({}) was lost or rewritten",
                    snip(line)
                ),
            ));
        }
    }
    // Invariant 2: at most one live claimed writer per (shard, gen).
    let mut writers: BTreeMap<(usize, u64), u32> = BTreeMap::new();
    for inst in &state.instances {
        if matches!(inst.phase, Phase::Running { .. } | Phase::InPoint { .. }) {
            let slot = writers.entry((inst.shard, inst.generation)).or_insert(0);
            *slot += 1;
            if *slot > 1 {
                return Err((
                    InvariantKind::OneWriterPerGeneration,
                    format!(
                        "two live writers both hold shard {} at generation {}",
                        inst.shard, inst.generation
                    ),
                ));
            }
        }
    }
    // Invariant 4: a resume started here reconstructs the ghost truth.
    let recon = model
        .reconstruct(state)
        .map_err(|e| (InvariantKind::ResumeEquivalence, e))?;
    if recon != state.ghost {
        return Err((
            InvariantKind::ResumeEquivalence,
            first_divergence(model, &recon, state),
        ));
    }
    Ok(rows)
}

/// Describes the first index where reconstruction and ghost disagree.
fn first_divergence(model: &Model, recon: &BTreeMap<usize, String>, state: &State) -> String {
    for i in 0..model.bounds.points {
        match (recon.get(&i), state.ghost.get(&i)) {
            (Some(r), Some(g)) if r != g => {
                return format!(
                    "resume reconstructs point {i} as {} but the committed row is {}",
                    snip(r),
                    snip(g)
                );
            }
            (Some(r), None) => {
                return format!(
                    "resume reconstructs a row for point {i} ({}) that no writer durably \
                     committed",
                    snip(r)
                );
            }
            (None, Some(g)) => {
                return format!(
                    "point {i} was durably committed ({}) but a resume cannot reconstruct it",
                    snip(g)
                );
            }
            _ => {}
        }
    }
    "reconstruction and committed truth diverge".to_string()
}

/// A terminal state must be a finished sweep: supervisor done, every
/// point rowed. Classifies it as completed or quarantined.
fn classify_terminal(
    model: &Model,
    nodes: &[Node],
    id: usize,
    report: &mut ModelReport,
) -> Result<(), Box<ProtocolViolation>> {
    let node = &nodes[id];
    if !matches!(node.state.sup, Sup::Done) || node.rows.len() != model.bounds.points {
        return Err(violation(
            InvariantKind::Termination,
            format!(
                "execution stops with {} of {} point(s) rowed and the supervisor not done",
                node.rows.len(),
                model.bounds.points
            ),
            trace_to(nodes, id, None),
        ));
    }
    if node.rows.values().any(|l| l.contains("poisoned(")) {
        report.terminal_quarantined += 1;
    } else {
        report.terminal_completed += 1;
    }
    Ok(())
}

/// Rebuilds the action trace from the root to `id` (plus an optional
/// final action).
fn trace_to(nodes: &[Node], id: usize, last: Option<String>) -> Vec<String> {
    let mut trace = Vec::new();
    let mut at = id;
    while let Some((parent, label)) = &nodes[at].parent {
        trace.push(label.clone());
        at = *parent;
    }
    trace.reverse();
    trace.extend(last);
    trace
}

/// Iterative three-colour DFS over the explored graph; returns a node
/// on a cycle if one exists (it never should — every transition grows
/// something monotone — but termination deserves a proof, not an
/// argument).
fn find_cycle(edges: &[Vec<usize>]) -> Option<usize> {
    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let mut colour = vec![WHITE; edges.len()];
    for root in 0..edges.len() {
        if colour[root] != WHITE {
            continue;
        }
        // Stack of (node, next-edge-index) frames.
        let mut stack = vec![(root, 0usize)];
        colour[root] = GREY;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if let Some(&child) = edges[node].get(*next) {
                *next += 1;
                match colour[child] {
                    GREY => return Some(child),
                    WHITE => {
                        colour[child] = GREY;
                        stack.push((child, 0));
                    }
                    _ => {}
                }
            } else {
                colour[node] = BLACK;
                stack.pop();
            }
        }
    }
    None
}

/// Truncates a journal line for counterexample readability.
fn snip(line: &str) -> String {
    let mut out: String = line.chars().take(60).collect();
    if out.len() < line.len() {
        out.push('…');
    }
    format!("{out:?}")
}

fn violation(
    invariant: InvariantKind,
    detail: String,
    trace: Vec<String>,
) -> Box<ProtocolViolation> {
    Box::new(ProtocolViolation {
        invariant,
        detail,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use runner::protocol::{header_line, replay_journal_bytes, JournalDialect};

    fn bounds() -> ModelBounds {
        if cfg!(miri) {
            ModelBounds::reduced()
        } else {
            ModelBounds::standard()
        }
    }

    #[test]
    fn the_shipped_protocol_upholds_all_five_invariants() {
        let report = check_protocol(bounds(), Semantics::correct())
            .unwrap_or_else(|v| panic!("unexpected violation:\n{v}"));
        assert!(report.states > 100, "exploration was non-trivial");
        assert!(report.transitions > report.states);
        assert!(
            report.terminal_completed > 0,
            "some executions complete cleanly"
        );
        if cfg!(miri) {
            assert!(report.max_generation >= 1, "a respawn was explored");
        } else {
            assert!(
                report.terminal_quarantined > 0,
                "some executions quarantine a point"
            );
            assert!(
                report.max_generation >= 2,
                "two takeover generations explored"
            );
        }
    }

    #[test]
    fn the_reduced_bounds_also_prove_the_invariants() {
        // The exact configuration the Miri CI job explores; proving it
        // natively keeps that job's runtime honest and its assertions
        // meaningful.
        let report = check_protocol(ModelBounds::reduced(), Semantics::correct())
            .unwrap_or_else(|v| panic!("unexpected violation:\n{v}"));
        assert!(report.terminal_completed > 0);
        assert!(report.max_generation >= 1, "a respawn was explored");
    }

    #[test]
    fn skipping_torn_tail_truncation_yields_a_resume_counterexample() {
        let v = check_protocol(bounds(), Semantics::no_torn_tail_truncation())
            .expect_err("the torn-tail bug double must be caught");
        assert_eq!(v.invariant, InvariantKind::ResumeEquivalence);
        assert!(!v.trace.is_empty());
        assert!(
            v.trace.last().is_some_and(|l| l.contains("torn")),
            "the counterexample ends on a torn write: {:?}",
            v.trace
        );
        let text = v.to_string();
        assert!(text.contains("counterexample ("));
        assert!(text.contains("   1. "), "trace lines are numbered: {text}");
    }

    #[test]
    fn skipping_generation_fencing_yields_a_double_writer_counterexample() {
        let v = check_protocol(bounds(), Semantics::no_generation_fencing())
            .expect_err("the no-fencing bug double must be caught");
        assert_eq!(v.invariant, InvariantKind::OneWriterPerGeneration);
        let text = v.to_string();
        assert!(
            text.contains("SIGKILL supervisor") && text.contains("--resume"),
            "the counterexample goes through a supervisor crash and resume: {text}"
        );
    }

    #[test]
    fn every_tear_offset_of_a_final_row_is_dropped_exactly() {
        // Byte-level lemma behind invariant 4: however a trailing row
        // append is cut short, the real replay trusts exactly the
        // prefix before it — nothing less, and never the torn row.
        let model = crate::protocol::Model::new(ModelBounds::standard(), Semantics::correct());
        let mut base = header_line(&model.header).into_bytes();
        base.extend_from_slice(model.lines[0].as_bytes());
        base.push(b'\n');
        let torn_row = format!("{}\n", model.lines[1]);
        for cut in 0..torn_row.len() {
            let mut bytes = base.clone();
            bytes.extend_from_slice(&torn_row.as_bytes()[..cut]);
            let rep = replay_journal_bytes(&bytes, JournalDialect::WorkerShard)
                .expect("a torn tail is not corruption");
            assert_eq!(rep.done.len(), 1, "only the terminated row survives");
            assert!(rep.done.contains_key(&0));
            assert_eq!(
                rep.valid_len,
                u64::try_from(base.len()).expect("small"),
                "the trusted prefix ends before the tear (cut {cut})"
            );
        }
    }
}
