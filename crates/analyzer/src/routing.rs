//! Routing functions as verifiable objects.
//!
//! A [`RoutingSpec`] describes, for every source/destination pair, the
//! exact hop sequence a head flit follows — the input the
//! channel-dependency-graph construction ([`crate::cdg`]) consumes. Three
//! specs cover the workspace:
//!
//! * [`XyRouting`] — the production dimension-order routing of
//!   [`noc::routing`];
//! * [`WestFirstDetour`] — the fault-degraded west-first tables of
//!   [`noc::faults::DetourTables`], rebuilt here for any fault plan so
//!   the *exact* tables the mesh will use are what gets verified;
//! * [`CheckerboardAdaptive`] — a deliberately unsafe mixed-order
//!   routing (XY from even-parity sources, YX from odd) whose dependency
//!   cycles the verifier must find; it seeds the negative tests and
//!   demonstrates the checker is not vacuous.

use noc::config::NocConfig;
use noc::faults::DetourTables;
use noc::routing::{neighbor, Route};
use noc::types::{Direction, NodeId};

/// A routing function failed to produce a well-formed path.
#[must_use]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The walk exceeded the step bound without reaching the
    /// destination — the next-hop tables loop or wander.
    NonTerminating {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dest: NodeId,
        /// The bound that was exceeded (4 × node count).
        limit: usize,
    },
    /// A next-hop table routed the pair from the source but returned
    /// "unreachable" mid-route — the table is internally inconsistent.
    BrokenTable {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dest: NodeId,
        /// Node at which the table gave up.
        stuck_at: NodeId,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            RouteError::NonTerminating { src, dest, limit } => write!(
                f,
                "route {src} -> {dest} did not terminate within {limit} hops"
            ),
            RouteError::BrokenTable {
                src,
                dest,
                stuck_at,
            } => write!(
                f,
                "route {src} -> {dest} is routable at the source but stuck at {stuck_at}"
            ),
        }
    }
}

impl std::error::Error for RouteError {}

/// A deterministic routing function over a fixed topology.
pub trait RoutingSpec {
    /// Human-readable name used in reports and error messages.
    fn name(&self) -> &'static str;

    /// The hop sequence from `src` to `dest`: `Ok(Some(dirs))` for a
    /// routed pair, `Ok(None)` when the spec declares the pair
    /// unroutable (orphaned by a turn restriction or dead endpoint —
    /// the runtime refuses such injections), `Err` when the spec is
    /// internally inconsistent.
    fn path(
        &self,
        cfg: &NocConfig,
        src: NodeId,
        dest: NodeId,
    ) -> Result<Option<Vec<Direction>>, RouteError>;
}

/// The production dimension-order (XY) routing.
#[derive(Debug, Clone, Copy, Default)]
pub struct XyRouting;

impl RoutingSpec for XyRouting {
    fn name(&self) -> &'static str {
        "xy"
    }

    fn path(
        &self,
        cfg: &NocConfig,
        src: NodeId,
        dest: NodeId,
    ) -> Result<Option<Vec<Direction>>, RouteError> {
        Ok(Some(Route::compute(cfg, src, dest).dirs().to_vec()))
    }
}

/// The west-first detour routing the mesh switches to under permanent
/// faults, driven by the same [`DetourTables`] the runtime builds.
#[derive(Debug, Clone)]
pub struct WestFirstDetour {
    tables: DetourTables,
}

impl WestFirstDetour {
    /// Wraps prebuilt detour tables.
    pub fn new(tables: DetourTables) -> Self {
        WestFirstDetour { tables }
    }

    /// Builds the tables for an undamaged mesh (they reproduce XY).
    pub fn fault_free(cfg: &NocConfig) -> Self {
        let nodes = cfg.nodes();
        WestFirstDetour {
            tables: DetourTables::build(cfg, &vec![false; nodes * 4], &vec![false; nodes]),
        }
    }

    /// The underlying tables.
    pub fn tables(&self) -> &DetourTables {
        &self.tables
    }
}

impl RoutingSpec for WestFirstDetour {
    fn name(&self) -> &'static str {
        "west-first-detour"
    }

    fn path(
        &self,
        cfg: &NocConfig,
        src: NodeId,
        dest: NodeId,
    ) -> Result<Option<Vec<Direction>>, RouteError> {
        use noc::types::Port;
        let limit = cfg.nodes() * 4;
        let mut dirs = Vec::new();
        let mut here = src;
        let mut west_ok = true;
        loop {
            match self.tables.next_hop(here, dest, west_ok) {
                None => {
                    return if here == src {
                        Ok(None) // orphaned pair, refused at injection
                    } else {
                        Err(RouteError::BrokenTable {
                            src,
                            dest,
                            stuck_at: here,
                        })
                    };
                }
                Some(Port::Local) => return Ok(Some(dirs)),
                Some(Port::Dir(d)) => {
                    west_ok = west_ok && d == Direction::West;
                    here = match neighbor(cfg, here, d) {
                        Some(n) => n,
                        None => {
                            return Err(RouteError::BrokenTable {
                                src,
                                dest,
                                stuck_at: here,
                            })
                        }
                    };
                    dirs.push(d);
                    if dirs.len() > limit {
                        return Err(RouteError::NonTerminating { src, dest, limit });
                    }
                }
            }
        }
    }
}

/// A deliberately deadlock-prone minimal routing: XY from sources whose
/// coordinate parity `(x + y) % 2` is even, YX from odd sources. Mixing
/// the two dimension orders admits all eight turns, so every 2×2
/// sub-square with suitable parities carries the classic four-turn
/// dependency cycle (E→S at its NE corner, S→W, W→N, N→E around the
/// square). The verifier must reject this spec with a printed cycle.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckerboardAdaptive;

impl RoutingSpec for CheckerboardAdaptive {
    fn name(&self) -> &'static str {
        "checkerboard-xy-yx"
    }

    fn path(
        &self,
        cfg: &NocConfig,
        src: NodeId,
        dest: NodeId,
    ) -> Result<Option<Vec<Direction>>, RouteError> {
        let s = cfg.coord(src);
        let d = cfg.coord(dest);
        let mut x_hops = Vec::new();
        let mut y_hops = Vec::new();
        let xdir = if d.x > s.x {
            Some(Direction::East)
        } else if d.x < s.x {
            Some(Direction::West)
        } else {
            None
        };
        if let Some(dir) = xdir {
            for _ in 0..(d.x as i32 - s.x as i32).unsigned_abs() {
                x_hops.push(dir);
            }
        }
        let ydir = if d.y > s.y {
            Some(Direction::South)
        } else if d.y < s.y {
            Some(Direction::North)
        } else {
            None
        };
        if let Some(dir) = ydir {
            for _ in 0..(d.y as i32 - s.y as i32).unsigned_abs() {
                y_hops.push(dir);
            }
        }
        let mut dirs = Vec::with_capacity(x_hops.len() + y_hops.len());
        if (u32::from(s.x) + u32::from(s.y)).is_multiple_of(2) {
            dirs.extend(x_hops);
            dirs.extend(y_hops);
        } else {
            dirs.extend(y_hops);
            dirs.extend(x_hops);
        }
        Ok(Some(dirs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_paths_match_route_compute() {
        let cfg = NocConfig::paper();
        let p = XyRouting
            .path(&cfg, NodeId::new(0), NodeId::new(18))
            .expect("xy never errors")
            .expect("xy routes every pair");
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn fault_free_detour_reproduces_xy_paths() {
        let cfg = NocConfig::paper();
        let wf = WestFirstDetour::fault_free(&cfg);
        for (s, d) in [(0u16, 63u16), (63, 0), (7, 56), (12, 34)] {
            let xy = XyRouting
                .path(&cfg, NodeId::new(s), NodeId::new(d))
                .expect("xy never errors")
                .expect("xy routes every pair");
            let det = wf
                .path(&cfg, NodeId::new(s), NodeId::new(d))
                .expect("fault-free tables are consistent")
                .expect("fault-free tables route every pair");
            assert_eq!(xy, det, "{s} -> {d}");
        }
    }

    #[test]
    fn checkerboard_flips_dimension_order_by_parity() {
        let cfg = NocConfig::paper();
        let even = CheckerboardAdaptive
            .path(&cfg, NodeId::new(0), NodeId::new(9))
            .expect("checkerboard never errors")
            .expect("checkerboard routes every pair");
        assert_eq!(even, vec![Direction::East, Direction::South]);
        let odd = CheckerboardAdaptive
            .path(&cfg, NodeId::new(1), NodeId::new(8))
            .expect("checkerboard never errors")
            .expect("checkerboard routes every pair");
        assert_eq!(odd, vec![Direction::South, Direction::West]);
    }
}
