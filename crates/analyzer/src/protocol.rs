//! A small-world **model** of the sweep crash-recovery protocol — the
//! journal / lease / supervisor stack in `runner` — suitable for
//! exhaustive exploration by [`crate::modelcheck`].
//!
//! The model is faithful where it matters and abstract where it does
//! not:
//!
//! * **Shared pure core.** Every protocol *decision* — trusted-prefix
//!   replay, generation fencing, the crash ledger's
//!   done/respawn/quarantine/give-up policy, resume's spawn-generation
//!   rule, and the exact line serialisation — is the real code from
//!   [`runner::protocol`], not a re-implementation. The checker proves
//!   properties of the functions the runtime executes.
//! * **A tiny file system.** Files are inodes holding raw bytes; names
//!   bind to inodes. `create` over an existing name truncates the
//!   *inode in place* (exactly what `File::create` does — this is how
//!   the shared-shard-file bug becomes expressible), while deleting a
//!   name only unlinks it, so an orphaned worker keeps appending to an
//!   inode nobody can see.
//! * **Crashes as byte tears.** Every append can instead be "killed
//!   mid-write", leaving a prefix of the line: one byte, a cut inside
//!   a multi-byte character, the full line missing its newline, or a
//!   parseable-but-truncated digest trail. Each tear consumes the
//!   bounded kill budget, as do whole-process SIGKILLs of a worker or
//!   of the supervisor itself.
//! * **Ghost truth.** A side map records, outside the protocol, which
//!   rows were durably committed into a *linked* journal. The resume
//!   reconstruction must match it exactly — both directions — which is
//!   how torn-tail-trusting bugs are caught.
//!
//! Abstractions (documented, deliberate): supervisor appends to the
//! main journal are atomic (the runtime fsyncs each row and the main
//! journal is never the crash frontier under test); a resume spawns
//! workers only for shards that still have pending points (idle
//! workers that would claim-then-exit add states without adding
//! behaviours); a heartbeat is modelled as the lease-beat write it
//! performs, so it exists only while it would change the lease — a
//! fenced heartbeat writes nothing, which is the absence of the step;
//! and once the supervisor consolidates and finishes, surviving
//! orphans are dropped — no protocol decision can ever observe their
//! remaining writes (see [`Model::steps`] for the quiescent-state
//! partial-order reduction applied during exploration).

use std::collections::{BTreeMap, BTreeSet};

use runner::point::{PointOutcome, PointSpec};
use runner::protocol::{
    check_claim, check_fence, header_line, parse_point_line, point_line, replay_journal_bytes,
    resume_spawn_generation, start_line, CrashLedger, JournalDialect, JournalHeader, JournalReplay,
    Lease, ProtocolError, SupervisorStep, WorkerExit,
};
use runner::{Organization, SweepSpec};

/// Name of the consolidated main journal inside the model file system.
pub const MAIN_JOURNAL: &str = "ckpt";

/// Exploration bounds: how big the modelled world is.
#[derive(Debug, Clone, Copy)]
pub struct ModelBounds {
    /// Worker shards (and supervisor slots).
    pub workers: usize,
    /// Grid points (distributed round-robin over shards).
    pub points: usize,
    /// Crashes attributed to one point before it is quarantined.
    pub crash_limit: u32,
    /// Worker SIGKILLs / mid-write tears the adversary may spend.
    pub kill_budget: u32,
    /// Supervisor SIGKILLs the adversary may spend (each one orphans
    /// the live workers and forces a resume).
    pub sup_kill_budget: u32,
    /// Hard cap on distinct states before exploration aborts loudly.
    pub max_states: usize,
}

impl ModelBounds {
    /// The bounds `cargo xtask verify-protocol` and the test suite
    /// prove: 2 workers, 3 points, 2 generations of respawn, and a
    /// kill budget deep enough to reach quarantine.
    #[must_use]
    pub fn standard() -> ModelBounds {
        ModelBounds {
            workers: 2,
            points: 3,
            crash_limit: 2,
            kill_budget: 2,
            sup_kill_budget: 1,
            max_states: 400_000,
        }
    }

    /// Reduced bounds for interpreted execution (Miri): same protocol,
    /// smaller frontier.
    #[must_use]
    pub fn reduced() -> ModelBounds {
        ModelBounds {
            workers: 2,
            points: 2,
            crash_limit: 2,
            kill_budget: 1,
            sup_kill_budget: 1,
            max_states: 100_000,
        }
    }
}

/// Which implementation variant the model drives. [`Semantics::correct`]
/// is the shipped protocol; the two bug doubles each disable one
/// load-bearing rule so the checker can demonstrate it is load-bearing
/// (and so the counterexample machinery itself is tested).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Semantics {
    /// `true`: replay drops an unterminated tail (the shipped rule).
    /// `false`: a parseable-but-unterminated final line is trusted.
    pub truncate_torn_tail: bool,
    /// `true`: claims and per-point writes are generation-fenced and
    /// shard journals are generation-scoped (the shipped rule).
    /// `false`: no fencing, every generation shares one shard file,
    /// and a resume respawns at generation 0.
    pub generation_fencing: bool,
}

impl Semantics {
    /// The shipped protocol.
    #[must_use]
    pub fn correct() -> Semantics {
        Semantics {
            truncate_torn_tail: true,
            generation_fencing: true,
        }
    }

    /// Seeded bug: trust a parseable torn tail instead of truncating.
    #[must_use]
    pub fn no_torn_tail_truncation() -> Semantics {
        Semantics {
            truncate_torn_tail: false,
            generation_fencing: true,
        }
    }

    /// Seeded bug: no generation fencing anywhere.
    #[must_use]
    pub fn no_generation_fencing() -> Semantics {
        Semantics {
            truncate_torn_tail: true,
            generation_fencing: false,
        }
    }
}

/// A modelled inode number.
pub type Inode = u32;

/// Provenance of one row append into a shard journal: who wrote it.
/// This is ghost state — the protocol cannot see it; the invariants
/// use it to detect zombie writes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RowProv {
    /// Grid index the row claims to be for.
    pub index: usize,
    /// The writing worker's lease generation.
    pub writer_generation: u64,
    /// `true` when the append was torn (never terminated).
    pub torn: bool,
}

/// One file: raw bytes plus per-row provenance (shard journals only).
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct FileModel {
    /// The byte content, exactly as a crashed-and-recovered disk would
    /// present it.
    pub bytes: Vec<u8>,
    /// Ghost provenance of row appends, in append order.
    pub rows: Vec<RowProv>,
}

/// Where a worker instance is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Spawned; has not yet claimed its lease.
    Claiming,
    /// Between points; `cursor` is the lowest grid index not yet tried.
    Running {
        /// Lowest grid index this worker has not yet considered.
        cursor: usize,
    },
    /// Mid-point: the start marker is journalled, the row is not.
    InPoint {
        /// The in-flight grid index.
        point: usize,
    },
    /// Exited cleanly (status 0) but not yet reaped.
    Exited,
    /// Exited with [`runner::protocol::FENCED_EXIT_CODE`] — refused at
    /// claim time or stopped at a point boundary because a later (or
    /// equal) generation holds the lease — but not yet reaped.
    Fenced,
    /// SIGKILLed but not yet reaped.
    Dead,
}

/// One worker process.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Instance {
    /// Globally unique spawn ordinal (the model's PID).
    pub ordinal: u32,
    /// The shard this worker runs.
    pub shard: usize,
    /// Its lease generation.
    pub generation: u64,
    /// `true` while a live supervisor holds its slot; orphans are
    /// untracked.
    pub tracked: bool,
    /// The shard journal inode it holds open, once claimed.
    pub journal: Option<Inode>,
    /// Lifecycle phase.
    pub phase: Phase,
    /// Grid indices already done when this worker was spawned.
    pub done_at_spawn: BTreeSet<usize>,
    /// Quarantined indices this worker was told to skip.
    pub skip: BTreeSet<usize>,
}

/// One supervisor slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Slot {
    /// A worker is (or was) running this shard at `generation`.
    Open {
        /// The slot's lease generation.
        generation: u64,
        /// Ordinal of the instance occupying the slot.
        ordinal: u32,
    },
    /// The shard is finished.
    Closed,
}

/// The supervisor process.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Sup {
    /// Alive and polling workers.
    Running {
        /// One slot per shard.
        slots: Vec<Slot>,
        /// Quarantined indices accumulated this run.
        skip: BTreeSet<usize>,
        /// The pure crash-attribution ledger (real runtime code).
        ledger: CrashLedger,
    },
    /// SIGKILLed; a resume may start a new one.
    Dead,
    /// Completed: every point has a row in the main journal.
    Done,
}

/// One global protocol state. `Ord` so the checker can dedup states in
/// a `BTreeMap` (the analyzer's own determinism lints ban hash maps).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct State {
    /// Inode → file content.
    pub inodes: BTreeMap<Inode, FileModel>,
    /// Directory: name → inode.
    pub names: BTreeMap<String, Inode>,
    /// Shard → current lease content (the `.lease` files).
    pub leases: BTreeMap<usize, Lease>,
    /// Every live-or-unreaped worker process.
    pub instances: Vec<Instance>,
    /// The supervisor.
    pub sup: Sup,
    /// Ghost truth: grid index → the row line some writer durably
    /// committed into a *linked* journal (first commit wins).
    pub ghost: BTreeMap<usize, String>,
    /// Remaining adversary budget for worker SIGKILLs and tears.
    pub kills_left: u32,
    /// Remaining adversary budget for supervisor SIGKILLs.
    pub sup_kills_left: u32,
    /// Next fresh inode number.
    pub next_inode: Inode,
    /// Next fresh worker ordinal.
    pub next_ordinal: u32,
}

/// A violation detected *while applying* a transition (as opposed to
/// the state-level invariants the checker evaluates afterwards).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyViolation {
    /// A harvest accepted a row written by a process other than the
    /// journal's rightful owner.
    ZombieWrite(String),
    /// The supervisor abandoned the sweep (give-up / fatal) instead of
    /// driving it to completed-or-quarantined.
    Abandoned(String),
}

/// One enabled transition out of a state.
#[derive(Debug, Clone)]
pub struct Step {
    /// Human-readable action label (one line of a counterexample).
    pub label: String,
    /// The successor state.
    pub state: State,
    /// A violation the application itself detected, if any.
    pub violation: Option<ApplyViolation>,
}

/// The model: bounds, semantics, and the precomputed grid (a real
/// [`SweepSpec`], so header hashes and row serialisation are the
/// runtime's own).
#[derive(Debug)]
pub struct Model {
    /// Exploration bounds.
    pub bounds: ModelBounds,
    /// Protocol variant under test.
    pub semantics: Semantics,
    /// The expanded grid.
    pub points: Vec<PointSpec>,
    /// The journal header every journal in this world carries.
    pub header: JournalHeader,
    /// Canonical serialised row per grid index (no newline).
    pub lines: Vec<String>,
}

/// The deterministic outcome the modelled worker produces for a point.
/// The status carries a multi-byte character (so a tear can land inside
/// it) and the trail has two samples (so a tear can truncate it into
/// something still parseable).
fn model_outcome(p: &PointSpec) -> PointOutcome {
    let salt = u64::try_from(p.index).expect("model grids are tiny");
    PointOutcome {
        record: p.failed_record("model outcome ☃"),
        trail: vec![(64, 0xA5A5 ^ salt), (128, 0x5A5A ^ salt)],
    }
}

impl Model {
    /// Builds the model world for the given bounds and semantics.
    ///
    /// # Panics
    ///
    /// If the bounds are degenerate (zero workers or points, or more
    /// points than the model's rate table).
    #[must_use]
    pub fn new(bounds: ModelBounds, semantics: Semantics) -> Model {
        let rates = [0.05, 0.10, 0.15, 0.20];
        assert!(bounds.workers >= 1, "need at least one worker");
        assert!(
            bounds.points >= 1 && bounds.points <= rates.len(),
            "model supports 1..={} points",
            rates.len()
        );
        let spec = SweepSpec::new("protocol-model")
            .orgs(&[Organization::Mesh])
            .rates(&rates[..bounds.points]);
        let points = spec.points();
        assert_eq!(points.len(), bounds.points, "one grid point per rate");
        let header = JournalHeader {
            spec_hash: spec.spec_hash(),
            base_seed: spec.base_seed,
            count: points.len(),
            name: spec.name.clone(),
        };
        let lines = points
            .iter()
            .map(|p| point_line(&model_outcome(p)))
            .collect();
        Model {
            bounds,
            semantics,
            points,
            header,
            lines,
        }
    }

    /// The initial state: supervisor running, one claiming worker per
    /// shard at generation 0, main journal holding just its header.
    #[must_use]
    pub fn init(&self) -> State {
        let mut st = State {
            inodes: BTreeMap::new(),
            names: BTreeMap::new(),
            leases: BTreeMap::new(),
            instances: Vec::new(),
            sup: Sup::Dead, // placeholder, replaced below
            ghost: BTreeMap::new(),
            kills_left: self.bounds.kill_budget,
            sup_kills_left: self.bounds.sup_kill_budget,
            next_inode: 0,
            next_ordinal: 0,
        };
        let main = alloc_inode(&mut st, MAIN_JOURNAL);
        st.inodes
            .get_mut(&main)
            .expect("just created")
            .bytes
            .extend_from_slice(header_line(&self.header).as_bytes());
        let mut slots = Vec::with_capacity(self.bounds.workers);
        for shard in 0..self.bounds.workers {
            let ordinal = st.next_ordinal;
            st.next_ordinal += 1;
            st.instances.push(Instance {
                ordinal,
                shard,
                generation: 0,
                tracked: true,
                journal: None,
                phase: Phase::Claiming,
                done_at_spawn: BTreeSet::new(),
                skip: BTreeSet::new(),
            });
            slots.push(Slot::Open {
                generation: 0,
                ordinal,
            });
        }
        st.sup = Sup::Running {
            slots,
            skip: BTreeSet::new(),
            ledger: CrashLedger::new(self.bounds.workers),
        };
        normalize(&mut st);
        st
    }

    /// The shard-journal name a worker at `generation` opens. The
    /// no-fencing double pins every generation to one shared file —
    /// the historical design whose loss of isolation the checker
    /// demonstrates.
    #[must_use]
    pub fn shard_name(&self, shard: usize, generation: u64) -> String {
        if self.semantics.generation_fencing {
            format!("{MAIN_JOURNAL}.s{shard}.g{generation}")
        } else {
            format!("{MAIN_JOURNAL}.s{shard}.g0")
        }
    }

    /// Replays journal bytes under the model's semantics: the real
    /// [`replay_journal_bytes`], plus — for the torn-tail bug double —
    /// trusting a parseable unterminated tail.
    ///
    /// # Errors
    ///
    /// Whatever the real replay rejects (bad header, mid-stream
    /// corruption).
    pub fn replay(
        &self,
        bytes: &[u8],
        dialect: JournalDialect,
    ) -> Result<JournalReplay, ProtocolError> {
        let mut rep = replay_journal_bytes(bytes, dialect)?;
        if !self.semantics.truncate_torn_tail {
            let cut = usize::try_from(rep.valid_len).expect("model journals are small");
            if let Ok(tail) = std::str::from_utf8(&bytes[cut..]) {
                if let Some(outcome) = parse_point_line(tail.trim_end_matches('\n')) {
                    rep.done.insert(outcome.record.index, outcome);
                }
            }
        }
        Ok(rep)
    }

    /// The rows currently committed in the main journal, as the
    /// supervisor would read them: grid index → serialised line.
    ///
    /// # Errors
    ///
    /// A human-readable message when the main journal is missing or
    /// does not replay.
    pub fn main_rows(&self, st: &State) -> Result<BTreeMap<usize, String>, String> {
        let Some(&ino) = st.names.get(MAIN_JOURNAL) else {
            return Err("the main journal is missing".to_string());
        };
        let file = st.inodes.get(&ino).expect("linked inode exists");
        let rep = self
            .replay(&file.bytes, JournalDialect::Main)
            .map_err(|e| format!("the main journal does not replay: {e}"))?;
        Ok(rep.done.iter().map(|(&i, o)| (i, point_line(o))).collect())
    }

    /// What a resume started *right now* would reconstruct: main rows,
    /// then every linked shard journal merged first-wins — the exact
    /// harvest the runtime performs.
    ///
    /// # Errors
    ///
    /// Propagates [`Model::main_rows`] failures.
    pub fn reconstruct(&self, st: &State) -> Result<BTreeMap<usize, String>, String> {
        let mut merged = self.main_rows(st)?;
        let prefix = format!("{MAIN_JOURNAL}.s");
        for (name, &ino) in &st.names {
            if !name.starts_with(&prefix) {
                continue;
            }
            let file = st.inodes.get(&ino).expect("linked inode exists");
            let Ok(rep) = self.replay(&file.bytes, JournalDialect::WorkerShard) else {
                continue;
            };
            if rep.header != self.header {
                continue;
            }
            for (i, o) in rep.done {
                if i < self.bounds.points {
                    merged.entry(i).or_insert_with(|| point_line(&o));
                }
            }
        }
        Ok(merged)
    }

    /// Grid indices belonging to `shard` (round-robin, like the
    /// runtime's `index % workers` partition).
    fn shard_points(&self, shard: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.bounds.points).filter(move |i| i % self.bounds.workers == shard)
    }

    /// Does `shard` still have a point with no row in `rows`?
    fn pending_for(&self, rows: &BTreeMap<usize, String>, shard: usize) -> bool {
        self.shard_points(shard).any(|i| !rows.contains_key(&i))
    }

    /// The next point a worker instance would pick, if any.
    fn next_point(&self, inst: &Instance) -> Option<usize> {
        let cursor = match inst.phase {
            Phase::Running { cursor } => cursor,
            _ => return None,
        };
        self.shard_points(inst.shard)
            .find(|&i| i >= cursor && !inst.done_at_spawn.contains(&i) && !inst.skip.contains(&i))
    }

    /// Every enabled transition out of `st`, in a deterministic order.
    ///
    /// Applies a partial-order reduction once the supervisor-kill
    /// budget is spent and the supervisor is running. From then on the
    /// enabled transitions are worker steps — deterministic progress or
    /// a budgeted tear/kill — and per-shard reaps, and every one of
    /// them is *shard-scoped*: a worker step touches only its own
    /// shard's journal inode, lease, name binding and ghost entries
    /// (plus the shared kill budget, whose decrements commute), and a
    /// reap reads only the reaped shard's artifacts while its global
    /// effects — the ledger's commutative death counts, main-journal
    /// rows for its own shard's points, a shard-filtered respawn —
    /// commute with other shards' steps up to main-journal row order,
    /// which nothing (invariant or protocol decision) observes except
    /// as a keyed map. Steps on different shards therefore reach the
    /// same canonical state in either order (normalisation makes
    /// inode/ordinal allocation order irrelevant) and cannot enable,
    /// disable, or repair each other's shard state; each invariant
    /// decomposes over shard-local state, so a violation visible in a
    /// skipped interleaving persists across the commuted steps and is
    /// still caught. It is thus sound to explore only the lowest shard
    /// with an enabled step, deferring the other shards until it has
    /// none. The transitions that genuinely do *not* commute with
    /// another shard's progress — the supervisor SIGKILL (which decides
    /// *when* every shard is orphaned) and resume (which observes every
    /// shard's files and leases at once) — are exactly the ones the
    /// quiescence condition excludes, so while either is enabled the
    /// full interleaving is explored.
    #[must_use]
    pub fn steps(&self, st: &State) -> Vec<Step> {
        let mut out = Vec::new();
        let quiescent = st.sup_kills_left == 0 && matches!(st.sup, Sup::Running { .. });
        if quiescent {
            let Sup::Running { slots, .. } = &st.sup else {
                unreachable!("quiescence requires a running supervisor")
            };
            for (shard, slot) in slots.iter().enumerate().take(self.bounds.workers) {
                for idx in 0..st.instances.len() {
                    if st.instances[idx].shard == shard {
                        self.instance_steps(st, idx, &mut out);
                    }
                }
                if let Slot::Open {
                    generation,
                    ordinal,
                } = *slot
                {
                    let reapable = st.instances.iter().position(|i| {
                        i.ordinal == ordinal
                            && matches!(i.phase, Phase::Exited | Phase::Fenced | Phase::Dead)
                    });
                    if let Some(pos) = reapable {
                        out.push(self.reap_step(st, shard, generation, pos));
                    }
                }
                if !out.is_empty() {
                    break;
                }
            }
        } else {
            for idx in 0..st.instances.len() {
                self.instance_steps(st, idx, &mut out);
            }
            match &st.sup {
                Sup::Running { slots, .. } => {
                    for (shard, slot) in slots.iter().enumerate() {
                        if let Slot::Open {
                            generation,
                            ordinal,
                        } = *slot
                        {
                            let reapable = st.instances.iter().position(|i| {
                                i.ordinal == ordinal
                                    && matches!(
                                        i.phase,
                                        Phase::Exited | Phase::Fenced | Phase::Dead
                                    )
                            });
                            if let Some(pos) = reapable {
                                out.push(self.reap_step(st, shard, generation, pos));
                            }
                        }
                    }
                    if st.sup_kills_left > 0 {
                        out.push(self.kill_supervisor_step(st));
                    }
                }
                Sup::Dead => out.push(self.resume_step(st)),
                Sup::Done => {}
            }
        }
        for step in &mut out {
            normalize(&mut step.state);
        }
        out
    }

    /// All transitions owned by one worker instance.
    fn instance_steps(&self, st: &State, idx: usize, out: &mut Vec<Step>) {
        match st.instances[idx].phase {
            Phase::Claiming => self.claim_steps(st, idx, out),
            Phase::Running { .. } => self.running_steps(st, idx, out),
            Phase::InPoint { point } => self.finish_steps(st, idx, point, out),
            Phase::Exited | Phase::Fenced | Phase::Dead => {}
        }
        self.heartbeat_step(st, idx, out);
        self.kill_instance_step(st, idx, out);
    }

    /// Claim transitions for a `Claiming` instance: refused-by-fence,
    /// full claim, or killed during the claim (before the journal
    /// exists, or tearing its header).
    fn claim_steps(&self, st: &State, idx: usize, out: &mut Vec<Step>) {
        let inst = &st.instances[idx];
        let (shard, generation) = (inst.shard, inst.generation);
        if self.semantics.generation_fencing {
            if let Err(fence) = check_claim(shard, generation, st.leases.get(&shard)) {
                let mut next = st.clone();
                retire_instance(&mut next, idx, Phase::Fenced);
                out.push(step(format!("worker claim refused: {fence}"), next));
                return;
            }
        }
        // The pid is not protocol-relevant (fencing is by generation);
        // the model pins it so equivalent states merge.
        let lease = Lease {
            shard,
            generation,
            pid: 0,
            beat: 0,
        };
        let name = self.shard_name(shard, generation);
        {
            let mut next = st.clone();
            next.leases.insert(shard, lease);
            let ino = create_file(&mut next, &name);
            next.inodes
                .get_mut(&ino)
                .expect("just created")
                .bytes
                .extend_from_slice(header_line(&self.header).as_bytes());
            next.instances[idx].journal = Some(ino);
            next.instances[idx].phase = Phase::Running { cursor: 0 };
            out.push(step(
                format!(
                    "worker[shard {shard}, gen {generation}] claims its lease and creates {name}"
                ),
                next,
            ));
        }
        if st.kills_left > 0 {
            {
                let mut next = st.clone();
                next.kills_left -= 1;
                next.leases.insert(shard, lease);
                retire_instance(&mut next, idx, Phase::Dead);
                out.push(step(
                    format!(
                        "worker[shard {shard}, gen {generation}] SIGKILLed after the lease write, \
                         before creating its journal"
                    ),
                    next,
                ));
            }
            {
                let mut next = st.clone();
                next.kills_left -= 1;
                next.leases.insert(shard, lease);
                let ino = create_file(&mut next, &name);
                let header = header_line(&self.header);
                let torn = &header.as_bytes()[..header.len() / 2];
                next.inodes
                    .get_mut(&ino)
                    .expect("just created")
                    .bytes
                    .extend_from_slice(torn);
                next.instances[idx].journal = Some(ino);
                retire_instance(&mut next, idx, Phase::Dead);
                out.push(step(
                    format!(
                        "worker[shard {shard}, gen {generation}] SIGKILLed mid-write, tearing \
                         {name}'s header"
                    ),
                    next,
                ));
            }
        }
    }

    /// Transitions for a `Running` instance: fence-stop, start the
    /// next point (with tear variants), or exit cleanly.
    fn running_steps(&self, st: &State, idx: usize, out: &mut Vec<Step>) {
        let inst = &st.instances[idx];
        let (shard, generation) = (inst.shard, inst.generation);
        let Some(point) = self.next_point(inst) else {
            let mut next = st.clone();
            retire_instance(&mut next, idx, Phase::Exited);
            out.push(step(
                format!("worker[shard {shard}, gen {generation}] exits cleanly (shard done)"),
                next,
            ));
            return;
        };
        if self.semantics.generation_fencing {
            if let Err(fence) = check_fence(shard, generation, st.leases.get(&shard)) {
                let mut next = st.clone();
                retire_instance(&mut next, idx, Phase::Fenced);
                out.push(step(
                    format!("worker stops at the point boundary: {fence}"),
                    next,
                ));
                return;
            }
        }
        let ino = inst.journal.expect("a running worker holds its journal");
        let marker = format!("{}\n", start_line(point));
        {
            let mut next = st.clone();
            append_bytes(&mut next, ino, marker.as_bytes());
            next.instances[idx].phase = Phase::InPoint { point };
            out.push(step(
                format!(
                    "worker[shard {shard}, gen {generation}] journals the start marker for \
                     point {point}"
                ),
                next,
            ));
        }
        if st.kills_left > 0 {
            // One marker-tear shape suffices in-model: the replay lemma
            // test proves every byte offset of a torn line is dropped
            // identically.
            let mut next = st.clone();
            next.kills_left -= 1;
            append_bytes(&mut next, ino, &marker.as_bytes()[..marker.len() - 1]);
            retire_instance(&mut next, idx, Phase::Dead);
            out.push(step(
                format!(
                    "worker[shard {shard}, gen {generation}] SIGKILLed mid-write: start \
                     marker for point {point} torn (missing its newline)"
                ),
                next,
            ));
        }
    }

    /// Transitions for an `InPoint` instance: the row append, complete
    /// or torn four different ways.
    fn finish_steps(&self, st: &State, idx: usize, point: usize, out: &mut Vec<Step>) {
        let inst = &st.instances[idx];
        let (shard, generation) = (inst.shard, inst.generation);
        let ino = inst.journal.expect("an in-point worker holds its journal");
        let line = &self.lines[point];
        let full = format!("{line}\n");
        {
            let mut next = st.clone();
            append_bytes(&mut next, ino, full.as_bytes());
            push_prov(&mut next, ino, point, generation, false);
            if linked(&next, ino) {
                next.ghost.entry(point).or_insert_with(|| line.clone());
            }
            next.instances[idx].phase = Phase::Running { cursor: point + 1 };
            out.push(step(
                format!(
                    "worker[shard {shard}, gen {generation}] journals the row for point \
                     {point} and fsyncs"
                ),
                next,
            ));
        }
        if st.kills_left == 0 {
            return;
        }
        // Tear offsets: 1 byte into the multi-byte ☃ in the status
        // (unparseable) and the whole line minus its newline (parseable
        // but unterminated) — the two classes the replay rule must
        // distinguish. The lemma test covers every other byte offset.
        // The truncation bug double additionally tears just past the
        // first trail separator, where trusting the tail resurrects a
        // row with a *corrupted* digest trail.
        let snowman = line.find('☃').expect("model rows carry a snowman") + 1;
        let semi = line.find(';').expect("model rows carry a trail") + 1;
        let mut tears: Vec<(usize, &str, bool)> = vec![
            (snowman, "mid-multibyte", false),
            (full.len() - 1, "missing its newline", true),
        ];
        if !self.semantics.truncate_torn_tail {
            tears.push((semi, "mid-trail (still parseable)", true));
        }
        for (cut, what, parseable) in tears {
            let mut next = st.clone();
            next.kills_left -= 1;
            append_bytes(&mut next, ino, &full.as_bytes()[..cut]);
            if parseable {
                push_prov(&mut next, ino, point, generation, true);
            }
            retire_instance(&mut next, idx, Phase::Dead);
            out.push(step(
                format!(
                    "worker[shard {shard}, gen {generation}] SIGKILLed mid-write: row for \
                     point {point} torn ({what})"
                ),
                next,
            ));
        }
    }

    /// A guarded heartbeat: refreshes the worker's own lease beat. The
    /// transition exists only while the lease is still the worker's own
    /// and unbeaten — a fenced worker's heartbeat writes nothing (the
    /// runtime's heartbeat thread stops on `Beat::Fenced`), which in
    /// the model is the *absence* of this step.
    fn heartbeat_step(&self, st: &State, idx: usize, out: &mut Vec<Step>) {
        let inst = &st.instances[idx];
        if !matches!(inst.phase, Phase::Running { .. } | Phase::InPoint { .. }) {
            return;
        }
        let own_unbeaten = st
            .leases
            .get(&inst.shard)
            .is_some_and(|l| l.generation == inst.generation && l.beat == 0);
        if !own_unbeaten {
            return;
        }
        let mut next = st.clone();
        next.leases.insert(
            inst.shard,
            Lease {
                shard: inst.shard,
                generation: inst.generation,
                pid: 0,
                beat: 1,
            },
        );
        out.push(step(
            format!(
                "worker[shard {}, gen {}] heartbeats its lease",
                inst.shard, inst.generation
            ),
            next,
        ));
    }

    /// SIGKILL of one live worker (budget permitting).
    fn kill_instance_step(&self, st: &State, idx: usize, out: &mut Vec<Step>) {
        let inst = &st.instances[idx];
        if st.kills_left == 0
            || !matches!(
                inst.phase,
                Phase::Claiming | Phase::Running { .. } | Phase::InPoint { .. }
            )
        {
            return;
        }
        let mut next = st.clone();
        next.kills_left -= 1;
        retire_instance(&mut next, idx, Phase::Dead);
        out.push(step(
            format!(
                "SIGKILL worker[shard {}, gen {}]",
                inst.shard, inst.generation
            ),
            next,
        ));
    }

    /// SIGKILL of the supervisor: every tracked worker becomes an
    /// orphan; already-exited workers are lost to the reaper.
    fn kill_supervisor_step(&self, st: &State) -> Step {
        let mut next = st.clone();
        next.sup_kills_left -= 1;
        next.sup = Sup::Dead;
        for inst in &mut next.instances {
            inst.tracked = false;
        }
        next.instances.retain(|i| {
            matches!(
                i.phase,
                Phase::Claiming | Phase::Running { .. } | Phase::InPoint { .. }
            )
        });
        gc_inodes(&mut next);
        step(
            "SIGKILL supervisor (live workers orphaned)".to_string(),
            next,
        )
    }

    /// The supervisor reaps an exited-or-dead worker: harvest its shard
    /// journal row by row, delete the file, then let the real
    /// [`CrashLedger`] decide done / respawn / quarantine / give-up.
    fn reap_step(&self, st: &State, shard: usize, generation: u64, pos: usize) -> Step {
        let mut next = st.clone();
        let mut violation = None;
        let reaped = next.instances[pos].clone();
        let mut rows = match self.main_rows(&next) {
            Ok(rows) => rows,
            Err(e) => {
                return Step {
                    label: format!("supervisor reaps worker[shard {shard}, gen {generation}]"),
                    state: next,
                    violation: Some(ApplyViolation::Abandoned(e)),
                }
            }
        };
        let mut progressed = 0usize;
        let mut dangling = None;
        // Harvest every generation's file still on disk for this
        // shard, exactly like the runtime reap: an orphan of a killed
        // supervisor may have finished points under an older
        // generation, and those rows must not be lost to a later
        // quarantine. The attributing dangling marker comes from the
        // reaped worker's own file alone.
        for g in 0..=generation {
            let gen_name = self.shard_name(shard, g);
            let Some(&ino) = next.names.get(&gen_name) else {
                continue;
            };
            let file = next.inodes.get(&ino).expect("linked inode exists").clone();
            if let Ok(rep) = self.replay(&file.bytes, JournalDialect::WorkerShard) {
                if rep.header == self.header {
                    if g == generation {
                        dangling = rep.dangling_start;
                    }
                    for (i, o) in rep.done {
                        if i >= self.bounds.points || rows.contains_key(&i) {
                            continue;
                        }
                        if violation.is_none() {
                            if let Some(prov) = file.rows.iter().rev().find(|r| r.index == i) {
                                if prov.writer_generation != g {
                                    violation = Some(ApplyViolation::ZombieWrite(format!(
                                        "harvest of shard {shard} (gen {g}) accepted the row \
                                         for point {i}, but it was written under a gen-{} \
                                         claim — a zombie write landed in another \
                                         generation's journal",
                                        prov.writer_generation
                                    )));
                                }
                            }
                        }
                        let serialised = point_line(&o);
                        append_main_row(&mut next, &serialised);
                        rows.insert(i, serialised);
                        progressed += 1;
                    }
                }
            }
            next.names.remove(&gen_name);
        }
        let exit = WorkerExit {
            clean: matches!(reaped.phase, Phase::Exited),
            fenced: matches!(reaped.phase, Phase::Fenced),
            fatal_config: false,
            dangling_start: dangling,
            progressed: progressed > 0,
            shard_pending: self.pending_for(&rows, shard),
        };
        next.instances.remove(pos);
        let mut label =
            format!("supervisor reaps worker[shard {shard}, gen {generation}]: {progressed} row(s) salvaged");
        // The ledger decision happens under a borrow of `sup`; journal
        // and ghost writes are deferred until the borrow ends.
        let mut quarantined: Option<(usize, String)> = None;
        let mut respawn: Option<(u64, BTreeSet<usize>)> = None;
        {
            let Sup::Running {
                slots,
                skip,
                ledger,
            } = &mut next.sup
            else {
                unreachable!("reap only runs under a live supervisor");
            };
            match ledger.on_worker_exit(shard, &exit, self.bounds.crash_limit) {
                SupervisorStep::ShardDone => slots[shard] = Slot::Closed,
                SupervisorStep::FatalWorkerConfig => {
                    violation.get_or_insert(ApplyViolation::Abandoned(format!(
                        "supervisor declared shard {shard}'s worker fatally misconfigured and \
                         abandoned the sweep"
                    )));
                    slots[shard] = Slot::Closed;
                }
                SupervisorStep::GiveUp { deaths } => {
                    violation.get_or_insert(ApplyViolation::Abandoned(format!(
                        "supervisor gave up on shard {shard} after {deaths} unattributed worker \
                         deaths instead of completing or quarantining"
                    )));
                    slots[shard] = Slot::Closed;
                }
                SupervisorStep::Continue { quarantine } => {
                    // A harvested outcome beats a poisoned row: the
                    // crashes were attributed to the point, but some
                    // generation already proved it completes.
                    let quarantine = quarantine.filter(|q| !rows.contains_key(&q.point));
                    if let Some(q) = quarantine {
                        let outcome = PointOutcome {
                            record: self.points[q.point].poisoned_record(q.crashes),
                            trail: Vec::new(),
                        };
                        let serialised = point_line(&outcome);
                        rows.insert(q.point, serialised.clone());
                        skip.insert(q.point);
                        label.push_str(&format!(
                            "; point {} quarantined after {} crash(es)",
                            q.point, q.crashes
                        ));
                        quarantined = Some((q.point, serialised));
                    }
                    if self.pending_for(&rows, shard) {
                        respawn = Some((generation + 1, skip.clone()));
                    } else {
                        slots[shard] = Slot::Closed;
                    }
                }
            }
        }
        if let Some((point, serialised)) = quarantined {
            append_main_row(&mut next, &serialised);
            next.ghost.entry(point).or_insert(serialised);
        }
        if let Some((g, skip_now)) = respawn {
            let ordinal = next.next_ordinal;
            next.next_ordinal += 1;
            next.instances.push(Instance {
                ordinal,
                shard,
                generation: g,
                tracked: true,
                journal: None,
                phase: Phase::Claiming,
                // Only this shard's slice matters to the worker; the
                // filter lets states that differ elsewhere merge.
                done_at_spawn: self
                    .shard_points(shard)
                    .filter(|i| rows.contains_key(i))
                    .collect(),
                skip: skip_now
                    .into_iter()
                    .filter(|i| i % self.bounds.workers == shard)
                    .collect(),
            });
            if let Sup::Running { slots, .. } = &mut next.sup {
                slots[shard] = Slot::Open {
                    generation: g,
                    ordinal,
                };
            }
            label.push_str(&format!("; respawn at gen {g}"));
        }
        finish_if_all_closed(&mut next);
        gc_inodes(&mut next);
        Step {
            label,
            state: next,
            violation,
        }
    }

    /// A new `sweep --resume` after the supervisor died: harvest every
    /// leftover shard journal, consolidate atomically, delete the
    /// leftovers, and spawn fresh workers one generation past anything
    /// observed (generation 0 in the no-fencing double).
    fn resume_step(&self, st: &State) -> Step {
        let mut next = st.clone();
        let mut violation = None;
        let mut merged = match self.main_rows(&next) {
            Ok(rows) => rows,
            Err(e) => {
                return Step {
                    label: "supervisor restarted with --resume".to_string(),
                    state: next,
                    violation: Some(ApplyViolation::Abandoned(e)),
                }
            }
        };
        let mut observed: Vec<u64> = next.leases.values().map(|l| l.generation).collect();
        let prefix = format!("{MAIN_JOURNAL}.s");
        let mut leftovers = Vec::new();
        for (name, &ino) in &next.names {
            if !name.starts_with(&prefix) {
                continue;
            }
            leftovers.push(name.clone());
            let file_gen = name
                .rsplit_once(".g")
                .and_then(|(_, g)| g.parse::<u64>().ok());
            if let Some(g) = file_gen {
                observed.push(g);
            }
            let file = next.inodes.get(&ino).expect("linked inode exists");
            let Ok(rep) = self.replay(&file.bytes, JournalDialect::WorkerShard) else {
                continue;
            };
            if rep.header != self.header {
                continue;
            }
            for (i, o) in rep.done {
                if i >= self.bounds.points || merged.contains_key(&i) {
                    continue;
                }
                if violation.is_none() {
                    if let (Some(fg), Some(prov)) =
                        (file_gen, file.rows.iter().rev().find(|r| r.index == i))
                    {
                        if prov.writer_generation != fg {
                            violation = Some(ApplyViolation::ZombieWrite(format!(
                                "resume harvest of {name} accepted the row for point {i}, but \
                                 it was written at generation {} — a zombie write landed in a \
                                 successor's journal",
                                prov.writer_generation
                            )));
                        }
                    }
                }
                merged.insert(i, point_line(&o));
            }
        }
        // Atomic consolidation: build the merged journal as a fresh
        // inode and rename it over the main name; only then unlink the
        // harvested leftovers. Leases stay — they carry the fencing
        // evidence.
        let mut bytes = header_line(&self.header).into_bytes();
        for line in merged.values() {
            bytes.extend_from_slice(line.as_bytes());
            bytes.push(b'\n');
        }
        let ino = next.next_inode;
        next.next_inode += 1;
        next.inodes.insert(
            ino,
            FileModel {
                bytes,
                rows: Vec::new(),
            },
        );
        next.names.insert(MAIN_JOURNAL.to_string(), ino);
        for name in leftovers {
            next.names.remove(&name);
        }
        let start_generation = if self.semantics.generation_fencing {
            resume_spawn_generation(observed)
        } else {
            0
        };
        let mut slots = Vec::with_capacity(self.bounds.workers);
        let mut spawned = false;
        for shard in 0..self.bounds.workers {
            if self.pending_for(&merged, shard) {
                let ordinal = next.next_ordinal;
                next.next_ordinal += 1;
                next.instances.push(Instance {
                    ordinal,
                    shard,
                    generation: start_generation,
                    tracked: true,
                    journal: None,
                    phase: Phase::Claiming,
                    done_at_spawn: self
                        .shard_points(shard)
                        .filter(|i| merged.contains_key(i))
                        .collect(),
                    skip: BTreeSet::new(),
                });
                slots.push(Slot::Open {
                    generation: start_generation,
                    ordinal,
                });
                spawned = true;
            } else {
                slots.push(Slot::Closed);
            }
        }
        if spawned {
            next.sup = Sup::Running {
                slots,
                skip: BTreeSet::new(),
                ledger: CrashLedger::new(self.bounds.workers),
            };
        } else {
            next.sup = Sup::Done;
            finish_cleanup(&mut next);
        }
        gc_inodes(&mut next);
        Step {
            label: format!(
                "supervisor restarted with --resume: {} row(s) recovered, spawning at gen \
                 {start_generation}",
                merged.len()
            ),
            state: next,
            violation,
        }
    }
}

/// Wraps a violation-free transition.
fn step(label: String, state: State) -> Step {
    Step {
        label,
        state,
        violation: None,
    }
}

/// Allocates a fresh inode bound to `name`.
fn alloc_inode(st: &mut State, name: &str) -> Inode {
    let ino = st.next_inode;
    st.next_inode += 1;
    st.inodes.insert(ino, FileModel::default());
    st.names.insert(name.to_string(), ino);
    ino
}

/// `File::create` semantics: truncate the existing inode in place if
/// the name is bound (every holder of that inode sees the truncation),
/// else allocate a fresh one.
fn create_file(st: &mut State, name: &str) -> Inode {
    if let Some(&ino) = st.names.get(name) {
        let file = st.inodes.get_mut(&ino).expect("linked inode exists");
        file.bytes.clear();
        file.rows.clear();
        ino
    } else {
        alloc_inode(st, name)
    }
}

/// Appends raw bytes to an inode.
fn append_bytes(st: &mut State, ino: Inode, bytes: &[u8]) {
    st.inodes
        .get_mut(&ino)
        .expect("writers hold live inodes")
        .bytes
        .extend_from_slice(bytes);
}

/// Appends a full row line (plus newline) to the main journal.
fn append_main_row(st: &mut State, line: &str) {
    let &ino = st.names.get(MAIN_JOURNAL).expect("main journal is linked");
    let file = st.inodes.get_mut(&ino).expect("linked inode exists");
    file.bytes.extend_from_slice(line.as_bytes());
    file.bytes.push(b'\n');
}

/// Records row provenance on a shard journal inode.
fn push_prov(st: &mut State, ino: Inode, index: usize, writer_generation: u64, torn: bool) {
    st.inodes
        .get_mut(&ino)
        .expect("writers hold live inodes")
        .rows
        .push(RowProv {
            index,
            writer_generation,
            torn,
        });
}

/// Is this inode still reachable through some name?
fn linked(st: &State, ino: Inode) -> bool {
    st.names.values().any(|&i| i == ino)
}

/// Ends an instance's run: tracked instances stay for the reaper in
/// `phase` (`Exited` or `Dead`); orphans vanish immediately.
fn retire_instance(st: &mut State, idx: usize, phase: Phase) {
    if st.instances[idx].tracked {
        st.instances[idx].phase = phase;
    } else {
        st.instances.remove(idx);
    }
    gc_inodes(st);
}

/// Drops inodes no name and no instance can reach (nothing can ever
/// observe them again, so keeping them would only split states).
fn gc_inodes(st: &mut State) {
    let live: BTreeSet<Inode> = st
        .names
        .values()
        .copied()
        .chain(st.instances.iter().filter_map(|i| i.journal))
        .collect();
    st.inodes.retain(|ino, _| live.contains(ino));
}

/// Canonicalises the bookkeeping that is not protocol-visible — inode
/// numbers, worker ordinals, instance order — so states that differ
/// only in allocation history merge during exploration. The renaming
/// is a bijection on live identifiers, so two genuinely different
/// states can never normalise to the same one.
fn normalize(st: &mut State) {
    gc_inodes(st);
    // Instance order: sort by everything except the allocation-derived
    // fields (ordinal, inode). The sort is stable, so ties keep their
    // arrival order.
    st.instances.sort_by(|a, b| {
        (
            a.shard,
            a.generation,
            a.tracked,
            a.phase,
            &a.done_at_spawn,
            &a.skip,
        )
            .cmp(&(
                b.shard,
                b.generation,
                b.tracked,
                b.phase,
                &b.done_at_spawn,
                &b.skip,
            ))
    });
    // Inodes: renumber in (sorted name, then instance) discovery order.
    let mut order: Vec<Inode> = Vec::new();
    for &ino in st.names.values() {
        if !order.contains(&ino) {
            order.push(ino);
        }
    }
    for inst in &st.instances {
        if let Some(ino) = inst.journal {
            if !order.contains(&ino) {
                order.push(ino);
            }
        }
    }
    let imap: BTreeMap<Inode, Inode> = order
        .iter()
        .enumerate()
        .map(|(at, &ino)| (ino, u32::try_from(at).expect("few inodes")))
        .collect();
    st.inodes = std::mem::take(&mut st.inodes)
        .into_iter()
        .map(|(ino, file)| (imap[&ino], file))
        .collect();
    for ino in st.names.values_mut() {
        *ino = imap[ino];
    }
    for inst in &mut st.instances {
        if let Some(ino) = &mut inst.journal {
            *ino = imap[ino];
        }
    }
    st.next_inode = u32::try_from(order.len()).expect("few inodes");
    // Ordinals: renumber by instance position; slots follow.
    let omap: BTreeMap<u32, u32> = st
        .instances
        .iter()
        .enumerate()
        .map(|(at, inst)| (inst.ordinal, u32::try_from(at).expect("few instances")))
        .collect();
    for (at, inst) in st.instances.iter_mut().enumerate() {
        inst.ordinal = u32::try_from(at).expect("few instances");
    }
    if let Sup::Running { slots, .. } = &mut st.sup {
        for slot in slots {
            if let Slot::Open { ordinal, .. } = slot {
                *ordinal = omap[ordinal];
            }
        }
    }
    st.next_ordinal = u32::try_from(st.instances.len()).expect("few instances");
}

/// When every slot is closed the supervisor is done; it clears the
/// coordination files exactly like the runtime's final cleanup.
fn finish_if_all_closed(st: &mut State) {
    if let Sup::Running { slots, .. } = &st.sup {
        if slots.iter().all(|s| matches!(s, Slot::Closed)) {
            st.sup = Sup::Done;
            finish_cleanup(st);
        }
    }
}

/// Final cleanup: leases and shard journals are removed; only the main
/// journal's name survives. Any still-live orphans are dropped from the
/// model: the sweep is consolidated, no reap or resume will ever read a
/// coordination file again, so nothing an orphan writes from here on
/// can influence a protocol decision — tracking it would only append
/// unobservable tail states to every completed execution.
fn finish_cleanup(st: &mut State) {
    st.leases.clear();
    st.names.retain(|name, _| name == MAIN_JOURNAL);
    st.instances.clear();
    gc_inodes(st);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_initial_state_has_a_replayable_main_journal_and_claiming_workers() {
        let model = Model::new(ModelBounds::standard(), Semantics::correct());
        let st = model.init();
        assert_eq!(model.main_rows(&st).expect("replays"), BTreeMap::new());
        assert_eq!(st.instances.len(), 2);
        assert!(st
            .instances
            .iter()
            .all(|i| matches!(i.phase, Phase::Claiming)));
    }

    #[test]
    fn a_full_claim_then_point_then_exit_chain_reaches_done_for_one_shard() {
        let bounds = ModelBounds {
            workers: 1,
            points: 1,
            crash_limit: 2,
            kill_budget: 0,
            sup_kill_budget: 0,
            max_states: 10_000,
        };
        let model = Model::new(bounds, Semantics::correct());
        let mut st = model.init();
        // claim → start → finish → exit → reap, always taking the
        // first (non-tear) step.
        for _ in 0..5 {
            let steps = model.steps(&st);
            st = steps.into_iter().next().expect("a step is enabled").state;
        }
        assert!(matches!(st.sup, Sup::Done));
        let rows = model.main_rows(&st).expect("replays");
        assert_eq!(rows.len(), 1);
        assert_eq!(st.ghost, rows);
        assert_eq!(model.reconstruct(&st).expect("replays"), rows);
    }

    #[test]
    fn create_file_truncates_the_inode_in_place_for_an_existing_name() {
        let model = Model::new(ModelBounds::standard(), Semantics::correct());
        let mut st = model.init();
        let a = create_file(&mut st, "x");
        append_bytes(&mut st, a, b"hello");
        let b = create_file(&mut st, "x");
        assert_eq!(a, b, "same name, same inode");
        assert!(st.inodes[&a].bytes.is_empty(), "truncated in place");
    }

    #[test]
    fn the_no_fencing_double_pins_every_generation_to_one_file() {
        let model = Model::new(ModelBounds::standard(), Semantics::no_generation_fencing());
        assert_eq!(model.shard_name(0, 0), model.shard_name(0, 7));
        let fenced = Model::new(ModelBounds::standard(), Semantics::correct());
        assert_ne!(fenced.shard_name(0, 0), fenced.shard_name(0, 7));
    }

    #[test]
    fn lenient_replay_trusts_a_parseable_unterminated_tail() {
        let strict = Model::new(ModelBounds::standard(), Semantics::correct());
        let lenient = Model::new(
            ModelBounds::standard(),
            Semantics::no_torn_tail_truncation(),
        );
        let mut bytes = header_line(&strict.header).into_bytes();
        bytes.extend_from_slice(strict.lines[0].as_bytes()); // no newline
        let s = strict
            .replay(&bytes, JournalDialect::WorkerShard)
            .expect("replays");
        assert!(s.done.is_empty(), "strict replay drops the torn tail");
        let l = lenient
            .replay(&bytes, JournalDialect::WorkerShard)
            .expect("replays");
        assert_eq!(l.done.len(), 1, "lenient replay trusts the torn tail");
    }
}
