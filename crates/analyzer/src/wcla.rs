//! Worst-case latency analysis wrapper and its property suite.
//!
//! The bound arithmetic lives in [`noc::wcla`] (so the sweep runner can
//! gate points without a dependency cycle); this module is the
//! *verification* layer:
//!
//! * [`analyze_scenario`] derives the flow set of a synthetic workload
//!   (pattern × bounded injection process × rate × response mix),
//!   re-proves the routing deadlock-free via the channel-dependency
//!   graph before trusting its contention sets, and returns per-class
//!   worst-case bounds.
//! * The test suite is the conservativeness proof-by-fuzzing the ISSUE
//!   contract asks for: seeded MMPP/on-off scenarios across radices
//!   4–8, every message class, mesh and PRA organisations — asserting
//!   the *simulated* worst latency never exceeds the analytical bound,
//!   and that the deliberately-unsound [`noc::wcla::naive_bound`] bug
//!   double *is* exceeded (so the suite can tell a sound bound from a
//!   plausible-but-tight one).

use noc::config::NocConfig;
use noc::traffic::{InjectionProcess, Pattern};
use noc::types::MessageClass;
pub use noc::wcla::{
    analyze_flows, flows_for_pattern, naive_bound, FlowBound, FlowSpec, Link, WclaError,
    WclaReport, UTILIZATION_LIMIT,
};

use crate::routing::XyRouting;
use crate::verify_routing;

/// Per-class worst-case bounds for one synthetic scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioBounds {
    /// The derived flow set.
    pub flows: Vec<FlowSpec>,
    /// The full per-flow report.
    pub report: WclaReport,
    /// Worst bound per message class (indexed by VC; `None` when the
    /// scenario carries no traffic of the class).
    pub per_class: [Option<u64>; 3],
}

/// Derives the flow set of `(pattern, process, rate,
/// response_fraction)` on `cfg`, verifies the XY routing the contention
/// sets are built over is deadlock-free, and computes per-class
/// worst-case latency bounds.
///
/// # Errors
///
/// Propagates [`WclaError`] from the flow derivation and analysis;
/// routing-verification failures surface as [`WclaError::BadFlow`]
/// (the contention sets would be meaningless over broken routing).
pub fn analyze_scenario(
    cfg: &NocConfig,
    pattern: Pattern,
    process: InjectionProcess,
    rate: f64,
    response_fraction: f64,
) -> Result<ScenarioBounds, WclaError> {
    verify_routing(cfg, &XyRouting).map_err(|e| WclaError::BadFlow {
        index: 0,
        message: format!("routing verification failed: {e}"),
    })?;
    let flows = flows_for_pattern(cfg, pattern, process, rate, response_fraction)?;
    let report = analyze_flows(cfg, &flows)?;
    let per_class = [
        report.class_bound(&flows, MessageClass::Request),
        report.class_bound(&flows, MessageClass::Coherence),
        report.class_bound(&flows, MessageClass::Response),
    ];
    Ok(ScenarioBounds {
        flows,
        report,
        per_class,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc::config::NocConfigBuilder;
    use noc::network::Network;
    use noc::traffic::TrafficGen;
    use noc::types::NodeId;
    use runner::org::Organization;

    /// One fuzz scenario: a bounded-burst workload on one mesh radix.
    struct Scenario {
        name: &'static str,
        radix: u16,
        pattern: Pattern,
        process: InjectionProcess,
        rate: f64,
        response_fraction: f64,
        class_priority: Option<[u8; 3]>,
    }

    fn scenarios() -> Vec<Scenario> {
        vec![
            Scenario {
                name: "radix4-hotspot-onoff",
                radix: 4,
                pattern: Pattern::Hotspot(NodeId::new(5)),
                process: InjectionProcess::OnOff {
                    on_len: 8,
                    off_len: 56,
                },
                rate: 0.01,
                response_fraction: 0.5,
                class_priority: None,
            },
            Scenario {
                name: "radix4-transpose-mmpp",
                radix: 4,
                pattern: Pattern::Transpose,
                process: InjectionProcess::Mmpp {
                    boost: 8.0,
                    mean_dwell_lo: 80,
                    mean_dwell_hi: 10,
                    max_dwell_hi: 16,
                },
                rate: 0.02,
                response_fraction: 0.5,
                class_priority: None,
            },
            Scenario {
                name: "radix5-complement-onoff",
                radix: 5,
                pattern: Pattern::Complement,
                process: InjectionProcess::OnOff {
                    on_len: 4,
                    off_len: 28,
                },
                rate: 0.03,
                response_fraction: 0.5,
                class_priority: None,
            },
            Scenario {
                name: "radix6-hotspot-mmpp-priority",
                radix: 6,
                pattern: Pattern::Hotspot(NodeId::new(14)),
                process: InjectionProcess::Mmpp {
                    boost: 6.0,
                    mean_dwell_lo: 100,
                    mean_dwell_hi: 8,
                    max_dwell_hi: 12,
                },
                rate: 0.005,
                response_fraction: 0.5,
                class_priority: Some([2, 1, 0]),
            },
            Scenario {
                name: "radix8-uniform-onoff",
                radix: 8,
                pattern: Pattern::UniformRandom,
                process: InjectionProcess::OnOff {
                    on_len: 4,
                    off_len: 60,
                },
                rate: 0.02,
                response_fraction: 0.5,
                class_priority: None,
            },
        ]
    }

    fn config_for(s: &Scenario) -> NocConfig {
        let mut builder = NocConfigBuilder::new().radix(s.radix);
        if let Some(p) = s.class_priority {
            builder = builder.class_priority(p);
        }
        builder.build().expect("scenario config is valid")
    }

    /// Simulates the scenario on `org` for `cycles` injection cycles
    /// plus a full drain, and returns the per-class worst observed
    /// end-to-end latency.
    fn simulate_max_by_class(
        cfg: &NocConfig,
        org: Organization,
        s: &Scenario,
        cycles: u64,
        seed: u64,
    ) -> [u64; 3] {
        let mut net = runner::org::build_network(org, cfg.clone());
        let mut gen = TrafficGen::new(cfg.clone(), s.pattern, s.rate, seed)
            .response_fraction(s.response_fraction)
            .injection(s.process);
        for _ in 0..cycles {
            gen.tick(&mut net);
            net.step();
            net.drain_delivered();
        }
        gen.stop();
        let deadline = net.now() + 200_000;
        while net.in_flight() > 0 && net.now() < deadline {
            net.step();
            net.drain_delivered();
        }
        assert_eq!(net.in_flight(), 0, "scenario must drain");
        net.stats().max_latency_by_class
    }

    #[test]
    fn simulated_worst_latency_never_exceeds_the_bound() {
        // The conservativeness fuzz: every seeded scenario, on both the
        // baseline mesh and the PRA organisation, must keep every
        // class's simulated max at or below the analytical bound.
        for s in scenarios() {
            let cfg = config_for(&s);
            let bounds = analyze_scenario(&cfg, s.pattern, s.process, s.rate, s.response_fraction)
                .unwrap_or_else(|e| panic!("{}: analysis refused: {e}", s.name));
            for org in [Organization::Mesh, Organization::MeshPra] {
                for seed in [11u64, 29, 47] {
                    let sim = simulate_max_by_class(&cfg, org, &s, 4_000, seed);
                    for (vc, &observed) in sim.iter().enumerate() {
                        if observed == 0 {
                            continue;
                        }
                        let bound = bounds.per_class[vc].unwrap_or_else(|| {
                            panic!("{}: class vc{vc} delivered but has no bound", s.name)
                        });
                        assert!(
                            observed <= bound,
                            "{}/{org:?}/seed{seed}: class vc{vc} observed {observed} > bound {bound}",
                            s.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bug_double_naive_bound_is_refuted_by_simulation() {
        // The deliberately-unsound bound (σ=1, no backpressure, no
        // busy-period) must be *beaten* by real bursty traffic — twice,
        // with independent seeds — while the sound bound still holds.
        // This is what gives the conservativeness fuzz its teeth: a
        // bound can only pass if it models burstiness, not because the
        // scenarios are too gentle to expose tight bounds.
        // Transpose at a burst-heavy load: every node's 8-packet burst
        // serialises behind itself (σ·L ≈ 40 flits), which the
        // burst-oblivious naive bound cannot see, while link sharing
        // stays light enough that the sound analysis does not refuse.
        let s = Scenario {
            name: "bug-double",
            radix: 4,
            pattern: Pattern::Transpose,
            process: InjectionProcess::OnOff {
                on_len: 8,
                off_len: 56,
            },
            rate: 0.08,
            response_fraction: 0.5,
            class_priority: None,
        };
        let cfg = config_for(&s);
        let flows = flows_for_pattern(&cfg, s.pattern, s.process, s.rate, s.response_fraction)
            .expect("bounded process");
        let naive = naive_bound(&cfg, &flows).expect("naive bound computes");
        let naive_rsp = flows
            .iter()
            .zip(&naive)
            .filter(|(f, _)| f.class == MessageClass::Response)
            .map(|(_, b)| b.bound)
            .max()
            .expect("response flows exist");
        let sound = analyze_scenario(&cfg, s.pattern, s.process, s.rate, s.response_fraction)
            .expect("sound analysis");
        let sound_rsp = sound.per_class[MessageClass::Response.vc()].expect("response bound");

        let mut refutations = 0;
        for seed in [101u64, 211] {
            let sim = simulate_max_by_class(&cfg, Organization::Mesh, &s, 8_000, seed);
            let observed = sim[MessageClass::Response.vc()];
            assert!(
                observed <= sound_rsp,
                "seed {seed}: sound bound {sound_rsp} violated by {observed}"
            );
            if observed > naive_rsp {
                refutations += 1;
            }
        }
        assert_eq!(
            refutations, 2,
            "bursty traffic must exceed the naive bound ({naive_rsp}) on both seeds"
        );
    }

    #[test]
    fn saturated_scenarios_are_refused_not_bounded() {
        // A hotspot at radix 8 saturates its ejection link; the
        // analysis must refuse rather than print a bound the simulator
        // would demolish.
        let cfg = NocConfigBuilder::new().radix(8).build().expect("config");
        let result = analyze_scenario(
            &cfg,
            Pattern::Hotspot(NodeId::new(27)),
            InjectionProcess::OnOff {
                on_len: 8,
                off_len: 56,
            },
            0.03,
            0.5,
        );
        assert!(
            matches!(result, Err(WclaError::Overloaded { .. })),
            "saturated hotspot must be refused, got {result:?}"
        );
    }

    #[test]
    fn bernoulli_scenarios_are_refused_as_unbounded() {
        let cfg = NocConfigBuilder::new().radix(4).build().expect("config");
        let result = analyze_scenario(
            &cfg,
            Pattern::UniformRandom,
            InjectionProcess::Bernoulli,
            0.01,
            0.5,
        );
        assert!(matches!(result, Err(WclaError::UnboundedProcess)));
    }
}
