//! Channel-dependency-graph construction and the Dally/Seitz acyclicity
//! proof.
//!
//! A **channel** is a directed mesh link `(router, outgoing direction)`.
//! A route that traverses channel `c₁` and then channel `c₂` makes the
//! packet hold `c₁`'s downstream buffer while waiting for `c₂` — a
//! dependency edge `c₁ → c₂`. Dally & Seitz: a routing function is
//! deadlock-free on a wormhole network iff the union of these
//! dependencies over all routes is acyclic. [`Cdg::build`] enumerates
//! every (src, dst) pair under a [`RoutingSpec`] and collects the exact
//! dependency set; [`Cdg::verify_acyclic`] either proves acyclicity or
//! reports one offending cycle, channel by channel.

use noc::config::NocConfig;
use noc::routing::{neighbor, step};
use noc::types::{Direction, NodeId};

use crate::routing::{RouteError, RoutingSpec};

/// A directed mesh channel: the link leaving `node` toward `dir`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel {
    /// Router the channel leaves.
    pub node: NodeId,
    /// Direction of the link from `node`.
    pub dir: Direction,
}

impl std::fmt::Display for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}→{}", self.node, self.dir)
    }
}

/// A dependency cycle found in a channel-dependency graph: the channels
/// in order, with the last depending on the first. Its `Display`
/// rendering is the counterexample the verifier prints.
#[must_use]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyCycle {
    /// The channels on the cycle (length ≥ 2, no repeats).
    pub channels: Vec<Channel>,
}

impl std::fmt::Display for DependencyCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "channel dependency cycle ({} channels): ",
            self.channels.len()
        )?;
        for c in &self.channels {
            write!(f, "{c} ⇒ ")?;
        }
        match self.channels.first() {
            Some(first) => write!(f, "{first}"),
            None => f.write_str("(empty)"),
        }
    }
}

impl std::error::Error for DependencyCycle {}

/// The channel-dependency graph of a routing function on a mesh.
#[derive(Debug, Clone)]
pub struct Cdg {
    nodes: usize,
    /// Dependency adjacency: `adj[c]` lists channel indices `c` depends
    /// on (deduplicated, sorted). Channel index = `node * 4 + dir`.
    adj: Vec<Vec<u32>>,
    /// Total dependency edges.
    edges: usize,
    /// Ordered pairs the spec declared unroutable.
    unroutable_pairs: usize,
}

impl Cdg {
    /// Builds the dependency graph of `spec` over every ordered
    /// (src, dst) pair of the mesh.
    ///
    /// # Errors
    ///
    /// Returns the first [`RouteError`] if the spec produces a
    /// non-terminating or internally inconsistent route.
    pub fn build(cfg: &NocConfig, spec: &dyn RoutingSpec) -> Result<Cdg, RouteError> {
        let n = cfg.nodes();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n * 4];
        let mut edges = 0usize;
        let mut unroutable_pairs = 0usize;
        for src in 0..n {
            for dest in 0..n {
                if src == dest {
                    continue;
                }
                let src = NodeId::new(src as u16);
                let dest = NodeId::new(dest as u16);
                let Some(dirs) = spec.path(cfg, src, dest)? else {
                    unroutable_pairs += 1;
                    continue;
                };
                let mut here = cfg.coord(src);
                let mut prev: Option<u32> = None;
                for d in dirs {
                    let ch = (cfg.node_at(here).index() * 4 + d as usize) as u32;
                    if let Some(p) = prev {
                        let deps = &mut adj[p as usize];
                        if let Err(at) = deps.binary_search(&ch) {
                            deps.insert(at, ch);
                            edges += 1;
                        }
                    }
                    prev = Some(ch);
                    here = step(here, d);
                }
            }
        }
        Ok(Cdg {
            nodes: n,
            adj,
            edges,
            unroutable_pairs,
        })
    }

    /// Number of dependency edges in the graph.
    pub fn dependencies(&self) -> usize {
        self.edges
    }

    /// Number of channels that appear on at least one route.
    pub fn used_channels(&self) -> usize {
        self.adj.iter().filter(|d| !d.is_empty()).count()
    }

    /// Ordered pairs the routing function declared unroutable (orphaned
    /// by a turn restriction or a dead endpoint).
    pub fn unroutable_pairs(&self) -> usize {
        self.unroutable_pairs
    }

    /// Whether the graph contains the dependency `from → to`.
    pub fn has_dependency(&self, from: Channel, to: Channel) -> bool {
        let f = from.node.index() * 4 + from.dir as usize;
        let t = (to.node.index() * 4 + to.dir as usize) as u32;
        self.adj[f].binary_search(&t).is_ok()
    }

    /// Proves the dependency graph acyclic, or returns one cycle.
    ///
    /// # Errors
    ///
    /// Returns the [`DependencyCycle`] found first (iterative DFS,
    /// deterministic order), as the printable counterexample.
    pub fn verify_acyclic(&self) -> Result<(), DependencyCycle> {
        const WHITE: u8 = 0;
        const GREY: u8 = 1;
        const BLACK: u8 = 2;
        let m = self.nodes * 4;
        let mut color = vec![WHITE; m];
        // Iterative DFS keeping the grey path on an explicit stack of
        // (channel, next-neighbour-index) frames.
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for root in 0..m {
            if color[root] != WHITE {
                continue;
            }
            color[root] = GREY;
            stack.push((root, 0));
            while let Some(&mut (c, ref mut next)) = stack.last_mut() {
                if *next < self.adj[c].len() {
                    let t = self.adj[c][*next] as usize;
                    *next += 1;
                    match color[t] {
                        WHITE => {
                            color[t] = GREY;
                            stack.push((t, 0));
                        }
                        GREY => {
                            // Back edge: the grey path from `t` to `c`
                            // plus the edge `c → t` closes a cycle.
                            let from = stack
                                .iter()
                                .position(|&(s, _)| s == t)
                                .expect("grey channel is on the DFS stack");
                            let channels = stack[from..]
                                .iter()
                                .map(|&(s, _)| Channel {
                                    node: NodeId::new((s / 4) as u16),
                                    dir: Direction::ALL[s % 4],
                                })
                                .collect();
                            return Err(DependencyCycle { channels });
                        }
                        _ => {}
                    }
                } else {
                    color[c] = BLACK;
                    stack.pop();
                }
            }
        }
        Ok(())
    }

    /// Validates that `cycle` really is a cycle of this graph: every
    /// consecutive dependency (and the closing edge) exists and every
    /// channel is a real mesh link. Used by the self-checking tests so a
    /// bug in cycle *reporting* cannot masquerade as a detection.
    pub fn confirms_cycle(&self, cfg: &NocConfig, cycle: &DependencyCycle) -> bool {
        let k = cycle.channels.len();
        if k < 2 {
            return false;
        }
        for (i, &c) in cycle.channels.iter().enumerate() {
            if neighbor(cfg, c.node, c.dir).is_none() {
                return false; // off-mesh channel
            }
            let nxt = cycle.channels[(i + 1) % k];
            if !self.has_dependency(c, nxt) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{CheckerboardAdaptive, XyRouting};
    use noc::config::NocConfigBuilder;

    fn mesh(radix: u16) -> NocConfig {
        NocConfigBuilder::new()
            .radix(radix)
            .build()
            .expect("valid test configuration")
    }

    #[test]
    fn xy_cdg_has_no_prohibited_turn_dependencies() {
        let cfg = mesh(4);
        let cdg = Cdg::build(&cfg, &XyRouting).expect("xy builds");
        // XY forbids every turn out of the Y dimension; spot-check one.
        let from = Channel {
            node: NodeId::new(1),
            dir: Direction::South,
        };
        let to = Channel {
            node: NodeId::new(5),
            dir: Direction::East,
        };
        assert!(!cdg.has_dependency(from, to), "Y→X turn in an XY CDG");
        assert!(cdg.unroutable_pairs() == 0);
    }

    #[test]
    fn smallest_mesh_checkerboard_cycle_is_the_textbook_square() {
        let cfg = mesh(2);
        let cdg = Cdg::build(&cfg, &CheckerboardAdaptive).expect("builds");
        let cycle = cdg
            .verify_acyclic()
            .expect_err("checkerboard must be cyclic");
        assert_eq!(cycle.channels.len(), 4, "2×2 mesh: the four-turn square");
        assert!(cdg.confirms_cycle(&cfg, &cycle));
    }

    #[test]
    fn cycle_display_names_every_channel() {
        let cfg = mesh(2);
        let cdg = Cdg::build(&cfg, &CheckerboardAdaptive).expect("builds");
        let cycle = cdg
            .verify_acyclic()
            .expect_err("checkerboard must be cyclic");
        let text = cycle.to_string();
        for c in &cycle.channels {
            assert!(text.contains(&c.to_string()), "{text} misses {c}");
        }
        assert!(text.contains("⇒"));
    }
}
