//! Integration tests for the static verifier — the acceptance checks of
//! the `static-analysis` CI job.
//!
//! * XY and west-first detour routing are proved deadlock-free on 4×4
//!   and 8×8 meshes;
//! * the seeded-cyclic checkerboard routing is rejected with a printed,
//!   self-confirmed dependency cycle;
//! * every single-permanent-fault plan (each link cut, each router
//!   down) keeps the detour CDG acyclic;
//! * the guarded lag arithmetic verifies up to radix 16 while the
//!   wrapping strawman is rejected with an underflow trace;
//! * the control segment schedule is conflict-free on the paper mesh.

use analyzer::{
    analyze, verify_lag, verify_routing, verify_segment_schedule, verify_single_fault_plans,
    AnalysisError, Cdg, CheckerboardAdaptive, LagArith, WestFirstDetour, XyRouting,
    LAG_RADIX_BOUND,
};
use noc::config::{NocConfig, NocConfigBuilder};

fn mesh(radix: u16) -> NocConfig {
    NocConfigBuilder::new()
        .radix(radix)
        .build()
        .expect("valid test configuration")
}

#[test]
fn xy_is_deadlock_free_on_4x4_and_8x8() {
    for radix in [4u16, 8] {
        let cfg = mesh(radix);
        let deps = verify_routing(&cfg, &XyRouting)
            .unwrap_or_else(|e| panic!("XY rejected on {radix}x{radix}: {e}"));
        assert!(deps > 0, "{radix}x{radix} CDG must be non-trivial");
    }
}

#[test]
fn west_first_detour_is_deadlock_free_on_4x4_and_8x8() {
    for radix in [4u16, 8] {
        let cfg = mesh(radix);
        let wf = WestFirstDetour::fault_free(&cfg);
        verify_routing(&cfg, &wf)
            .unwrap_or_else(|e| panic!("west-first rejected on {radix}x{radix}: {e}"));
    }
}

#[test]
fn cyclic_routing_is_rejected_with_a_confirmed_printed_cycle() {
    for radix in [4u16, 8] {
        let cfg = mesh(radix);
        let cdg = Cdg::build(&cfg, &CheckerboardAdaptive).expect("checkerboard routes are minimal");
        let cycle = cdg
            .verify_acyclic()
            .expect_err("checkerboard admits the four-turn cycle");
        // The counterexample must be printable and genuinely a cycle of
        // the graph (not a reporting artifact).
        let text = cycle.to_string();
        assert!(
            text.contains("channel dependency cycle"),
            "missing header: {text}"
        );
        assert!(cycle.channels.len() >= 4, "{radix}x{radix}: {text}");
        assert!(
            cdg.confirms_cycle(&cfg, &cycle),
            "{radix}x{radix}: reported cycle is not in the graph: {text}"
        );
        println!("{radix}x{radix} counterexample: {text}");
    }
}

#[test]
fn every_single_fault_plan_keeps_detours_acyclic_on_4x4() {
    let cfg = mesh(4);
    let summary = verify_single_fault_plans(&cfg)
        .unwrap_or_else(|e| panic!("single-fault sweep failed: {e}"));
    assert_eq!(summary.link_plans, 2 * 4 * 3);
    assert_eq!(summary.router_plans, 16);
}

#[test]
fn every_single_fault_plan_keeps_detours_acyclic_on_8x8() {
    let cfg = mesh(8);
    let summary = verify_single_fault_plans(&cfg)
        .unwrap_or_else(|e| panic!("single-fault sweep failed: {e}"));
    assert_eq!(summary.link_plans, 2 * 8 * 7);
    assert_eq!(summary.router_plans, 64);
}

#[test]
fn lag_arithmetic_is_safe_up_to_radix_16_and_the_strawman_is_not() {
    let report = verify_lag(4, LAG_RADIX_BOUND, LagArith::Guarded)
        .unwrap_or_else(|e| panic!("guarded lag arithmetic rejected: {e}"));
    assert_eq!(report.proofs.len(), usize::from(LAG_RADIX_BOUND) - 1);
    let violation = verify_lag(4, LAG_RADIX_BOUND, LagArith::Wrapping)
        .expect_err("wrapping arithmetic must be rejected");
    assert!(violation.trace.last().is_some_and(|s| s.after.lo < 0));
}

#[test]
fn segment_schedule_is_conflict_free_on_the_paper_mesh() {
    let cfg = NocConfig::paper();
    let summary =
        verify_segment_schedule(&cfg).unwrap_or_else(|e| panic!("segment schedule failed: {e}"));
    assert_eq!(summary.pairs_checked, 64 * 63);
}

#[test]
fn combined_analysis_distinguishes_safe_from_seeded_cyclic() {
    let cfg = mesh(8);
    analyze(&cfg, 4).unwrap_or_else(|e| panic!("8x8 analysis failed: {e}"));
    let err =
        verify_routing(&cfg, &CheckerboardAdaptive).expect_err("cyclic routing must not verify");
    assert!(matches!(err, AnalysisError::Deadlock { .. }));
}
