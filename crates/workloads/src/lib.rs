//! # workloads — synthetic CloudSuite-like server workload profiles
//!
//! The paper evaluates six CloudSuite workloads (Data Serving, MapReduce,
//! Media Streaming, SAT Solver, Web Frontend, Web Search) on Flexus
//! full-system simulation. This crate substitutes deterministic synthetic
//! profiles parameterised by the published characteristics of scale-out
//! server workloads (*Clearing the Clouds*, ASPLOS 2012): low
//! instruction-level parallelism, low memory-level parallelism, large
//! instruction footprints that miss in the L1-I and hit in the LLC, and
//! moderate data working sets.
//!
//! A [`CoreStream`] turns a profile into a per-core, per-instruction event
//! stream. Streams are seeded by `(workload, core)` only, so **the same
//! instruction sequence is replayed no matter which network organisation
//! is simulated** — performance differences between organisations come
//! exclusively from timing, exactly like trace-driven simulation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod profile;
pub mod stream;

pub use profile::{
    BurstShape, WorkloadKind, WorkloadProfile, WorkloadProfileBuilder, WORKLOAD_KEYS,
};
pub use stream::{CoreStream, InstrEvent};
