//! Deterministic per-core instruction event streams.
//!
//! A [`CoreStream`] replays the same sequence of per-instruction events
//! (L1-I misses, L1-D misses, coherence messages, home-slice choices)
//! for a given `(workload, core, seed)` triple, independent of simulation
//! timing. System models consume one event per committed instruction.

use nistats::rng::Rng;

use crate::profile::WorkloadProfile;

/// What a committed instruction does, from the memory system's viewpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrEvent {
    /// Plain compute: no memory-system activity beyond the L1s.
    None,
    /// L1-I miss: fetch a line from the LLC slice at `home` (0-based node
    /// index). Blocks the core until the response returns.
    IMiss {
        /// Home LLC slice of the missing instruction line.
        home: u16,
        /// Whether the home slice hits (pre-drawn for determinism).
        llc_hit: bool,
    },
    /// L1-D miss to the LLC slice at `home`; overlaps with execution up
    /// to the workload's MLP.
    DMiss {
        /// Home LLC slice of the missing data line.
        home: u16,
        /// Whether the home slice hits (pre-drawn for determinism).
        llc_hit: bool,
    },
    /// Coherence action: a single-flit message to another tile.
    Coherence {
        /// Target tile.
        peer: u16,
    },
}

/// A deterministic per-core event stream.
///
/// # Examples
///
/// ```
/// use workloads::{CoreStream, WorkloadKind};
///
/// let mut a = CoreStream::new(WorkloadKind::WebSearch.profile(), 64, 3, 42);
/// let mut b = CoreStream::new(WorkloadKind::WebSearch.profile(), 64, 3, 42);
/// for _ in 0..1_000 {
///     assert_eq!(a.next_event(), b.next_event());
/// }
/// ```
#[derive(Debug)]
pub struct CoreStream {
    profile: WorkloadProfile,
    nodes: u16,
    core: u16,
    rng: Rng,
    instructions: u64,
}

impl CoreStream {
    /// Creates the stream for `core` of a `nodes`-tile system.
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid or `core >= nodes`.
    pub fn new(profile: WorkloadProfile, nodes: u16, core: u16, seed: u64) -> Self {
        profile.assert_valid();
        assert!(core < nodes, "core id within the tile count");
        // Mix workload kind, core id and seed so streams are independent.
        let mixed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((core as u64) << 32)
            .wrapping_add(profile.kind as u64 + 1);
        CoreStream {
            profile,
            nodes,
            core,
            rng: Rng::new(mixed),
            instructions: 0,
        }
    }

    /// The profile driving this stream.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Instructions drawn so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Draws the event of the next committed instruction.
    pub fn next_event(&mut self) -> InstrEvent {
        self.instructions += 1;
        let r: f64 = self.rng.f64();
        let p_i = self.profile.i_miss_prob();
        let p_d = self.profile.d_miss_prob();
        let p_c = self.profile.coherence_prob();
        if r < p_i {
            InstrEvent::IMiss {
                home: self.draw_home(),
                llc_hit: self.rng.gen_bool(self.profile.llc_hit_ratio),
            }
        } else if r < p_i + p_d {
            InstrEvent::DMiss {
                home: self.draw_home(),
                llc_hit: self.rng.gen_bool(self.profile.llc_hit_ratio),
            }
        } else if r < p_i + p_d + p_c {
            InstrEvent::Coherence {
                peer: self.draw_peer(),
            }
        } else {
            InstrEvent::None
        }
    }

    /// Address-interleaved home slice: uniform over all tiles (NUCA with
    /// line-granularity interleaving), excluding no one — local hits are
    /// legitimate and fast.
    fn draw_home(&mut self) -> u16 {
        self.rng.gen_range_u16(0, self.nodes)
    }

    fn draw_peer(&mut self) -> u16 {
        let off = self.rng.gen_range_u16(1, self.nodes);
        (self.core + off) % self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadKind;

    #[test]
    fn streams_are_deterministic() {
        for kind in WorkloadKind::ALL {
            let mut a = CoreStream::new(kind.profile(), 64, 17, 7);
            let mut b = CoreStream::new(kind.profile(), 64, 17, 7);
            for _ in 0..5_000 {
                assert_eq!(a.next_event(), b.next_event());
            }
        }
    }

    #[test]
    fn different_cores_get_different_streams() {
        let mut a = CoreStream::new(WorkloadKind::WebSearch.profile(), 64, 0, 7);
        let mut b = CoreStream::new(WorkloadKind::WebSearch.profile(), 64, 1, 7);
        let same = (0..1_000)
            .filter(|_| a.next_event() == b.next_event())
            .count();
        assert!(same < 1_000, "streams must differ somewhere");
    }

    #[test]
    fn event_rates_match_profile() {
        let profile = WorkloadKind::DataServing.profile();
        let mut s = CoreStream::new(profile, 64, 3, 11);
        let n = 2_000_000;
        let (mut i, mut d, mut c) = (0u64, 0u64, 0u64);
        let mut hits = 0u64;
        for _ in 0..n {
            match s.next_event() {
                InstrEvent::IMiss { llc_hit, .. } => {
                    i += 1;
                    hits += llc_hit as u64;
                }
                InstrEvent::DMiss { llc_hit, .. } => {
                    d += 1;
                    hits += llc_hit as u64;
                }
                InstrEvent::Coherence { .. } => c += 1,
                InstrEvent::None => {}
            }
        }
        let i_mpki = i as f64 / n as f64 * 1000.0;
        let d_mpki = d as f64 / n as f64 * 1000.0;
        let c_pki = c as f64 / n as f64 * 1000.0;
        assert!(
            (i_mpki - profile.i_mpki).abs() / profile.i_mpki < 0.05,
            "{i_mpki}"
        );
        assert!(
            (d_mpki - profile.d_mpki).abs() / profile.d_mpki < 0.05,
            "{d_mpki}"
        );
        assert!(
            (c_pki - profile.coherence_per_kilo_instr).abs() < 0.3,
            "{c_pki}"
        );
        let hit_ratio = hits as f64 / (i + d) as f64;
        assert!(
            (hit_ratio - profile.llc_hit_ratio).abs() < 0.02,
            "{hit_ratio}"
        );
        assert_eq!(s.instructions(), n);
    }

    #[test]
    fn homes_cover_the_whole_mesh() {
        let mut s = CoreStream::new(WorkloadKind::MapReduce.profile(), 64, 5, 3);
        let mut seen = [false; 64];
        for _ in 0..200_000 {
            if let InstrEvent::IMiss { home, .. } | InstrEvent::DMiss { home, .. } = s.next_event()
            {
                seen[home as usize] = true;
            }
        }
        assert!(
            seen.iter().all(|s| *s),
            "interleaving must reach every slice"
        );
    }

    #[test]
    fn coherence_peers_never_self() {
        let mut s = CoreStream::new(WorkloadKind::WebFrontend.profile(), 64, 9, 3);
        for _ in 0..200_000 {
            if let InstrEvent::Coherence { peer } = s.next_event() {
                assert_ne!(peer, 9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "core id within the tile count")]
    fn core_out_of_range_panics() {
        let _ = CoreStream::new(WorkloadKind::WebSearch.profile(), 64, 64, 1);
    }
}
