//! Workload profiles.
//!
//! Parameter provenance: the profiles encode the qualitative
//! characterisation of scale-out server workloads from *Clearing the
//! Clouds* (ASPLOS 2012) and the paper itself — most importantly the
//! instruction-fetch-dominated LLC traffic and the per-workload ILP/MLP
//! ordering (Media Streaming has "very low ILP and MLP", making it the
//! most LLC-latency-sensitive, Section V.A). Absolute values are
//! calibrated so the mesh→ideal performance gap of the simulated 64-core
//! system reproduces the paper's Figure 2/6 bands.

/// The six CloudSuite workloads of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// NoSQL data store serving key-value lookups (Cassandra).
    DataServing,
    /// Batch Hadoop text analytics.
    MapReduce,
    /// Streaming server pushing video over RTSP (Darwin).
    MediaStreaming,
    /// Batch SAT solving (Klee/Cloud9 style).
    SatSolver,
    /// Social-web PHP frontend (Olio).
    WebFrontend,
    /// Nutch/Lucene index search.
    WebSearch,
}

impl WorkloadKind {
    /// All six workloads, in the paper's figure order.
    pub const ALL: [WorkloadKind; 6] = [
        WorkloadKind::DataServing,
        WorkloadKind::MapReduce,
        WorkloadKind::MediaStreaming,
        WorkloadKind::SatSolver,
        WorkloadKind::WebFrontend,
        WorkloadKind::WebSearch,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::DataServing => "Data Serving",
            WorkloadKind::MapReduce => "MapReduce",
            WorkloadKind::MediaStreaming => "Media Streaming",
            WorkloadKind::SatSolver => "SAT Solver",
            WorkloadKind::WebFrontend => "Web Frontend",
            WorkloadKind::WebSearch => "Web Search",
        }
    }

    /// The calibrated profile for this workload.
    pub fn profile(self) -> WorkloadProfile {
        match self {
            // Request-heavy key-value serving: moderate ILP, decent MLP,
            // large instruction footprint.
            WorkloadKind::DataServing => WorkloadProfile {
                kind: self,
                ilp: 1.6,
                mlp: 4,
                i_mpki: 10.0,
                d_mpki: 12.0,
                llc_hit_ratio: 0.80,
                coherence_per_kilo_instr: 1.2,
            },
            // Batch analytics: higher ILP, more data misses that overlap,
            // least sensitive to LLC latency.
            WorkloadKind::MapReduce => WorkloadProfile {
                kind: self,
                ilp: 1.8,
                mlp: 6,
                i_mpki: 8.0,
                d_mpki: 18.0,
                llc_hit_ratio: 0.72,
                coherence_per_kilo_instr: 0.8,
            },
            // "Very low ILP and MLP, making it particularly sensitive to
            // the LLC access latency" (Section V.A).
            WorkloadKind::MediaStreaming => WorkloadProfile {
                kind: self,
                ilp: 1.2,
                mlp: 1,
                i_mpki: 22.0,
                d_mpki: 6.0,
                llc_hit_ratio: 0.88,
                coherence_per_kilo_instr: 0.5,
            },
            // Compute-heavy batch solver: high ILP, small instruction
            // footprint.
            WorkloadKind::SatSolver => WorkloadProfile {
                kind: self,
                ilp: 2.0,
                mlp: 5,
                i_mpki: 9.0,
                d_mpki: 16.0,
                llc_hit_ratio: 0.70,
                coherence_per_kilo_instr: 0.6,
            },
            // PHP frontend: large instruction footprint, modest MLP.
            WorkloadKind::WebFrontend => WorkloadProfile {
                kind: self,
                ilp: 1.5,
                mlp: 3,
                i_mpki: 12.5,
                d_mpki: 10.0,
                llc_hit_ratio: 0.82,
                coherence_per_kilo_instr: 1.0,
            },
            // Index search: latency-critical, instruction-bound, low MLP.
            WorkloadKind::WebSearch => WorkloadProfile {
                kind: self,
                ilp: 1.4,
                mlp: 2,
                i_mpki: 19.0,
                d_mpki: 8.0,
                llc_hit_ratio: 0.85,
                coherence_per_kilo_instr: 0.9,
            },
        }
    }

    /// Whether the workload is a batch job (SAT Solver, MapReduce) rather
    /// than a latency-sensitive service, per Section IV-C.
    pub fn is_batch(self) -> bool {
        matches!(self, WorkloadKind::MapReduce | WorkloadKind::SatSolver)
    }

    /// Stable machine-readable key (CLI flags, sweep specs).
    pub fn key(self) -> &'static str {
        match self {
            WorkloadKind::DataServing => "data_serving",
            WorkloadKind::MapReduce => "mapreduce",
            WorkloadKind::MediaStreaming => "media_streaming",
            WorkloadKind::SatSolver => "sat_solver",
            WorkloadKind::WebFrontend => "web_frontend",
            WorkloadKind::WebSearch => "web_search",
        }
    }

    /// Parses a [`WorkloadKind::key`] string (see [`WORKLOAD_KEYS`]).
    pub fn from_key(key: &str) -> Option<WorkloadKind> {
        WorkloadKind::ALL.into_iter().find(|k| k.key() == key)
    }
}

/// The valid [`WorkloadKind::from_key`] keys, for CLI error messages.
pub const WORKLOAD_KEYS: &str =
    "data_serving, mapreduce, media_streaming, sat_solver, web_frontend, web_search";

/// LLC round-trip latency (cycles) of the paper's 16×16 mesh at low
/// load — the stall between miss bursts that sets the off-phase of the
/// derived on-off injection shape (Section III: ~30-cycle average LLC
/// access over the mesh).
const LLC_ROUND_TRIP_CYCLES: u32 = 30;

/// A per-workload bursty injection shape: `on_len` cycles of
/// back-to-back LLC traffic followed by `off_len` idle cycles.
///
/// The numbers are plain cycle counts so this crate stays free of `noc`
/// types; callers map the pair onto `noc::traffic::InjectionProcess::
/// OnOff`. The long-run rate is unchanged by the shape (the generator
/// scales the on-phase rate to preserve the mean).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstShape {
    /// Burst (on-phase) length in cycles; always ≥ 1.
    pub on_len: u32,
    /// Idle (off-phase) length in cycles.
    pub off_len: u32,
}

/// Per-workload behavioural parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Which workload this profile describes.
    pub kind: WorkloadKind,
    /// Instructions the core can commit per unstalled cycle (bounded by
    /// the 3-way Cortex-A15-like core; server workloads rarely sustain
    /// more than ~2).
    pub ilp: f64,
    /// Maximum overlapped outstanding data misses (memory-level
    /// parallelism); instruction-fetch misses always block.
    pub mlp: u8,
    /// L1-I misses per kilo-instruction (served by the LLC — the paper's
    /// dominant NoC traffic).
    pub i_mpki: f64,
    /// L1-D misses per kilo-instruction.
    pub d_mpki: f64,
    /// Fraction of LLC accesses that hit (the rest go to memory).
    pub llc_hit_ratio: f64,
    /// Coherence (invalidation/forward) messages per kilo-instruction.
    pub coherence_per_kilo_instr: f64,
}

impl WorkloadProfile {
    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of its physical range; profiles are
    /// construction-time constants, so this is a programming error.
    pub fn assert_valid(&self) {
        assert!(
            self.ilp > 0.0 && self.ilp <= 3.0,
            "ILP within the 3-way core"
        );
        assert!(self.mlp >= 1, "at least one outstanding miss");
        assert!(self.i_mpki >= 0.0 && self.i_mpki < 1000.0);
        assert!(self.d_mpki >= 0.0 && self.d_mpki < 1000.0);
        assert!((0.0..=1.0).contains(&self.llc_hit_ratio));
        assert!(self.coherence_per_kilo_instr >= 0.0);
    }

    /// Probability that a committed instruction triggers an L1-I miss.
    pub fn i_miss_prob(&self) -> f64 {
        self.i_mpki / 1000.0
    }

    /// Probability that a committed instruction triggers an L1-D miss.
    pub fn d_miss_prob(&self) -> f64 {
        self.d_mpki / 1000.0
    }

    /// Probability that a committed instruction triggers a coherence
    /// message.
    pub fn coherence_prob(&self) -> f64 {
        self.coherence_per_kilo_instr / 1000.0
    }

    /// The workload's bursty injection shape for synthetic QoS studies.
    ///
    /// A core with memory-level parallelism `m` issues up to `m`
    /// overlapped misses back-to-back (the burst), then stalls for an
    /// LLC round trip before the next cluster — so `on_len = mlp` and
    /// `off_len` is the mesh LLC round-trip. Media Streaming (MLP 1)
    /// therefore degenerates toward near-steady injection while
    /// MapReduce (MLP 6) produces the longest bursts, matching the
    /// workload ordering of Section V.A.
    pub fn burst_shape(&self) -> BurstShape {
        BurstShape {
            on_len: u32::from(self.mlp.max(1)),
            off_len: LLC_ROUND_TRIP_CYCLES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_valid() {
        for kind in WorkloadKind::ALL {
            kind.profile().assert_valid();
            assert_eq!(kind.profile().kind, kind);
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn media_streaming_is_most_latency_sensitive() {
        // Lowest ILP and MLP of all profiles (Section V.A).
        let ms = WorkloadKind::MediaStreaming.profile();
        for kind in WorkloadKind::ALL {
            let p = kind.profile();
            assert!(ms.ilp <= p.ilp, "{:?}", kind);
            assert!(ms.mlp <= p.mlp, "{:?}", kind);
        }
    }

    #[test]
    fn batch_classification_matches_paper() {
        assert!(WorkloadKind::MapReduce.is_batch());
        assert!(WorkloadKind::SatSolver.is_batch());
        assert!(!WorkloadKind::WebSearch.is_batch());
        assert!(!WorkloadKind::MediaStreaming.is_batch());
        assert!(!WorkloadKind::DataServing.is_batch());
        assert!(!WorkloadKind::WebFrontend.is_batch());
    }

    #[test]
    fn probabilities_are_small() {
        for kind in WorkloadKind::ALL {
            let p = kind.profile();
            assert!(p.i_miss_prob() < 0.05);
            assert!(p.d_miss_prob() < 0.05);
            assert!(p.coherence_prob() < 0.01);
        }
    }

    #[test]
    fn keys_round_trip_and_are_all_listed() {
        for kind in WorkloadKind::ALL {
            assert_eq!(WorkloadKind::from_key(kind.key()), Some(kind));
            assert!(WORKLOAD_KEYS.contains(kind.key()), "{:?}", kind);
        }
        assert_eq!(WorkloadKind::from_key("quake"), None);
    }

    #[test]
    fn burst_shapes_track_mlp() {
        for kind in WorkloadKind::ALL {
            let shape = kind.profile().burst_shape();
            assert!(shape.on_len >= 1);
            assert!(shape.off_len >= 1);
            assert_eq!(shape.on_len, u32::from(kind.profile().mlp));
        }
        // Media Streaming (lowest MLP) has the shortest burst of all.
        let ms = WorkloadKind::MediaStreaming.profile().burst_shape();
        for kind in WorkloadKind::ALL {
            assert!(ms.on_len <= kind.profile().burst_shape().on_len);
        }
    }

    #[test]
    fn instruction_misses_dominate_for_services() {
        // Latency-sensitive services are instruction-footprint bound.
        for kind in [
            WorkloadKind::MediaStreaming,
            WorkloadKind::WebSearch,
            WorkloadKind::WebFrontend,
        ] {
            let p = kind.profile();
            assert!(p.i_mpki > p.d_mpki, "{:?}", kind);
        }
    }
}

/// Builder for custom [`WorkloadProfile`]s (parameter studies and
/// calibration sweeps).
///
/// # Examples
///
/// ```
/// use workloads::{WorkloadKind, WorkloadProfileBuilder};
///
/// let profile = WorkloadProfileBuilder::from(WorkloadKind::WebSearch)
///     .ilp(1.8)
///     .i_mpki(30.0)
///     .llc_hit_ratio(0.9)
///     .build();
/// assert_eq!(profile.ilp, 1.8);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadProfileBuilder {
    profile: WorkloadProfile,
}

impl WorkloadProfileBuilder {
    /// Starts from a named workload's calibrated profile.
    pub fn from(kind: WorkloadKind) -> Self {
        WorkloadProfileBuilder {
            profile: kind.profile(),
        }
    }

    /// Sets the unstalled commit rate (instructions per cycle).
    pub fn ilp(mut self, ilp: f64) -> Self {
        self.profile.ilp = ilp;
        self
    }

    /// Sets the maximum overlapped outstanding data misses.
    pub fn mlp(mut self, mlp: u8) -> Self {
        self.profile.mlp = mlp;
        self
    }

    /// Sets the L1-I misses per kilo-instruction.
    pub fn i_mpki(mut self, v: f64) -> Self {
        self.profile.i_mpki = v;
        self
    }

    /// Sets the L1-D misses per kilo-instruction.
    pub fn d_mpki(mut self, v: f64) -> Self {
        self.profile.d_mpki = v;
        self
    }

    /// Sets the LLC hit ratio.
    pub fn llc_hit_ratio(mut self, v: f64) -> Self {
        self.profile.llc_hit_ratio = v;
        self
    }

    /// Sets the coherence messages per kilo-instruction.
    pub fn coherence_per_kilo_instr(mut self, v: f64) -> Self {
        self.profile.coherence_per_kilo_instr = v;
        self
    }

    /// Scales both miss rates by `factor` (load sweeps).
    pub fn scale_misses(mut self, factor: f64) -> Self {
        self.profile.i_mpki *= factor;
        self.profile.d_mpki *= factor;
        self
    }

    /// Validates and returns the profile.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is outside its physical range (see
    /// [`WorkloadProfile::assert_valid`]).
    pub fn build(self) -> WorkloadProfile {
        self.profile.assert_valid();
        self.profile
    }
}

#[cfg(test)]
mod builder_tests {
    use super::*;

    #[test]
    fn builder_overrides_fields() {
        let p = WorkloadProfileBuilder::from(WorkloadKind::DataServing)
            .ilp(2.2)
            .mlp(7)
            .i_mpki(3.0)
            .d_mpki(4.0)
            .llc_hit_ratio(0.5)
            .coherence_per_kilo_instr(0.1)
            .build();
        assert_eq!(p.ilp, 2.2);
        assert_eq!(p.mlp, 7);
        assert_eq!(p.i_mpki, 3.0);
        assert_eq!(p.d_mpki, 4.0);
        assert_eq!(p.llc_hit_ratio, 0.5);
        assert_eq!(p.kind, WorkloadKind::DataServing);
    }

    #[test]
    fn scale_misses_is_multiplicative() {
        let base = WorkloadKind::WebSearch.profile();
        let p = WorkloadProfileBuilder::from(WorkloadKind::WebSearch)
            .scale_misses(0.5)
            .build();
        assert!((p.i_mpki - base.i_mpki * 0.5).abs() < 1e-12);
        assert!((p.d_mpki - base.d_mpki * 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ILP within the 3-way core")]
    fn builder_rejects_invalid_ilp() {
        let _ = WorkloadProfileBuilder::from(WorkloadKind::WebSearch)
            .ilp(9.0)
            .build();
    }
}
