//! Deliberately non-compliant code: the lint-pass fixture.
//!
//! Not a workspace member (no `Cargo.toml`); this file never compiles.
//! `cargo xtask check crates/xtask/fixtures/bad_crate/src` must report
//! every lint exactly once, and the integration tests assert it does.

/// Missing `#[must_use]`: must-use-errors.
pub enum SlotAllocError {
    Full,
}

/// Bare unwrap in library code: no-unwrap.
pub fn pop_cycle(q: &mut Vec<u64>) -> u64 {
    q.pop().unwrap()
}

/// Expect without a string-literal message: no-unwrap.
pub fn head(q: &[u64], why: &str) -> u64 {
    *q.first().expect(why)
}

/// Narrowing cast on a lag quantity: no-bare-cast.
pub fn truncate_lag(launch_lag: u64) -> u8 {
    launch_lag as u8
}

/// Direct mutation of a watchdog-audited counter: no-counter-poke.
pub fn cook_the_books(stats: &mut FaultStatsLike) {
    stats.control_drops += 1;
}

#[cfg(test)]
mod tests {
    // Exempt: unwrap in test code is fine.
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u8> = Some(1);
        v.unwrap();
    }
}
