//! Deliberately nondeterministic code: the determinism-lint fixture.
//!
//! Not a workspace member (no `Cargo.toml`); this file never compiles.
//! `cargo xtask check crates/xtask/fixtures/nondet_crate/src` must
//! report each determinism lint exactly once, and the `det:allow`
//! escape at the bottom must be honoured — the integration tests
//! assert both.

/// Randomized iteration order: no-hashmap-iteration.
pub fn tally(events: &[u32]) -> HashMap<u32, u32> {
    let mut counts = new_map();
    for e in events {
        *counts.entry(*e).or_insert(0) += 1;
    }
    counts
}

/// Host clock in digest-covered code: no-wallclock.
pub fn stamp_row(row: &str) -> String {
    let now = SystemTime::now();
    format!("{row}\t{now:?}")
}

/// OS entropy: no-ambient-randomness.
pub fn jittered_seed(base: u64) -> u64 {
    base ^ thread_rng().next_u64()
}

/// Lossy decimal float text in an artifact row: no-lossy-float-format.
pub fn csv_cell(inj_rate: f64) -> String {
    format!("{inj_rate}")
}

/// An audited wall-clock read the escape comment exempts; this must
/// NOT be reported.
pub fn log_banner() -> String {
    // det:allow(no-wallclock) — human-only log banner; the value never
    // reaches an artifact or digest.
    let t = Instant::now();
    format!("sweep started at {t:?}")
}
