//! End-to-end tests of the lint pass: the `bad_crate` fixture must trip
//! every hygiene lint, the `nondet_crate` fixture every determinism
//! lint (with the `det:allow` escape honoured), and the real workspace
//! must be clean.

use std::path::Path;

use xtask::lints::{lint_tree, workspace_src_dirs};

fn manifest_dir() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn fixture_crate_trips_every_lint() {
    let fixture = manifest_dir().join("fixtures/bad_crate/src");
    let violations = lint_tree(&fixture).expect("fixture directory is readable");
    let lints: Vec<&str> = violations.iter().map(|v| v.lint).collect();
    for expected in [
        "no-unwrap",
        "no-bare-cast",
        "no-counter-poke",
        "must-use-errors",
    ] {
        assert!(
            lints.contains(&expected),
            "fixture did not trip `{expected}`; got {lints:?}"
        );
    }
    // Two no-unwrap findings (bare unwrap + non-literal expect), one of
    // each of the others; the cfg(test) unwrap must NOT be counted.
    assert_eq!(violations.len(), 5, "{violations:#?}");
}

#[test]
fn nondet_fixture_trips_every_determinism_lint() {
    let fixture = manifest_dir().join("fixtures/nondet_crate/src");
    let violations = lint_tree(&fixture).expect("fixture directory is readable");
    let lints: Vec<&str> = violations.iter().map(|v| v.lint).collect();
    for expected in [
        "no-hashmap-iteration",
        "no-wallclock",
        "no-ambient-randomness",
        "no-lossy-float-format",
    ] {
        assert!(
            lints.contains(&expected),
            "fixture did not trip `{expected}`; got {lints:?}"
        );
    }
    // One finding per determinism lint; the `det:allow(no-wallclock)`
    // escape must have silenced the audited Instant site.
    assert_eq!(violations.len(), 4, "{violations:#?}");
}

#[test]
fn workspace_sources_are_clean() {
    // crates/xtask -> workspace root.
    let root = manifest_dir()
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the workspace root");
    let dirs = workspace_src_dirs(root).expect("workspace layout is readable");
    assert!(
        dirs.len() >= 13,
        "expected root src/ + tests/ + examples/ plus workspace members, got {dirs:?}"
    );
    let mut violations = Vec::new();
    for d in &dirs {
        violations.extend(lint_tree(d).expect("source tree is readable"));
    }
    assert!(
        violations.is_empty(),
        "workspace lint violations:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
