//! `cargo xtask` — workspace maintenance commands.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::lints::{lint_tree, workspace_src_dirs};

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask <command>");
    eprintln!();
    eprintln!("  check            run the repo lint pass over the workspace source trees");
    eprintln!("  check DIR        run the lint pass over one directory (used by fixtures)");
    eprintln!(
        "  verify-protocol  exhaustively model-check the sweep crash-recovery and \
         reliable-delivery protocols"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(args.get(1).map(PathBuf::from)),
        Some("verify-protocol") => verify_protocol(),
        _ => usage(),
    }
}

/// Runs the explicit-state model checkers — the journal/lease/
/// supervisor protocol and the end-to-end reliable-delivery protocol —
/// at the standard bounds, then self-tests each checker's teeth: every
/// seeded bug double must still be refuted with a counterexample.
/// Exits nonzero printing the minimal trace if a shipped protocol
/// violates an invariant — or if a double sails through, meaning a
/// checker can no longer detect the bugs it was built to catch.
fn verify_protocol() -> ExitCode {
    use analyzer::{check_protocol, check_reliable_protocol, ModelBounds, RelBounds, Semantics};
    use noc::reliable::RetrySemantics;

    match check_protocol(ModelBounds::standard(), Semantics::correct()) {
        Ok(report) => {
            println!(
                "verify-protocol: {} states / {} transitions explored; trusted-prefix, \
                 single-writer, zombie-exclusion, resume-equivalence and termination hold \
                 ({} completed + {} quarantined terminals, max generation {})",
                report.states,
                report.transitions,
                report.terminal_completed,
                report.terminal_quarantined,
                report.max_generation
            );
        }
        Err(v) => {
            eprintln!("verify-protocol: the shipped protocol violates an invariant");
            eprintln!("{v}");
            return ExitCode::FAILURE;
        }
    }

    let doubles = [
        (
            "no-torn-tail-truncation",
            Semantics::no_torn_tail_truncation(),
        ),
        ("no-generation-fencing", Semantics::no_generation_fencing()),
    ];
    for (name, semantics) in doubles {
        match check_protocol(ModelBounds::standard(), semantics) {
            Ok(_) => {
                eprintln!(
                    "verify-protocol: seeded bug double `{name}` was NOT refuted; \
                     the checker has lost the ability to catch this bug class"
                );
                return ExitCode::FAILURE;
            }
            Err(v) => {
                println!(
                    "verify-protocol: bug double `{name}` refuted: {} ({}-step counterexample)",
                    v.invariant,
                    v.trace.len()
                );
            }
        }
    }

    match check_reliable_protocol(RelBounds::standard(), RetrySemantics::correct()) {
        Ok(report) => {
            println!(
                "verify-protocol: reliable delivery: {} states / {} transitions explored; \
                 eventual delivery, no duplicate ejection, no wraparound hazard and bounded \
                 storms hold ({} delivered + {} escalated terminals, max {} live copies)",
                report.states,
                report.transitions,
                report.terminal_delivered,
                report.terminal_escalated,
                report.max_live_copies
            );
        }
        Err(v) => {
            eprintln!(
                "verify-protocol: the shipped reliable-delivery protocol violates an invariant"
            );
            eprintln!("{v}");
            return ExitCode::FAILURE;
        }
    }

    let rel_doubles = [
        ("ack-before-commit", RetrySemantics::ack_before_commit()),
        ("unbounded-retry", RetrySemantics::unbounded_retry()),
    ];
    for (name, semantics) in rel_doubles {
        match check_reliable_protocol(RelBounds::standard(), semantics) {
            Ok(_) => {
                eprintln!(
                    "verify-protocol: seeded bug double `{name}` was NOT refuted; \
                     the checker has lost the ability to catch this bug class"
                );
                return ExitCode::FAILURE;
            }
            Err(v) => {
                println!(
                    "verify-protocol: bug double `{name}` refuted: {} ({}-step counterexample)",
                    v.invariant,
                    v.trace.len()
                );
            }
        }
    }
    ExitCode::SUCCESS
}

/// The workspace root: two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

fn check(dir: Option<PathBuf>) -> ExitCode {
    let dirs = match dir {
        Some(d) => vec![d],
        None => match workspace_src_dirs(&workspace_root()) {
            Ok(dirs) => dirs,
            Err(e) => {
                eprintln!("xtask check: cannot enumerate workspace: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let mut total = 0usize;
    let mut files = 0usize;
    for d in &dirs {
        match lint_tree(d) {
            Ok(violations) => {
                for v in &violations {
                    println!("{v}");
                }
                total += violations.len();
                files += 1;
            }
            Err(e) => {
                eprintln!("xtask check: {}: {e}", d.display());
                return ExitCode::from(2);
            }
        }
    }
    if total == 0 {
        println!("xtask check: {files} source trees clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask check: {total} violation(s)");
        ExitCode::FAILURE
    }
}
