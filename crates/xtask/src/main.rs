//! `cargo xtask` — workspace maintenance commands.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::lints::{lint_tree, workspace_src_dirs};

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask check [DIR]");
    eprintln!();
    eprintln!("  check        run the repo lint pass over every workspace crate's src/");
    eprintln!("  check DIR    run the lint pass over one directory (used by fixtures)");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(args.get(1).map(PathBuf::from)),
        _ => usage(),
    }
}

/// The workspace root: two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

fn check(dir: Option<PathBuf>) -> ExitCode {
    let dirs = match dir {
        Some(d) => vec![d],
        None => match workspace_src_dirs(&workspace_root()) {
            Ok(dirs) => dirs,
            Err(e) => {
                eprintln!("xtask check: cannot enumerate workspace: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let mut total = 0usize;
    let mut files = 0usize;
    for d in &dirs {
        match lint_tree(d) {
            Ok(violations) => {
                for v in &violations {
                    println!("{v}");
                }
                total += violations.len();
                files += 1;
            }
            Err(e) => {
                eprintln!("xtask check: {}: {e}", d.display());
                return ExitCode::from(2);
            }
        }
    }
    if total == 0 {
        println!("xtask check: {files} source trees clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask check: {total} violation(s)");
        ExitCode::FAILURE
    }
}
