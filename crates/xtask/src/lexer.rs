//! A minimal hand-rolled Rust lexer.
//!
//! The container this workspace builds in is offline, so `syn` is not
//! available; the lint pass instead runs on a token stream produced
//! here. The lexer understands exactly as much Rust as the lints need
//! to be sound on this codebase:
//!
//! * line (`//`, `///`, `//!`) and **nested** block comments;
//! * string, raw-string, byte-string and char literals (so `"unwrap()"`
//!   in a message or a doctest never looks like code);
//! * the char-literal/lifetime ambiguity (`'a'` vs `'a`);
//! * identifiers, numbers, and single-character punctuation.
//!
//! Doc comments are comments to the lexer, which conveniently exempts
//! doctest examples from the lint pass — they are illustrative code,
//! compiled separately.

/// The classes of token the lint pass distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'x'`).
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Numeric literal.
    Number,
    /// A single punctuation character.
    Punct(char),
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Text of the token. Identifiers and string literals keep their
    /// full source text (the determinism lints scan format strings for
    /// placeholders); other literals and punctuation keep none.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Tokenizes `src`, skipping comments and whitespace. Malformed input
/// (unterminated literal or comment) yields a best-effort prefix rather
/// than an error — the compiler proper is the arbiter of validity; the
/// lint pass only needs to never misclassify well-formed code.
pub fn tokenize(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                i += 2;
                let mut depth = 1u32;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_or_byte_literal(b, i) => {
                let start_line = line;
                let start = i;
                i = skip_string_like(b, i, &mut line);
                out.push(Token {
                    kind: TokenKind::Str,
                    text: src[start..i.min(src.len())].to_string(),
                    line: start_line,
                });
            }
            b'"' => {
                let start_line = line;
                let start = i;
                i = skip_plain_string(b, i, &mut line);
                out.push(Token {
                    kind: TokenKind::Str,
                    text: src[start..i.min(src.len())].to_string(),
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'a'`,
                // `'\n'`): a lifetime is `'` + ident run NOT followed by
                // a closing quote.
                let mut j = i + 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                if j > i + 1 && (j >= b.len() || b[j] != b'\'') {
                    out.push(Token {
                        kind: TokenKind::Lifetime,
                        text: String::new(),
                        line,
                    });
                    i = j;
                } else {
                    // Char literal; honour escapes.
                    i += 1;
                    if i < b.len() && b[i] == b'\\' {
                        i += 2;
                    } else if i < b.len() {
                        i += 1;
                    }
                    while i < b.len() && b[i] != b'\'' {
                        i += 1; // multi-byte scalar; line breaks illegal here
                    }
                    i += 1;
                    out.push(Token {
                        kind: TokenKind::Char,
                        text: String::new(),
                        line,
                    });
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // Stop at `..` (range) and method calls on literals.
                    if b[i] == b'.' && (i + 1 >= b.len() || !b[i + 1].is_ascii_digit()) {
                        break;
                    }
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Number,
                    text: String::new(),
                    line,
                });
            }
            _ => {
                out.push(Token {
                    kind: TokenKind::Punct(c as char),
                    text: String::new(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Whether position `i` (at `r` or `b`) starts a raw/byte string or
/// byte-char literal rather than an identifier.
fn is_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    // Not a literal prefix if part of a longer identifier (`radix`,
    // `break_at`): the previous char must not be ident-ish.
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
        return j < b.len() && b[j] == b'"';
    }
    j < b.len() && (b[j] == b'"' || b[j] == b'\'')
}

/// Skips a raw/byte string or byte-char literal starting at `i`,
/// returning the index one past its end.
fn skip_string_like(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut raw = false;
    if b[i] == b'b' {
        i += 1;
    }
    if i < b.len() && b[i] == b'r' {
        raw = true;
        i += 1;
    }
    let mut hashes = 0usize;
    while raw && i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'\'' {
        // Byte-char literal b'x'.
        i += 1;
        if i < b.len() && b[i] == b'\\' {
            i += 2;
        } else {
            i += 1;
        }
        while i < b.len() && b[i] != b'\'' {
            i += 1;
        }
        return i + 1;
    }
    if raw {
        i += 1; // opening quote
        while i < b.len() {
            if b[i] == b'\n' {
                *line += 1;
            }
            if b[i] == b'"' {
                let mut k = 0usize;
                while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == b'#' {
                    k += 1;
                }
                if k == hashes {
                    return i + 1 + hashes;
                }
            }
            i += 1;
        }
        i
    } else {
        skip_plain_string(b, i, line)
    }
}

/// Skips a `"…"` string starting at the opening quote; returns the
/// index one past the closing quote.
fn skip_plain_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // A line-continuation escape (`\` at end of line)
                // consumes the newline; keep counting it.
                if i + 1 < b.len() && b[i + 1] == b'\n' {
                    *line += 1;
                }
                i += 2;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_hide_code_like_text() {
        let toks = tokenize(
            "// x.unwrap()\n/* nested /* x.unwrap() */ */\nlet m = \"y.unwrap()\"; r#\"z.unwrap()\"#;",
        );
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = toks.iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn escaped_quote_char_literal_does_not_derail() {
        let toks = tokenize(r"let q = '\''; x.unwrap();");
        assert!(toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn line_continuation_escapes_still_count_their_newline() {
        let toks = tokenize("let s = \"one \\\n two\";\nafter");
        let after = toks.iter().find(|t| t.is_ident("after")).map(|t| t.line);
        assert_eq!(after, Some(3));
    }

    #[test]
    fn line_numbers_track_newlines_in_all_skips() {
        let toks = tokenize("a\n/* c\nc */\nb\n\"s\ns\"\nd");
        let a = toks.iter().find(|t| t.is_ident("a")).map(|t| t.line);
        let b = toks.iter().find(|t| t.is_ident("b")).map(|t| t.line);
        let d = toks.iter().find(|t| t.is_ident("d")).map(|t| t.line);
        assert_eq!(a, Some(1));
        assert_eq!(b, Some(4));
        assert_eq!(d, Some(7));
    }

    #[test]
    fn string_tokens_retain_their_source_text() {
        let toks = tokenize("format!(\"rate {rate}\"); r#\"raw {x}\"#;");
        let strs: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, ["\"rate {rate}\"", "r#\"raw {x}\"#"]);
    }

    #[test]
    fn byte_strings_and_byte_chars_lex_as_literals() {
        let toks = tokenize("self.expect(b'[')?; let s = b\"unwrap\";");
        assert!(toks.iter().any(|t| t.is_ident("expect")));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(toks.iter().any(|t| t.is_punct('?')));
    }
}
