//! The repo-specific lint pass behind `cargo xtask check`.
//!
//! Four lints, each encoding an invariant this workspace already paid
//! to learn:
//!
//! * **no-unwrap** — no `.unwrap()` in non-test code, and `.expect(…)`
//!   must carry a string-literal message. Simulator state is deep; a
//!   bare panic with no context costs an afternoon.
//! * **no-bare-cast** — no `as` cast to a narrow integer type on a
//!   statement involving cycle/credit/lag quantities; use
//!   `From`/`TryFrom` so truncation is a decision, not an accident
//!   (the control-packet lag lives in a `u8` precisely because the
//!   analyzer proves its bounds — a silent `as u8` elsewhere would
//!   bypass that proof).
//! * **no-counter-poke** — the fault counters audited by the runtime
//!   watchdog may only be mutated inside `noc/src/faults.rs`, through
//!   the `note_*` methods; direct `+=` from other modules is how the
//!   watchdog's invariants drifted historically.
//! * **must-use-errors** — public `*Error` types must be
//!   `#[must_use]`: allocation results that can be silently dropped
//!   become silently lost packets.
//!
//! Test code (`#[cfg(test)]` items, `#[test]` functions, `tests/`
//! directories) is exempt from all four.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{tokenize, Token, TokenKind};

/// Watchdog-audited counters of `noc::faults::FaultStats`. Keep in sync
/// with that struct; the `counters_match_fault_stats` test cross-checks
/// the list against the actual source.
pub const AUDITED_COUNTERS: [&str; 10] = [
    "transient_link_faults",
    "permanent_link_faults",
    "router_faults",
    "credits_lost",
    "control_drops",
    "lost_packets",
    "lost_flits",
    "injections_refused",
    "blocked_by_fault_cycles",
    "faulted_chain_cancels",
];

/// Narrow integer targets a bare `as` cast may silently truncate to.
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifier substrings marking a quantity the cast lint protects.
const GUARDED_QUANTITIES: [&str; 3] = ["cycle", "credit", "lag"];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Lint name (stable, kebab-case).
    pub lint: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.lint,
            self.message
        )
    }
}

/// Removes items annotated `#[cfg(test)]` / `#[test]` from the token
/// stream, so the lints only see production code. An attribute group
/// mentioning `test` (without `not`) causes the following item — through
/// its matching closing brace or terminating semicolon — to be dropped,
/// along with any attributes stacked between.
fn strip_test_code(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            // Collect the attribute group.
            let mut j = i + 2;
            let mut depth = 1u32;
            let mut has_test = false;
            let mut has_not = false;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                } else if tokens[j].is_ident("test") {
                    has_test = true;
                } else if tokens[j].is_ident("not") {
                    has_not = true;
                }
                j += 1;
            }
            if has_test && !has_not {
                // Skip stacked attributes, then the item itself.
                let mut k = j;
                while k + 1 < tokens.len() && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[')
                {
                    let mut d = 1u32;
                    k += 2;
                    while k < tokens.len() && d > 0 {
                        if tokens[k].is_punct('[') {
                            d += 1;
                        } else if tokens[k].is_punct(']') {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                let mut brace = 0i64;
                let mut entered = false;
                while k < tokens.len() {
                    if tokens[k].is_punct('{') {
                        brace += 1;
                        entered = true;
                    } else if tokens[k].is_punct('}') {
                        brace -= 1;
                    } else if tokens[k].is_punct(';') && !entered {
                        k += 1;
                        break; // declaration without a body (`mod tests;`)
                    }
                    k += 1;
                    if entered && brace == 0 {
                        break;
                    }
                }
                i = k;
                continue;
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Whether `path` is inside the one module allowed to mutate the
/// audited counters.
fn owns_fault_counters(path: &Path) -> bool {
    path.ends_with("noc/src/faults.rs")
}

fn push(violations: &mut Vec<Violation>, file: &Path, line: u32, lint: &'static str, msg: String) {
    violations.push(Violation {
        file: file.to_path_buf(),
        line,
        lint,
        message: msg,
    });
}

/// Runs all four lints over one file's source text.
pub fn lint_source(file: &Path, src: &str) -> Vec<Violation> {
    let tokens = strip_test_code(&tokenize(src));
    let mut v = Vec::new();
    lint_unwrap(&tokens, file, &mut v);
    lint_bare_casts(&tokens, file, &mut v);
    if !owns_fault_counters(file) {
        lint_counter_pokes(&tokens, file, &mut v);
    }
    lint_must_use_errors(&tokens, file, &mut v);
    v
}

fn lint_unwrap(t: &[Token], file: &Path, v: &mut Vec<Violation>) {
    for i in 0..t.len() {
        if !t[i].is_punct('.') {
            continue;
        }
        let Some(name) = t.get(i + 1) else { continue };
        if name.is_ident("unwrap")
            && t.get(i + 2).is_some_and(|x| x.is_punct('('))
            && t.get(i + 3).is_some_and(|x| x.is_punct(')'))
        {
            push(
                v,
                file,
                name.line,
                "no-unwrap",
                "`.unwrap()` in non-test code; return a typed error or use `.expect(\"why this cannot fail\")`".to_string(),
            );
        } else if name.is_ident("expect") && t.get(i + 2).is_some_and(|x| x.is_punct('(')) {
            // `self.expect(…)` is a local method (e.g. the JSON
            // parser), not `Option`/`Result::expect`.
            let on_self = i > 0 && t[i - 1].is_ident("self");
            let literal_msg = t.get(i + 3).is_some_and(|x| x.kind == TokenKind::Str);
            if !on_self && !literal_msg {
                push(
                    v,
                    file,
                    name.line,
                    "no-unwrap",
                    "`.expect(…)` without a string-literal message; say why it cannot fail"
                        .to_string(),
                );
            }
        }
    }
}

fn lint_bare_casts(t: &[Token], file: &Path, v: &mut Vec<Violation>) {
    for i in 0..t.len() {
        if !t[i].is_ident("as") {
            continue;
        }
        let Some(target) = t.get(i + 1) else { continue };
        if target.kind != TokenKind::Ident || !NARROW_INTS.contains(&target.text.as_str()) {
            continue;
        }
        let line = t[i].line;
        let guarded = t.iter().enumerate().any(|(j, x)| {
            j != i + 1 && x.line == line && x.kind == TokenKind::Ident && {
                let lower = x.text.to_ascii_lowercase();
                GUARDED_QUANTITIES.iter().any(|q| lower.contains(q))
            }
        });
        if guarded {
            push(
                v,
                file,
                line,
                "no-bare-cast",
                format!(
                    "bare `as {}` cast on a cycle/credit/lag quantity; use `{}::from` or `{}::try_from` so truncation is explicit",
                    target.text, target.text, target.text
                ),
            );
        }
    }
}

fn lint_counter_pokes(t: &[Token], file: &Path, v: &mut Vec<Violation>) {
    const COMPOUND_OPS: [char; 8] = ['+', '-', '*', '/', '%', '&', '|', '^'];
    for i in 0..t.len() {
        if !t[i].is_punct('.') {
            continue;
        }
        let Some(field) = t.get(i + 1) else { continue };
        if field.kind != TokenKind::Ident || !AUDITED_COUNTERS.contains(&field.text.as_str()) {
            continue;
        }
        let mutated = match (t.get(i + 2), t.get(i + 3)) {
            (Some(op), Some(eq)) if eq.is_punct('=') => {
                COMPOUND_OPS.iter().any(|&c| op.is_punct(c))
            }
            _ => false,
        } || {
            t.get(i + 2).is_some_and(|x| x.is_punct('='))
                && !t.get(i + 3).is_some_and(|x| x.is_punct('='))
        };
        if mutated {
            push(
                v,
                file,
                field.line,
                "no-counter-poke",
                format!(
                    "direct mutation of watchdog-audited counter `{}` outside noc/src/faults.rs; add or use a `note_*` method on `FaultState`",
                    field.text
                ),
            );
        }
    }
}

fn lint_must_use_errors(t: &[Token], file: &Path, v: &mut Vec<Violation>) {
    for i in 0..t.len() {
        if !t[i].is_ident("pub") {
            continue;
        }
        // Skip an optional visibility scope: `pub(crate)`, `pub(in …)`.
        let mut j = i + 1;
        if t.get(j).is_some_and(|x| x.is_punct('(')) {
            let mut depth = 1u32;
            j += 1;
            while j < t.len() && depth > 0 {
                if t[j].is_punct('(') {
                    depth += 1;
                } else if t[j].is_punct(')') {
                    depth -= 1;
                }
                j += 1;
            }
        }
        let is_type_def = t
            .get(j)
            .is_some_and(|x| x.is_ident("enum") || x.is_ident("struct"));
        if !is_type_def {
            continue;
        }
        let Some(name) = t.get(j + 1) else { continue };
        if name.kind != TokenKind::Ident || !name.text.ends_with("Error") {
            continue;
        }
        if !attrs_before_contain(t, i, "must_use") {
            push(
                v,
                file,
                name.line,
                "must-use-errors",
                format!(
                    "public result type `{}` is missing `#[must_use]`; a dropped allocation error is a lost packet",
                    name.text
                ),
            );
        }
    }
}

/// Whether the attribute groups immediately preceding token `i` contain
/// the identifier `want` (e.g. `must_use`). Walks backwards over
/// stacked `#[…]` groups.
fn attrs_before_contain(t: &[Token], mut i: usize, want: &str) -> bool {
    loop {
        if i == 0 || !t[i - 1].is_punct(']') {
            return false;
        }
        // Find the matching `[` backwards.
        let mut depth = 1u32;
        let mut k = i - 1;
        while k > 0 && depth > 0 {
            k -= 1;
            if t[k].is_punct(']') {
                depth += 1;
            } else if t[k].is_punct('[') {
                depth -= 1;
            }
        }
        if depth != 0 || k == 0 || !t[k - 1].is_punct('#') {
            return false;
        }
        if t[k..i - 1].iter().any(|x| x.is_ident(want)) {
            return true;
        }
        i = k - 1; // continue at the `#`, looking for more groups above
    }
}

/// Lints one file from disk.
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be read.
pub fn lint_file(path: &Path) -> io::Result<Vec<Violation>> {
    let src = fs::read_to_string(path)?;
    Ok(lint_source(path, &src))
}

/// Recursively lints every `.rs` file under `dir`, skipping `tests`,
/// `benches` and `target` directories (integration tests are test code
/// by definition).
///
/// # Errors
///
/// Propagates the first I/O error from the directory walk.
pub fn lint_tree(dir: &Path) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&d)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(std::fs::DirEntry::path);
        for e in entries {
            let p = e.path();
            if p.is_dir() {
                let skip = p
                    .file_name()
                    .is_some_and(|n| n == "tests" || n == "benches" || n == "target");
                if !skip {
                    stack.push(p);
                }
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.extend(lint_file(&p)?);
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}

/// The source directories `cargo xtask check` lints: the facade crate's
/// `src/` plus every workspace member's `src/` (fixtures, tests and
/// benches excluded by [`lint_tree`]).
///
/// # Errors
///
/// Propagates I/O errors from enumerating `crates/`.
pub fn workspace_src_dirs(workspace_root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut dirs = Vec::new();
    let root_src = workspace_root.join("src");
    if root_src.is_dir() {
        dirs.push(root_src);
    }
    let crates = workspace_root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(std::fs::DirEntry::path);
        for e in entries {
            let src = e.path().join("src");
            if src.is_dir() {
                dirs.push(src);
            }
        }
    }
    Ok(dirs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints_of(src: &str) -> Vec<&'static str> {
        lint_source(Path::new("mem.rs"), src)
            .into_iter()
            .map(|v| v.lint)
            .collect()
    }

    #[test]
    fn unwrap_in_production_code_is_flagged() {
        assert_eq!(lints_of("fn f() { x.unwrap(); }"), vec!["no-unwrap"]);
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn f() { x.unwrap(); } }";
        assert!(lints_of(src).is_empty());
        let src = "#[test]\nfn t() { x.unwrap(); }";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_production_code() {
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }";
        assert_eq!(lints_of(src), vec!["no-unwrap"]);
    }

    #[test]
    fn expect_requires_a_literal_message() {
        assert_eq!(lints_of("fn f() { x.expect(msg); }"), vec!["no-unwrap"]);
        assert!(lints_of("fn f() { x.expect(\"bounded by config\"); }").is_empty());
        assert!(lints_of("fn f() { self.expect(b'[') }").is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        assert!(lints_of("fn f() { x.unwrap_or(0); x.unwrap_or_default(); }").is_empty());
    }

    #[test]
    fn narrow_cast_on_guarded_quantity_is_flagged() {
        assert_eq!(
            lints_of("fn f(lag: u64) -> u8 { lag as u8 }"),
            vec!["no-bare-cast"]
        );
        assert_eq!(
            lints_of("fn f(c: Credit) { let x = c.count as u16; }"),
            vec!["no-bare-cast"]
        );
    }

    #[test]
    fn unguarded_or_wide_casts_pass() {
        assert!(lints_of("fn f(n: usize) -> u8 { n as u8 }").is_empty());
        assert!(lints_of("fn f(lag: u8) -> u64 { lag as u64 }").is_empty());
    }

    #[test]
    fn counter_mutation_outside_faults_module_is_flagged() {
        assert_eq!(
            lints_of("fn f(s: &mut S) { s.stats.control_drops += 1; }"),
            vec!["no-counter-poke"]
        );
        assert_eq!(
            lints_of("fn f(s: &mut S) { s.lost_packets = 0; }"),
            vec!["no-counter-poke"]
        );
    }

    #[test]
    fn counter_reads_and_owner_module_are_exempt() {
        assert!(lints_of("fn f(s: &S) -> u64 { s.control_drops + s.lost_flits }").is_empty());
        assert!(lints_of("fn f(s: &S) { assert!(s.control_drops == 0); }").is_empty());
        let owner = Path::new("crates/noc/src/faults.rs");
        let v = lint_source(owner, "fn f(s: &mut S) { s.control_drops += 1; }");
        assert!(v.is_empty());
    }

    #[test]
    fn public_error_type_without_must_use_is_flagged() {
        assert_eq!(
            lints_of("pub enum AllocError { Full }"),
            vec!["must-use-errors"]
        );
        assert!(lints_of("#[must_use]\npub enum AllocError { Full }").is_empty());
        assert!(
            lints_of("#[must_use]\n#[derive(Debug, Clone)]\npub struct InstallError(u8);")
                .is_empty()
        );
        assert!(lints_of("#[derive(Debug)]\n#[must_use]\npub struct IoError;").is_empty());
    }

    #[test]
    fn private_and_non_error_types_are_exempt() {
        assert!(lints_of("enum AllocError { Full }").is_empty());
        assert!(lints_of("pub struct Report { x: u8 }").is_empty());
    }

    #[test]
    fn counters_match_fault_stats() {
        // The audited-counter list must track the real FaultStats
        // fields; this test fails when a field is added or renamed
        // without updating the lint.
        let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
        let faults = manifest.join("../noc/src/faults.rs");
        let src = fs::read_to_string(&faults).expect("noc/src/faults.rs exists in the workspace");
        let struct_body = src
            .split("pub struct FaultStats {")
            .nth(1)
            .and_then(|rest| rest.split('}').next())
            .expect("FaultStats struct present");
        for counter in AUDITED_COUNTERS {
            assert!(
                struct_body.contains(&format!("pub {counter}:")),
                "lint counter `{counter}` is not a FaultStats field"
            );
        }
        let fields = struct_body.matches("pub ").count();
        assert_eq!(
            fields,
            AUDITED_COUNTERS.len(),
            "FaultStats field count drifted"
        );
    }
}
