//! The repo-specific lint pass behind `cargo xtask check`.
//!
//! Four hygiene lints, each encoding an invariant this workspace
//! already paid to learn:
//!
//! * **no-unwrap** — no `.unwrap()` in non-test code, and `.expect(…)`
//!   must carry a string-literal message. Simulator state is deep; a
//!   bare panic with no context costs an afternoon.
//! * **no-bare-cast** — no `as` cast to a narrow integer type on a
//!   statement involving cycle/credit/lag quantities; use
//!   `From`/`TryFrom` so truncation is a decision, not an accident
//!   (the control-packet lag lives in a `u8` precisely because the
//!   analyzer proves its bounds — a silent `as u8` elsewhere would
//!   bypass that proof).
//! * **no-counter-poke** — the fault counters audited by the runtime
//!   watchdog may only be mutated inside `noc/src/faults.rs`, through
//!   the `note_*` methods; direct `+=` from other modules is how the
//!   watchdog's invariants drifted historically.
//! * **must-use-errors** — public `*Error` types must be
//!   `#[must_use]`: allocation results that can be silently dropped
//!   become silently lost packets.
//!
//! Test code (`#[cfg(test)]` items, `#[test]` functions, `tests/`
//! directories) is exempt from all four.
//!
//! Plus four **determinism lints** guarding the byte-identical-artifact
//! contract (sweep CSV/JSON, digests, checkpoint journals are compared
//! with `cmp` in CI — one nondeterministic byte breaks resume
//! equivalence):
//!
//! * **no-hashmap-iteration** — `HashMap`/`HashSet` iterate in a
//!   per-process randomized order; use `BTreeMap`/`BTreeSet`.
//! * **no-wallclock** — `SystemTime`/`Instant` read the host clock;
//!   simulated time comes from the cycle counter and timeouts from
//!   config.
//! * **no-ambient-randomness** — `thread_rng`-style OS entropy; all
//!   randomness must flow from the seeded `nistats` RNG.
//! * **no-lossy-float-format** — `{}` on a float-named value formats a
//!   shortest-roundtrip decimal whose *text* is not stable under
//!   re-parse/re-format pipelines; digest-covered floats go out as
//!   `f64::to_bits()` hex (`{:016x}`), the journal's rule.
//!
//! The determinism lints apply only to digest-covered paths (see
//! [`digest_covered`]): `tests/`, `examples/` and the `bench` crate are
//! human-facing and exempt. Audited sites are suppressed with a
//! `det:allow(<lint>)` comment on the flagged line or in the comment
//! block directly above it; a directive on its own line attaches to
//! the next code line.
//!
//! Plus one **performance lint** guarding the zero-allocation contract
//! of the per-cycle simulation path (pinned end-to-end by the
//! `alloc_steady_state` counting-allocator test in `crates/noc`):
//!
//! * **no-hot-loop-alloc** — a function opted in with a standalone
//!   `// hot` marker comment directly above it must not contain
//!   `Box::new`, `vec!`, or `.to_vec()`. These constructs allocate on
//!   every call; the hot loop runs them millions of times per second
//!   and must reuse preallocated scratch buffers instead (see
//!   `StepScratch` in `noc/src/mesh.rs`). The marker is opt-in and the
//!   lint runs wherever it appears; today that is the per-cycle phase
//!   functions in `crates/noc`. Audited sites are suppressed with the
//!   same `det:allow(<lint>)` mechanism as the determinism lints.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Component, Path, PathBuf};

use crate::lexer::{tokenize, Token, TokenKind};

/// Watchdog-audited counters of `noc::faults::FaultStats`. Keep in sync
/// with that struct; the `counters_match_fault_stats` test cross-checks
/// the list against the actual source.
pub const AUDITED_COUNTERS: [&str; 10] = [
    "transient_link_faults",
    "permanent_link_faults",
    "router_faults",
    "credits_lost",
    "control_drops",
    "lost_packets",
    "lost_flits",
    "injections_refused",
    "blocked_by_fault_cycles",
    "faulted_chain_cancels",
];

/// Narrow integer targets a bare `as` cast may silently truncate to.
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifier substrings marking a quantity the cast lint protects.
const GUARDED_QUANTITIES: [&str; 3] = ["cycle", "credit", "lag"];

/// Hash-based std collections with per-process randomized iteration
/// order; banned wholesale in digest-covered code (merely *holding* one
/// invites the iteration that breaks byte-stability).
const HASH_COLLECTIONS: [&str; 2] = ["HashMap", "HashSet"];

/// Host-clock types banned in digest-covered code.
const WALLCLOCK_TYPES: [&str; 2] = ["SystemTime", "Instant"];

/// Ambient (OS-seeded) randomness entry points banned in
/// digest-covered code.
const AMBIENT_RANDOMNESS: [&str; 6] = [
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_entropy",
    "getrandom",
    "RandomState",
];

/// Underscore-separated identifier parts that mark a float quantity
/// for the lossy-format lint. A part must match *exactly*, so `crate`
/// never matches `rate`.
const FLOAT_NAME_PARTS: [&str; 10] = [
    "f32", "f64", "float", "rate", "ratio", "frac", "fraction", "mean", "avg", "weight",
];

/// Path components marking human-facing code outside the
/// digest/artifact perimeter; the determinism lints skip files under
/// them.
const UNCOVERED_COMPONENTS: [&str; 4] = ["tests", "examples", "benches", "bench"];

/// Standalone marker comment opting the next function into the
/// hot-loop allocation lint. Matched against the whole trimmed line,
/// so prose like "the hot loop" in a doc comment never opts in.
const HOT_MARKER: &str = "// hot";

/// Whether `path` is inside the digest/artifact perimeter the
/// determinism lints guard. Everything is covered except trees whose
/// path contains a component in [`UNCOVERED_COMPONENTS`] — integration
/// tests, examples and the `bench` crate print for humans, not for
/// digests.
#[must_use]
pub fn digest_covered(path: &Path) -> bool {
    !path.components().any(|c| match c {
        Component::Normal(n) => n
            .to_str()
            .is_some_and(|s| UNCOVERED_COMPONENTS.contains(&s)),
        _ => false,
    })
}

/// Collects `det:allow(<lint>)` suppressions from comments in `src` as
/// `(line, lint)` pairs keyed by the line they *suppress*: the
/// directive's own line if it trails code, otherwise the next code
/// line below the comment block (so a multi-line justification above
/// the flagged site works).
fn allowed_lines(src: &str) -> BTreeSet<(u32, String)> {
    let lines: Vec<&str> = src.lines().collect();
    let comment_only = |idx: usize| {
        let t = lines[idx].trim_start();
        t.is_empty() || t.starts_with("//")
    };
    let mut out = BTreeSet::new();
    for (idx, line) in lines.iter().enumerate() {
        let Some(cpos) = line.find("//") else {
            continue;
        };
        let mut rest = &line[cpos..];
        while let Some(p) = rest.find("det:allow(") {
            rest = &rest[p + "det:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let mut target = idx;
            if line[..cpos].trim().is_empty() {
                target = idx + 1;
                while target < lines.len() && comment_only(target) {
                    target += 1;
                }
            }
            let tline = u32::try_from(target + 1).unwrap_or(u32::MAX);
            for name in rest[..close].split(',') {
                out.insert((tline, name.trim().to_string()));
            }
            rest = &rest[close..];
        }
    }
    out
}

/// Whether an identifier names a float quantity: one of its
/// `_`-separated parts matches [`FLOAT_NAME_PARTS`] exactly. Idents
/// with a `fmt` part are formatting helpers, presumed audited.
fn float_named(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    let mut parts = lower.split('_').filter(|p| !p.is_empty());
    if parts.clone().any(|p| p.contains("fmt")) {
        return false;
    }
    parts.any(|p| FLOAT_NAME_PARTS.contains(&p))
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Lint name (stable, kebab-case).
    pub lint: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.lint,
            self.message
        )
    }
}

/// Removes items annotated `#[cfg(test)]` / `#[test]` from the token
/// stream, so the lints only see production code. An attribute group
/// mentioning `test` (without `not`) causes the following item — through
/// its matching closing brace or terminating semicolon — to be dropped,
/// along with any attributes stacked between.
fn strip_test_code(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            // Collect the attribute group.
            let mut j = i + 2;
            let mut depth = 1u32;
            let mut has_test = false;
            let mut has_not = false;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                } else if tokens[j].is_ident("test") {
                    has_test = true;
                } else if tokens[j].is_ident("not") {
                    has_not = true;
                }
                j += 1;
            }
            if has_test && !has_not {
                // Skip stacked attributes, then the item itself.
                let mut k = j;
                while k + 1 < tokens.len() && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[')
                {
                    let mut d = 1u32;
                    k += 2;
                    while k < tokens.len() && d > 0 {
                        if tokens[k].is_punct('[') {
                            d += 1;
                        } else if tokens[k].is_punct(']') {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                let mut brace = 0i64;
                let mut entered = false;
                while k < tokens.len() {
                    if tokens[k].is_punct('{') {
                        brace += 1;
                        entered = true;
                    } else if tokens[k].is_punct('}') {
                        brace -= 1;
                    } else if tokens[k].is_punct(';') && !entered {
                        k += 1;
                        break; // declaration without a body (`mod tests;`)
                    }
                    k += 1;
                    if entered && brace == 0 {
                        break;
                    }
                }
                i = k;
                continue;
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Whether `path` is inside the one module allowed to mutate the
/// audited counters.
fn owns_fault_counters(path: &Path) -> bool {
    path.ends_with("noc/src/faults.rs")
}

fn push(violations: &mut Vec<Violation>, file: &Path, line: u32, lint: &'static str, msg: String) {
    violations.push(Violation {
        file: file.to_path_buf(),
        line,
        lint,
        message: msg,
    });
}

/// Runs the full lint battery over one file's source text: the four
/// hygiene lints everywhere, the four determinism lints when `file` is
/// [`digest_covered`], minus any `det:allow(<lint>)` suppressions.
pub fn lint_source(file: &Path, src: &str) -> Vec<Violation> {
    let tokens = strip_test_code(&tokenize(src));
    let mut v = Vec::new();
    lint_unwrap(&tokens, file, &mut v);
    lint_bare_casts(&tokens, file, &mut v);
    if !owns_fault_counters(file) {
        lint_counter_pokes(&tokens, file, &mut v);
    }
    lint_must_use_errors(&tokens, file, &mut v);
    if digest_covered(file) {
        lint_banned_idents(
            &tokens,
            file,
            &mut v,
            "no-hashmap-iteration",
            &HASH_COLLECTIONS,
            "iterates in a per-process randomized order; use BTreeMap/BTreeSet so artifacts stay byte-stable",
        );
        lint_banned_idents(
            &tokens,
            file,
            &mut v,
            "no-wallclock",
            &WALLCLOCK_TYPES,
            "reads the host clock in digest-covered code; simulated time comes from the cycle counter, timeouts from config",
        );
        lint_banned_idents(
            &tokens,
            file,
            &mut v,
            "no-ambient-randomness",
            &AMBIENT_RANDOMNESS,
            "draws OS entropy; all randomness must flow from the seeded nistats RNG",
        );
        lint_lossy_float_format(&tokens, file, &mut v);
    }
    lint_hot_loop_allocs(&tokens, src, file, &mut v);
    let allowed = allowed_lines(src);
    v.retain(|viol| !allowed.contains(&(viol.line, viol.lint.to_string())));
    v
}

/// The hot-loop allocation lint: inside a function marked with a
/// standalone `// hot` comment, flag `Box::new`, `vec!` and
/// `.to_vec()` — each heap-allocates on every call, and the marked
/// functions are the per-cycle phases the `alloc_steady_state` test
/// proves allocation-free.
///
/// The marker lives in a comment the lexer discards, so marker lines
/// come from the raw source text; the function body is then located
/// and brace-tracked on the token stream, where strings and comments
/// can never masquerade as code.
fn lint_hot_loop_allocs(t: &[Token], src: &str, file: &Path, v: &mut Vec<Violation>) {
    for (idx, line) in src.lines().enumerate() {
        if line.trim() != HOT_MARKER {
            continue;
        }
        let marker = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        // First `fn` after the marker line — attributes and doc
        // comments stacked between are skipped naturally (attributes
        // contain no `fn` ident, comments are not tokens at all).
        let Some(fn_idx) = t.iter().position(|x| x.line > marker && x.is_ident("fn")) else {
            continue;
        };
        let name = t
            .get(fn_idx + 1)
            .filter(|x| x.kind == TokenKind::Ident)
            .map_or("?", |x| x.text.as_str());
        // Walk to the body's opening brace; a `;` first means a bodyless
        // declaration (trait method), which has nothing to lint.
        let mut open = fn_idx;
        while open < t.len() && !t[open].is_punct('{') {
            if t[open].is_punct(';') {
                break;
            }
            open += 1;
        }
        if open >= t.len() || !t[open].is_punct('{') {
            continue;
        }
        let mut depth = 0i64;
        let mut end = open;
        while end < t.len() {
            if t[end].is_punct('{') {
                depth += 1;
            } else if t[end].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            end += 1;
        }
        for j in open..end {
            let construct = if t[j].is_ident("Box")
                && t.get(j + 1).is_some_and(|x| x.is_punct(':'))
                && t.get(j + 2).is_some_and(|x| x.is_punct(':'))
                && t.get(j + 3).is_some_and(|x| x.is_ident("new"))
            {
                Some(("Box::new", t[j].line))
            } else if t[j].is_ident("vec") && t.get(j + 1).is_some_and(|x| x.is_punct('!')) {
                Some(("vec!", t[j].line))
            } else if t[j].is_punct('.')
                && t.get(j + 1).is_some_and(|x| x.is_ident("to_vec"))
                && t.get(j + 2).is_some_and(|x| x.is_punct('('))
            {
                Some((".to_vec()", t[j + 1].line))
            } else {
                None
            };
            if let Some((what, at)) = construct {
                push(
                    v,
                    file,
                    at,
                    "no-hot-loop-alloc",
                    format!(
                        "`{what}` heap-allocates inside `// hot`-marked fn `{name}`; the per-cycle path must reuse preallocated scratch (see StepScratch in noc/src/mesh.rs and the alloc_steady_state test)"
                    ),
                );
            }
        }
    }
}

/// Flags every occurrence of a banned identifier.
fn lint_banned_idents(
    t: &[Token],
    file: &Path,
    v: &mut Vec<Violation>,
    lint: &'static str,
    banned: &[&str],
    why: &str,
) {
    for tok in t {
        if tok.kind == TokenKind::Ident && banned.contains(&tok.text.as_str()) {
            push(v, file, tok.line, lint, format!("`{}` {why}", tok.text));
        }
    }
}

/// One `{…}` placeholder in a format string.
struct Placeholder {
    /// Inline-captured name (`{rate}`), empty for positional `{}`.
    name: String,
    /// Whether the format spec prints a lossy decimal: anything except
    /// the radix specs (`x`/`X`/`b`/`o`) and scientific (`e`/`E`).
    lossy: bool,
}

/// Parses the placeholders out of a format-string body, honouring the
/// `{{` escape.
fn parse_placeholders(body: &str) -> Vec<Placeholder> {
    let chars: Vec<char> = body.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] != '{' {
            i += 1;
            continue;
        }
        if chars.get(i + 1) == Some(&'{') {
            i += 2;
            continue;
        }
        let mut j = i + 1;
        while j < chars.len() && chars[j] != '}' {
            j += 1;
        }
        let inner: String = chars[i + 1..j].iter().collect();
        let (name, spec) = inner.split_once(':').unwrap_or((inner.as_str(), ""));
        out.push(Placeholder {
            name: name.to_string(),
            lossy: !spec.contains(['x', 'X', 'b', 'o', 'e', 'E']),
        });
        i = j + 1;
    }
    out
}

/// The text between a string literal's quotes (stripping `r#`/`b`
/// prefixes and hash fences), or `None` for a quoteless token.
fn string_body(text: &str) -> Option<&str> {
    let start = text.find('"')?;
    let end = text.rfind('"')?;
    (end > start).then(|| &text[start + 1..end])
}

/// The lossy-float-format lint: a `{}`-style placeholder applied to a
/// float-named value in digest-covered code. Catches both inline
/// captures (`"{inj_rate}"`) and positional placeholders whose
/// argument list names a float. `ident.to_bits()` chains are exempt
/// (the journal's own rule), as are `fmt`-named helper calls.
fn lint_lossy_float_format(t: &[Token], file: &Path, v: &mut Vec<Violation>) {
    for i in 0..t.len() {
        if t[i].kind != TokenKind::Str {
            continue;
        }
        let Some(body) = string_body(&t[i].text) else {
            continue;
        };
        let placeholders = parse_placeholders(body);
        for p in &placeholders {
            if p.lossy && float_named(&p.name) {
                push(
                    v,
                    file,
                    t[i].line,
                    "no-lossy-float-format",
                    format!(
                        "`{{{}}}` prints a float as lossy decimal text; emit `{}.to_bits()` as `{{:016x}}` like the journal does",
                        p.name, p.name
                    ),
                );
            }
        }
        // Positional `{}` placeholders: look at the rest of the macro
        // argument list for float-named idents.
        if !placeholders.iter().any(|p| p.lossy && p.name.is_empty()) {
            continue;
        }
        if i == 0 || !(t[i - 1].is_punct('(') || t[i - 1].is_punct(',')) {
            continue; // not a macro/call argument position
        }
        let mut depth = 0u32;
        let mut j = i + 1;
        while j < t.len() {
            if t[j].is_punct('(') {
                depth += 1;
            } else if t[j].is_punct(')') {
                if depth == 0 {
                    break; // end of the enclosing argument list
                }
                depth -= 1;
            } else if depth == 0 && t[j].kind == TokenKind::Ident && float_named(&t[j].text) {
                let to_bits = t.get(j + 1).is_some_and(|x| x.is_punct('.'))
                    && t.get(j + 2).is_some_and(|x| x.is_ident("to_bits"));
                if !to_bits {
                    push(
                        v,
                        file,
                        t[j].line,
                        "no-lossy-float-format",
                        format!(
                            "`{}` reaches a `{{}}` placeholder as lossy decimal text; emit `{}.to_bits()` as `{{:016x}}` like the journal does",
                            t[j].text, t[j].text
                        ),
                    );
                }
            }
            j += 1;
        }
    }
}

fn lint_unwrap(t: &[Token], file: &Path, v: &mut Vec<Violation>) {
    for i in 0..t.len() {
        if !t[i].is_punct('.') {
            continue;
        }
        let Some(name) = t.get(i + 1) else { continue };
        if name.is_ident("unwrap")
            && t.get(i + 2).is_some_and(|x| x.is_punct('('))
            && t.get(i + 3).is_some_and(|x| x.is_punct(')'))
        {
            push(
                v,
                file,
                name.line,
                "no-unwrap",
                "`.unwrap()` in non-test code; return a typed error or use `.expect(\"why this cannot fail\")`".to_string(),
            );
        } else if name.is_ident("expect") && t.get(i + 2).is_some_and(|x| x.is_punct('(')) {
            // `self.expect(…)` is a local method (e.g. the JSON
            // parser), not `Option`/`Result::expect`.
            let on_self = i > 0 && t[i - 1].is_ident("self");
            let literal_msg = t.get(i + 3).is_some_and(|x| x.kind == TokenKind::Str);
            if !on_self && !literal_msg {
                push(
                    v,
                    file,
                    name.line,
                    "no-unwrap",
                    "`.expect(…)` without a string-literal message; say why it cannot fail"
                        .to_string(),
                );
            }
        }
    }
}

fn lint_bare_casts(t: &[Token], file: &Path, v: &mut Vec<Violation>) {
    for i in 0..t.len() {
        if !t[i].is_ident("as") {
            continue;
        }
        let Some(target) = t.get(i + 1) else { continue };
        if target.kind != TokenKind::Ident || !NARROW_INTS.contains(&target.text.as_str()) {
            continue;
        }
        let line = t[i].line;
        let guarded = t.iter().enumerate().any(|(j, x)| {
            j != i + 1 && x.line == line && x.kind == TokenKind::Ident && {
                let lower = x.text.to_ascii_lowercase();
                GUARDED_QUANTITIES.iter().any(|q| lower.contains(q))
            }
        });
        if guarded {
            push(
                v,
                file,
                line,
                "no-bare-cast",
                format!(
                    "bare `as {}` cast on a cycle/credit/lag quantity; use `{}::from` or `{}::try_from` so truncation is explicit",
                    target.text, target.text, target.text
                ),
            );
        }
    }
}

fn lint_counter_pokes(t: &[Token], file: &Path, v: &mut Vec<Violation>) {
    const COMPOUND_OPS: [char; 8] = ['+', '-', '*', '/', '%', '&', '|', '^'];
    for i in 0..t.len() {
        if !t[i].is_punct('.') {
            continue;
        }
        let Some(field) = t.get(i + 1) else { continue };
        if field.kind != TokenKind::Ident || !AUDITED_COUNTERS.contains(&field.text.as_str()) {
            continue;
        }
        let mutated = match (t.get(i + 2), t.get(i + 3)) {
            (Some(op), Some(eq)) if eq.is_punct('=') => {
                COMPOUND_OPS.iter().any(|&c| op.is_punct(c))
            }
            _ => false,
        } || {
            t.get(i + 2).is_some_and(|x| x.is_punct('='))
                && !t.get(i + 3).is_some_and(|x| x.is_punct('='))
        };
        if mutated {
            push(
                v,
                file,
                field.line,
                "no-counter-poke",
                format!(
                    "direct mutation of watchdog-audited counter `{}` outside noc/src/faults.rs; add or use a `note_*` method on `FaultState`",
                    field.text
                ),
            );
        }
    }
}

fn lint_must_use_errors(t: &[Token], file: &Path, v: &mut Vec<Violation>) {
    for i in 0..t.len() {
        if !t[i].is_ident("pub") {
            continue;
        }
        // Skip an optional visibility scope: `pub(crate)`, `pub(in …)`.
        let mut j = i + 1;
        if t.get(j).is_some_and(|x| x.is_punct('(')) {
            let mut depth = 1u32;
            j += 1;
            while j < t.len() && depth > 0 {
                if t[j].is_punct('(') {
                    depth += 1;
                } else if t[j].is_punct(')') {
                    depth -= 1;
                }
                j += 1;
            }
        }
        let is_type_def = t
            .get(j)
            .is_some_and(|x| x.is_ident("enum") || x.is_ident("struct"));
        if !is_type_def {
            continue;
        }
        let Some(name) = t.get(j + 1) else { continue };
        if name.kind != TokenKind::Ident || !name.text.ends_with("Error") {
            continue;
        }
        if !attrs_before_contain(t, i, "must_use") {
            push(
                v,
                file,
                name.line,
                "must-use-errors",
                format!(
                    "public result type `{}` is missing `#[must_use]`; a dropped allocation error is a lost packet",
                    name.text
                ),
            );
        }
    }
}

/// Whether the attribute groups immediately preceding token `i` contain
/// the identifier `want` (e.g. `must_use`). Walks backwards over
/// stacked `#[…]` groups.
fn attrs_before_contain(t: &[Token], mut i: usize, want: &str) -> bool {
    loop {
        if i == 0 || !t[i - 1].is_punct(']') {
            return false;
        }
        // Find the matching `[` backwards.
        let mut depth = 1u32;
        let mut k = i - 1;
        while k > 0 && depth > 0 {
            k -= 1;
            if t[k].is_punct(']') {
                depth += 1;
            } else if t[k].is_punct('[') {
                depth -= 1;
            }
        }
        if depth != 0 || k == 0 || !t[k - 1].is_punct('#') {
            return false;
        }
        if t[k..i - 1].iter().any(|x| x.is_ident(want)) {
            return true;
        }
        i = k - 1; // continue at the `#`, looking for more groups above
    }
}

/// Lints one file from disk.
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be read.
pub fn lint_file(path: &Path) -> io::Result<Vec<Violation>> {
    let src = fs::read_to_string(path)?;
    Ok(lint_source(path, &src))
}

/// Recursively lints every `.rs` file under `dir`, skipping `tests`,
/// `benches` and `target` directories (integration tests are test code
/// by definition).
///
/// # Errors
///
/// Propagates the first I/O error from the directory walk.
pub fn lint_tree(dir: &Path) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&d)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(std::fs::DirEntry::path);
        for e in entries {
            let p = e.path();
            if p.is_dir() {
                let skip = p
                    .file_name()
                    .is_some_and(|n| n == "tests" || n == "benches" || n == "target");
                if !skip {
                    stack.push(p);
                }
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.extend(lint_file(&p)?);
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}

/// The source directories `cargo xtask check` lints: the facade crate's
/// `src/`, the workspace-root `tests/` and `examples/` trees, plus
/// every workspace member's `src/`. Explicitly listed roots are always
/// walked — [`lint_tree`]'s skip list only prunes *sub*directories —
/// but `tests/` and `examples/` fall outside the digest perimeter
/// ([`digest_covered`]), so only the hygiene lints apply there.
///
/// # Errors
///
/// Propagates I/O errors from enumerating `crates/`.
pub fn workspace_src_dirs(workspace_root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut dirs = Vec::new();
    for root_tree in ["src", "tests", "examples"] {
        let d = workspace_root.join(root_tree);
        if d.is_dir() {
            dirs.push(d);
        }
    }
    let crates = workspace_root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(std::fs::DirEntry::path);
        for e in entries {
            let src = e.path().join("src");
            if src.is_dir() {
                dirs.push(src);
            }
        }
    }
    Ok(dirs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints_of(src: &str) -> Vec<&'static str> {
        lint_source(Path::new("mem.rs"), src)
            .into_iter()
            .map(|v| v.lint)
            .collect()
    }

    #[test]
    fn unwrap_in_production_code_is_flagged() {
        assert_eq!(lints_of("fn f() { x.unwrap(); }"), vec!["no-unwrap"]);
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn f() { x.unwrap(); } }";
        assert!(lints_of(src).is_empty());
        let src = "#[test]\nfn t() { x.unwrap(); }";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_production_code() {
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }";
        assert_eq!(lints_of(src), vec!["no-unwrap"]);
    }

    #[test]
    fn expect_requires_a_literal_message() {
        assert_eq!(lints_of("fn f() { x.expect(msg); }"), vec!["no-unwrap"]);
        assert!(lints_of("fn f() { x.expect(\"bounded by config\"); }").is_empty());
        assert!(lints_of("fn f() { self.expect(b'[') }").is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        assert!(lints_of("fn f() { x.unwrap_or(0); x.unwrap_or_default(); }").is_empty());
    }

    #[test]
    fn narrow_cast_on_guarded_quantity_is_flagged() {
        assert_eq!(
            lints_of("fn f(lag: u64) -> u8 { lag as u8 }"),
            vec!["no-bare-cast"]
        );
        assert_eq!(
            lints_of("fn f(c: Credit) { let x = c.count as u16; }"),
            vec!["no-bare-cast"]
        );
    }

    #[test]
    fn unguarded_or_wide_casts_pass() {
        assert!(lints_of("fn f(n: usize) -> u8 { n as u8 }").is_empty());
        assert!(lints_of("fn f(lag: u8) -> u64 { lag as u64 }").is_empty());
    }

    #[test]
    fn counter_mutation_outside_faults_module_is_flagged() {
        assert_eq!(
            lints_of("fn f(s: &mut S) { s.stats.control_drops += 1; }"),
            vec!["no-counter-poke"]
        );
        assert_eq!(
            lints_of("fn f(s: &mut S) { s.lost_packets = 0; }"),
            vec!["no-counter-poke"]
        );
    }

    #[test]
    fn counter_reads_and_owner_module_are_exempt() {
        assert!(lints_of("fn f(s: &S) -> u64 { s.control_drops + s.lost_flits }").is_empty());
        assert!(lints_of("fn f(s: &S) { assert!(s.control_drops == 0); }").is_empty());
        let owner = Path::new("crates/noc/src/faults.rs");
        let v = lint_source(owner, "fn f(s: &mut S) { s.control_drops += 1; }");
        assert!(v.is_empty());
    }

    #[test]
    fn public_error_type_without_must_use_is_flagged() {
        assert_eq!(
            lints_of("pub enum AllocError { Full }"),
            vec!["must-use-errors"]
        );
        assert!(lints_of("#[must_use]\npub enum AllocError { Full }").is_empty());
        assert!(
            lints_of("#[must_use]\n#[derive(Debug, Clone)]\npub struct InstallError(u8);")
                .is_empty()
        );
        assert!(lints_of("#[derive(Debug)]\n#[must_use]\npub struct IoError;").is_empty());
    }

    #[test]
    fn private_and_non_error_types_are_exempt() {
        assert!(lints_of("enum AllocError { Full }").is_empty());
        assert!(lints_of("pub struct Report { x: u8 }").is_empty());
    }

    #[test]
    fn hash_collections_are_banned_in_covered_code() {
        assert_eq!(
            lints_of("use std::collections::HashMap;"),
            vec!["no-hashmap-iteration"]
        );
        assert_eq!(
            lints_of("fn f(s: &HashSet<u32>) {}"),
            vec!["no-hashmap-iteration"]
        );
        assert!(lints_of("use std::collections::BTreeMap;").is_empty());
    }

    #[test]
    fn wallclock_and_randomness_are_banned_in_covered_code() {
        assert_eq!(
            lints_of("fn f() { let t = Instant::now(); }"),
            vec!["no-wallclock"]
        );
        assert_eq!(
            lints_of("fn f() { let t = SystemTime::now(); }"),
            vec!["no-wallclock"]
        );
        assert_eq!(
            lints_of("fn f() { let r = thread_rng(); }"),
            vec!["no-ambient-randomness"]
        );
        assert_eq!(
            lints_of("fn f() { let s = RandomState::new(); }"),
            vec!["no-ambient-randomness"]
        );
        // `Duration` and a seeded RNG are fine.
        assert!(lints_of("fn f(d: Duration, rng: Pcg32) {}").is_empty());
    }

    #[test]
    fn determinism_lints_skip_uncovered_paths() {
        let src = "fn f() { let t = Instant::now(); let m = HashMap::new(); }";
        for exempt in [
            "tests/chaos.rs",
            "examples/quickstart.rs",
            "crates/bench/src/bin/nocsim.rs",
        ] {
            assert!(
                lint_source(Path::new(exempt), src).is_empty(),
                "{exempt} must be outside the determinism perimeter"
            );
        }
        assert_eq!(
            lint_source(Path::new("crates/runner/src/lease.rs"), src).len(),
            2
        );
    }

    #[test]
    fn det_allow_suppresses_on_the_same_line() {
        let src = "fn f() { let t = Instant::now(); } // det:allow(no-wallclock) audited\n";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn det_allow_attaches_through_a_comment_block_above() {
        let src = "\
fn f() {
    // det:allow(no-wallclock) — staleness epoch only;
    // never reaches an artifact or digest.
    let t = Instant::now();
}";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn det_allow_for_the_wrong_lint_does_not_suppress() {
        let src = "// det:allow(no-hashmap-iteration)\nfn f() { let t = Instant::now(); }";
        assert_eq!(lints_of(src), vec!["no-wallclock"]);
    }

    #[test]
    fn lossy_float_format_flags_inline_captures() {
        assert_eq!(
            lints_of("fn f(inj_rate: f64) -> String { format!(\"{inj_rate}\") }"),
            vec!["no-lossy-float-format"]
        );
        assert_eq!(
            lints_of("fn f(mean: f64) -> String { format!(\"{mean:.3}\") }"),
            vec!["no-lossy-float-format"]
        );
    }

    #[test]
    fn lossy_float_format_flags_positional_args() {
        assert_eq!(
            lints_of("fn f(w: f64) { out.push(format!(\"{}\", hit_ratio)); }"),
            vec!["no-lossy-float-format"]
        );
    }

    #[test]
    fn to_bits_hex_and_fmt_helpers_are_exempt() {
        assert!(
            lints_of("fn f(rate: f64) -> String { format!(\"{:016x}\", rate.to_bits()) }")
                .is_empty()
        );
        assert!(
            lints_of("fn f(rate: f64) -> String { format!(\"{}\", rate.to_bits()) }").is_empty()
        );
        assert!(
            lints_of("fn f(rate: f64) -> String { format!(\"{}\", fmt_rate(rate)) }").is_empty()
        );
    }

    #[test]
    fn float_name_parts_match_exactly() {
        // `crate` must not match `rate`, `average_cycles` is an integer
        // quantity, but `avg_weight` is float-named.
        assert!(lints_of("fn f() { let s = format!(\"{}\", the_crate); }").is_empty());
        assert!(lints_of("fn f() { let s = format!(\"{}\", average_cycles); }").is_empty());
        assert_eq!(
            lints_of("fn f() { let s = format!(\"{}\", avg_weight); }"),
            vec!["no-lossy-float-format"]
        );
        // Hex/scientific specs are not lossy; `{{` is an escape.
        assert!(lints_of("fn f(rate: u64) { let s = format!(\"{rate:x} {rate:e}\"); }").is_empty());
        assert!(lints_of("fn f() { let s = format!(\"{{}} literal\", inj_rate); }").is_empty());
    }

    #[test]
    fn hot_fn_allocations_are_flagged() {
        let src = "\
// hot
fn step(&mut self) {
    let b = Box::new(Flit::default());
    let v = vec![0u8; 4];
    let w = self.slots.to_vec();
}";
        assert_eq!(
            lints_of(src),
            vec![
                "no-hot-loop-alloc",
                "no-hot-loop-alloc",
                "no-hot-loop-alloc"
            ]
        );
    }

    #[test]
    fn hot_marker_reaches_past_stacked_attributes() {
        let src = "\
// hot
#[allow(clippy::too_many_arguments)]
#[inline]
fn eligible(&self) { let v = vec![1]; }";
        assert_eq!(lints_of(src), vec!["no-hot-loop-alloc"]);
    }

    #[test]
    fn hot_marker_covers_only_the_next_function() {
        let src = "\
// hot
fn stepped(&mut self) { self.cursor += 1; }
fn cold(&mut self) { let v = vec![0u8; 4]; }";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn unmarked_functions_may_allocate() {
        assert!(lints_of("fn build() -> Vec<u8> { vec![0u8; 4] }").is_empty());
        // Prose mentioning the hot loop is not a marker; neither is a
        // trailing `// hot` on a code line.
        let src = "\
/// The hot loop walks this.
fn build(x: u8) -> Vec<u8> { vec![x] } // hot path adjacent
fn later() { let b = Box::new(3); }";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn hot_fn_reuse_patterns_pass() {
        let src = "\
// hot
fn step(&mut self) {
    self.scratch.clear();
    let cap = Vec::with_capacity(self.n);
    let s = \"vec! in a string, Box::new too\";
    // vec![] in a comment is invisible to the lexer
}";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn det_allow_suppresses_hot_loop_alloc() {
        let src = "\
// hot
fn step(&mut self) {
    // det:allow(no-hot-loop-alloc) — cold error path, runs once
    let b = Box::new(err);
}";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn counters_match_fault_stats() {
        // The audited-counter list must track the real FaultStats
        // fields; this test fails when a field is added or renamed
        // without updating the lint.
        let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
        let faults = manifest.join("../noc/src/faults.rs");
        let src = fs::read_to_string(&faults).expect("noc/src/faults.rs exists in the workspace");
        let struct_body = src
            .split("pub struct FaultStats {")
            .nth(1)
            .and_then(|rest| rest.split('}').next())
            .expect("FaultStats struct present");
        for counter in AUDITED_COUNTERS {
            assert!(
                struct_body.contains(&format!("pub {counter}:")),
                "lint counter `{counter}` is not a FaultStats field"
            );
        }
        let fields = struct_body.matches("pub ").count();
        assert_eq!(
            fields,
            AUDITED_COUNTERS.len(),
            "FaultStats field count drifted"
        );
    }
}
