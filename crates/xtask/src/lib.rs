//! Workspace maintenance tasks, exposed as `cargo xtask <command>`.
//!
//! The only command today is `check`: a repo-specific lint pass over
//! every crate's `src/` (see [`lints`]). It runs on a hand-rolled token
//! stream ([`lexer`]) rather than `syn`, because the build environment
//! is offline and the lints only need lexical structure.
//!
//! The `xtask` alias lives in `.cargo/config.toml`; CI runs
//! `cargo xtask check` as part of the blocking `static-analysis` job.

pub mod lexer;
pub mod lints;
