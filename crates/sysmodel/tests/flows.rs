//! Transaction-flow tests of the system model: hit and miss paths,
//! memory-channel pressure, MLP sensitivity, and parameter monotonicity.

use noc::ideal::IdealNetwork;
use noc::mesh::MeshNetwork;
use sysmodel::{System, SystemParams};
use workloads::{WorkloadKind, WorkloadProfile};

fn base_profile() -> WorkloadProfile {
    WorkloadKind::WebSearch.profile()
}

fn perf_with(params: SystemParams, profile: WorkloadProfile, seed: u64) -> f64 {
    let net = MeshNetwork::new(params.noc.clone());
    let mut sys = System::with_profile(params, net, profile, seed);
    sys.measure(3_000, 8_000)
}

#[test]
fn lower_llc_hit_ratio_hurts_performance() {
    // Misses add a DRAM round trip on top of the LLC access.
    let params = SystemParams::paper();
    let mut hi = base_profile();
    hi.llc_hit_ratio = 0.95;
    let mut lo = base_profile();
    lo.llc_hit_ratio = 0.40;
    let p_hi = perf_with(params.clone(), hi, 1);
    let p_lo = perf_with(params, lo, 1);
    assert!(
        p_hi > p_lo * 1.1,
        "95% hits ({p_hi}) must clearly beat 40% hits ({p_lo})"
    );
}

#[test]
fn more_mlp_hides_data_miss_latency() {
    let params = SystemParams::paper();
    let mut narrow = base_profile();
    narrow.mlp = 1;
    narrow.d_mpki = 20.0;
    let mut wide = narrow;
    wide.mlp = 8;
    let p_narrow = perf_with(params.clone(), narrow, 1);
    let p_wide = perf_with(params, wide, 1);
    assert!(
        p_wide > p_narrow * 1.05,
        "MLP 8 ({p_wide}) must beat MLP 1 ({p_narrow}) at high D-MPKI"
    );
}

#[test]
fn instruction_misses_hurt_more_than_data_misses() {
    // I-misses block the core; D-misses overlap up to the MLP.
    let params = SystemParams::paper();
    let mut i_heavy = base_profile();
    i_heavy.i_mpki = 20.0;
    i_heavy.d_mpki = 5.0;
    let mut d_heavy = base_profile();
    d_heavy.i_mpki = 5.0;
    d_heavy.d_mpki = 20.0;
    let p_i = perf_with(params.clone(), i_heavy, 1);
    let p_d = perf_with(params, d_heavy, 1);
    assert!(
        p_d > p_i,
        "the same misses hurt more on the fetch path ({p_i}) than the data path ({p_d})"
    );
}

#[test]
fn slower_dram_hurts_miss_heavy_workloads_more() {
    let mut fast = SystemParams::paper();
    fast.dram_latency = 40;
    let mut slow = SystemParams::paper();
    slow.dram_latency = 300;
    let mut profile = base_profile();
    profile.llc_hit_ratio = 0.5;
    let p_fast = perf_with(fast, profile, 1);
    let p_slow = perf_with(slow, profile, 1);
    assert!(
        p_fast > p_slow * 1.1,
        "40-cycle DRAM ({p_fast}) vs 300-cycle DRAM ({p_slow})"
    );
}

#[test]
fn single_memory_channel_throttles_bandwidth() {
    let mut one = SystemParams::paper();
    one.memory_controllers.truncate(1);
    let four = SystemParams::paper();
    let mut profile = base_profile();
    profile.llc_hit_ratio = 0.30; // memory-bound
    profile.d_mpki = 25.0;
    let p_one = perf_with(one, profile, 1);
    let p_four = perf_with(four, profile, 1);
    assert!(
        p_four > p_one,
        "four channels ({p_four}) must beat one ({p_one}) when memory-bound"
    );
}

#[test]
fn request_lead_cycles_cost_latency_uniformly() {
    // A longer L1-miss pipeline hurts everyone; sanity check the knob.
    let mut short = SystemParams::paper();
    short.request_lead_cycles = 0;
    let mut long = SystemParams::paper();
    long.request_lead_cycles = 12;
    let p_short = perf_with(short, base_profile(), 1);
    let p_long = perf_with(long, base_profile(), 1);
    assert!(p_short > p_long, "lead 0 ({p_short}) vs lead 12 ({p_long})");
}

#[test]
fn transactions_complete_under_long_runs() {
    // No leaks: after a long run with no new instructions... the model
    // cannot pause cores, so instead check the steady-state bound holds
    // at several points.
    let params = SystemParams::paper();
    let net = MeshNetwork::new(params.noc.clone());
    let mut sys = System::new(params, net, WorkloadKind::MapReduce, 3);
    for _ in 0..10 {
        sys.run(2_000);
        assert!(
            sys.outstanding_transactions() <= 64 * 7,
            "outstanding transactions bounded by cores x (1 + MLP)"
        );
    }
    assert!(sys.committed_instructions() > 100_000);
}

#[test]
fn zero_coherence_traffic_is_allowed() {
    let params = SystemParams::paper();
    let mut profile = base_profile();
    profile.coherence_per_kilo_instr = 0.0;
    let p = perf_with(params, profile, 1);
    assert!(p > 0.0);
}

#[test]
fn ideal_network_bounds_sensitivity_of_every_knob() {
    // Whatever the workload profile, the ideal network never loses to the
    // mesh (spot-check over a small grid).
    let params = SystemParams::paper();
    for (i_mpki, mlp) in [(5.0, 1u8), (25.0, 1), (5.0, 8), (25.0, 8)] {
        let mut profile = base_profile();
        profile.i_mpki = i_mpki;
        profile.mlp = mlp;
        let mesh = perf_with(params.clone(), profile, 1);
        let ideal = {
            let net = IdealNetwork::new(params.noc.clone());
            let mut sys = System::with_profile(params.clone(), net, profile, 1);
            sys.measure(3_000, 8_000)
        };
        assert!(
            ideal >= mesh,
            "i_mpki {i_mpki}, mlp {mlp}: ideal {ideal} < mesh {mesh}"
        );
    }
}
