//! DDR3-1600 memory channels.
//!
//! A latency + bandwidth queueing model: each channel serves one
//! cache-line transfer at a time (`line_cycles` of occupancy) and every
//! access pays the fixed `latency` on top of its queueing delay.

use noc::types::Cycle;

/// One memory channel.
#[derive(Debug)]
pub struct MemoryChannel {
    latency: u64,
    line_cycles: u64,
    /// Cycle at which the channel next becomes free.
    free_at: Cycle,
    /// Completions scheduled: `(ready_cycle, txid)`.
    completions: Vec<(Cycle, u64)>,
    served: u64,
    busy_cycles: u64,
}

impl MemoryChannel {
    /// Creates a channel with fixed access `latency` and per-line
    /// occupancy `line_cycles`.
    pub fn new(latency: u64, line_cycles: u64) -> Self {
        MemoryChannel {
            latency,
            line_cycles,
            free_at: 0,
            completions: Vec::new(),
            served: 0,
            busy_cycles: 0,
        }
    }

    /// Enqueues a line fetch arriving at `now`; returns the cycle its
    /// data will be ready to leave the controller.
    pub fn enqueue(&mut self, txid: u64, now: Cycle) -> Cycle {
        let start = self.free_at.max(now);
        self.free_at = start + self.line_cycles;
        self.busy_cycles += self.line_cycles;
        let ready = start + self.latency;
        self.completions.push((ready, txid));
        self.served += 1;
        ready
    }

    /// Transactions whose data is ready at `now`.
    pub fn completions_at(&mut self, now: Cycle) -> Vec<u64> {
        let mut out = Vec::new();
        self.completions.retain(|&(ready, txid)| {
            if ready == now {
                out.push(txid);
                false
            } else {
                true
            }
        });
        out
    }

    /// Lines served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Total cycles of channel occupancy (bandwidth accounting).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_access_pays_latency_only() {
        let mut mc = MemoryChannel::new(90, 10);
        let ready = mc.enqueue(1, 100);
        assert_eq!(ready, 190);
        assert_eq!(mc.completions_at(189), Vec::<u64>::new());
        assert_eq!(mc.completions_at(190), vec![1]);
    }

    #[test]
    fn back_to_back_accesses_queue_on_bandwidth() {
        let mut mc = MemoryChannel::new(90, 10);
        assert_eq!(mc.enqueue(1, 100), 190);
        assert_eq!(
            mc.enqueue(2, 100),
            200,
            "second line starts 10 cycles later"
        );
        assert_eq!(mc.enqueue(3, 100), 210);
        assert_eq!(mc.served(), 3);
        assert_eq!(mc.busy_cycles(), 30);
    }

    #[test]
    fn idle_gaps_do_not_accumulate_service() {
        let mut mc = MemoryChannel::new(90, 10);
        mc.enqueue(1, 100);
        // Long idle gap; the next access starts immediately on arrival.
        assert_eq!(mc.enqueue(2, 500), 590);
    }
}
