//! The full-system driver: 64 tiles over a pluggable interconnect.
//!
//! Each tile hosts a core, its L1s (folded into the workload's miss
//! stream), one LLC slice and a router; four tiles additionally host a
//! memory channel. The driver advances cores, LLC slices, memory channels
//! and the network in lock-step, one cycle at a time, and measures
//! system performance as committed application instructions per cycle —
//! the paper's metric.
//!
//! Transaction flows:
//!
//! * **L1 miss** (instruction or data): core → request (1 flit) → home
//!   slice → serial tag lookup → **hit**: announce (PRA window) + data
//!   lookup → response (5 flits) → core; **miss**: request (1 flit) →
//!   memory channel → DRAM → fill (5 flits) → home slice → announce +
//!   lookup → response → core.
//! * **Coherence**: single-flit fire-and-forget messages between tiles.

use std::collections::BTreeMap;

use noc::flit::Packet;
use noc::network::Network;
use noc::types::{Cycle, MessageClass, NodeId, PacketId};
use noc::watchdog::Watchdog;
use workloads::{CoreStream, WorkloadKind};

use crate::core::{CoreIssue, CoreModel};
use crate::llc::{LlcSlice, TagOutcome};
use crate::memory::MemoryChannel;
use crate::params::SystemParams;

/// Message legs, encoded in the packets' client tags.
const LEG_REQ: u64 = 0;
const LEG_MEMREQ: u64 = 1;
const LEG_FILL: u64 = 2;
const LEG_RESP: u64 = 3;
const LEG_COH: u64 = 4;

fn tag(txid: u64, leg: u64) -> u64 {
    (txid << 3) | leg
}

fn untag(t: u64) -> (u64, u64) {
    (t >> 3, t & 0x7)
}

/// An outstanding L1-miss transaction.
#[derive(Debug, Clone, Copy)]
struct Tx {
    core: u16,
    home: u16,
    is_ifetch: bool,
    llc_hit: bool,
    /// Packet id reserved for the request at announce time.
    req_packet: PacketId,
    /// Packet id reserved for the response at announce time.
    resp_packet: PacketId,
    /// Packet id reserved for the memory fill at announce time.
    fill_packet: PacketId,
}

/// Deferred injections.
#[derive(Debug, Clone, Copy)]
#[allow(clippy::enum_variant_names)]
enum Event {
    /// The L1 miss handling finishes: inject the request.
    InjectRequest(u64),
    /// The LLC data lookup finishes: inject the response.
    InjectResponse(u64),
    /// DRAM data ready: inject the fill toward the home slice.
    InjectFill(u64),
}

/// The simulated 64-core server processor.
///
/// # Examples
///
/// ```
/// use noc::mesh::MeshNetwork;
/// use sysmodel::{System, SystemParams};
/// use workloads::WorkloadKind;
///
/// let params = SystemParams::paper();
/// let net = MeshNetwork::new(params.noc.clone());
/// let mut sys = System::new(params, net, WorkloadKind::WebSearch, 1);
/// sys.run(1_000);
/// assert!(sys.committed_instructions() > 0);
/// ```
#[derive(Debug)]
pub struct System<N: Network> {
    params: SystemParams,
    network: N,
    cores: Vec<CoreModel>,
    slices: Vec<LlcSlice>,
    channels: BTreeMap<usize, MemoryChannel>,
    txs: BTreeMap<u64, Tx>,
    events: BTreeMap<Cycle, Vec<Event>>,
    next_tx: u64,
    next_packet: u64,
    issue_buf: Vec<CoreIssue>,
    workload: WorkloadKind,
    /// Optional invariant watchdog; observes network audits at its own
    /// check interval. `None` (the default) costs nothing per cycle.
    watchdog: Option<Watchdog>,
    /// Observability handle for system-level events (LLC windows);
    /// detached by default.
    #[cfg(feature = "obs")]
    obs: niobs::ObsHandle,
}

impl<N: Network> System<N> {
    /// Builds the system: one core + slice per tile, memory channels per
    /// `params`, instruction streams seeded by `(workload, core, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `params` are invalid or the network was built with a
    /// different configuration.
    pub fn new(params: SystemParams, network: N, workload: WorkloadKind, seed: u64) -> Self {
        Self::with_profile(params, network, workload.profile(), seed)
    }

    /// Builds the system from an explicit profile (parameter studies and
    /// calibration sweeps use scaled variants of the named profiles).
    ///
    /// # Panics
    ///
    /// Same conditions as [`System::new`].
    pub fn with_profile(
        params: SystemParams,
        network: N,
        profile: workloads::WorkloadProfile,
        seed: u64,
    ) -> Self {
        params.assert_valid();
        assert_eq!(
            network.config(),
            &params.noc,
            "network must match the system's NoC configuration"
        );
        let nodes = params.noc.nodes();
        let cores = (0..nodes)
            .map(|c| CoreModel::new(CoreStream::new(profile, nodes as u16, c as u16, seed)))
            .collect();
        let slices = (0..nodes)
            .map(|_| LlcSlice::new(params.llc_tag_cycles, params.llc_data_cycles))
            .collect();
        let channels = params
            .memory_controllers
            .iter()
            .map(|mc| {
                (
                    mc.index(),
                    MemoryChannel::new(params.dram_latency, params.dram_line_cycles),
                )
            })
            .collect();
        System {
            params,
            network,
            cores,
            slices,
            channels,
            txs: BTreeMap::new(),
            events: BTreeMap::new(),
            next_tx: 0,
            next_packet: 0,
            issue_buf: Vec::new(),
            workload: profile.kind,
            watchdog: None,
            #[cfg(feature = "obs")]
            obs: niobs::ObsHandle::disabled(),
        }
    }

    /// Attaches an observability sink to the whole stack: the network's
    /// instrumentation hooks (router pipeline, control plane) and the
    /// system model's own LLC-window events all feed `sink`.
    #[cfg(feature = "obs")]
    pub fn attach_obs(&mut self, sink: niobs::SharedSink) {
        self.network.install_obs(sink.clone());
        self.obs.attach(sink);
    }

    /// Attaches an invariant watchdog: from now on, every time a check is
    /// due the system takes a network audit snapshot and feeds it to the
    /// watchdog. Networks without audit support are silently skipped.
    pub fn attach_watchdog(&mut self, watchdog: Watchdog) {
        self.watchdog = Some(watchdog);
    }

    /// The attached watchdog, if any.
    pub fn watchdog(&self) -> Option<&Watchdog> {
        self.watchdog.as_ref()
    }

    /// The workload being executed.
    pub fn workload(&self) -> WorkloadKind {
        self.workload
    }

    /// The interconnect (for statistics inspection).
    pub fn network(&self) -> &N {
        &self.network
    }

    /// Consumes the system and returns the interconnect.
    pub fn into_network(self) -> N {
        self.network
    }

    /// Total committed instructions across all cores.
    pub fn committed_instructions(&self) -> u64 {
        self.cores.iter().map(CoreModel::committed).sum()
    }

    /// Cycles simulated so far.
    pub fn cycles(&self) -> Cycle {
        self.network.now()
    }

    /// Outstanding transactions (useful for leak checks in tests).
    pub fn outstanding_transactions(&self) -> usize {
        self.txs.len()
    }

    fn fresh_packet(&mut self) -> PacketId {
        self.next_packet += 1;
        PacketId(self.next_packet)
    }

    /// Advances the whole system by one cycle.
    pub fn step(&mut self) {
        let t = self.network.now();
        self.dispatch_deliveries(t);
        self.tag_completions(t);
        self.run_events(t);
        self.run_cores();
        self.network.step();
        if let Some(wd) = self.watchdog.as_mut() {
            if wd.due(self.network.now()) {
                if let Some(report) = self.network.audit() {
                    wd.observe(&report);
                }
            }
        }
    }

    /// Runs `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs a warm-up window, then a measurement window; returns the
    /// system performance (committed instructions per cycle, summed over
    /// all cores) of the measurement window.
    pub fn measure(&mut self, warmup: u64, measure: u64) -> f64 {
        self.run(warmup);
        let before = self.committed_instructions();
        self.run(measure);
        (self.committed_instructions() - before) as f64 / measure as f64
    }

    fn dispatch_deliveries(&mut self, t: Cycle) {
        for d in self.network.drain_delivered() {
            let (txid, leg) = untag(d.packet.tag);
            match leg {
                LEG_REQ => {
                    let tx = self.txs[&txid];
                    self.slices[tx.home as usize].accept(txid, t, tx.llc_hit);
                }
                LEG_MEMREQ => {
                    let tx = self.txs[&txid];
                    let mc = self.params.mc_for(txid).index();
                    debug_assert_eq!(mc, d.packet.dest.index());
                    let ready = self
                        .channels
                        .get_mut(&mc)
                        .expect("MC exists")
                        .enqueue(txid, t);
                    if self.params.announce_fills && ready > t {
                        // DRAM timing is deterministic: the controller can
                        // announce the fill as far ahead as the access
                        // latency allows.
                        let fill = self.fill_packet(txid, &tx);
                        self.network.announce(&fill, (ready - t) as u32);
                        #[cfg(feature = "obs")]
                        {
                            let pkt = fill.id.0;
                            let src = fill.src.index() as u64;
                            let dst = fill.dest.index() as u64;
                            let lead = ready - t;
                            self.obs.emit(t, || niobs::Event::LlcWindow {
                                packet: pkt,
                                src,
                                dest: dst,
                                lead,
                                kind: "fill",
                            });
                        }
                    }
                    self.events
                        .entry(ready)
                        .or_default()
                        .push(Event::InjectFill(txid));
                }
                LEG_FILL => {
                    // The line is written and then read back through the
                    // data array: ready after the data-lookup latency, and
                    // announced now (the slice knows the hit outcome — it
                    // just filled the line).
                    let tx = self.txs[&txid];
                    let lead = self.params.llc_data_cycles;
                    let resp = self.response_packet(txid, &tx);
                    self.network.announce(&resp, lead);
                    #[cfg(feature = "obs")]
                    {
                        let pkt = resp.id.0;
                        let src = resp.src.index() as u64;
                        let dst = resp.dest.index() as u64;
                        self.obs.emit(t, || niobs::Event::LlcWindow {
                            packet: pkt,
                            src,
                            dest: dst,
                            lead: u64::from(lead),
                            kind: "fill_response",
                        });
                    }
                    self.events
                        .entry(t + lead as Cycle)
                        .or_default()
                        .push(Event::InjectResponse(txid));
                }
                LEG_RESP => {
                    let tx = self.txs.remove(&txid).expect("response for a live tx");
                    let core = &mut self.cores[tx.core as usize];
                    if tx.is_ifetch {
                        core.complete_ifetch();
                    } else {
                        core.complete_data();
                    }
                }
                LEG_COH => {} // fire-and-forget
                _ => unreachable!("unknown message leg"),
            }
        }
    }

    fn tag_completions(&mut self, t: Cycle) {
        for home in 0..self.slices.len() {
            for (txid, outcome) in self.slices[home].tag_completions(t) {
                match outcome {
                    TagOutcome::Hit { data_ready } => {
                        let tx = self.txs[&txid];
                        let lead = (data_ready - t) as u32;
                        let resp = self.response_packet(txid, &tx);
                        self.network.announce(&resp, lead);
                        #[cfg(feature = "obs")]
                        {
                            let pkt = resp.id.0;
                            let src = resp.src.index() as u64;
                            let dst = resp.dest.index() as u64;
                            self.obs.emit(t, || niobs::Event::LlcWindow {
                                packet: pkt,
                                src,
                                dest: dst,
                                lead: data_ready - t,
                                kind: "tag_hit",
                            });
                        }
                        self.events
                            .entry(data_ready)
                            .or_default()
                            .push(Event::InjectResponse(txid));
                    }
                    TagOutcome::Miss => {
                        let tx = self.txs[&txid];
                        let mc = self.params.mc_for(txid);
                        let id = self.fresh_packet();
                        self.network.inject(
                            Packet::new(id, NodeId::new(tx.home), mc, MessageClass::Request, 1)
                                .with_tag(tag(txid, LEG_MEMREQ)),
                        );
                    }
                }
            }
        }
    }

    fn run_events(&mut self, t: Cycle) {
        let Some(events) = self.events.remove(&t) else {
            return;
        };
        for ev in events {
            match ev {
                Event::InjectRequest(txid) => {
                    let tx = self.txs[&txid];
                    let req = self.request_packet(txid, &tx);
                    self.network.inject(req);
                }
                Event::InjectResponse(txid) => {
                    let tx = self.txs[&txid];
                    let resp = self.response_packet(txid, &tx);
                    self.network.inject(resp);
                }
                Event::InjectFill(txid) => {
                    let tx = self.txs[&txid];
                    let fill = self.fill_packet(txid, &tx);
                    self.network.inject(fill);
                }
            }
        }
    }

    /// The response packet of `tx` (same id at announce and inject time).
    fn response_packet(&self, txid: u64, tx: &Tx) -> Packet {
        Packet::new(
            tx.resp_packet,
            NodeId::new(tx.home),
            NodeId::new(tx.core),
            MessageClass::Response,
            self.params.noc.max_packet_len,
        )
        .with_tag(tag(txid, LEG_RESP))
    }

    fn run_cores(&mut self) {
        for c in 0..self.cores.len() {
            self.issue_buf.clear();
            let mut issues = std::mem::take(&mut self.issue_buf);
            self.cores[c].step(&mut issues);
            for issue in issues.drain(..) {
                match issue {
                    CoreIssue::IFetch { home, llc_hit } => {
                        self.start_miss(c as u16, home, llc_hit, true);
                    }
                    CoreIssue::Data { home, llc_hit } => {
                        self.start_miss(c as u16, home, llc_hit, false);
                    }
                    CoreIssue::Coherence { peer } => {
                        let id = self.fresh_packet();
                        self.network.inject(
                            Packet::new(
                                id,
                                NodeId::new(c as u16),
                                NodeId::new(peer),
                                MessageClass::Coherence,
                                1,
                            )
                            .with_tag(tag(0, LEG_COH)),
                        );
                    }
                }
            }
            self.issue_buf = issues;
        }
    }

    fn start_miss(&mut self, core: u16, home: u16, llc_hit: bool, is_ifetch: bool) {
        self.next_tx += 1;
        let txid = self.next_tx;
        let req_packet = self.fresh_packet();
        let resp_packet = self.fresh_packet();
        let fill_packet = self.fresh_packet();
        let tx = Tx {
            core,
            home,
            is_ifetch,
            llc_hit,
            req_packet,
            resp_packet,
            fill_packet,
        };
        self.txs.insert(txid, tx);
        let lead = self.params.request_lead_cycles;
        let req = self.request_packet(txid, &tx);
        if lead == 0 {
            self.network.inject(req);
        } else {
            // The L1-miss window: the request's destination is known while
            // the miss is being assembled, so PRA-capable networks get the
            // same advance notice the LLC window gives responses.
            let t = self.network.now();
            if self.params.announce_requests {
                self.network.announce(&req, lead);
                #[cfg(feature = "obs")]
                {
                    let pkt = req.id.0;
                    let src = req.src.index() as u64;
                    let dst = req.dest.index() as u64;
                    self.obs.emit(t, || niobs::Event::LlcWindow {
                        packet: pkt,
                        src,
                        dest: dst,
                        lead: u64::from(lead),
                        kind: "request",
                    });
                }
            }
            self.events
                .entry(t + lead as Cycle)
                .or_default()
                .push(Event::InjectRequest(txid));
        }
    }

    /// The fill packet of `tx` (same id at announce and inject time).
    fn fill_packet(&self, txid: u64, tx: &Tx) -> Packet {
        Packet::new(
            tx.fill_packet,
            self.params.mc_for(txid),
            NodeId::new(tx.home),
            MessageClass::Response,
            self.params.noc.max_packet_len,
        )
        .with_tag(tag(txid, LEG_FILL))
    }

    /// The request packet of `tx` (same id at announce and inject time).
    fn request_packet(&self, txid: u64, tx: &Tx) -> Packet {
        Packet::new(
            tx.req_packet,
            NodeId::new(tx.core),
            NodeId::new(tx.home),
            MessageClass::Request,
            1,
        )
        .with_tag(tag(txid, LEG_REQ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc::ideal::IdealNetwork;
    use noc::mesh::MeshNetwork;

    fn params() -> SystemParams {
        SystemParams::paper()
    }

    #[test]
    fn mesh_system_makes_progress_and_leaks_nothing() {
        let p = params();
        let net = MeshNetwork::new(p.noc.clone());
        let mut sys = System::new(p, net, WorkloadKind::WebSearch, 1);
        sys.run(5_000);
        assert!(sys.committed_instructions() > 10_000);
        // Outstanding transactions stay bounded by cores × (1 + MLP).
        assert!(sys.outstanding_transactions() <= 64 * 7);
    }

    #[test]
    fn determinism_same_seed_same_instructions() {
        let p = params();
        let mut a = System::new(
            p.clone(),
            MeshNetwork::new(p.noc.clone()),
            WorkloadKind::DataServing,
            5,
        );
        let mut b = System::new(
            p.clone(),
            MeshNetwork::new(p.noc.clone()),
            WorkloadKind::DataServing,
            5,
        );
        a.run(3_000);
        b.run(3_000);
        assert_eq!(a.committed_instructions(), b.committed_instructions());
    }

    #[test]
    fn watchdog_stays_quiet_on_healthy_mesh() {
        let p = params();
        let net = MeshNetwork::new(p.noc.clone());
        let mut sys = System::new(p, net, WorkloadKind::WebSearch, 2);
        sys.attach_watchdog(Watchdog::default());
        sys.run(5_000);
        let wd = sys.watchdog().expect("attached");
        assert!(wd.checks_run() > 0, "audits must actually run");
        assert!(
            wd.is_quiet(),
            "healthy mesh must raise no violations: {:?}",
            wd.violations()
        );
    }

    #[test]
    fn ideal_network_outperforms_mesh() {
        let p = params();
        let mut mesh = System::new(
            p.clone(),
            MeshNetwork::new(p.noc.clone()),
            WorkloadKind::MediaStreaming,
            3,
        );
        let mut ideal = System::new(
            p.clone(),
            IdealNetwork::new(p.noc.clone()),
            WorkloadKind::MediaStreaming,
            3,
        );
        let perf_mesh = mesh.measure(3_000, 10_000);
        let perf_ideal = ideal.measure(3_000, 10_000);
        assert!(
            perf_ideal > perf_mesh * 1.1,
            "ideal {perf_ideal} must clearly beat mesh {perf_mesh} on media streaming"
        );
    }
}
