//! System parameters (Table I of the paper).

use noc::config::NocConfig;
use noc::types::NodeId;

/// Parameters of the simulated 64-core server processor.
///
/// Defaults reproduce Table I: 64 ARM Cortex-A15-like cores at 2 GHz,
/// an 8 MB NUCA LLC (one 128 KB slice per tile, 1-cycle tag / 4-cycle
/// data serial lookup), four DDR3-1600 memory channels, and the 8×8 mesh
/// NoC configuration shared by all organisations.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemParams {
    /// NoC configuration (radix, VCs, depths, link width).
    pub noc: NocConfig,
    /// LLC tag-lookup latency in cycles (serial lookup, stage 1).
    pub llc_tag_cycles: u32,
    /// LLC data-lookup latency in cycles (serial lookup, stage 2) — the
    /// PRA opportunity window.
    pub llc_data_cycles: u32,
    /// DRAM access latency in cycles (2 GHz core cycles; ~45 ns).
    pub dram_latency: u64,
    /// Channel occupancy per cache-line transfer in cycles
    /// (64 B over DDR3-1600's 12.8 GB/s ≈ 5 ns ≈ 10 cycles).
    pub dram_line_cycles: u64,
    /// Tiles hosting the four memory channels.
    pub memory_controllers: Vec<NodeId>,
    /// Cycles between L1-miss detection and the request packet entering
    /// the NI (L1 tag lookup, MSHR allocation, request assembly). Applies
    /// to every network organisation.
    pub request_lead_cycles: u32,
    /// Whether that window is used to announce requests to PRA-capable
    /// networks (the symmetric counterpart of the LLC window; see
    /// DESIGN.md §5 — the paper's text only describes the LLC window, but
    /// its near-ideal results are only reachable when requests are
    /// pre-allocated too; the ablation benches quantify both settings).
    pub announce_requests: bool,
    /// Whether memory controllers announce fills ahead of time (DRAM
    /// latency is deterministic, so the MC has a wide window; same
    /// reproduction note as `announce_requests`).
    pub announce_fills: bool,
}

impl SystemParams {
    /// Table I defaults.
    pub fn paper() -> Self {
        SystemParams {
            noc: NocConfig::paper(),
            llc_tag_cycles: 1,
            llc_data_cycles: 4,
            dram_latency: 90,
            dram_line_cycles: 10,
            // One channel per chip corner, as in common server floorplans.
            memory_controllers: vec![
                NodeId::new(0),
                NodeId::new(7),
                NodeId::new(56),
                NodeId::new(63),
            ],
            request_lead_cycles: 4,
            announce_requests: true,
            announce_fills: true,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (construction-time constants).
    pub fn assert_valid(&self) {
        self.noc.validate().expect("valid NoC configuration");
        assert!(
            self.llc_tag_cycles >= 1,
            "tag lookup takes at least a cycle"
        );
        assert!(
            self.llc_data_cycles >= 1,
            "data lookup takes at least a cycle"
        );
        assert!(!self.memory_controllers.is_empty(), "need a memory channel");
        for mc in &self.memory_controllers {
            assert!(mc.index() < self.noc.nodes(), "MC on a real tile");
        }
    }

    /// The memory controller that owns transaction `txid` (address
    /// interleaving over channels).
    pub fn mc_for(&self, txid: u64) -> NodeId {
        self.memory_controllers[(txid as usize) % self.memory_controllers.len()]
    }
}

impl Default for SystemParams {
    fn default() -> Self {
        SystemParams::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_params_valid() {
        let p = SystemParams::paper();
        p.assert_valid();
        assert_eq!(p.llc_tag_cycles, 1);
        assert_eq!(p.llc_data_cycles, 4);
        assert_eq!(p.memory_controllers.len(), 4);
    }

    #[test]
    fn mc_interleaving_covers_all_channels() {
        let p = SystemParams::paper();
        let mut seen = std::collections::BTreeSet::new();
        for txid in 0..16 {
            seen.insert(p.mc_for(txid));
        }
        assert_eq!(seen.len(), 4);
    }
}
