//! The core model.
//!
//! An ARM Cortex-A15-like core abstracted to what matters for NoC studies:
//! a sustained commit rate (the workload's ILP), **blocking**
//! instruction-fetch misses (the server-workload property the whole paper
//! rests on), and data misses that overlap execution up to the workload's
//! MLP. The instruction stream comes from a deterministic
//! [`workloads::CoreStream`], so every network organisation executes the
//! identical instruction sequence.

use workloads::{CoreStream, InstrEvent};

/// A memory-system request issued by the core this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreIssue {
    /// Instruction fetch miss to the LLC slice at `home` (blocking).
    IFetch {
        /// Home LLC slice.
        home: u16,
        /// Pre-drawn LLC outcome.
        llc_hit: bool,
    },
    /// Data miss to the LLC slice at `home` (overlapping).
    Data {
        /// Home LLC slice.
        home: u16,
        /// Pre-drawn LLC outcome.
        llc_hit: bool,
    },
    /// Single-flit coherence message to `peer`.
    Coherence {
        /// Destination tile.
        peer: u16,
    },
}

/// One core's execution state.
#[derive(Debug)]
pub struct CoreModel {
    stream: CoreStream,
    /// Fractional commit budget carried within a cycle.
    budget: f64,
    /// Waiting for an instruction-fetch response.
    ifetch_stalled: bool,
    /// Outstanding (overlapped) data misses.
    outstanding_data: u8,
    /// An event drawn but not yet committable (MLP-full data miss).
    pending: Option<InstrEvent>,
    /// Committed instructions (total).
    committed: u64,
    /// Cycles spent fully stalled (either fetch or MLP).
    stall_cycles: u64,
}

impl CoreModel {
    /// Creates a core over its instruction stream.
    pub fn new(stream: CoreStream) -> Self {
        CoreModel {
            stream,
            budget: 0.0,
            ifetch_stalled: false,
            outstanding_data: 0,
            pending: None,
            committed: 0,
            stall_cycles: 0,
        }
    }

    /// Total committed instructions.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Cycles in which the core could not commit anything.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Whether the core is blocked on an instruction fetch.
    pub fn is_fetch_stalled(&self) -> bool {
        self.ifetch_stalled
    }

    /// Outstanding data misses.
    pub fn outstanding_data(&self) -> u8 {
        self.outstanding_data
    }

    /// An instruction-fetch response arrived: resume execution.
    pub fn complete_ifetch(&mut self) {
        debug_assert!(self.ifetch_stalled, "spurious ifetch completion");
        self.ifetch_stalled = false;
    }

    /// A data response arrived: free an MLP slot.
    pub fn complete_data(&mut self) {
        debug_assert!(self.outstanding_data > 0, "spurious data completion");
        self.outstanding_data -= 1;
    }

    /// Executes one cycle: commits up to `ilp` instructions and reports
    /// the memory requests issued. `issues` is an out-buffer cleared by
    /// the caller each cycle (avoids a per-cycle allocation).
    pub fn step(&mut self, issues: &mut Vec<CoreIssue>) -> u32 {
        if self.ifetch_stalled {
            self.stall_cycles += 1;
            return 0;
        }
        let profile = *self.stream.profile();
        // No banking of unused issue slots across cycles.
        self.budget = (self.budget + profile.ilp).min(profile.ilp.max(1.0));
        let mut done = 0u32;
        while self.budget >= 1.0 {
            let ev = match self.pending.take() {
                Some(e) => e,
                None => self.stream.next_event(),
            };
            match ev {
                InstrEvent::None => {
                    self.budget -= 1.0;
                    self.committed += 1;
                    done += 1;
                }
                InstrEvent::Coherence { peer } => {
                    self.budget -= 1.0;
                    self.committed += 1;
                    done += 1;
                    issues.push(CoreIssue::Coherence { peer });
                }
                InstrEvent::IMiss { home, llc_hit } => {
                    // The fetch miss blocks the front end: the instruction
                    // commits now (it is in flight), nothing more issues
                    // until the line returns.
                    self.budget = 0.0;
                    self.committed += 1;
                    done += 1;
                    self.ifetch_stalled = true;
                    issues.push(CoreIssue::IFetch { home, llc_hit });
                    break;
                }
                InstrEvent::DMiss { home, llc_hit } => {
                    if self.outstanding_data < profile.mlp {
                        self.budget -= 1.0;
                        self.committed += 1;
                        done += 1;
                        self.outstanding_data += 1;
                        issues.push(CoreIssue::Data { home, llc_hit });
                    } else {
                        // MLP exhausted: the miss waits for a free slot.
                        self.pending = Some(ev);
                        self.budget = 0.0;
                        break;
                    }
                }
            }
        }
        if done == 0 {
            self.stall_cycles += 1;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::WorkloadKind;

    fn core(kind: WorkloadKind, seed: u64) -> CoreModel {
        CoreModel::new(CoreStream::new(kind.profile(), 64, 0, seed))
    }

    #[test]
    fn unstalled_core_commits_at_ilp() {
        // SAT Solver has ILP 2.0 and low miss rates.
        let mut c = core(WorkloadKind::SatSolver, 1);
        let mut issues = Vec::new();
        let mut total = 0;
        let mut cycles = 0;
        // Complete everything instantly so stalls are only 1 cycle long.
        for _ in 0..10_000 {
            issues.clear();
            total += c.step(&mut issues);
            cycles += 1;
            for i in issues.drain(..) {
                match i {
                    CoreIssue::IFetch { .. } => c.complete_ifetch(),
                    CoreIssue::Data { .. } => c.complete_data(),
                    CoreIssue::Coherence { .. } => {}
                }
            }
        }
        let ipc = total as f64 / cycles as f64;
        assert!(
            ipc > 1.7,
            "near-ideal memory should give IPC close to ILP, got {ipc}"
        );
    }

    #[test]
    fn fetch_stall_blocks_until_completion() {
        let mut c = core(WorkloadKind::MediaStreaming, 2);
        let mut issues = Vec::new();
        // Run until the first fetch miss.
        let mut fetched = false;
        for _ in 0..10_000 {
            issues.clear();
            c.step(&mut issues);
            if issues.iter().any(|i| matches!(i, CoreIssue::IFetch { .. })) {
                fetched = true;
                break;
            }
            for i in issues.drain(..) {
                if matches!(i, CoreIssue::Data { .. }) {
                    c.complete_data();
                }
            }
        }
        assert!(fetched, "media streaming must fetch-miss eventually");
        assert!(c.is_fetch_stalled());
        // Stalled: zero commit for as long as the response is outstanding.
        for _ in 0..50 {
            issues.clear();
            assert_eq!(c.step(&mut issues), 0);
            assert!(issues.is_empty());
        }
        c.complete_ifetch();
        issues.clear();
        assert!(c.step(&mut issues) > 0, "resumes after the line returns");
    }

    #[test]
    fn mlp_bounds_outstanding_data_misses() {
        let mut c = core(WorkloadKind::MediaStreaming, 3); // MLP = 1
        let mut issues = Vec::new();
        for _ in 0..200_000 {
            issues.clear();
            c.step(&mut issues);
            for i in &issues {
                if matches!(i, CoreIssue::IFetch { .. }) {
                    c.complete_ifetch(); // keep the fetch path instant
                }
            }
            assert!(c.outstanding_data() <= 1, "MLP must bound data misses");
            // Never complete data: the core must eventually wedge on MLP.
        }
        assert_eq!(c.outstanding_data(), 1);
        // And it is stalled (no commits).
        issues.clear();
        let n = c.step(&mut issues);
        assert_eq!(n, 0);
        c.complete_data();
        issues.clear();
        assert!(c.step(&mut issues) > 0);
    }

    #[test]
    fn lower_latency_means_more_instructions() {
        // The core's whole purpose: IPC falls as memory latency grows.
        let mut ipcs = Vec::new();
        for latency in [5u32, 50u32] {
            let mut c = core(WorkloadKind::WebSearch, 4);
            let mut issues = Vec::new();
            let mut inflight: Vec<(u32, CoreIssue)> = Vec::new();
            let mut total = 0u64;
            for cycle in 0..50_000u32 {
                // Deliver responses.
                let mut i = 0;
                while i < inflight.len() {
                    if inflight[i].0 == cycle {
                        match inflight.swap_remove(i).1 {
                            CoreIssue::IFetch { .. } => c.complete_ifetch(),
                            CoreIssue::Data { .. } => c.complete_data(),
                            CoreIssue::Coherence { .. } => {}
                        }
                    } else {
                        i += 1;
                    }
                }
                issues.clear();
                total += c.step(&mut issues) as u64;
                for iss in issues.drain(..) {
                    if !matches!(iss, CoreIssue::Coherence { .. }) {
                        inflight.push((cycle + latency, iss));
                    }
                }
            }
            ipcs.push(total as f64 / 50_000.0);
        }
        assert!(
            ipcs[0] > ipcs[1] * 1.2,
            "5-cycle memory ({}) must clearly beat 50-cycle memory ({})",
            ipcs[0],
            ipcs[1]
        );
    }
}
