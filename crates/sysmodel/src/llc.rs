//! The distributed NUCA last-level cache.
//!
//! One slice per tile; requests arrive over the NoC, perform a **serial**
//! tag lookup (1 cycle) followed by a data lookup (4 cycles). The serial
//! lookup is the energy-motivated design the paper leverages: a hit is
//! known a full data-lookup ahead of the data — the LLC window that PRA
//! uses to pre-allocate the response's path (Section III).
//!
//! The slice model is latency-accurate and throughput-idealised (fully
//! pipelined, no bank conflicts): LLC bank contention is not the paper's
//! subject and the NoC dominates the variable part of the access latency.

use noc::types::Cycle;

/// Outcome of a tag lookup, reported `tag_cycles` after acceptance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagOutcome {
    /// Hit: the response data will be ready `data_cycles` later.
    Hit {
        /// Cycle at which the response packet is ready for injection.
        data_ready: Cycle,
    },
    /// Miss: a memory request must be sent.
    Miss,
}

/// A pending lookup inside a slice.
#[derive(Debug, Clone, Copy)]
struct Lookup {
    txid: u64,
    tag_done: Cycle,
    hit: bool,
}

/// One LLC slice.
#[derive(Debug)]
pub struct LlcSlice {
    tag_cycles: u32,
    data_cycles: u32,
    pending: Vec<Lookup>,
    /// Statistics: accepted requests, hits, misses.
    accepted: u64,
    hits: u64,
}

impl LlcSlice {
    /// Creates a slice with the given serial lookup latencies.
    pub fn new(tag_cycles: u32, data_cycles: u32) -> Self {
        LlcSlice {
            tag_cycles,
            data_cycles,
            pending: Vec::new(),
            accepted: 0,
            hits: 0,
        }
    }

    /// Accepts a request delivered at cycle `now`; the pre-drawn `hit`
    /// outcome travels with the transaction (deterministic workloads).
    pub fn accept(&mut self, txid: u64, now: Cycle, hit: bool) {
        self.accepted += 1;
        if hit {
            self.hits += 1;
        }
        self.pending.push(Lookup {
            txid,
            tag_done: now + self.tag_cycles as Cycle,
            hit,
        });
    }

    /// Returns the lookups whose tag stage completes at `now`, with their
    /// outcome. Hits report the cycle their data becomes ready — the PRA
    /// announce window is exactly `data_ready - now`.
    pub fn tag_completions(&mut self, now: Cycle) -> Vec<(u64, TagOutcome)> {
        let mut out = Vec::new();
        let data_cycles = self.data_cycles as Cycle;
        self.pending.retain(|l| {
            if l.tag_done == now {
                let outcome = if l.hit {
                    TagOutcome::Hit {
                        data_ready: now + data_cycles,
                    }
                } else {
                    TagOutcome::Miss
                };
                out.push((l.txid, outcome));
                false
            } else {
                true
            }
        });
        out
    }

    /// Data-lookup latency (the PRA window length).
    pub fn data_cycles(&self) -> u32 {
        self.data_cycles
    }

    /// Requests accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Tag hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_lookup_timing() {
        let mut slice = LlcSlice::new(1, 4);
        slice.accept(7, 100, true);
        assert!(slice.tag_completions(100).is_empty());
        let done = slice.tag_completions(101);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 7);
        assert_eq!(done[0].1, TagOutcome::Hit { data_ready: 105 });
        assert!(slice.tag_completions(101).is_empty(), "consumed");
    }

    #[test]
    fn miss_reports_miss() {
        let mut slice = LlcSlice::new(1, 4);
        slice.accept(9, 10, false);
        let done = slice.tag_completions(11);
        assert_eq!(done[0].1, TagOutcome::Miss);
        assert_eq!(slice.accepted(), 1);
        assert_eq!(slice.hits(), 0);
    }

    #[test]
    fn pipelined_lookups_overlap() {
        let mut slice = LlcSlice::new(1, 4);
        slice.accept(1, 10, true);
        slice.accept(2, 10, true);
        slice.accept(3, 11, false);
        assert_eq!(slice.tag_completions(11).len(), 2);
        assert_eq!(slice.tag_completions(12).len(), 1);
        assert_eq!(slice.accepted(), 3);
        assert_eq!(slice.hits(), 2);
    }
}
