//! # sysmodel — a 64-core tiled server processor model
//!
//! The full-system substrate of the *Near-Ideal Networks-on-Chip for
//! Servers* reproduction, standing in for the paper's Flexus full-system
//! simulation: Scale-Out-Processor-style tiles (core + NUCA LLC slice +
//! router), four DDR3-1600 memory channels, and deterministic synthetic
//! CloudSuite workloads driving everything.
//!
//! The model is built so that **only** interconnect timing differs across
//! network organisations: instruction streams, LLC outcomes and memory
//! behaviour replay identically, making the paper's normalized-performance
//! comparisons (Figures 2, 6, 9) meaningful at model scale.
//!
//! ```
//! use noc::mesh::MeshNetwork;
//! use sysmodel::{System, SystemParams};
//! use workloads::WorkloadKind;
//!
//! let params = SystemParams::paper();
//! let net = MeshNetwork::new(params.noc.clone());
//! let mut sys = System::new(params, net, WorkloadKind::MediaStreaming, 1);
//! let perf = sys.measure(1_000, 2_000); // instructions per cycle
//! assert!(perf > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod core;
pub mod llc;
pub mod memory;
pub mod params;
pub mod system;

pub use params::SystemParams;
pub use system::System;
