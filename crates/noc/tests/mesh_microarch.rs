//! Microarchitectural edge cases of the mesh router: credit
//! backpressure, port locking, guard semantics, reservation interplay
//! with reactive traffic, and link-use accounting.

use noc::config::{NocConfig, NocConfigBuilder};
use noc::flit::Packet;
use noc::mesh::{HopPlan, InstallError, MeshNetwork};
use noc::network::Network;
use noc::reserve::{FlitSource, Landing};
use noc::types::{Direction, MessageClass, NodeId, PacketId, Port};

fn pkt(id: u64, src: u16, dest: u16, class: MessageClass, len: u8) -> Packet {
    Packet::new(
        PacketId(id),
        NodeId::new(src),
        NodeId::new(dest),
        class,
        len,
    )
}

#[test]
fn credit_backpressure_throttles_but_never_overflows() {
    // A 2-deep VC with 5-flit... not allowed (max_packet_len <= depth), so
    // use single-flit packets into a single sink to exercise credit
    // starvation on the final link.
    let cfg = NocConfigBuilder::new()
        .vc_depth(2)
        .max_packet_len(2)
        .build()
        .expect("valid");
    let mut net = MeshNetwork::new(cfg);
    for i in 0..40u64 {
        net.inject(pkt(i + 1, (i % 8) as u16, 63, MessageClass::Request, 1));
    }
    // Buffer invariants panic on overflow; surviving the run is the test.
    let d = net.run_to_drain(50_000);
    assert_eq!(d.len(), 40);
}

#[test]
fn port_lock_keeps_multiflit_packets_contiguous_on_a_link() {
    // Two responses sharing a link: their flits must not interleave on
    // the wire. Observable end-to-end: both arrive (reassembly panics on
    // interleaving), and the second's head waits for the first's tail.
    let cfg = NocConfig::paper();
    let mut net = MeshNetwork::new(cfg);
    net.inject(pkt(1, 0, 7, MessageClass::Response, 5));
    net.inject(pkt(2, 8, 15, MessageClass::Response, 5)); // different row: no sharing
    net.inject(pkt(3, 1, 7, MessageClass::Response, 5)); // shares row-0 links with 1
    let d = net.run_to_drain(10_000);
    assert_eq!(d.len(), 3);
}

#[test]
fn reservation_blocks_reactive_grants_on_that_timeslot_only() {
    let cfg = NocConfig::paper();
    let mut net = MeshNetwork::new(cfg);
    // Reserve node 1's east port far in the future; a packet through that
    // port right now must be unaffected.
    net.install_hop(&HopPlan {
        node: NodeId::new(1),
        out_port: Port::Dir(Direction::East),
        start: 500,
        packet: PacketId(99),
        len: 1,
        class: MessageClass::Request,
        source: FlitSource::Vc {
            port: Port::Dir(Direction::West),
            vc: 0,
        },
        landing: Landing::Vc(0),
        reserve: 1,
    })
    .expect("install");
    net.inject(pkt(1, 0, 3, MessageClass::Request, 1));
    let d = net.run_to_drain(100);
    assert_eq!(d[0].delivered, 9, "far-future reservations add no latency");
}

#[test]
fn guard_blocks_foreign_multiflit_heads_but_not_singles() {
    let cfg = NocConfig::paper();
    let mut net = MeshNetwork::new(cfg);
    // Guard node 1's east port for future response packet 99.
    net.install_hop(&HopPlan {
        node: NodeId::new(1),
        out_port: Port::Dir(Direction::East),
        start: 300,
        packet: PacketId(99),
        len: 5,
        class: MessageClass::Response,
        source: FlitSource::Vc {
            port: Port::Dir(Direction::West),
            vc: 2,
        },
        landing: Landing::Vc(2),
        // Partial buffer reservation (e.g. mid-consumption): leaves
        // credits for singles, exercising the paper's "single-flit
        // packets can still use the message class".
        reserve: 3,
    })
    .expect("install");
    // A single-flit response-class packet passes the guarded port using
    // the unreserved credits.
    net.inject(pkt(1, 0, 3, MessageClass::Response, 1));
    let d = net.run_to_drain(200);
    assert_eq!(d.len(), 1, "singles pass a guarded port");
    // A foreign multi-flit response through the same port is stalled
    // behind the guard until the reservation expires (at cycle ~305).
    net.inject(pkt(2, 0, 3, MessageClass::Response, 5));
    let d = net.run_to_drain(2_000);
    assert_eq!(d.len(), 1);
    assert!(
        d[0].delivered > 300,
        "foreign multi-flit head waits out the guard (delivered {})",
        d[0].delivered
    );
}

#[test]
fn check_hop_rejects_each_failure_mode() {
    let cfg = NocConfig::paper();
    let mut net = MeshNetwork::new(cfg);
    let base = HopPlan {
        node: NodeId::new(1),
        out_port: Port::Dir(Direction::East),
        start: 50,
        packet: PacketId(1),
        len: 5,
        class: MessageClass::Response,
        source: FlitSource::Vc {
            port: Port::Dir(Direction::West),
            vc: 2,
        },
        landing: Landing::Vc(2),
        reserve: 5,
    };
    net.install_hop(&base).expect("first install");
    // Slot conflict.
    let mut p = base;
    p.packet = PacketId(2);
    assert_eq!(net.check_hop(&p), Err(InstallError::SlotTaken));
    // Buffer conflict on a disjoint window.
    p.start = 100;
    assert_eq!(net.check_hop(&p), Err(InstallError::NoDownstreamBuffer));
    // Off-mesh port.
    let mut edge = base;
    edge.node = NodeId::new(7); // east edge
    edge.packet = PacketId(3);
    edge.landing = Landing::Bypass;
    assert_eq!(net.check_hop(&edge), Err(InstallError::NoSuchNeighbor));
    // Latch busy: claim it first through another packet's latch landing.
    let latch_a = HopPlan {
        node: NodeId::new(9),
        out_port: Port::Dir(Direction::East),
        start: 60,
        packet: PacketId(4),
        len: 5,
        class: MessageClass::Response,
        source: FlitSource::Vc {
            port: Port::Dir(Direction::West),
            vc: 2,
        },
        landing: Landing::Latch,
        reserve: 0,
    };
    net.install_hop(&latch_a).expect("latch install");
    let mut latch_b = latch_a;
    latch_b.packet = PacketId(5);
    // Port slots 65..69 are free (A holds 60..64), but A's latch
    // occupancy extends one read-cycle past its window (through 65), so
    // the claim windows collide.
    latch_b.start = 65;
    assert_eq!(net.check_hop(&latch_b), Err(InstallError::LatchBusy));
}

#[test]
fn cancel_releases_everything_and_traffic_flows_again() {
    let cfg = NocConfig::paper();
    let mut net = MeshNetwork::new(cfg);
    let plan = HopPlan {
        node: NodeId::new(1),
        out_port: Port::Dir(Direction::East),
        start: 400,
        packet: PacketId(42),
        len: 5,
        class: MessageClass::Response,
        source: FlitSource::Vc {
            port: Port::Dir(Direction::West),
            vc: 2,
        },
        landing: Landing::Vc(2),
        reserve: 5,
    };
    net.install_hop(&plan).expect("install");
    assert!(net.has_reservations(PacketId(42)));
    net.cancel_packet_from(PacketId(42), 0, 0);
    assert!(!net.has_reservations(PacketId(42)));
    assert_eq!(
        net.out_vc(NodeId::new(1), Port::Dir(Direction::East), 2)
            .reserved(),
        0
    );
    // A multi-flit response can immediately use the port.
    net.inject(pkt(1, 0, 3, MessageClass::Response, 5));
    let d = net.run_to_drain(200);
    assert_eq!(d[0].delivered, 13, "no residual guard or reservation");
}

#[test]
fn link_use_accounting_matches_routes() {
    let cfg = NocConfig::paper();
    let mut net = MeshNetwork::new(cfg);
    net.inject(pkt(1, 0, 3, MessageClass::Request, 1)); // 3 east hops
    net.run_to_drain(100);
    assert_eq!(net.link_use(NodeId::new(0), Direction::East), 1);
    assert_eq!(net.link_use(NodeId::new(1), Direction::East), 1);
    assert_eq!(net.link_use(NodeId::new(2), Direction::East), 1);
    assert_eq!(net.link_use(NodeId::new(3), Direction::East), 0);
    assert_eq!(net.link_use(NodeId::new(0), Direction::South), 0);
    // Multi-flit: every flit counts.
    net.inject(pkt(2, 0, 1, MessageClass::Response, 5));
    net.run_to_drain(100);
    assert_eq!(net.link_use(NodeId::new(0), Direction::East), 1 + 5);
}

#[test]
fn source_backlog_reflects_queue_and_vc() {
    let cfg = NocConfig::paper();
    let mut net = MeshNetwork::new(cfg);
    // Two 5-flit responses: 10 flits, VC holds 5.
    net.inject(pkt(1, 0, 5, MessageClass::Response, 5));
    net.inject(pkt(2, 0, 9, MessageClass::Response, 5));
    assert_eq!(
        net.source_backlog(NodeId::new(0), MessageClass::Response),
        10
    );
    assert_eq!(net.source_backlog(NodeId::new(0), MessageClass::Request), 0);
    net.run_to_drain(500);
    assert_eq!(
        net.source_backlog(NodeId::new(0), MessageClass::Response),
        0
    );
}

#[test]
fn upcoming_cycle_advances_with_steps() {
    let cfg = NocConfig::paper();
    let mut net = MeshNetwork::new(cfg);
    assert_eq!(net.upcoming_cycle(), 1);
    net.step();
    net.step();
    assert_eq!(net.upcoming_cycle(), 3);
}
