//! End-to-end reliable-delivery integration tests: with the overlay on,
//! every injected packet must end delivered or escalated — never lost
//! silently — under transient storms and permanent damage alike, and
//! the whole machine must stay bit-deterministic.

use noc::config::{NocConfig, NocConfigBuilder};
use noc::faults::{FaultEvent, FaultPlan};
use noc::mesh::MeshNetwork;
use noc::network::Network;
use noc::reliable::ReliabilityConfig;
use noc::traffic::{Pattern, TrafficGen};
use noc::types::{Direction, NodeId};
use noc::watchdog::Watchdog;

/// A tight reliability tuning so tests exercise timeouts and backoff in
/// a few thousand cycles instead of the production defaults.
fn tight_rel(seed: u64) -> ReliabilityConfig {
    ReliabilityConfig {
        retry_budget: 3,
        ack_timeout: 128,
        backoff_base: 16,
        seed,
    }
}

fn cfg_with(plan: FaultPlan, rel: ReliabilityConfig) -> NocConfig {
    NocConfigBuilder::new()
        .faults(plan)
        .reliability(rel)
        .build()
        .expect("valid config")
}

fn step_watched(net: &mut MeshNetwork, wd: &mut Watchdog) {
    net.step();
    if wd.due(net.now()) {
        if let Some(report) = net.audit() {
            wd.observe(&report);
        }
    }
    net.drain_delivered();
}

/// Drains, then asserts the exact delivery partition: every packet the
/// generator injected was delivered, escalated, or refused at the NI.
fn assert_delivered_or_escalated(net: &mut MeshNetwork, gen: &TrafficGen, wd: &mut Watchdog) {
    let deadline = net.now() + 200_000;
    while net.in_flight() > 0 && net.now() < deadline {
        step_watched(net, wd);
    }
    assert_eq!(net.in_flight(), 0, "network must drain under reliability");
    let rel = net.reliable_stats().expect("reliability is on");
    let refused = net.fault_stats().map_or(0, |fs| fs.injections_refused);
    assert_eq!(
        net.stats().delivered() + rel.escalations + refused,
        gen.injected(),
        "every injected packet must be delivered, escalated, or refused \
         (rel stats: {rel:?})"
    );
    assert_eq!(
        rel.delivered + rel.escalations,
        rel.tracked,
        "the layer's own partition must close exactly"
    );
    assert!(
        wd.is_quiet(),
        "watchdog must stay quiet: {:?}",
        wd.violations()
    );
}

#[test]
fn transient_storm_suppresses_duplicates_and_loses_nothing() {
    // A heavy transient storm slows traffic enough that the tight ack
    // timeout fires while originals are still in flight: the duplicate
    // suppression path must absorb every spurious copy.
    let plan = FaultPlan::new(5).transient_rate_ppb(20_000_000); // ~2e-2
                                                                 // An ack timeout under the mesh's typical delivery latency makes
                                                                 // spurious timeouts routine rather than exceptional.
    let rel = ReliabilityConfig {
        ack_timeout: 24,
        ..tight_rel(9)
    };
    let cfg = cfg_with(plan, rel);
    let mut net = MeshNetwork::new(cfg.clone());
    let mut gen = TrafficGen::new(cfg, Pattern::UniformRandom, 0.05, 17);
    let mut wd = Watchdog::default();
    for _ in 0..4_000 {
        gen.tick(&mut net);
        step_watched(&mut net, &mut wd);
    }
    gen.stop();
    assert_delivered_or_escalated(&mut net, &gen, &mut wd);
    let rel = net.reliable_stats().expect("reliability is on");
    assert!(
        rel.retransmits > 0,
        "the storm must trigger retransmissions"
    );
    // Flight accounting: originals + retransmit copies all end exactly
    // one way — committed, suppressed at ejection, purged, or refused
    // at injection. None delivered twice.
    assert_eq!(
        rel.tracked + rel.retransmits,
        rel.delivered + rel.duplicates_suppressed + rel.copy_purges + rel.copy_refusals,
        "flight accounting must close exactly: {rel:?}"
    );
}

#[test]
fn permanent_damage_retransmits_after_purge() {
    // Permanent cuts purge in-flight packets; with reliability on those
    // purges must be absorbed into fast retransmits, and the run must
    // end with the exact partition intact (no packet counted lost).
    let plan = FaultPlan::new(3)
        .transient_rate_ppb(1_000_000)
        .with_event(FaultEvent::PermanentLink {
            at: 400,
            node: NodeId::new(27),
            dir: Direction::East,
        })
        .with_event(FaultEvent::RouterDown {
            at: 900,
            node: NodeId::new(44),
        });
    let cfg = cfg_with(plan, tight_rel(4));
    let mut net = MeshNetwork::new(cfg.clone());
    let mut gen = TrafficGen::new(cfg, Pattern::UniformRandom, 0.05, 23);
    let mut wd = Watchdog::default();
    for _ in 0..6_000 {
        gen.tick(&mut net);
        step_watched(&mut net, &mut wd);
    }
    gen.stop();
    assert_delivered_or_escalated(&mut net, &gen, &mut wd);
    let fs = net.fault_stats().expect("faults are on");
    assert_eq!(
        fs.lost_packets, 0,
        "reliability absorbs every purge: losses become retransmits or \
         escalations, never silent loss"
    );
    let rel = net.reliable_stats().expect("reliability is on");
    assert!(rel.retransmits > 0, "purges must trigger retransmissions");
}

#[test]
fn reliable_runs_are_bit_deterministic() {
    let run = || {
        let plan = FaultPlan::new(11).transient_rate_ppb(5_000_000).with_event(
            FaultEvent::PermanentLink {
                at: 600,
                node: NodeId::new(18),
                dir: Direction::South,
            },
        );
        let cfg = cfg_with(plan, tight_rel(77));
        let mut net = MeshNetwork::new(cfg.clone());
        let mut gen = TrafficGen::new(cfg, Pattern::UniformRandom, 0.04, 31);
        for _ in 0..3_000 {
            gen.tick(&mut net);
            net.step();
            net.drain_delivered();
        }
        gen.stop();
        let deadline = net.now() + 100_000;
        while net.in_flight() > 0 && net.now() < deadline {
            net.step();
            net.drain_delivered();
        }
        (
            net.state_digest().expect("mesh digests"),
            net.reliable_stats().expect("reliability on"),
            net.stats().delivered(),
        )
    };
    let (d1, r1, n1) = run();
    let (d2, r2, n2) = run();
    assert_eq!(d1, d2, "state digests must match across identical runs");
    assert_eq!(r1, r2, "reliability counters must match");
    assert_eq!(n1, n2, "delivery counts must match");
}

#[test]
fn reliability_without_faults_is_pure_overhead_free_tracking() {
    // No fault plan: nothing is ever purged or refused, so the overlay
    // must be invisible except for bookkeeping — every packet delivers
    // on its first flight and the counters stay zero.
    let cfg = NocConfigBuilder::new()
        .reliability(ReliabilityConfig::with_seed(1))
        .build()
        .expect("valid config");
    let mut net = MeshNetwork::new(cfg.clone());
    let mut gen = TrafficGen::new(cfg, Pattern::UniformRandom, 0.05, 41);
    for _ in 0..2_000 {
        gen.tick(&mut net);
        net.step();
        net.drain_delivered();
    }
    gen.stop();
    let deadline = net.now() + 50_000;
    while net.in_flight() > 0 && net.now() < deadline {
        net.step();
        net.drain_delivered();
    }
    assert_eq!(net.in_flight(), 0);
    let rel = net.reliable_stats().expect("reliability is on");
    assert_eq!(rel.delivered, gen.injected());
    assert_eq!(rel.retransmits, 0, "default timeout outlasts any delivery");
    assert_eq!(rel.duplicates_suppressed, 0);
    assert_eq!(rel.escalations, 0);
    assert_eq!(net.stats().delivered(), gen.injected());
}
