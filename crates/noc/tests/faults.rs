//! Fault-scenario integration tests: permanent damage must strand no
//! flits, deadlock nothing, and never break conservation.

use noc::config::{NocConfig, NocConfigBuilder};
use noc::faults::{FaultEvent, FaultPlan};
use noc::mesh::MeshNetwork;
use noc::network::Network;
use noc::traffic::{Pattern, TrafficGen};
use noc::types::{Direction, NodeId};
use noc::watchdog::Watchdog;

fn cfg_with(plan: FaultPlan) -> NocConfig {
    NocConfigBuilder::new()
        .faults(plan)
        .build()
        .expect("valid config")
}

/// Steps `net` once and feeds the watchdog when a check is due.
fn step_watched(net: &mut MeshNetwork, wd: &mut Watchdog) {
    net.step();
    if wd.due(net.now()) {
        if let Some(report) = net.audit() {
            wd.observe(&report);
        }
    }
    net.drain_delivered();
}

/// Drains in-flight traffic, then asserts the final audit conserves every
/// delivered and lost packet against the injection count.
fn assert_conserved(net: &mut MeshNetwork, gen: &TrafficGen, wd: &mut Watchdog) {
    let deadline = net.now() + 100_000;
    while net.in_flight() > 0 && net.now() < deadline {
        step_watched(net, wd);
    }
    assert_eq!(net.in_flight(), 0, "network must drain after faults");
    let report = net.audit().expect("mesh always audits");
    let refused = net.fault_stats().map_or(0, |fs| fs.injections_refused);
    assert_eq!(
        report.delivered_packets + report.lost_packets + refused,
        gen.injected(),
        "every injected packet must be delivered, purged, or refused"
    );
    assert!(
        wd.is_quiet(),
        "watchdog must stay quiet: {:?}",
        wd.violations()
    );
    assert!(wd.checks_run() > 0, "audits must actually run");
}

#[test]
fn dead_link_never_carries_a_flit() {
    let fault_at = 500;
    let node = NodeId::new(27);
    let dir = Direction::East;
    let plan = FaultPlan::new(7).with_event(FaultEvent::PermanentLink {
        at: fault_at,
        node,
        dir,
    });
    let cfg = cfg_with(plan);
    let mut net = MeshNetwork::new(cfg.clone());
    let mut gen = TrafficGen::new(cfg, Pattern::UniformRandom, 0.05, 11);
    let mut wd = Watchdog::default();

    while net.now() < fault_at + 2 {
        gen.tick(&mut net);
        step_watched(&mut net, &mut wd);
    }
    assert!(!net.link_alive(node, dir), "link must be dead by now");
    let nb = NodeId::new(28); // east neighbour of 27
    let east = net.link_use(node, dir);
    let west = net.link_use(nb, Direction::West);
    assert!(east > 0, "the link must have carried traffic before dying");

    for _ in 0..5_000 {
        gen.tick(&mut net);
        step_watched(&mut net, &mut wd);
    }
    assert_eq!(
        net.link_use(node, dir),
        east,
        "a permanently failed link must never carry another flit"
    );
    assert_eq!(
        net.link_use(nb, Direction::West),
        west,
        "both directions of the physical channel fail together"
    );
    gen.stop();
    assert_conserved(&mut net, &gen, &mut wd);
}

#[test]
fn router_hard_fault_does_not_deadlock_remaining_mesh() {
    let plan = FaultPlan::new(3).with_event(FaultEvent::RouterDown {
        at: 200,
        node: NodeId::new(27),
    });
    let cfg = cfg_with(plan);
    let mut net = MeshNetwork::new(cfg.clone());
    let mut gen = TrafficGen::new(cfg, Pattern::UniformRandom, 0.05, 13);
    let mut wd = Watchdog::default();

    // 50k cycles under load: the deadlock and livelock detectors (budgets
    // of 10k and 20k cycles) would fire well within this window.
    for _ in 0..50_000 {
        gen.tick(&mut net);
        step_watched(&mut net, &mut wd);
    }
    assert!(!net.node_alive(NodeId::new(27)));
    assert!(
        wd.is_quiet(),
        "no deadlock/livelock/conservation violation: {:?}",
        wd.violations()
    );
    assert!(net.stats().delivered() > 10_000, "traffic keeps flowing");
    gen.stop();
    assert_conserved(&mut net, &gen, &mut wd);
}

#[test]
fn conservation_holds_across_random_fault_plans() {
    for seed in 0..4u64 {
        let victim = NodeId::new((7 + seed * 13) as u16 % 64);
        let plan = FaultPlan::new(seed)
            .transient_rate_ppb(1_000_000) // ~1e-3 per link per cycle
            .with_event(FaultEvent::PermanentLink {
                at: 300 + seed * 37,
                node: victim,
                dir: Direction::South,
            })
            .with_event(FaultEvent::CreditLoss {
                at: 450 + seed * 11,
                node: victim,
                dir: Direction::East,
                vc: (seed % 3) as u8,
            })
            .with_event(FaultEvent::RouterDown {
                at: 900 + seed * 53,
                node: NodeId::new((40 + seed * 7) as u16 % 64),
            });
        let cfg = cfg_with(plan);
        let mut net = MeshNetwork::new(cfg.clone());
        let mut gen = TrafficGen::new(cfg, Pattern::UniformRandom, 0.05, 100 + seed);
        let mut wd = Watchdog::default();
        for _ in 0..3_000 {
            gen.tick(&mut net);
            step_watched(&mut net, &mut wd);
        }
        gen.stop();
        assert_conserved(&mut net, &gen, &mut wd);
    }
}
