//! Event-stream conservation: every `PacketInjected` must terminate in
//! exactly one `PacketEjected` or fault-drop `PacketDropped`, even under
//! random fault plans — cross-checked against the invariant watchdog's
//! flit-conservation audit counters.
#![cfg(feature = "obs")]

use noc::config::NocConfigBuilder;
use noc::faults::{FaultEvent, FaultPlan};
use noc::mesh::MeshNetwork;
use noc::network::Network;
use noc::traffic::{Pattern, TrafficGen};
use noc::types::{Direction, NodeId};

#[test]
fn every_injection_terminates_in_ejection_or_drop() {
    for seed in 0..3u64 {
        let victim = NodeId::new(((11 + seed * 17) % 64) as u16);
        let plan = FaultPlan::new(seed)
            .transient_rate_ppb(1_000_000)
            .with_event(FaultEvent::PermanentLink {
                at: 250 + seed * 31,
                node: victim,
                dir: Direction::South,
            })
            .with_event(FaultEvent::RouterDown {
                at: 800 + seed * 41,
                node: NodeId::new(((33 + seed * 5) % 64) as u16),
            });
        let cfg = NocConfigBuilder::new()
            .faults(plan)
            .build()
            .expect("valid config");
        let mut net = MeshNetwork::new(cfg.clone());
        let shared = niobs::Recorder::default().into_shared();
        net.install_obs(shared.clone());
        let mut gen = TrafficGen::new(cfg, Pattern::UniformRandom, 0.05, 42 + seed);

        for _ in 0..2_000 {
            gen.tick(&mut net);
            net.step();
            net.drain_delivered();
        }
        gen.stop();
        let deadline = net.now() + 100_000;
        while net.in_flight() > 0 && net.now() < deadline {
            net.step();
            net.drain_delivered();
        }
        assert_eq!(net.in_flight(), 0, "network must drain (seed {seed})");

        let report = net.audit().expect("mesh always audits");
        let rec = shared.borrow();
        let injected = rec.metrics.counter("events.packet_injected");
        let ejected = rec.metrics.counter("events.packet_ejected");
        let dropped = rec.metrics.counter("events.packet_dropped");
        assert!(injected > 1_000, "enough traffic to be meaningful");
        assert_eq!(
            injected,
            ejected + dropped,
            "every PacketInjected must pair with PacketEjected or \
             PacketDropped (seed {seed})"
        );
        // Cross-check event counts against the watchdog's independent
        // conservation accounting.
        assert_eq!(ejected, report.delivered_packets, "seed {seed}");
        assert_eq!(dropped, report.lost_packets, "seed {seed}");
        let refused = net.fault_stats().map_or(0, |fs| fs.injections_refused);
        assert_eq!(
            rec.metrics.counter("events.injection_refused"),
            refused,
            "refusal events mirror the fault counter (seed {seed})"
        );
        assert_eq!(
            injected + refused,
            gen.injected(),
            "accepted + refused covers every generated packet (seed {seed})"
        );
        // A terminal flight record exists for every terminal event pair.
        assert_eq!(
            rec.flights.completed().len() as u64 + rec.flights.discarded(),
            ejected + dropped,
            "flight records cover every terminated packet (seed {seed})"
        );
    }
}

#[test]
fn no_sink_run_is_behaviorally_identical() {
    // The hooks must be pure observers: the same seed with and without a
    // recorder attached must produce bit-identical statistics.
    let run = |attach: bool| {
        let cfg = NocConfigBuilder::new().build().expect("valid config");
        let mut net = MeshNetwork::new(cfg.clone());
        if attach {
            net.install_obs(niobs::Recorder::default().into_shared());
        }
        let mut gen = TrafficGen::new(cfg, Pattern::UniformRandom, 0.05, 9);
        for _ in 0..3_000 {
            gen.tick(&mut net);
            net.step();
            net.drain_delivered();
        }
        let s = net.stats();
        (
            s.delivered(),
            s.total_latency,
            s.total_hops,
            s.link_traversals,
            net.now(),
        )
    };
    assert_eq!(run(false), run(true), "observation must not perturb");
}
