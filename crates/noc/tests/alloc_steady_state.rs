//! Proof that the per-cycle path performs **zero heap allocations** in
//! steady state.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the
//! count is armed only around the measured stepping loop. The network
//! first runs real traffic to a full drain, so every reusable buffer
//! (scratch vectors, arrival/credit queues, VC rings) has reached its
//! steady-state capacity. After that, stepping the fabric — with the
//! quiescent fast path disabled, so the full phase pipeline executes
//! every cycle — must never touch the allocator: any `Box::new`,
//! `vec!`, or growth re-introduced into the hot loop fails this test
//! with an exact allocation count.
//!
//! This file holds exactly one `#[test]` on purpose: the libtest harness
//! runs tests in one process, and a sibling test allocating on another
//! thread while the counter is armed would make the count flaky.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use noc::config::NocConfig;
use noc::network::Network;
use noc::traffic::{Pattern, TrafficGen};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the wrapper only
// increments an atomic counter and never touches the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_stepping_never_allocates() {
    let cfg = NocConfig::paper();
    let mut net = noc::mesh::MeshNetwork::new(cfg.clone());
    // Exhaustive stepping: the fast path would turn quiescent cycles
    // into an early return and prove nothing about the phase pipeline.
    net.set_skip_ahead(false);

    // Warm up with real traffic so every internal buffer grows to its
    // working capacity, then drain completely.
    let mut gen = TrafficGen::new(cfg.clone(), Pattern::UniformRandom, 0.02, 1);
    // Zero-rate generator for the measured window: the tick path (RNG
    // draws, shaper scan, release scratch) runs every cycle without
    // creating packets, whose bookkeeping legitimately allocates.
    let mut idle_gen = TrafficGen::new(cfg, Pattern::UniformRandom, 0.0, 7);
    let mut delivered = Vec::with_capacity(4096);
    for _ in 0..2_000 {
        gen.tick(&mut net);
        net.step();
        net.drain_delivered_into(&mut delivered);
        delivered.clear();
    }
    for _ in 0..10_000 {
        net.step();
        net.drain_delivered_into(&mut delivered);
        delivered.clear();
        if net.in_flight() == 0 {
            break;
        }
    }
    assert_eq!(net.in_flight(), 0, "fabric must drain before measuring");

    // Measured window: the full per-cycle pipeline (traffic tick at the
    // now-empty sources included) over an idle fabric.
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..10_000 {
        idle_gen.tick(&mut net);
        net.step();
        net.drain_delivered_into(&mut delivered);
        delivered.clear();
    }
    ARMED.store(false, Ordering::SeqCst);

    let count = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        count, 0,
        "steady-state stepping performed {count} heap allocations; the \
         hot loop must reuse its buffers (see StepScratch in mesh.rs)"
    );
}
