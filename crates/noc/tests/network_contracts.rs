//! Contract tests shared by every network organisation: the `Network`
//! trait semantics, class isolation, fairness, saturation behaviour, and
//! configuration generality (radix, VC depth, hops-per-cycle).

use noc::config::{NocConfig, NocConfigBuilder};
use noc::flit::Packet;
use noc::ideal::IdealNetwork;
use noc::mesh::MeshNetwork;
use noc::network::Network;
use noc::smart::SmartNetwork;
use noc::traffic::{Pattern, TrafficGen};
use noc::types::{MessageClass, NodeId, PacketId};
use noc::zeroload::smart_latency;

/// `run_to_drain` needs `Self: Sized`; a helper for trait objects.
fn drain(net: &mut dyn Network, max_cycles: u64) -> Vec<noc::network::Delivered> {
    let mut out = Vec::new();
    let deadline = net.now() + max_cycles;
    while net.in_flight() > 0 && net.now() < deadline {
        net.step();
        out.extend(net.drain_delivered());
    }
    out
}

fn orgs(cfg: &NocConfig) -> Vec<(&'static str, Box<dyn Network>)> {
    vec![
        ("mesh", Box::new(MeshNetwork::new(cfg.clone()))),
        ("smart", Box::new(SmartNetwork::new(cfg.clone()))),
        ("ideal", Box::new(IdealNetwork::new(cfg.clone()))),
    ]
}

#[test]
fn loopback_delivery_works_everywhere() {
    // src == dest models a core hitting its own LLC slice.
    let cfg = NocConfig::paper();
    for (name, mut net) in orgs(&cfg) {
        net.inject(Packet::new(
            PacketId(1),
            NodeId::new(5),
            NodeId::new(5),
            MessageClass::Response,
            5,
        ));
        let d = drain(net.as_mut(), 200);
        assert_eq!(d.len(), 1, "{name} loopback");
        assert_eq!(d[0].hops, 0);
    }
}

#[test]
fn small_and_large_radix_configs_work() {
    for radix in [2u16, 3, 5, 12] {
        let cfg = NocConfigBuilder::new().radix(radix).build().expect("valid");
        let last = (cfg.nodes() - 1) as u16;
        for (name, mut net) in orgs(&cfg) {
            net.inject(Packet::new(
                PacketId(1),
                NodeId::new(0),
                NodeId::new(last),
                MessageClass::Request,
                1,
            ));
            let d = drain(net.as_mut(), 2_000);
            assert_eq!(d.len(), 1, "{name} radix {radix}");
        }
    }
}

#[test]
fn deep_vcs_and_long_packets() {
    let cfg = NocConfigBuilder::new()
        .vc_depth(9)
        .max_packet_len(9)
        .build()
        .expect("valid");
    for (name, mut net) in orgs(&cfg) {
        net.inject(Packet::new(
            PacketId(1),
            NodeId::new(0),
            NodeId::new(63),
            MessageClass::Response,
            9,
        ));
        let d = drain(net.as_mut(), 2_000);
        assert_eq!(d.len(), 1, "{name}");
    }
}

#[test]
fn smart_triple_hop_matches_model() {
    // The generalised SMART bypass: with hpc 3, a 6-hop straight route
    // takes two traversals instead of three.
    let cfg = NocConfigBuilder::new()
        .max_hops_per_cycle(3)
        .build()
        .expect("valid");
    let mut net = SmartNetwork::new(cfg.clone());
    net.inject(Packet::new(
        PacketId(1),
        NodeId::new(0),
        NodeId::new(6),
        MessageClass::Request,
        1,
    ));
    let d = net.run_to_drain(200);
    let model = smart_latency(&cfg, NodeId::new(0), NodeId::new(6), 1);
    assert_eq!(d[0].delivered - d[0].packet.created, model);
    // 2 traversals * 3 cycles + inject 1 + eject 2 = 9.
    assert_eq!(model, 9);
}

#[test]
fn classes_do_not_starve_each_other() {
    // Flood responses; sprinkle coherence and requests; everything lands.
    let cfg = NocConfig::paper();
    for (name, mut net) in orgs(&cfg) {
        let mut id = 0u64;
        for i in 0..30u16 {
            id += 1;
            net.inject(Packet::new(
                PacketId(id),
                NodeId::new(i % 8),
                NodeId::new(56 + (i % 8)),
                MessageClass::Response,
                5,
            ));
        }
        for i in 0..10u16 {
            id += 1;
            net.inject(Packet::new(
                PacketId(id),
                NodeId::new(i),
                NodeId::new(63 - i),
                MessageClass::Request,
                1,
            ));
            id += 1;
            net.inject(Packet::new(
                PacketId(id),
                NodeId::new(63 - i),
                NodeId::new(i),
                MessageClass::Coherence,
                1,
            ));
        }
        let d = drain(net.as_mut(), 50_000);
        assert_eq!(d.len() as u64, id, "{name}");
    }
}

#[test]
fn saturation_does_not_lose_packets() {
    // Way past saturation for 2k cycles, then drain: conservation holds.
    let cfg = NocConfig::paper();
    for (name, mut net) in orgs(&cfg) {
        let mut gen =
            TrafficGen::new(cfg.clone(), Pattern::UniformRandom, 0.5, 3).response_fraction(0.7);
        for _ in 0..2_000 {
            gen.tick(&mut *net);
            net.step();
            net.drain_delivered();
        }
        gen.stop();
        let deadline = net.now() + 400_000;
        while net.in_flight() > 0 && net.now() < deadline {
            net.step();
            net.drain_delivered();
        }
        assert_eq!(net.in_flight(), 0, "{name} lost packets past saturation");
        assert_eq!(
            net.stats().delivered(),
            gen.injected(),
            "{name} delivered != injected"
        );
    }
}

#[test]
fn hotspot_traffic_serialises_but_completes() {
    let cfg = NocConfig::paper();
    for (name, mut net) in orgs(&cfg) {
        let mut gen = TrafficGen::new(cfg.clone(), Pattern::Hotspot(NodeId::new(27)), 0.02, 9);
        for _ in 0..3_000 {
            gen.tick(&mut *net);
            net.step();
            net.drain_delivered();
        }
        gen.stop();
        let deadline = net.now() + 200_000;
        while net.in_flight() > 0 && net.now() < deadline {
            net.step();
            net.drain_delivered();
        }
        assert_eq!(net.stats().delivered(), gen.injected(), "{name}");
        // Ejection bandwidth bounds throughput at the hotspot.
        assert!(net.stats().avg_latency() > 10.0, "{name}");
    }
}

#[test]
fn stats_cycles_track_steps() {
    let cfg = NocConfig::paper();
    for (_, mut net) in orgs(&cfg) {
        for _ in 0..123 {
            net.step();
        }
        assert_eq!(net.stats().cycles, 123);
        assert_eq!(net.now(), 123);
    }
}

#[test]
fn max_latency_and_hops_accounting() {
    let cfg = NocConfig::paper();
    let mut net = MeshNetwork::new(cfg);
    net.inject(Packet::new(
        PacketId(1),
        NodeId::new(0),
        NodeId::new(63),
        MessageClass::Request,
        1,
    ));
    net.inject(Packet::new(
        PacketId(2),
        NodeId::new(0),
        NodeId::new(1),
        MessageClass::Request,
        1,
    ));
    let d = net.run_to_drain(1_000);
    assert_eq!(d.len(), 2);
    let s = net.stats();
    assert_eq!(s.total_hops, 14 + 1);
    assert_eq!(s.max_latency, 31); // the 14-hop packet
}
