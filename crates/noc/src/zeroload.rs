//! Analytic zero-load latency models.
//!
//! Closed-form end-to-end latency at zero load for each organisation,
//! used to validate the simulators (the integration tests assert that
//! simulated zero-load latencies match these formulas exactly) and to
//! reason about the design space without running the simulator.
//!
//! All formulas share the NI overheads of the simulators: one cycle of
//! injection (source queue → input buffer) and two cycles of ejection
//! (switch allocation + traversal into the NI), except the ideal network
//! whose final wire segment delivers directly into the NI.

use crate::config::NocConfig;
use crate::routing::Route;
use crate::types::{Cycle, NodeId};

/// Zero-load latency of the baseline mesh: two cycles per hop (one-stage
/// speculative pipeline + link) plus serialization.
///
/// # Examples
///
/// ```
/// use noc::config::NocConfig;
/// use noc::types::NodeId;
/// use noc::zeroload::mesh_latency;
///
/// let cfg = NocConfig::paper();
/// // 3 hops, single flit: 2*3 + 3 = 9.
/// assert_eq!(mesh_latency(&cfg, NodeId::new(0), NodeId::new(3), 1), 9);
/// ```
pub fn mesh_latency(cfg: &NocConfig, src: NodeId, dest: NodeId, len_flits: u8) -> Cycle {
    let hops = cfg.coord(src).manhattan(cfg.coord(dest)) as Cycle;
    2 * hops + 3 + (len_flits as Cycle - 1)
}

/// Zero-load latency of SMART: three cycles per router traversal, each
/// covering up to `max_hops_per_cycle` straight hops; turns force a stop.
pub fn smart_latency(cfg: &NocConfig, src: NodeId, dest: NodeId, len_flits: u8) -> Cycle {
    let route = Route::compute(cfg, src, dest);
    let traversals = straight_segments(&route, cfg.max_hops_per_cycle)
        .into_iter()
        .map(|seg| seg.div_ceil(cfg.max_hops_per_cycle as Cycle))
        .sum::<Cycle>();
    1 + 3 * traversals + 2 + (len_flits as Cycle - 1)
}

/// Zero-load latency of the ideal network: `ceil(hops / hpc)` wire cycles
/// plus one injection cycle; the final segment delivers into the NI.
pub fn ideal_latency(cfg: &NocConfig, src: NodeId, dest: NodeId, len_flits: u8) -> Cycle {
    let hops = cfg.coord(src).manhattan(cfg.coord(dest)) as Cycle;
    1 + hops.div_ceil(cfg.max_hops_per_cycle as Cycle).max(1) + (len_flits as Cycle - 1)
}

/// Upper bound on Mesh+PRA latency when the entire path is proactively
/// allocated: like the ideal network per traversed segment (two hops per
/// cycle, turns cost one extra stop-cycle via the latch), plus a reactive
/// ejection pipeline at the destination router, with **zero** allocation
/// cycles anywhere. The control plane usually also pre-allocates the
/// ejection port, shaving up to two more cycles — so simulated
/// fully-covered transfers land *at or under* this bound (the integration
/// tests assert exactly that).
pub fn pra_best_latency(cfg: &NocConfig, src: NodeId, dest: NodeId, len_flits: u8) -> Cycle {
    let route = Route::compute(cfg, src, dest);
    let cycles = straight_segments(&route, cfg.max_hops_per_cycle)
        .into_iter()
        .map(|seg| seg.div_ceil(cfg.max_hops_per_cycle as Cycle))
        .sum::<Cycle>();
    1 + cycles.max(1) + 2 + (len_flits as Cycle - 1)
}

/// Splits a route into straight-line segment lengths (a turn always starts
/// a new segment; `_hpc` kept for signature symmetry).
fn straight_segments(route: &Route, _hpc: u8) -> Vec<Cycle> {
    let mut segments = Vec::new();
    let mut cur = 0u64;
    let mut last_dir = None;
    for &d in route.dirs() {
        match last_dir {
            Some(ld) if ld == d => cur += 1,
            Some(_) => {
                segments.push(cur);
                cur = 1;
            }
            None => cur = 1,
        }
        last_dir = Some(d);
    }
    if cur > 0 {
        segments.push(cur);
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::Packet;
    use crate::ideal::IdealNetwork;
    use crate::mesh::MeshNetwork;
    use crate::network::Network;
    use crate::smart::SmartNetwork;
    use crate::types::{MessageClass, PacketId};

    fn simulate<N: Network>(mut net: N, src: u16, dest: u16, len: u8) -> Cycle {
        net.inject(Packet::new(
            PacketId(1),
            NodeId::new(src),
            NodeId::new(dest),
            if len > 1 {
                MessageClass::Response
            } else {
                MessageClass::Request
            },
            len,
        ));
        let d = net.run_to_drain(1_000);
        d[0].delivered - d[0].packet.created
    }

    #[test]
    fn mesh_formula_matches_simulator() {
        let cfg = NocConfig::paper();
        for (s, d, len) in [(0u16, 3u16, 1u8), (0, 63, 1), (5, 5 + 8, 5), (10, 34, 5)] {
            let sim = simulate(MeshNetwork::new(cfg.clone()), s, d, len);
            let model = mesh_latency(&cfg, NodeId::new(s), NodeId::new(d), len);
            assert_eq!(sim, model, "mesh {s}->{d} len {len}");
        }
    }

    #[test]
    fn smart_formula_matches_simulator() {
        let cfg = NocConfig::paper();
        for (s, d, len) in [
            (0u16, 1u16, 1u8),
            (0, 7, 1),
            (0, 9, 1),
            (0, 63, 1),
            (0, 4, 5),
        ] {
            let sim = simulate(SmartNetwork::new(cfg.clone()), s, d, len);
            let model = smart_latency(&cfg, NodeId::new(s), NodeId::new(d), len);
            assert_eq!(sim, model, "smart {s}->{d} len {len}");
        }
    }

    #[test]
    fn ideal_formula_matches_simulator() {
        let cfg = NocConfig::paper();
        for (s, d, len) in [(0u16, 1u16, 1u8), (0, 2, 1), (0, 63, 1), (0, 7, 5)] {
            let sim = simulate(IdealNetwork::new(cfg.clone()), s, d, len);
            let model = ideal_latency(&cfg, NodeId::new(s), NodeId::new(d), len);
            assert_eq!(sim, model, "ideal {s}->{d} len {len}");
        }
    }

    #[test]
    fn organisation_ordering_holds_analytically() {
        let cfg = NocConfig::paper();
        let (s, d) = (NodeId::new(0), NodeId::new(63));
        let mesh = mesh_latency(&cfg, s, d, 5);
        let smart = smart_latency(&cfg, s, d, 5);
        let pra = pra_best_latency(&cfg, s, d, 5);
        let ideal = ideal_latency(&cfg, s, d, 5);
        assert!(ideal <= pra, "ideal {ideal} <= pra {pra}");
        assert!(pra < smart, "pra {pra} < smart {smart}");
        assert!(smart < mesh, "smart {smart} < mesh {mesh}");
    }

    #[test]
    fn pra_best_is_close_to_ideal() {
        let cfg = NocConfig::paper();
        let (s, d) = (NodeId::new(0), NodeId::new(63));
        let pra = pra_best_latency(&cfg, s, d, 1);
        let ideal = ideal_latency(&cfg, s, d, 1);
        assert!(
            pra - ideal <= 3,
            "pra {pra} within a few cycles of ideal {ideal}"
        );
    }
}
