//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is a cheap, clonable flag shared between a
//! supervising thread (the sweep runner's per-point watchdog) and the
//! simulation it supervises. Network implementations poll the token at
//! the top of [`crate::network::Network::step`]; once cancelled, a step
//! still advances the clock (so `while in_flight() > 0 && now < deadline`
//! drain loops terminate) but performs no simulation work.
//!
//! The token is intentionally *not* a hard abort: cancellation is only
//! observed at cycle boundaries, so the network is never left in a
//! half-stepped state. Combined with the cycle budget enforced by the
//! runner, this turns livelocked or runaway points into clean
//! `timeout(...)` rows instead of hung processes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Clones observe the same flag; sending a
/// clone to a watchdog thread and installing another into a network via
/// [`crate::network::Network::install_cancel`] wires the two together.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn cancellation_crosses_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        let handle = std::thread::spawn(move || remote.cancel());
        handle.join().expect("cancel thread must not panic");
        assert!(token.is_cancelled());
    }
}
