//! The [`Network`] abstraction and the shared network-interface model.
//!
//! Every organisation (mesh, SMART, Mesh+PRA, ideal) implements
//! [`Network`], so the system model and the benchmark harness are generic
//! over the interconnect. Clients inject whole [`Packet`]s; the network
//! delivers them as [`Delivered`] records once the last flit reaches the
//! destination network interface.

use std::collections::{BTreeMap, VecDeque};

use crate::config::NocConfig;
use crate::flit::{Flit, Packet};
use crate::stats::NetStats;
use crate::types::{Cycle, NodeId, PacketId};

/// A packet that completed its journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivered {
    /// The original packet descriptor (including the client tag).
    pub packet: Packet,
    /// Cycle at which the tail flit reached the destination NI.
    pub delivered: Cycle,
    /// Hops the packet travelled.
    pub hops: u32,
}

/// A cycle-accurate interconnect.
///
/// The contract shared by all organisations:
///
/// * [`Network::inject`] enqueues a packet at the source NI; it is
///   non-blocking and never fails (NI queues are unbounded — the clients
///   model their own back-pressure).
/// * [`Network::step`] advances the network exactly one cycle.
/// * [`Network::drain_delivered`] returns packets whose tail flit reached
///   the destination NI since the previous call.
/// * [`Network::announce`] gives organisations that support proactive
///   resource allocation advance notice that `packet` will be injected
///   `lead` cycles in the future; other organisations ignore it.
pub trait Network {
    /// The configuration the network was built with.
    fn config(&self) -> &NocConfig;

    /// Current simulation cycle.
    fn now(&self) -> Cycle;

    /// Enqueues `packet` for injection at `packet.src`.
    fn inject(&mut self, packet: Packet);

    /// Advances the network one cycle.
    fn step(&mut self);

    /// Removes and returns all packets delivered since the last call.
    fn drain_delivered(&mut self) -> Vec<Delivered>;

    /// Appends all packets delivered since the last drain to `out`,
    /// letting hot driver loops reuse one persistent buffer instead of
    /// allocating a fresh `Vec` per cycle. Semantically identical to
    /// extending `out` with [`Network::drain_delivered`]; organisations
    /// with internal delivery staging override this to move the records
    /// without an intermediate allocation.
    fn drain_delivered_into(&mut self, out: &mut Vec<Delivered>) {
        out.extend(self.drain_delivered());
    }

    /// Enables or disables skip-ahead over quiescent cycles: when every
    /// router is provably idle (no flits, grants, arrivals, credits in
    /// flight, or reservations anywhere), a step may advance only the
    /// clock and cycle counters, because a full step over such a fabric
    /// mutates nothing else. The observable history — statistics, digest
    /// trails, delivery order — is byte-identical either way; this is
    /// purely a wall-clock optimisation for low injection rates. The
    /// default implementation ignores the flag (organisations without a
    /// fast path simply always execute full steps).
    fn set_skip_ahead(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Number of packets accepted but not yet delivered.
    fn in_flight(&self) -> usize;

    /// Accumulated statistics.
    fn stats(&self) -> &NetStats;

    /// Zeroes the accumulated statistics, opening a fresh measurement
    /// window (see [`NetStats::reset`]). Call at the warm-up/measurement
    /// boundary; simulation state (in-flight packets, reservations,
    /// queues) is untouched, so packets injected during warm-up but
    /// delivered afterwards count toward the new window. Organisations
    /// with auxiliary statistics (e.g. Mesh+PRA's control-plane counters)
    /// reset those too.
    fn reset_stats(&mut self);

    /// Advance notice that `packet` will be injected after `lead` more
    /// cycles (e.g. the LLC knows at tag-hit time that a response will be
    /// ready once the data lookup completes). The default implementation
    /// ignores the hint; `Mesh+PRA` uses it to launch proactive resource
    /// allocation.
    fn announce(&mut self, packet: &Packet, lead: u32) {
        let _ = (packet, lead);
    }

    /// Installs a cooperative cancellation token (see
    /// [`crate::cancel`]). Once the token is cancelled, subsequent
    /// [`Network::step`] calls still advance the clock — so bounded
    /// drain loops keyed on [`Network::now`] terminate — but perform no
    /// simulation work. The default implementation ignores the token;
    /// organisations that cannot be cancelled simply run to completion.
    fn install_cancel(&mut self, token: crate::cancel::CancelToken) {
        let _ = token;
    }

    /// A digest of the architectural state at the current cycle (see
    /// [`crate::digest`]), or `None` for organisations without a
    /// [`crate::digest::StateDigest`] implementation. Two runs of the
    /// same point whose digests agree at every sampled cycle executed
    /// the same history.
    fn state_digest(&self) -> Option<u64> {
        None
    }

    /// Takes a structural snapshot for the invariant watchdog (see
    /// [`crate::watchdog`]). Organisations without exhaustive internal
    /// accounting return `None`; the mesh (and Mesh+PRA, which wraps it)
    /// return a full conservation report.
    fn audit(&self) -> Option<crate::watchdog::AuditReport> {
        None
    }

    /// Whole-run delivery accounting of the end-to-end reliability
    /// layer (see [`crate::reliable`]), or `None` when the organisation
    /// runs without one. Unlike [`Network::stats`] these counters are
    /// not windowed: they are never reset at the warm-up boundary.
    fn reliable_stats(&self) -> Option<crate::reliable::ReliableStats> {
        None
    }

    /// Attaches an observability sink: subsequent simulator events are
    /// emitted into it (see the `niobs` crate). The default
    /// implementation ignores the sink — organisations without
    /// instrumentation hooks simply record nothing.
    #[cfg(feature = "obs")]
    fn install_obs(&mut self, sink: niobs::SharedSink) {
        let _ = sink;
    }

    /// Runs the network until all in-flight packets are delivered or
    /// `max_cycles` elapse. Returns all deliveries. Useful in tests.
    fn run_to_drain(&mut self, max_cycles: u64) -> Vec<Delivered>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        let deadline = self.now() + max_cycles;
        while self.in_flight() > 0 && self.now() < deadline {
            self.step();
            out.extend(self.drain_delivered());
        }
        out
    }
}

/// Source-side NI state: unbounded per-class queues of flits awaiting
/// space in the local input VCs.
#[derive(Debug, Clone, Default)]
pub(crate) struct SourceQueues {
    /// One FIFO per message class (indexed by VC).
    pub(crate) queues: [VecDeque<Flit>; 3],
}

impl SourceQueues {
    pub(crate) fn new() -> Self {
        SourceQueues::default()
    }

    /// Enqueues all flits of `packet` in order on its class queue.
    pub(crate) fn enqueue_packet(&mut self, packet: &Packet) {
        let q = &mut self.queues[packet.class.vc()];
        for mut flit in packet.flits() {
            flit.created = packet.created;
            q.push_back(flit);
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn pending_flits(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

/// Destination-side NI state: reassembles flits into packets.
#[derive(Debug, Clone, Default)]
pub(crate) struct Reassembly {
    partial: BTreeMap<PacketId, (u8, Flit)>,
}

impl Reassembly {
    pub(crate) fn new() -> Self {
        Reassembly::default()
    }

    /// Accepts an ejected flit; returns the head flit and hop count when
    /// the packet completes.
    ///
    /// # Panics
    ///
    /// Panics if flits of the same packet arrive out of order (a routing
    /// or flow-control bug).
    pub(crate) fn accept(&mut self, flit: Flit) -> Option<Flit> {
        let entry = self.partial.entry(flit.packet).or_insert((0, flit));
        assert_eq!(
            entry.0, flit.seq,
            "flit {} of packet {} arrived out of order (expected seq {})",
            flit.seq, flit.packet, entry.0
        );
        entry.0 += 1;
        if entry.0 == flit.len_flits {
            let (_, head) = self.partial.remove(&flit.packet).expect("entry exists");
            Some(head)
        } else {
            None
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn pending(&self) -> usize {
        self.partial.len()
    }

    /// Total flits already accepted into partial reassemblies (for the
    /// conservation audit: accepted flits left the fabric but their
    /// packets are still registered).
    pub(crate) fn accepted_flits(&self) -> u64 {
        self.partial.values().map(|(n, _)| *n as u64).sum()
    }

    /// Discards a partial reassembly (fault purge); returns how many
    /// flits it had accepted.
    pub(crate) fn forget(&mut self, packet: PacketId) -> u64 {
        self.partial.remove(&packet).map_or(0, |(n, _)| n as u64)
    }
}

/// Book-keeping shared by all network implementations: original packet
/// descriptors (to return tags on delivery) and delivery staging.
#[derive(Debug, Default)]
pub(crate) struct DeliveryLedger {
    packets: BTreeMap<PacketId, Packet>,
    delivered: Vec<Delivered>,
}

impl DeliveryLedger {
    pub(crate) fn new() -> Self {
        DeliveryLedger::default()
    }

    pub(crate) fn register(&mut self, packet: Packet) {
        self.packets.insert(packet.id, packet);
    }

    /// Destination of a registered (still in-flight) packet.
    pub(crate) fn dest_of(&self, packet: PacketId) -> Option<NodeId> {
        self.packets.get(&packet).map(|p| p.dest)
    }

    pub(crate) fn in_flight(&self) -> usize {
        self.packets.len()
    }

    /// Completes `packet_id`, recording stats and staging the delivery.
    ///
    /// # Panics
    ///
    /// Panics if the packet was never registered (double delivery).
    pub(crate) fn complete(&mut self, head: Flit, now: Cycle, hops: u32, stats: &mut NetStats) {
        let packet = self
            .packets
            .remove(&head.packet)
            .expect("delivered packet must be registered exactly once");
        stats.record_delivered(
            packet.class,
            packet.len_flits,
            packet.created,
            head.injected,
            now,
            hops,
        );
        self.delivered.push(Delivered {
            packet,
            delivered: now,
            hops,
        });
    }

    /// Completes a retransmission copy under the identity of its
    /// original packet: the copy's registration is consumed (it carries
    /// the original's `created` cycle, so latency accounting is
    /// end-to-end honest) and the staged [`Delivered`] record reports
    /// the **original** id, exactly as if the first flight had landed.
    ///
    /// # Panics
    ///
    /// Panics if the copy was never registered.
    pub(crate) fn complete_as(
        &mut self,
        head: Flit,
        original: PacketId,
        now: Cycle,
        hops: u32,
        stats: &mut NetStats,
    ) {
        let mut packet = self
            .packets
            .remove(&head.packet)
            .expect("delivered copy must be registered exactly once");
        packet.id = original;
        stats.record_delivered(
            packet.class,
            packet.len_flits,
            packet.created,
            head.injected,
            now,
            hops,
        );
        self.delivered.push(Delivered {
            packet,
            delivered: now,
            hops,
        });
    }

    pub(crate) fn drain(&mut self) -> Vec<Delivered> {
        std::mem::take(&mut self.delivered)
    }

    /// Moves all staged deliveries into `out`, preserving order and
    /// leaving the internal staging buffer (and its capacity) in place.
    pub(crate) fn drain_into(&mut self, out: &mut Vec<Delivered>) {
        out.append(&mut self.delivered);
    }

    /// Unregisters a packet without delivering it (fault purge).
    pub(crate) fn forget(&mut self, packet: PacketId) -> Option<Packet> {
        self.packets.remove(&packet)
    }

    /// Iterates over registered (in-flight) packets.
    pub(crate) fn iter_in_flight(&self) -> impl Iterator<Item = &Packet> {
        self.packets.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{MessageClass, NodeId as N};

    fn pkt(id: u64, len: u8) -> Packet {
        Packet::new(
            PacketId(id),
            N::new(0),
            N::new(5),
            MessageClass::Response,
            len,
        )
        .at(3)
    }

    #[test]
    fn source_queue_order() {
        let mut sq = SourceQueues::new();
        sq.enqueue_packet(&pkt(1, 3));
        sq.enqueue_packet(&pkt(2, 1).with_tag(9));
        assert_eq!(sq.pending_flits(), 4);
        let q = &sq.queues[MessageClass::Response.vc()];
        let ids: Vec<_> = q.iter().map(|f| (f.packet.0, f.seq)).collect();
        assert_eq!(ids, vec![(1, 0), (1, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn reassembly_completes_on_tail() {
        let mut r = Reassembly::new();
        let p = pkt(1, 3);
        assert!(r.accept(p.flit(0)).is_none());
        assert!(r.accept(p.flit(1)).is_none());
        let head = r.accept(p.flit(2)).unwrap();
        assert_eq!(head.packet, PacketId(1));
        assert_eq!(r.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn reassembly_rejects_reordered_flits() {
        let mut r = Reassembly::new();
        let p = pkt(1, 3);
        r.accept(p.flit(0));
        r.accept(p.flit(2));
    }

    #[test]
    fn ledger_round_trip() {
        let mut ledger = DeliveryLedger::new();
        let mut stats = NetStats::new();
        let p = pkt(7, 1).with_tag(123);
        ledger.register(p);
        assert_eq!(ledger.in_flight(), 1);
        let mut head = p.flit(0);
        head.injected = 4;
        ledger.complete(head, 20, 5, &mut stats);
        let d = ledger.drain();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].packet.tag, 123);
        assert_eq!(d[0].delivered, 20);
        assert_eq!(d[0].hops, 5);
        assert_eq!(stats.delivered(), 1);
        assert_eq!(ledger.in_flight(), 0);
        assert!(ledger.drain().is_empty());
    }

    #[test]
    #[should_panic(expected = "registered exactly once")]
    fn double_delivery_panics() {
        let mut ledger = DeliveryLedger::new();
        let mut stats = NetStats::new();
        let p = pkt(7, 1);
        ledger.register(p);
        ledger.complete(p.flit(0), 20, 5, &mut stats);
        ledger.complete(p.flit(0), 21, 5, &mut stats);
    }
}

mod digest_impls {
    use super::{DeliveryLedger, Reassembly, SourceQueues};
    use crate::digest::{StateDigest, StateHasher};

    impl StateDigest for SourceQueues {
        fn digest_state(&self, h: &mut StateHasher) {
            for q in &self.queues {
                h.write_usize(q.len());
                for flit in q {
                    flit.digest_state(h);
                }
            }
        }
    }

    impl StateDigest for Reassembly {
        fn digest_state(&self, h: &mut StateHasher) {
            h.write_usize(self.partial.len());
            for (&packet, &(accepted, head)) in &self.partial {
                h.write_u64(packet.0);
                h.write_u8(accepted);
                head.digest_state(h);
            }
        }
    }

    impl StateDigest for DeliveryLedger {
        fn digest_state(&self, h: &mut StateHasher) {
            h.write_usize(self.packets.len());
            for packet in self.packets.values() {
                packet.digest_state(h);
            }
            h.write_usize(self.delivered.len());
            for d in &self.delivered {
                d.packet.digest_state(h);
                h.write_u64(d.delivered);
                h.write_u64(u64::from(d.hops));
            }
        }
    }
}
