//! Synthetic traffic generators for standalone network studies.
//!
//! The system-level evaluation drives the networks from the `sysmodel`
//! crate; the generators here serve unit/integration tests, latency-vs-load
//! curves and the micro-benchmarks.

use nistats::rng::Rng;

use crate::config::NocConfig;
use crate::flit::Packet;
use crate::network::Network;
use crate::types::{Cycle, MessageClass, NodeId, PacketId};

/// Spatial traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Destination drawn uniformly at random (excluding the source).
    UniformRandom,
    /// `(x, y) -> (y, x)`; self-pairs redirect to the next node.
    Transpose,
    /// All nodes send to a single hotspot node.
    Hotspot(NodeId),
    /// Node `i` sends to `i + nodes/2 (mod nodes)` (worst-case diameter).
    Complement,
    /// Requests target LLC-like home slices by address interleaving and
    /// responses flow back — a stand-in for server core↔LLC traffic.
    CoreToLlc,
}

/// A deterministic, seeded synthetic traffic source.
///
/// Every cycle, each node independently injects a packet with probability
/// `rate` (packets/node/cycle). Response-class packets are
/// `cfg.max_packet_len` flits; requests and coherence packets are single
/// flits, mixed per `response_fraction`.
///
/// # Examples
///
/// ```
/// use noc::config::NocConfig;
/// use noc::mesh::MeshNetwork;
/// use noc::network::Network;
/// use noc::traffic::{Pattern, TrafficGen};
///
/// let cfg = NocConfig::paper();
/// let mut net = MeshNetwork::new(cfg.clone());
/// let mut gen = TrafficGen::new(cfg, Pattern::UniformRandom, 0.05, 42);
/// for _ in 0..100 {
///     gen.tick(&mut net);
///     net.step();
/// }
/// assert!(net.stats().injected() > 0);
/// ```
#[derive(Debug)]
pub struct TrafficGen {
    cfg: NocConfig,
    pattern: Pattern,
    rate: f64,
    response_fraction: f64,
    rng: Rng,
    next_id: u64,
    injected: u64,
    stopped: bool,
}

impl TrafficGen {
    /// Creates a generator injecting at `rate` packets/node/cycle with the
    /// default 50/50 request/response mix.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn new(cfg: NocConfig, pattern: Pattern, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        TrafficGen {
            cfg,
            pattern,
            rate,
            response_fraction: 0.5,
            rng: Rng::new(seed),
            next_id: 0,
            injected: 0,
            stopped: false,
        }
    }

    /// Sets the fraction of packets that are multi-flit responses
    /// (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `f` is not in `[0, 1]`.
    pub fn response_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "fraction must be a probability");
        self.response_fraction = f;
        self
    }

    /// Stops further injection (drain phase).
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Packets injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Injects this cycle's packets into `net`. Call once per cycle,
    /// before [`Network::step`].
    pub fn tick(&mut self, net: &mut dyn Network) {
        if self.stopped {
            return;
        }
        let nodes = self.cfg.nodes();
        for src in 0..nodes {
            if !self.rng.gen_bool(self.rate) {
                continue;
            }
            let src_id = NodeId::new(src as u16);
            let dest = self.pick_dest(src_id);
            if dest == src_id {
                continue;
            }
            let response = self.rng.gen_bool(self.response_fraction);
            let (class, len) = if response {
                (MessageClass::Response, self.cfg.max_packet_len)
            } else {
                (MessageClass::Request, 1)
            };
            self.next_id += 1;
            self.injected += 1;
            net.inject(
                Packet::new(PacketId(self.next_id), src_id, dest, class, len)
                    .at(net.now().max(1) as Cycle),
            );
        }
    }

    fn pick_dest(&mut self, src: NodeId) -> NodeId {
        let nodes = self.cfg.nodes() as u16;
        match self.pattern {
            Pattern::UniformRandom => {
                let off = self.rng.gen_range_u16(1, nodes);
                NodeId::new((src.index() as u16 + off) % nodes)
            }
            Pattern::Transpose => {
                let c = self.cfg.coord(src);
                let t = crate::types::Coord::new(c.y, c.x);
                let d = self.cfg.node_at(t);
                if d == src {
                    NodeId::new((src.index() as u16 + 1) % nodes)
                } else {
                    d
                }
            }
            Pattern::Hotspot(h) => h,
            Pattern::Complement => NodeId::new((src.index() as u16 + nodes / 2) % nodes),
            Pattern::CoreToLlc => {
                // Address-interleaved home slice: hash a synthetic address.
                let addr: u64 = self.rng.next_u64();
                NodeId::new((addr % nodes as u64) as u16)
            }
        }
    }
}

/// Runs `net` under `gen` for `warm + measure` cycles and reports the mean
/// packet latency over the measurement phase, then drains.
///
/// A convenience harness for latency-vs-load curves.
pub fn measure_latency(
    net: &mut dyn Network,
    gen: &mut TrafficGen,
    warm: u64,
    measure: u64,
) -> f64 {
    for _ in 0..warm {
        gen.tick(net);
        net.step();
        net.drain_delivered();
    }
    let mut total = 0u64;
    let mut count = 0u64;
    for _ in 0..measure {
        gen.tick(net);
        net.step();
        for d in net.drain_delivered() {
            total += d.delivered - d.packet.created;
            count += 1;
        }
    }
    gen.stop();
    // Drain remaining traffic so callers can reuse the network.
    let deadline = net.now() + 100_000;
    while net.in_flight() > 0 && net.now() < deadline {
        net.step();
        net.drain_delivered();
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::IdealNetwork;
    use crate::mesh::MeshNetwork;
    use crate::smart::SmartNetwork;

    #[test]
    fn generator_is_deterministic() {
        let cfg = NocConfig::paper();
        let mut a = MeshNetwork::new(cfg.clone());
        let mut b = MeshNetwork::new(cfg.clone());
        let mut ga = TrafficGen::new(cfg.clone(), Pattern::UniformRandom, 0.1, 9);
        let mut gb = TrafficGen::new(cfg, Pattern::UniformRandom, 0.1, 9);
        for _ in 0..200 {
            ga.tick(&mut a);
            gb.tick(&mut b);
            a.step();
            b.step();
        }
        assert_eq!(ga.injected(), gb.injected());
        assert_eq!(a.stats().injected(), b.stats().injected());
        assert_eq!(a.stats().delivered(), b.stats().delivered());
        assert_eq!(a.stats().total_latency, b.stats().total_latency);
    }

    #[test]
    fn patterns_produce_valid_destinations() {
        let cfg = NocConfig::paper();
        for pattern in [
            Pattern::UniformRandom,
            Pattern::Transpose,
            Pattern::Hotspot(NodeId::new(0)),
            Pattern::Complement,
            Pattern::CoreToLlc,
        ] {
            let mut gen = TrafficGen::new(cfg.clone(), pattern, 1.0, 1);
            for src in 0..64u16 {
                let d = gen.pick_dest(NodeId::new(src));
                assert!(d.index() < 64, "{pattern:?} gave invalid destination");
            }
        }
    }

    #[test]
    fn latency_rises_with_load_on_mesh() {
        let cfg = NocConfig::paper();
        let mut lats = Vec::new();
        for rate in [0.005, 0.05] {
            let mut net = MeshNetwork::new(cfg.clone());
            let mut gen = TrafficGen::new(cfg.clone(), Pattern::UniformRandom, rate, 7);
            lats.push(measure_latency(&mut net, &mut gen, 500, 1_500));
        }
        assert!(lats[1] > lats[0], "latency must rise with load: {lats:?}");
    }

    #[test]
    fn organisation_ordering_under_light_server_traffic() {
        // Ideal < mesh at a light, LLC-like load; SMART within a sane band.
        let cfg = NocConfig::paper();
        let mut results = Vec::new();
        for which in 0..3 {
            let mut net: Box<dyn Network> = match which {
                0 => Box::new(MeshNetwork::new(cfg.clone())),
                1 => Box::new(SmartNetwork::new(cfg.clone())),
                _ => Box::new(IdealNetwork::new(cfg.clone())),
            };
            let mut gen =
                TrafficGen::new(cfg.clone(), Pattern::CoreToLlc, 0.02, 13).response_fraction(0.5);
            results.push(measure_latency(net.as_mut(), &mut gen, 500, 2_000));
        }
        let (mesh, smart, ideal) = (results[0], results[1], results[2]);
        assert!(ideal < mesh, "ideal {ideal} must beat mesh {mesh}");
        assert!(ideal < smart, "ideal {ideal} must beat SMART {smart}");
        // SMART and mesh are close on server-like traffic (Figure 2).
        assert!(
            (smart - mesh).abs() / mesh < 0.25,
            "SMART {smart} should be within 25% of mesh {mesh}"
        );
    }
}
