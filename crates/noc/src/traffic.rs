//! Synthetic traffic generators for standalone network studies.
//!
//! The system-level evaluation drives the networks from the `sysmodel`
//! crate; the generators here serve unit/integration tests, latency-vs-load
//! curves and the micro-benchmarks.
//!
//! Beyond the steady-state Bernoulli source the paper evaluates, the
//! generator supports bursty *injection processes* ([`InjectionProcess`]):
//! a deterministic on-off source and a truncated Markov-modulated
//! process, both with **bounded** bursts so the worst-case latency
//! analyzer ([`crate::wcla`]) can derive finite per-flow bounds. Injection
//! can additionally be shaped by per-class token buckets, and every
//! injection can be recorded into a replayable [`crate::trace::Trace`].

use std::collections::VecDeque;

use nistats::rng::Rng;

use crate::config::NocConfig;
use crate::digest::{StateDigest, StateHasher};
use crate::flit::Packet;
use crate::network::Network;
use crate::trace::TraceRecorder;
use crate::types::{Cycle, MessageClass, NodeId, PacketId};

/// Spatial traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Destination drawn uniformly at random (excluding the source).
    UniformRandom,
    /// `(x, y) -> (y, x)`; self-pairs redirect to the next node.
    Transpose,
    /// All nodes send to a single hotspot node.
    Hotspot(NodeId),
    /// Node `i` sends to `i + nodes/2 (mod nodes)` (worst-case diameter).
    Complement,
    /// Requests target LLC-like home slices by address interleaving and
    /// responses flow back — a stand-in for server core↔LLC traffic.
    CoreToLlc,
}

/// Temporal injection process: *when* a node offers traffic (the
/// [`Pattern`] decides *where* it goes).
///
/// All processes are driven by the generator's single seeded PCG32
/// stream, so a `(process, pattern, rate, seed)` tuple reproduces the
/// same offered load bit-for-bit. The bursty processes have **bounded**
/// burst lengths by construction — the property the worst-case latency
/// analyzer ([`crate::wcla`]) relies on to emit finite bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectionProcess {
    /// Memoryless Bernoulli(rate) per node per cycle (the paper's
    /// steady-state load; the default).
    Bernoulli,
    /// Deterministic-period on-off source: each node cycles through
    /// `on_len` cycles of elevated injection followed by `off_len` idle
    /// cycles, with a random per-node phase. The on-phase rate is scaled
    /// to `rate * (on_len + off_len) / on_len` (capped at 1) so the
    /// long-run mean stays at the configured `rate`. Worst-case burst:
    /// `on_len` packets.
    OnOff {
        /// Burst (on-phase) length in cycles; must be ≥ 1.
        on_len: u32,
        /// Idle (off-phase) length in cycles.
        off_len: u32,
    },
    /// Truncated two-state Markov-modulated process: a node dwells in a
    /// *low* state injecting below the mean and a *high* state injecting
    /// at `boost ×` the mean (capped at 1). Dwell times are drawn
    /// uniformly from `[1, 2·mean_dwell − 1]` (mean `mean_dwell`), and
    /// the high-state dwell is additionally capped at `max_dwell_hi`
    /// cycles — the truncation that keeps the worst-case burst bounded
    /// at `max_dwell_hi` packets. The low-state rate is derated so the
    /// long-run mean stays at the configured `rate`.
    Mmpp {
        /// High-state rate multiplier applied to the mean rate (> 1).
        boost: f64,
        /// Mean low-state dwell time in cycles; must be ≥ 1.
        mean_dwell_lo: u32,
        /// Mean high-state dwell time in cycles; must be ≥ 1.
        mean_dwell_hi: u32,
        /// Hard cap on a single high-state dwell (the burst bound).
        max_dwell_hi: u32,
    },
}

impl InjectionProcess {
    /// Worst-case burst length in packets a single node can emit
    /// back-to-back (`None` for the memoryless process, whose bursts
    /// are probabilistically unbounded).
    pub fn burst_bound(&self) -> Option<u64> {
        match *self {
            InjectionProcess::Bernoulli => None,
            InjectionProcess::OnOff { on_len, .. } => Some(u64::from(on_len)),
            InjectionProcess::Mmpp {
                mean_dwell_hi,
                max_dwell_hi,
                ..
            } => Some(u64::from(max_dwell_hi.min(2 * mean_dwell_hi))),
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            InjectionProcess::Bernoulli => Ok(()),
            InjectionProcess::OnOff { on_len, .. } => {
                if on_len == 0 {
                    return Err("on_off: on_len must be at least 1".to_string());
                }
                Ok(())
            }
            InjectionProcess::Mmpp {
                boost,
                mean_dwell_lo,
                mean_dwell_hi,
                max_dwell_hi,
            } => {
                if !boost.is_finite() || boost <= 1.0 {
                    return Err("mmpp: boost must be a finite value above 1".to_string());
                }
                if mean_dwell_lo == 0 || mean_dwell_hi == 0 || max_dwell_hi == 0 {
                    return Err("mmpp: dwell parameters must be at least 1".to_string());
                }
                Ok(())
            }
        }
    }
}

/// A per-class token-bucket shaper configuration: a sustained `rate` in
/// flits/cycle and a `burst` allowance in flits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenBucketCfg {
    /// Sustained token refill rate in flits per cycle.
    pub rate: f64,
    /// Bucket capacity (burst allowance) in flits; must be at least the
    /// longest packet of the class or nothing ever passes.
    pub burst: u32,
}

/// Token arithmetic is integer micro-flits so the shaper state digests
/// exactly and never accumulates float drift.
const MICRO: u64 = 1_000_000;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Bucket {
    tokens: u64,
    refill: u64,
    cap: u64,
}

impl Bucket {
    fn new(cfg: TokenBucketCfg) -> Bucket {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let refill = (cfg.rate.max(0.0) * MICRO as f64).round() as u64;
        let cap = u64::from(cfg.burst) * MICRO;
        Bucket {
            tokens: cap,
            refill,
            cap,
        }
    }

    fn tick(&mut self) {
        self.tokens = (self.tokens + self.refill).min(self.cap);
    }

    fn try_take(&mut self, flits: u8) -> bool {
        let cost = u64::from(flits) * MICRO;
        if self.tokens >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }
}

/// Per-node temporal state of the injection process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    /// Bernoulli needs no state.
    Steady,
    /// Position inside the on/off period.
    OnOff { phase: u32 },
    /// Current modulation state and remaining dwell.
    Mmpp { hi: bool, dwell_left: u32 },
}

/// A deterministic, seeded synthetic traffic source.
///
/// Every cycle, each node independently injects a packet with a
/// probability set by its [`InjectionProcess`] (the default Bernoulli
/// process uses `rate` directly). Response-class packets are
/// `cfg.max_packet_len` flits; requests and coherence packets are single
/// flits, mixed per `response_fraction`.
///
/// # Examples
///
/// ```
/// use noc::config::NocConfig;
/// use noc::mesh::MeshNetwork;
/// use noc::network::Network;
/// use noc::traffic::{InjectionProcess, Pattern, TrafficGen};
///
/// let cfg = NocConfig::paper();
/// let mut net = MeshNetwork::new(cfg.clone());
/// let mut gen = TrafficGen::new(cfg, Pattern::UniformRandom, 0.05, 42)
///     .injection(InjectionProcess::OnOff { on_len: 8, off_len: 56 });
/// for _ in 0..200 {
///     gen.tick(&mut net);
///     net.step();
/// }
/// assert!(net.stats().injected() > 0);
/// ```
#[derive(Debug)]
pub struct TrafficGen {
    cfg: NocConfig,
    pattern: Pattern,
    rate: f64,
    response_fraction: f64,
    process: InjectionProcess,
    node_states: Vec<NodeState>,
    /// Per-class shaper template (`None` = class unshaped).
    shaper_cfg: [Option<TokenBucketCfg>; 3],
    /// Per-node, per-class bucket state (empty when nothing is shaped).
    buckets: Vec<[Option<Bucket>; 3]>,
    /// Per-node, per-class queues of generated-but-not-yet-admitted
    /// packets waiting for tokens.
    pending: Vec<[VecDeque<Packet>; 3]>,
    recorder: Option<TraceRecorder>,
    rng: Rng,
    next_id: u64,
    injected: u64,
    deferred: u64,
    stopped: bool,
    /// Reusable buffer for packets released by the shaper this cycle.
    /// Always empty between ticks, so it is excluded from the digest.
    released_scratch: Vec<Packet>,
}

impl TrafficGen {
    /// Creates a generator injecting at `rate` packets/node/cycle with the
    /// default 50/50 request/response mix and the Bernoulli process.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn new(cfg: NocConfig, pattern: Pattern, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        let nodes = cfg.nodes();
        TrafficGen {
            cfg,
            pattern,
            rate,
            response_fraction: 0.5,
            process: InjectionProcess::Bernoulli,
            node_states: vec![NodeState::Steady; nodes],
            shaper_cfg: [None; 3],
            buckets: Vec::new(),
            pending: Vec::new(),
            recorder: None,
            rng: Rng::new(seed),
            next_id: 0,
            injected: 0,
            deferred: 0,
            stopped: false,
            released_scratch: Vec::new(),
        }
    }

    /// Sets the fraction of packets that are multi-flit responses
    /// (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `f` is not in `[0, 1]`.
    pub fn response_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "fraction must be a probability");
        self.response_fraction = f;
        self
    }

    /// Selects the temporal injection process (builder style). Per-node
    /// phases/dwells are initialised from the generator's RNG stream, so
    /// call this before the first [`TrafficGen::tick`] for reproducible
    /// runs.
    ///
    /// # Panics
    ///
    /// Panics if the process parameters are invalid
    /// (see [`InjectionProcess::validate`]).
    pub fn injection(mut self, process: InjectionProcess) -> Self {
        if let Err(message) = process.validate() {
            panic!("invalid injection process: {message}");
        }
        self.process = process;
        self.node_states = (0..self.cfg.nodes())
            .map(|_| match process {
                InjectionProcess::Bernoulli => NodeState::Steady,
                InjectionProcess::OnOff { on_len, off_len } => {
                    let period = u64::from(on_len) + u64::from(off_len);
                    #[allow(clippy::cast_possible_truncation)]
                    let phase = (self.rng.below(period.max(1))) as u32;
                    NodeState::OnOff { phase }
                }
                InjectionProcess::Mmpp { mean_dwell_lo, .. } => NodeState::Mmpp {
                    hi: false,
                    dwell_left: draw_dwell(&mut self.rng, mean_dwell_lo, u32::MAX),
                },
            })
            .collect();
        self
    }

    /// Installs a token-bucket shaper for `class` (builder style): at
    /// most `cfg.burst` flits at once, refilled at `cfg.rate`
    /// flits/cycle. Packets generated while the bucket is dry are
    /// *deferred* (queued at the source, injected once tokens
    /// accumulate), never dropped; their latency clock starts at the
    /// deferred injection cycle and the deferral is counted in
    /// [`TrafficGen::deferred`].
    pub fn token_bucket(mut self, class: MessageClass, cfg: TokenBucketCfg) -> Self {
        self.shaper_cfg[class.vc()] = Some(cfg);
        let nodes = self.cfg.nodes();
        self.buckets = (0..nodes)
            .map(|_| {
                let mut row: [Option<Bucket>; 3] = [None, None, None];
                for (vc, slot) in row.iter_mut().enumerate() {
                    *slot = self.shaper_cfg[vc].map(Bucket::new);
                }
                row
            })
            .collect();
        if self.pending.is_empty() {
            self.pending = (0..nodes)
                .map(|_| std::array::from_fn(|_| VecDeque::new()))
                .collect();
        }
        self
    }

    /// Starts recording every injection into a trace (builder style);
    /// retrieve it with [`TrafficGen::take_trace`].
    pub fn record_trace(mut self) -> Self {
        self.recorder = Some(TraceRecorder::new());
        self
    }

    /// Finishes trace recording and returns the trace recorded so far
    /// (empty if [`TrafficGen::record_trace`] was never called).
    pub fn take_trace(&mut self) -> crate::trace::Trace {
        self.recorder
            .take()
            .map(TraceRecorder::into_trace)
            .unwrap_or_default()
    }

    /// Stops further injection (drain phase).
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Packets injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Packets that were deferred at least one cycle by a token bucket.
    pub fn deferred(&self) -> u64 {
        self.deferred
    }

    /// Packets currently held back by dry token buckets.
    pub fn pending(&self) -> usize {
        self.pending
            .iter()
            .flat_map(|row| row.iter())
            .map(VecDeque::len)
            .sum()
    }

    /// This cycle's injection probability for `node`, advancing the
    /// node's temporal state. The Bernoulli process performs no RNG
    /// draws here, so legacy `(pattern, rate, seed)` runs keep their
    /// exact historical stream.
    fn cycle_rate(&mut self, node: usize) -> f64 {
        match self.process {
            InjectionProcess::Bernoulli => self.rate,
            InjectionProcess::OnOff { on_len, off_len } => {
                let period = on_len + off_len;
                let NodeState::OnOff { phase } = &mut self.node_states[node] else {
                    return self.rate;
                };
                let on = *phase < on_len;
                *phase = (*phase + 1) % period.max(1);
                if on {
                    let duty = f64::from(on_len) / f64::from(period.max(1));
                    (self.rate / duty).min(1.0)
                } else {
                    0.0
                }
            }
            InjectionProcess::Mmpp {
                boost,
                mean_dwell_lo,
                mean_dwell_hi,
                max_dwell_hi,
            } => {
                let NodeState::Mmpp { hi, dwell_left } = &mut self.node_states[node] else {
                    return self.rate;
                };
                if *dwell_left == 0 {
                    *hi = !*hi;
                    *dwell_left = if *hi {
                        draw_dwell(&mut self.rng, mean_dwell_hi, max_dwell_hi)
                    } else {
                        draw_dwell(&mut self.rng, mean_dwell_lo, u32::MAX)
                    };
                }
                *dwell_left = dwell_left.saturating_sub(1);
                let hi_rate = (self.rate * boost).min(1.0);
                if *hi {
                    hi_rate
                } else {
                    // Derate the low state so the long-run mean stays at
                    // `rate` (clamped at zero when boost × dwell already
                    // exceeds the budget).
                    let d_lo = f64::from(mean_dwell_lo);
                    let d_hi = f64::from(mean_dwell_hi);
                    ((self.rate * (d_lo + d_hi) - hi_rate * d_hi) / d_lo).max(0.0)
                }
            }
        }
    }

    /// Injects this cycle's packets into `net`. Call once per cycle,
    /// before [`Network::step`].
    // hot
    pub fn tick<N: Network + ?Sized>(&mut self, net: &mut N) {
        if self.stopped {
            return;
        }
        let now = net.now().max(1) as Cycle;
        // Refill shapers and release deferred packets first: a packet
        // held back by a dry bucket keeps its place ahead of this
        // cycle's fresh traffic.
        if !self.buckets.is_empty() {
            for node in 0..self.cfg.nodes() {
                for vc in 0..3 {
                    let mut released = std::mem::take(&mut self.released_scratch);
                    if let Some(bucket) = self.buckets[node][vc].as_mut() {
                        bucket.tick();
                        while let Some(front) = self.pending[node][vc].front() {
                            if !bucket.try_take(front.len_flits) {
                                break;
                            }
                            released.push(
                                self.pending[node][vc]
                                    .pop_front()
                                    .expect("front exists")
                                    .at(now),
                            );
                        }
                    }
                    for packet in released.drain(..) {
                        self.admit(net, packet, now);
                    }
                    self.released_scratch = released;
                }
            }
        }
        let nodes = self.cfg.nodes();
        for src in 0..nodes {
            let p = self.cycle_rate(src);
            if !self.rng.gen_bool(p) {
                continue;
            }
            let src_id = NodeId::new(src as u16);
            let dest = self.pick_dest(src_id);
            if dest == src_id {
                continue;
            }
            let response = self.rng.gen_bool(self.response_fraction);
            let (class, len) = if response {
                (MessageClass::Response, self.cfg.max_packet_len)
            } else {
                (MessageClass::Request, 1)
            };
            self.next_id += 1;
            let packet = Packet::new(PacketId(self.next_id), src_id, dest, class, len).at(now);
            let vc = class.vc();
            let shaped = !self.buckets.is_empty() && self.buckets[src][vc].is_some();
            if shaped {
                let queue_empty = self.pending[src][vc].is_empty();
                let bucket = self.buckets[src][vc].as_mut().expect("shaped class");
                if queue_empty && bucket.try_take(len) {
                    self.admit(net, packet, now);
                } else {
                    self.deferred += 1;
                    self.pending[src][vc].push_back(packet);
                }
            } else {
                self.admit(net, packet, now);
            }
        }
    }

    fn admit<N: Network + ?Sized>(&mut self, net: &mut N, packet: Packet, now: Cycle) {
        self.injected += 1;
        if let Some(rec) = self.recorder.as_mut() {
            rec.record(now, &packet, 0);
        }
        net.inject(packet);
    }

    fn pick_dest(&mut self, src: NodeId) -> NodeId {
        let nodes = self.cfg.nodes() as u16;
        match self.pattern {
            Pattern::UniformRandom => {
                let off = self.rng.gen_range_u16(1, nodes);
                NodeId::new((src.index() as u16 + off) % nodes)
            }
            Pattern::Transpose => {
                let c = self.cfg.coord(src);
                let t = crate::types::Coord::new(c.y, c.x);
                let d = self.cfg.node_at(t);
                if d == src {
                    NodeId::new((src.index() as u16 + 1) % nodes)
                } else {
                    d
                }
            }
            Pattern::Hotspot(h) => h,
            Pattern::Complement => NodeId::new((src.index() as u16 + nodes / 2) % nodes),
            Pattern::CoreToLlc => {
                // Address-interleaved home slice: hash a synthetic address.
                let addr: u64 = self.rng.next_u64();
                NodeId::new((addr % nodes as u64) as u16)
            }
        }
    }
}

impl StateDigest for TrafficGen {
    fn digest_state(&self, h: &mut StateHasher) {
        let (state, inc) = self.rng.state_words();
        h.write_u64(state);
        h.write_u64(inc);
        h.write_u64(self.next_id);
        h.write_u64(self.injected);
        h.write_u64(self.deferred);
        for s in &self.node_states {
            match *s {
                NodeState::Steady => h.write_u8(0),
                NodeState::OnOff { phase } => {
                    h.write_u8(1);
                    h.write_u64(u64::from(phase));
                }
                NodeState::Mmpp { hi, dwell_left } => {
                    h.write_u8(2);
                    h.write_u8(u8::from(hi));
                    h.write_u64(u64::from(dwell_left));
                }
            }
        }
        for row in &self.buckets {
            for slot in row {
                match slot {
                    None => h.write_u8(0),
                    Some(b) => {
                        h.write_u8(1);
                        h.write_u64(b.tokens);
                    }
                }
            }
        }
        for row in &self.pending {
            for q in row {
                h.write_usize(q.len());
            }
        }
    }
}

/// A dwell time drawn uniformly from `[1, 2·mean − 1]` (mean `mean`),
/// capped at `cap`. Uniform rather than geometric keeps the draw bounded
/// with a single RNG word.
fn draw_dwell(rng: &mut Rng, mean: u32, cap: u32) -> u32 {
    let span = u64::from(mean) * 2 - 1;
    #[allow(clippy::cast_possible_truncation)]
    let d = (1 + rng.below(span.max(1))) as u32;
    d.min(cap.max(1))
}

/// Runs `net` under `gen` for `warm + measure` cycles and reports the mean
/// packet latency over the measurement phase, then drains.
///
/// A convenience harness for latency-vs-load curves.
pub fn measure_latency<N: Network + ?Sized>(
    net: &mut N,
    gen: &mut TrafficGen,
    warm: u64,
    measure: u64,
) -> f64 {
    for _ in 0..warm {
        gen.tick(net);
        net.step();
        net.drain_delivered();
    }
    let mut total = 0u64;
    let mut count = 0u64;
    for _ in 0..measure {
        gen.tick(net);
        net.step();
        for d in net.drain_delivered() {
            total += d.delivered - d.packet.created;
            count += 1;
        }
    }
    gen.stop();
    // Drain remaining traffic so callers can reuse the network.
    let deadline = net.now() + 100_000;
    while net.in_flight() > 0 && net.now() < deadline {
        net.step();
        net.drain_delivered();
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::IdealNetwork;
    use crate::mesh::MeshNetwork;
    use crate::smart::SmartNetwork;

    #[test]
    fn generator_is_deterministic() {
        let cfg = NocConfig::paper();
        let mut a = MeshNetwork::new(cfg.clone());
        let mut b = MeshNetwork::new(cfg.clone());
        let mut ga = TrafficGen::new(cfg.clone(), Pattern::UniformRandom, 0.1, 9);
        let mut gb = TrafficGen::new(cfg, Pattern::UniformRandom, 0.1, 9);
        for _ in 0..200 {
            ga.tick(&mut a);
            gb.tick(&mut b);
            a.step();
            b.step();
        }
        assert_eq!(ga.injected(), gb.injected());
        assert_eq!(a.stats().injected(), b.stats().injected());
        assert_eq!(a.stats().delivered(), b.stats().delivered());
        assert_eq!(a.stats().total_latency, b.stats().total_latency);
    }

    #[test]
    fn patterns_produce_valid_destinations() {
        let cfg = NocConfig::paper();
        for pattern in [
            Pattern::UniformRandom,
            Pattern::Transpose,
            Pattern::Hotspot(NodeId::new(0)),
            Pattern::Complement,
            Pattern::CoreToLlc,
        ] {
            let mut gen = TrafficGen::new(cfg.clone(), pattern, 1.0, 1);
            for src in 0..64u16 {
                let d = gen.pick_dest(NodeId::new(src));
                assert!(d.index() < 64, "{pattern:?} gave invalid destination");
            }
        }
    }

    #[test]
    fn latency_rises_with_load_on_mesh() {
        let cfg = NocConfig::paper();
        let mut lats = Vec::new();
        for rate in [0.005, 0.05] {
            let mut net = MeshNetwork::new(cfg.clone());
            let mut gen = TrafficGen::new(cfg.clone(), Pattern::UniformRandom, rate, 7);
            lats.push(measure_latency(&mut net, &mut gen, 500, 1_500));
        }
        assert!(lats[1] > lats[0], "latency must rise with load: {lats:?}");
    }

    #[test]
    fn organisation_ordering_under_light_server_traffic() {
        // Ideal < mesh at a light, LLC-like load; SMART within a sane band.
        let cfg = NocConfig::paper();
        let mut results = Vec::new();
        for which in 0..3 {
            let mut net: Box<dyn Network> = match which {
                0 => Box::new(MeshNetwork::new(cfg.clone())),
                1 => Box::new(SmartNetwork::new(cfg.clone())),
                _ => Box::new(IdealNetwork::new(cfg.clone())),
            };
            let mut gen =
                TrafficGen::new(cfg.clone(), Pattern::CoreToLlc, 0.02, 13).response_fraction(0.5);
            results.push(measure_latency(net.as_mut(), &mut gen, 500, 2_000));
        }
        let (mesh, smart, ideal) = (results[0], results[1], results[2]);
        assert!(ideal < mesh, "ideal {ideal} must beat mesh {mesh}");
        assert!(ideal < smart, "ideal {ideal} must beat SMART {smart}");
        // SMART and mesh are close on server-like traffic (Figure 2).
        assert!(
            (smart - mesh).abs() / mesh < 0.25,
            "SMART {smart} should be within 25% of mesh {mesh}"
        );
    }

    #[test]
    fn bursty_processes_are_deterministic_and_preserve_mean_rate() {
        let cfg = NocConfig::paper();
        for process in [
            InjectionProcess::OnOff {
                on_len: 8,
                off_len: 56,
            },
            InjectionProcess::Mmpp {
                boost: 8.0,
                mean_dwell_lo: 80,
                mean_dwell_hi: 10,
                max_dwell_hi: 16,
            },
        ] {
            let run = |seed: u64| {
                let mut net = IdealNetwork::new(cfg.clone());
                let mut gen = TrafficGen::new(cfg.clone(), Pattern::UniformRandom, 0.02, seed)
                    .injection(process);
                for _ in 0..4_000 {
                    gen.tick(&mut net);
                    net.step();
                    net.drain_delivered();
                }
                gen.injected()
            };
            assert_eq!(run(5), run(5), "{process:?} must be deterministic");
            // Long-run mean within 40% of the configured rate (the
            // processes are calibrated to preserve it).
            let injected = run(5) as f64;
            let expected = 0.02 * 64.0 * 4_000.0;
            assert!(
                (injected - expected).abs() / expected < 0.4,
                "{process:?}: injected {injected}, expected ≈ {expected}"
            );
        }
    }

    #[test]
    fn on_off_bursts_are_bounded() {
        // At peak the on-off process can inject every on-cycle, never
        // more: with rate*period/on_len >= 1 the cap engages.
        let p = InjectionProcess::OnOff {
            on_len: 4,
            off_len: 60,
        };
        assert_eq!(p.burst_bound(), Some(4));
        let m = InjectionProcess::Mmpp {
            boost: 4.0,
            mean_dwell_lo: 50,
            mean_dwell_hi: 20,
            max_dwell_hi: 12,
        };
        assert_eq!(m.burst_bound(), Some(12));
        assert_eq!(InjectionProcess::Bernoulli.burst_bound(), None);
    }

    #[test]
    fn invalid_processes_are_rejected() {
        assert!(InjectionProcess::OnOff {
            on_len: 0,
            off_len: 5
        }
        .validate()
        .is_err());
        assert!(InjectionProcess::Mmpp {
            boost: 0.5,
            mean_dwell_lo: 10,
            mean_dwell_hi: 10,
            max_dwell_hi: 10
        }
        .validate()
        .is_err());
        assert!(InjectionProcess::Mmpp {
            boost: 4.0,
            mean_dwell_lo: 0,
            mean_dwell_hi: 10,
            max_dwell_hi: 10
        }
        .validate()
        .is_err());
        assert!(InjectionProcess::Bernoulli.validate().is_ok());
    }

    #[test]
    fn token_bucket_shapes_and_defers_without_loss() {
        let cfg = NocConfig::paper();
        let mut net = IdealNetwork::new(cfg.clone());
        // Saturating offered load, tightly shaped responses.
        let mut gen = TrafficGen::new(cfg.clone(), Pattern::UniformRandom, 0.5, 11)
            .response_fraction(1.0)
            .token_bucket(
                MessageClass::Response,
                TokenBucketCfg {
                    rate: 0.5,
                    burst: 10,
                },
            );
        for _ in 0..1_000 {
            gen.tick(&mut net);
            net.step();
            net.drain_delivered();
        }
        assert!(gen.deferred() > 0, "a dry bucket must defer packets");
        // Admitted flits must respect the sustained rate plus the burst.
        let admitted_flits = gen.injected() * u64::from(cfg.max_packet_len);
        assert!(
            admitted_flits <= (0.5 * 1_000.0) as u64 * 64 + 10 * 64 + 64,
            "shaper leaked: {admitted_flits} flits admitted"
        );
        // Deferred packets eventually flow; nothing is dropped silently.
        assert!(gen.pending() > 0 || gen.injected() > 0);
    }

    #[test]
    fn trace_recording_captures_every_injection() {
        let cfg = NocConfig::paper();
        let mut net = MeshNetwork::new(cfg.clone());
        let mut gen = TrafficGen::new(cfg.clone(), Pattern::UniformRandom, 0.05, 3)
            .injection(InjectionProcess::OnOff {
                on_len: 8,
                off_len: 24,
            })
            .record_trace();
        for _ in 0..300 {
            gen.tick(&mut net);
            net.step();
            net.drain_delivered();
        }
        let injected = gen.injected();
        let trace = gen.take_trace();
        assert_eq!(trace.len() as u64, injected);
        assert!(trace.validate(64).is_ok());
    }
}
