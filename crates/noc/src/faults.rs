//! Deterministic, seed-driven fault injection for the mesh datapath.
//!
//! A [`FaultPlan`] describes everything that will go wrong during a run:
//! a background rate of *transient* link faults (each corrupts one link
//! for exactly one cycle) plus a schedule of discrete [`FaultEvent`]s —
//! permanent link failures, router hard-faults, credit losses on the
//! reverse channel, and forced control-network drops. The plan is part of
//! [`NocConfig`](crate::config::NocConfig), so two networks built from
//! equal configurations observe byte-identical fault sequences.
//!
//! The runtime state lives in [`FaultState`], owned by the mesh. Faults
//! are prepared **one cycle ahead**: at the start of the step executing
//! cycle *c* the mesh learns the transient faults of cycle *c + 1*, so
//! switch allocation (which targets *c + 1*) never grants a traversal
//! onto a link that will be faulted when the flit would cross it. All
//! fault semantics are therefore *pre-transmission*: a faulted link
//! refuses new traffic for the cycle rather than eating a flit mid-wire,
//! and data is only ever lost when a router dies or a permanent cut
//! strands a wormhole — in which case the mesh purges the affected
//! packets and accounts for every flit in [`FaultStats`].
//!
//! When permanent faults degrade the topology, routing switches from XY
//! to per-destination next-hop tables computed over the surviving links
//! under the **west-first turn model** (Glass & Ni): a packet may only
//! hop west while *every* hop it has taken so far went west, which
//! forbids the N→W and S→W turns and keeps the channel-dependency graph
//! acyclic — detours stay deadlock-free, not just observed-deadlock-free.
//! XY routes are themselves west-first, so packets already in flight when
//! a fault lands remain legal, and on a fault-free mesh the tables
//! reproduce XY exactly (the tie-break prefers X-dimension moves). The
//! price is reachability: all west travel must happen inside the source
//! row, so a dead router additionally orphans the few pairs whose
//! mandatory west prefix it blocks; those are refused at injection or
//! purged as counted losses, exactly like a dead destination. The runtime
//! watchdog ([`crate::watchdog`]) independently checks the result —
//! conservation, credit balance, progress — rather than trusting the
//! proof.

use nistats::rng::Rng;

use crate::config::NocConfig;
use crate::routing::neighbor;
use crate::types::{Cycle, Direction, NodeId, Port};

/// One scheduled fault. `at` is the first cycle the fault is in effect;
/// events scheduled for a cycle that already passed are applied as soon
/// as possible (deterministically, at the next step boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The link leaving `node` toward `dir` is unusable for exactly the
    /// cycle `at` (both directions of the physical channel).
    TransientLink {
        /// First (and only) faulted cycle.
        at: Cycle,
        /// Router on one end of the link.
        node: NodeId,
        /// Direction of the link from `node`.
        dir: Direction,
    },
    /// The link leaving `node` toward `dir` fails permanently at `at`.
    PermanentLink {
        /// First faulted cycle.
        at: Cycle,
        /// Router on one end of the link.
        node: NodeId,
        /// Direction of the link from `node`.
        dir: Direction,
    },
    /// Router `node` hard-fails at `at`: its buffers, latches and local
    /// NI are gone; all four adjacent links die with it.
    RouterDown {
        /// First faulted cycle.
        at: Cycle,
        /// The dying router.
        node: NodeId,
    },
    /// One credit travelling upstream to `(node, dir, vc)` is lost at
    /// `at` (if none is in flight that cycle, the event fizzles).
    CreditLoss {
        /// Cycle of the loss.
        at: Cycle,
        /// Router whose output-port credit counter loses the credit.
        node: NodeId,
        /// Output direction of the affected port.
        dir: Direction,
        /// Affected virtual channel.
        vc: u8,
    },
    /// The control network at `node` corrupts every control packet it
    /// processes around cycle `at` (forced drop — PRA treats corruption
    /// as a drop, so data falls back to the baseline mesh).
    ControlDrop {
        /// Cycle of the corruption.
        at: Cycle,
        /// Affected control router.
        node: NodeId,
    },
}

impl FaultEvent {
    /// The cycle the event takes effect.
    pub fn at(&self) -> Cycle {
        match *self {
            FaultEvent::TransientLink { at, .. }
            | FaultEvent::PermanentLink { at, .. }
            | FaultEvent::RouterDown { at, .. }
            | FaultEvent::CreditLoss { at, .. }
            | FaultEvent::ControlDrop { at, .. } => at,
        }
    }
}

/// A complete, deterministic fault schedule for one simulation.
///
/// # Examples
///
/// ```
/// use noc::faults::{FaultEvent, FaultPlan};
/// use noc::types::{Direction, NodeId};
///
/// let plan = FaultPlan::new(42)
///     .transient_rate_ppb(100_000) // 1e-4 faults per link per cycle
///     .with_event(FaultEvent::RouterDown { at: 500, node: NodeId::new(27) });
/// assert!(!plan.is_trivial());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the PRNG drawing background transient faults.
    pub seed: u64,
    /// Per-directed-link, per-cycle probability of a transient fault, in
    /// parts per billion (`100_000` ≈ 1e-4 per cycle).
    pub transient_link_ppb: u32,
    /// Scheduled discrete faults.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_link_ppb: 0,
            events: Vec::new(),
        }
    }

    /// Sets the background transient-link fault rate (builder style).
    pub fn transient_rate_ppb(mut self, ppb: u32) -> Self {
        self.transient_link_ppb = ppb;
        self
    }

    /// Appends a scheduled event (builder style).
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Whether the plan injects no faults at all.
    pub fn is_trivial(&self) -> bool {
        self.transient_link_ppb == 0 && self.events.is_empty()
    }
}

/// Counters describing everything the fault subsystem did and destroyed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Directed link-cycles corrupted by transient faults (drawn or
    /// scheduled).
    pub transient_link_faults: u64,
    /// Permanent link failures applied.
    pub permanent_link_faults: u64,
    /// Router hard-faults applied.
    pub router_faults: u64,
    /// Credits destroyed on the reverse channel.
    pub credits_lost: u64,
    /// Control packets dropped because of faults (corruption, dead
    /// control routers, or unroutable segments).
    pub control_drops: u64,
    /// Packets purged because a fault made them undeliverable.
    pub lost_packets: u64,
    /// Flits belonging to purged packets.
    pub lost_flits: u64,
    /// Injections refused because an endpoint was dead or unreachable.
    pub injections_refused: u64,
    /// Allocation cycles in which a flit was ready but its link was
    /// faulted (the latency cost of graceful degradation).
    pub blocked_by_fault_cycles: u64,
    /// Pre-allocated chains cancelled because a link on the chain was
    /// faulted at execution time (the PRA degradation path).
    pub faulted_chain_cancels: u64,
}

/// Encoded next-hop entry: `0..4` = [`Direction`] port index order
/// (N, S, E, W), [`HOP_LOCAL`] = at destination, [`HOP_NONE`] =
/// unreachable.
const HOP_LOCAL: u8 = 4;
const HOP_NONE: u8 = u8::MAX;

/// Marks both directions of the physical channel `node → dir` dead in a
/// `nodes * 4` directed-link mask.
fn mark_channel_dead(dead_link: &mut [bool], cfg: &NocConfig, node: NodeId, dir: Direction) {
    dead_link[node.index() * 4 + dir as usize] = true;
    if let Some(nb) = neighbor(cfg, node, dir) {
        dead_link[nb.index() * 4 + dir.opposite() as usize] = true;
    }
}

/// The permanent topology damage a [`FaultPlan`] will eventually inflict,
/// ignoring fault times: directed-link and router death masks with every
/// [`FaultEvent::PermanentLink`] and [`FaultEvent::RouterDown`] applied.
///
/// This is the worst-case surviving topology, which is what static
/// analysis must verify routes over: the runtime applies the same events
/// incrementally, so any intermediate topology is a superset of this one
/// and its detour tables are checked by the same sweep (one plan per
/// single fault).
pub fn permanent_damage(cfg: &NocConfig, plan: &FaultPlan) -> (Vec<bool>, Vec<bool>) {
    let nodes = cfg.nodes();
    let mut dead_link = vec![false; nodes * 4];
    let mut dead_router = vec![false; nodes];
    for e in &plan.events {
        match *e {
            FaultEvent::PermanentLink { node, dir, .. } => {
                mark_channel_dead(&mut dead_link, cfg, node, dir);
            }
            FaultEvent::RouterDown { node, .. } => {
                dead_router[node.index()] = true;
            }
            FaultEvent::TransientLink { .. }
            | FaultEvent::CreditLoss { .. }
            | FaultEvent::ControlDrop { .. } => {}
        }
    }
    (dead_link, dead_router)
}

/// West-first detour routing tables over a damaged mesh topology.
///
/// This is the exact table the mesh switches to when permanent faults
/// degrade the topology, exposed as a pure value so the static analyzer
/// (`crates/analyzer`) can rebuild the tables for any fault plan and
/// prove the resulting channel-dependency graph acyclic *before* any
/// simulation runs. Routes obey the **west-first turn model** (Glass &
/// Ni): a packet may only hop west while every hop it has taken so far
/// went west, which forbids the N→W and S→W turns. Preference order
/// E, W, S, N reproduces XY routing whenever the minimal XY path
/// survives.
///
/// # Examples
///
/// ```
/// use noc::config::NocConfig;
/// use noc::faults::DetourTables;
/// use noc::types::{NodeId, Port};
///
/// let cfg = NocConfig::paper();
/// let nodes = cfg.nodes();
/// let tables = DetourTables::build(&cfg, &vec![false; nodes * 4], &vec![false; nodes]);
/// // Fault-free tables reproduce XY routing.
/// assert_eq!(
///     tables.next_hop(NodeId::new(0), NodeId::new(1), true),
///     Some(Port::Dir(noc::types::Direction::East))
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetourTables {
    nodes: usize,
    /// Per-destination next-hop over the surviving topology, indexed
    /// `(dest * nodes + here) * 2 + west_ok`.
    table: Vec<u8>,
}

impl DetourTables {
    /// Builds the tables over the surviving topology described by the
    /// `nodes * 4` directed-link death mask and the per-router death
    /// mask. Destinations with no legal west-first path from a state get
    /// "unreachable" — the turn restriction may orphan a pair even on a
    /// connected topology, which callers treat exactly like a dead
    /// destination (refuse or purge); that trades reachability for
    /// provable deadlock freedom.
    ///
    /// # Panics
    ///
    /// Panics if the masks do not match the configuration's node count.
    pub fn build(cfg: &NocConfig, dead_link: &[bool], dead_router: &[bool]) -> Self {
        const PREF: [Direction; 4] = [
            Direction::East,
            Direction::West,
            Direction::South,
            Direction::North,
        ];
        let n = cfg.nodes();
        assert_eq!(dead_link.len(), n * 4, "directed-link mask size mismatch");
        assert_eq!(dead_router.len(), n, "router mask size mismatch");
        let mut table = vec![HOP_NONE; n * n * 2];
        // dist over states: `node * 2 + west_ok`.
        let mut dist = vec![u32::MAX; n * 2];
        let mut queue = std::collections::VecDeque::new();
        for dest in 0..n {
            let base = dest * n;
            if dead_router[dest] {
                continue;
            }
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            dist[dest * 2] = 0;
            dist[dest * 2 + 1] = 0;
            queue.clear();
            queue.push_back(dest * 2);
            queue.push_back(dest * 2 + 1);
            // Backward BFS over the legal-state graph. Arriving at `here`
            // in state `west_ok = 1` is only possible over a west link
            // (from the eastern neighbour, itself `west_ok`); state 0 is
            // reached over any non-west link from either state.
            while let Some(s) = queue.pop_front() {
                let (here, west_ok) = (s / 2, s % 2 == 1);
                for dir in Direction::ALL {
                    let Some(nb) = neighbor(cfg, NodeId::new(here as u16), dir) else {
                        continue;
                    };
                    let nb = nb.index();
                    // The forward hop is `nb -> here` via `dir.opposite()`.
                    let fwd = dir.opposite();
                    if dead_router[nb] || dead_link[nb * 4 + fwd as usize] {
                        continue;
                    }
                    let preds: &[usize] = if fwd == Direction::West {
                        if !west_ok {
                            continue; // a west hop always preserves west_ok
                        }
                        &[1]
                    } else if west_ok {
                        continue; // non-west hops land in state 0 only
                    } else {
                        &[0, 1]
                    };
                    for &p in preds {
                        let ps = nb * 2 + p;
                        if dist[ps] == u32::MAX {
                            dist[ps] = dist[s] + 1;
                            queue.push_back(ps);
                        }
                    }
                }
            }
            for here in 0..n {
                for west_ok in 0..2usize {
                    let idx = (base + here) * 2 + west_ok;
                    if here == dest {
                        table[idx] = HOP_LOCAL;
                        continue;
                    }
                    let d_here = dist[here * 2 + west_ok];
                    if d_here == u32::MAX || dead_router[here] {
                        continue;
                    }
                    for dir in PREF {
                        if dir == Direction::West && west_ok == 0 {
                            continue; // illegal turn into west
                        }
                        let Some(nb) = neighbor(cfg, NodeId::new(here as u16), dir) else {
                            continue;
                        };
                        let nb = nb.index();
                        if dead_link[here * 4 + dir as usize] || dead_router[nb] {
                            continue;
                        }
                        let next_state =
                            nb * 2 + usize::from(west_ok == 1 && dir == Direction::West);
                        if dist[next_state] != u32::MAX && dist[next_state] + 1 == d_here {
                            table[idx] = dir as u8;
                            break;
                        }
                    }
                }
            }
        }
        DetourTables { nodes: n, table }
    }

    /// Builds the tables for the permanent damage of `plan` (see
    /// [`permanent_damage`]).
    pub fn for_plan(cfg: &NocConfig, plan: &FaultPlan) -> Self {
        let (dead_link, dead_router) = permanent_damage(cfg, plan);
        DetourTables::build(cfg, &dead_link, &dead_router)
    }

    /// The output port toward `dest` at `here`, or `None` when no
    /// west-first route exists from this state. `west_ok` is whether
    /// every hop the packet has taken so far was west (true at
    /// injection; downstream it is exactly "the flit entered through the
    /// east port").
    pub fn next_hop(&self, here: NodeId, dest: NodeId, west_ok: bool) -> Option<Port> {
        let idx = (dest.index() * self.nodes + here.index()) * 2 + usize::from(west_ok);
        match self.table[idx] {
            HOP_NONE => None,
            HOP_LOCAL => Some(Port::Local),
            d => Some(Port::Dir(match d {
                0 => Direction::North,
                1 => Direction::South,
                2 => Direction::East,
                _ => Direction::West,
            })),
        }
    }
}

/// Runtime fault state owned by the mesh. Everything here is driven by
/// the plan and the mesh clock; nothing is sampled from ambient state,
/// so runs reproduce exactly.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: Rng,
    nodes: usize,
    vcs: usize,
    /// Permanently dead directed links, `node * 4 + dir`; both directions
    /// of a physical channel are marked together.
    dead_link: Vec<bool>,
    /// Hard-failed routers.
    dead_router: Vec<bool>,
    /// Transient faults in effect for the cycle being executed.
    transient_cur: Vec<bool>,
    /// Transient faults prepared for the next cycle (allocation target).
    transient_next: Vec<bool>,
    /// Scheduled events not yet applied, sorted descending by `at` so
    /// due events pop off the back.
    pending_topology: Vec<FaultEvent>,
    pending_transient: Vec<FaultEvent>,
    pending_credit: Vec<FaultEvent>,
    pending_control: Vec<FaultEvent>,
    /// Credit losses armed for the cycle being executed.
    pub(crate) credit_losses_now: Vec<(usize, Direction, usize)>,
    /// Control corruptions armed around the current cycle.
    control_armed: Vec<(Cycle, usize)>,
    /// Credits destroyed so far per `(node * 4 + dir) * vcs + vc`; the
    /// audit adds these back so the credit-conservation sum still closes.
    lost_credits: Vec<u64>,
    /// West-first next-hop tables over the surviving topology, built
    /// lazily on the first permanent fault (see [`DetourTables`]). XY
    /// routes are a strict subset of west-first, so in-flight packets
    /// remain legal across the XY → degraded transition.
    detour: Option<DetourTables>,
    /// Whether any permanent fault has been applied (switches routing
    /// from XY to the tables).
    degraded: bool,
    pub(crate) stats: FaultStats,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, cfg: &NocConfig) -> Self {
        let nodes = cfg.nodes();
        let mut pending_topology = Vec::new();
        let mut pending_transient = Vec::new();
        let mut pending_credit = Vec::new();
        let mut pending_control = Vec::new();
        for e in &plan.events {
            match e {
                FaultEvent::PermanentLink { .. } | FaultEvent::RouterDown { .. } => {
                    pending_topology.push(*e)
                }
                FaultEvent::TransientLink { .. } => pending_transient.push(*e),
                FaultEvent::CreditLoss { .. } => pending_credit.push(*e),
                FaultEvent::ControlDrop { .. } => pending_control.push(*e),
            }
        }
        for q in [
            &mut pending_topology,
            &mut pending_transient,
            &mut pending_credit,
            &mut pending_control,
        ] {
            q.sort_by_key(|e| std::cmp::Reverse(e.at()));
        }
        let rng = Rng::new(plan.seed);
        let mut state = FaultState {
            rng,
            nodes,
            vcs: cfg.vcs_per_port,
            dead_link: vec![false; nodes * 4],
            dead_router: vec![false; nodes],
            transient_cur: vec![false; nodes * 4],
            transient_next: vec![false; nodes * 4],
            pending_topology,
            pending_transient,
            pending_credit,
            pending_control,
            credit_losses_now: Vec::new(),
            control_armed: Vec::new(),
            lost_credits: vec![0; nodes * 4 * cfg.vcs_per_port],
            detour: None,
            degraded: false,
            stats: FaultStats::default(),
            plan,
        };
        // The first step executes cycle 1; prepare its transients now.
        state.draw_transients(1, cfg);
        state
    }

    /// Advances the fault clock to `now` (the cycle the mesh is about to
    /// execute): rotates the prepared transients in, draws the next
    /// cycle's, arms credit/control events, and returns the topology
    /// events (permanent link / router death) due for application.
    pub(crate) fn begin_cycle(&mut self, now: Cycle, cfg: &NocConfig) -> Vec<FaultEvent> {
        std::mem::swap(&mut self.transient_cur, &mut self.transient_next);
        self.draw_transients(now + 1, cfg);

        self.credit_losses_now.clear();
        while matches!(self.pending_credit.last(), Some(e) if e.at() <= now) {
            if let Some(FaultEvent::CreditLoss { node, dir, vc, .. }) = self.pending_credit.pop() {
                self.credit_losses_now
                    .push((node.index(), dir, vc as usize));
            }
        }

        self.control_armed.retain(|&(c, _)| c + 1 >= now);
        while matches!(self.pending_control.last(), Some(e) if e.at() <= now + 1) {
            if let Some(FaultEvent::ControlDrop { at, node }) = self.pending_control.pop() {
                self.control_armed.push((at.max(now), node.index()));
            }
        }

        let mut due = Vec::new();
        while matches!(self.pending_topology.last(), Some(e) if e.at() <= now + 1) {
            due.push(self.pending_topology.pop().expect("checked non-empty"));
        }
        due
    }

    /// Draws the background transient faults for `cycle` and folds in the
    /// scheduled ones. The PRNG is consulted once per directed link in a
    /// fixed order regardless of topology state, so the stream does not
    /// depend on when permanent faults land.
    fn draw_transients(&mut self, cycle: Cycle, cfg: &NocConfig) {
        self.transient_next.iter_mut().for_each(|b| *b = false);
        if self.plan.transient_link_ppb > 0 {
            let p = self.plan.transient_link_ppb as f64 * 1e-9;
            for node in 0..self.nodes {
                for dir in Direction::ALL {
                    if neighbor(cfg, NodeId::new(node as u16), dir).is_none() {
                        continue;
                    }
                    if self.rng.gen_bool(p) {
                        self.set_transient_next(cfg, node, dir);
                    }
                }
            }
        }
        while matches!(self.pending_transient.last(), Some(e) if e.at() <= cycle) {
            if let Some(FaultEvent::TransientLink { node, dir, .. }) = self.pending_transient.pop()
            {
                if neighbor(cfg, node, dir).is_some() {
                    self.set_transient_next(cfg, node.index(), dir);
                }
            }
        }
    }

    /// Marks both directions of a physical channel transiently faulted
    /// for the prepared cycle.
    fn set_transient_next(&mut self, cfg: &NocConfig, node: usize, dir: Direction) {
        let idx = node * 4 + dir as usize;
        if self.transient_next[idx] {
            return;
        }
        self.transient_next[idx] = true;
        self.stats.transient_link_faults += 1;
        if let Some(nb) = neighbor(cfg, NodeId::new(node as u16), dir) {
            let back = nb.index() * 4 + dir.opposite() as usize;
            if !self.transient_next[back] {
                self.transient_next[back] = true;
                self.stats.transient_link_faults += 1;
            }
        }
    }

    pub(crate) fn router_dead(&self, node: usize) -> bool {
        self.dead_router[node]
    }

    /// Whether the directed link may carry a flit during the cycle being
    /// executed.
    pub(crate) fn link_usable_now(&self, cfg: &NocConfig, node: usize, dir: Direction) -> bool {
        self.link_usable(cfg, node, dir, &self.transient_cur)
    }

    /// Whether the directed link may carry a flit during the next cycle
    /// (the allocation target).
    pub(crate) fn link_usable_next(&self, cfg: &NocConfig, node: usize, dir: Direction) -> bool {
        self.link_usable(cfg, node, dir, &self.transient_next)
    }

    fn link_usable(
        &self,
        cfg: &NocConfig,
        node: usize,
        dir: Direction,
        transient: &[bool],
    ) -> bool {
        !transient[node * 4 + dir as usize] && self.link_usable_permanent(cfg, node, dir)
    }

    /// Whether the directed link exists and neither it nor its endpoint
    /// routers are permanently dead (ignores transient faults; used for
    /// chain hops beyond the prepared horizon and for control routing).
    pub(crate) fn link_usable_permanent(
        &self,
        cfg: &NocConfig,
        node: usize,
        dir: Direction,
    ) -> bool {
        let idx = node * 4 + dir as usize;
        if self.dead_link[idx] || self.dead_router[node] {
            return false;
        }
        match neighbor(cfg, NodeId::new(node as u16), dir) {
            Some(nb) => !self.dead_router[nb.index()],
            None => false,
        }
    }

    /// Marks both directions of a physical channel permanently dead.
    pub(crate) fn mark_link_dead(&mut self, cfg: &NocConfig, node: NodeId, dir: Direction) {
        mark_channel_dead(&mut self.dead_link, cfg, node, dir);
        self.stats.permanent_link_faults += 1;
        self.degraded = true;
    }

    /// Marks a router hard-failed (its links die implicitly via
    /// [`FaultState::link_usable_now`] checks and the route rebuild).
    pub(crate) fn mark_router_dead(&mut self, node: NodeId) {
        self.dead_router[node.index()] = true;
        self.stats.router_faults += 1;
        self.degraded = true;
    }

    /// Whether permanent damage has switched routing to the BFS tables.
    pub(crate) fn degraded(&self) -> bool {
        self.degraded
    }

    /// Records a destroyed credit so the audit can balance the books.
    pub(crate) fn note_lost_credit(&mut self, node: usize, dir: Direction, vc: usize) {
        self.lost_credits[(node * 4 + dir as usize) * self.vcs + vc] += 1;
        self.stats.credits_lost += 1;
    }

    pub(crate) fn lost_credits(&self, node: usize, dir: Direction, vc: usize) -> u64 {
        self.lost_credits[(node * 4 + dir as usize) * self.vcs + vc]
    }

    /// Whether the control network at `node` is corrupting packets
    /// around the current cycle (armed [`FaultEvent::ControlDrop`]).
    pub(crate) fn control_fault_at(&self, node: usize) -> bool {
        self.control_armed.iter().any(|&(_, n)| n == node)
    }

    /// Rebuilds the west-first next-hop tables over the surviving
    /// topology (see [`DetourTables::build`], which holds the algorithm
    /// and is the same code path the static analyzer verifies).
    pub(crate) fn rebuild_routes(&mut self, cfg: &NocConfig) {
        self.detour = Some(DetourTables::build(cfg, &self.dead_link, &self.dead_router));
    }

    /// The output port toward `dest` at `here` on the degraded topology,
    /// or `None` when no west-first route exists from this state.
    /// `west_ok` is whether every hop the packet has taken so far was
    /// west (true at injection; downstream it is exactly "the flit
    /// entered through the east port").
    ///
    /// # Panics
    ///
    /// Panics if called before [`FaultState::rebuild_routes`].
    pub(crate) fn next_hop(&self, here: NodeId, dest: NodeId, west_ok: bool) -> Option<Port> {
        self.detour
            .as_ref()
            .expect("detour route tables not built before first use")
            .next_hop(here, dest, west_ok)
    }

    /// Records a pre-allocated chain cancelled because a link on it was
    /// faulted at execution time (the PRA degradation path).
    pub(crate) fn note_faulted_chain_cancel(&mut self) {
        self.stats.faulted_chain_cancels += 1;
    }

    /// Records an allocation cycle in which a flit was ready but its
    /// link was faulted (the latency cost of graceful degradation).
    pub(crate) fn note_blocked_by_fault(&mut self) {
        self.stats.blocked_by_fault_cycles += 1;
    }

    /// Records a packet purged because a fault made it undeliverable,
    /// with every flit it carried.
    pub(crate) fn note_purged_packet(&mut self, flits: u64) {
        self.stats.lost_packets += 1;
        self.stats.lost_flits += flits;
    }

    /// Records a control packet dropped because of a fault.
    pub(crate) fn note_control_drop(&mut self) {
        self.stats.control_drops += 1;
    }

    /// Records an injection refused because an endpoint was dead or
    /// unreachable.
    pub(crate) fn note_injection_refused(&mut self) {
        self.stats.injections_refused += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::route_port;

    fn cfg() -> NocConfig {
        NocConfig::paper()
    }

    #[test]
    fn trivial_plan_draws_nothing() {
        let mut f = FaultState::new(FaultPlan::new(1), &cfg());
        for now in 1..100 {
            assert!(f.begin_cycle(now, &cfg()).is_empty());
        }
        assert_eq!(f.stats, FaultStats::default());
        assert!(!f.degraded());
    }

    #[test]
    fn transient_draws_are_deterministic() {
        let plan = FaultPlan::new(7).transient_rate_ppb(5_000_000);
        let run = |plan: FaultPlan| {
            let mut f = FaultState::new(plan, &cfg());
            let mut seen = Vec::new();
            for now in 1..2_000u64 {
                f.begin_cycle(now, &cfg());
                for node in 0..64 {
                    for dir in Direction::ALL {
                        if f.transient_cur[node * 4 + dir as usize] {
                            seen.push((now, node, dir as usize));
                        }
                    }
                }
            }
            seen
        };
        let a = run(plan.clone());
        let b = run(plan);
        assert_eq!(a, b);
        assert!(
            !a.is_empty(),
            "5e-3 per link per cycle must fire in 2k cycles"
        );
    }

    #[test]
    fn scheduled_transient_faults_both_directions_for_one_cycle() {
        let plan = FaultPlan::new(1).with_event(FaultEvent::TransientLink {
            at: 10,
            node: NodeId::new(0),
            dir: Direction::East,
        });
        let mut f = FaultState::new(plan, &cfg());
        let c = cfg();
        for now in 1..20 {
            f.begin_cycle(now, &c);
            let faulted = !f.link_usable_now(&c, 0, Direction::East);
            let back_faulted = !f.link_usable_now(&c, 1, Direction::West);
            assert_eq!(faulted, now == 10, "cycle {now}");
            assert_eq!(back_faulted, now == 10, "cycle {now}");
        }
        assert_eq!(f.stats.transient_link_faults, 2);
    }

    #[test]
    fn bfs_tables_reproduce_xy_when_fault_free() {
        let c = cfg();
        let mut f = FaultState::new(FaultPlan::new(1), &c);
        f.rebuild_routes(&c);
        for here in 0..64u16 {
            for dest in 0..64u16 {
                let xy = route_port(&c, NodeId::new(here), NodeId::new(dest));
                let bfs = f
                    .next_hop(NodeId::new(here), NodeId::new(dest), true)
                    .unwrap();
                assert_eq!(xy, bfs, "{here} -> {dest}");
            }
        }
    }

    #[test]
    fn bfs_detours_around_a_dead_link() {
        let c = cfg();
        let mut f = FaultState::new(FaultPlan::new(1), &c);
        // Kill the link 0 -> 1 (east on the top row).
        f.mark_link_dead(&c, NodeId::new(0), Direction::East);
        f.rebuild_routes(&c);
        assert!(!f.link_usable_now(&c, 0, Direction::East));
        assert!(!f.link_usable_now(&c, 1, Direction::West));
        // 0 -> 1 must now detour; a valid shortest detour has 3 hops.
        let mut here = NodeId::new(0);
        let mut cw = true;
        let mut hops = 0;
        loop {
            match f.next_hop(here, NodeId::new(1), cw).unwrap() {
                Port::Local => break,
                Port::Dir(d) => {
                    assert!(
                        !(here.index() == 0 && d == Direction::East),
                        "route uses the dead link"
                    );
                    cw = cw && d == Direction::West;
                    here = neighbor(&c, here, d).unwrap();
                    hops += 1;
                }
            }
            assert!(hops <= 10, "route does not terminate");
        }
        assert_eq!(hops, 3, "shortest detour around one dead link");
        // Unaffected pairs keep their XY route.
        assert_eq!(
            f.next_hop(NodeId::new(8), NodeId::new(10), true).unwrap(),
            route_port(&c, NodeId::new(8), NodeId::new(10))
        );
    }

    #[test]
    fn dead_router_is_unreachable_and_routes_avoid_it() {
        let c = cfg();
        let mut f = FaultState::new(FaultPlan::new(1), &c);
        f.mark_router_dead(NodeId::new(9)); // (1,1)
        f.rebuild_routes(&c);
        assert!(f.next_hop(NodeId::new(0), NodeId::new(9), true).is_none());
        assert!(f.next_hop(NodeId::new(9), NodeId::new(0), true).is_none());
        // Every routed pair avoids node 9 and terminates. West-first
        // confines all west travel to a prefix inside the source row, so
        // a dead router also orphans the pairs whose mandatory west
        // prefix it blocks: src in its row east of it, dest in a column
        // at or west of it. For node 9 that is 6 sources x 15
        // destinations = 90 of the 64*63 ordered pairs (~2.2%); those
        // behave exactly like a dead destination (refused at injection).
        let mut orphaned = 0u32;
        for src in 0..64u16 {
            for dest in 0..64u16 {
                if src == 9 || dest == 9 || src == dest {
                    continue;
                }
                if f.next_hop(NodeId::new(src), NodeId::new(dest), true)
                    .is_none()
                {
                    assert_eq!(src / 8, 1, "{src}->{dest}: orphan src off the dead row");
                    assert!(src % 8 >= 2, "{src}->{dest}: orphan src not east of 9");
                    assert!(dest % 8 <= 1, "{src}->{dest}: orphan dest not west of 9");
                    orphaned += 1;
                    continue;
                }
                let mut here = NodeId::new(src);
                let mut cw = true;
                let mut hops = 0;
                loop {
                    match f.next_hop(here, NodeId::new(dest), cw).expect("routed") {
                        Port::Local => break,
                        Port::Dir(d) => {
                            cw = cw && d == Direction::West;
                            here = neighbor(&c, here, d).unwrap();
                            assert_ne!(here.index(), 9, "{src}->{dest} crosses dead router");
                            hops += 1;
                        }
                    }
                    assert!(hops <= 64, "{src}->{dest} does not terminate");
                }
            }
        }
        assert_eq!(orphaned, 90, "west-first orphan set for a dead (1,1)");
    }

    #[test]
    fn credit_and_control_events_arm_on_time() {
        let plan = FaultPlan::new(1)
            .with_event(FaultEvent::CreditLoss {
                at: 5,
                node: NodeId::new(3),
                dir: Direction::East,
                vc: 2,
            })
            .with_event(FaultEvent::ControlDrop {
                at: 8,
                node: NodeId::new(4),
            });
        let c = cfg();
        let mut f = FaultState::new(plan, &c);
        for now in 1..20u64 {
            f.begin_cycle(now, &c);
            if now == 5 {
                assert_eq!(f.credit_losses_now, vec![(3, Direction::East, 2)]);
            } else {
                assert!(f.credit_losses_now.is_empty(), "cycle {now}");
            }
            let armed = f.control_fault_at(4);
            assert_eq!(armed, (7..=9).contains(&now), "cycle {now}: {armed}");
        }
    }

    #[test]
    fn topology_events_pop_one_cycle_ahead() {
        let plan = FaultPlan::new(1).with_event(FaultEvent::RouterDown {
            at: 10,
            node: NodeId::new(5),
        });
        let c = cfg();
        let mut f = FaultState::new(plan, &c);
        for now in 1..9 {
            assert!(f.begin_cycle(now, &c).is_empty(), "cycle {now}");
        }
        let due = f.begin_cycle(9, &c);
        assert_eq!(
            due,
            vec![FaultEvent::RouterDown {
                at: 10,
                node: NodeId::new(5)
            }]
        );
        assert!(f.begin_cycle(10, &c).is_empty());
    }

    #[test]
    fn lost_credit_accounting() {
        let c = cfg();
        let mut f = FaultState::new(FaultPlan::new(1), &c);
        f.note_lost_credit(3, Direction::East, 2);
        f.note_lost_credit(3, Direction::East, 2);
        assert_eq!(f.lost_credits(3, Direction::East, 2), 2);
        assert_eq!(f.lost_credits(3, Direction::West, 2), 0);
        assert_eq!(f.stats.credits_lost, 2);
    }
}

mod digest_impls {
    use super::{FaultEvent, FaultState};
    use crate::digest::{StateDigest, StateHasher};

    impl StateDigest for FaultEvent {
        fn digest_state(&self, h: &mut StateHasher) {
            match *self {
                FaultEvent::TransientLink { at, node, dir } => {
                    h.write_u8(0);
                    h.write_u64(at);
                    h.write_usize(node.index());
                    h.write_usize(dir as usize);
                }
                FaultEvent::PermanentLink { at, node, dir } => {
                    h.write_u8(1);
                    h.write_u64(at);
                    h.write_usize(node.index());
                    h.write_usize(dir as usize);
                }
                FaultEvent::RouterDown { at, node } => {
                    h.write_u8(2);
                    h.write_u64(at);
                    h.write_usize(node.index());
                }
                FaultEvent::CreditLoss { at, node, dir, vc } => {
                    h.write_u8(3);
                    h.write_u64(at);
                    h.write_usize(node.index());
                    h.write_usize(dir as usize);
                    h.write_u8(vc);
                }
                FaultEvent::ControlDrop { at, node } => {
                    h.write_u8(4);
                    h.write_u64(at);
                    h.write_usize(node.index());
                }
            }
        }
    }

    impl StateDigest for FaultState {
        fn digest_state(&self, h: &mut StateHasher) {
            let (state, inc) = self.rng.state_words();
            h.write_u64(state);
            h.write_u64(inc);
            for mask in [
                &self.dead_link,
                &self.dead_router,
                &self.transient_cur,
                &self.transient_next,
            ] {
                h.write_usize(mask.len());
                for &bit in mask.iter() {
                    h.write_bool(bit);
                }
            }
            for pending in [
                &self.pending_topology,
                &self.pending_transient,
                &self.pending_credit,
                &self.pending_control,
            ] {
                h.write_usize(pending.len());
                for ev in pending.iter() {
                    ev.digest_state(h);
                }
            }
            h.write_usize(self.credit_losses_now.len());
            for &(node, dir, vc) in &self.credit_losses_now {
                h.write_usize(node);
                h.write_usize(dir as usize);
                h.write_usize(vc);
            }
            h.write_usize(self.control_armed.len());
            for &(cycle, node) in &self.control_armed {
                h.write_u64(cycle);
                h.write_usize(node);
            }
            for &lost in &self.lost_credits {
                h.write_u64(lost);
            }
            h.write_bool(self.degraded);
        }
    }
}
