//! The ideal (zero-router-delay) network.
//!
//! The paper's upper bound: "a hypothetical network-on-chip with router
//! delay of zero cycles. For the ideal network-on-chip, only wire delays
//! are considered. A header flit can pass over up to two hops in a single
//! cycle if the required crossbars and links are free. Body flits follow
//! the header flit in subsequent cycles. While router delay is zero,
//! packets may get blocked in a router due to contention."
//!
//! Accordingly this model keeps buffering (per input port and class, like
//! the realistic routers — per-port buffering preserves XY's
//! channel-dependency acyclicity), link contention (one flit per link per
//! cycle) and serialization — but spends **no** cycles on allocation:
//! every flit moves toward its destination every cycle, up to
//! [`NocConfig::max_hops_per_cycle`] hops, oldest packet first.

use crate::buffer::VcBuffer;
use crate::cancel::CancelToken;
use crate::config::NocConfig;
use crate::digest::{StateDigest, StateHasher};
use crate::flit::{Flit, Packet};
use crate::network::{Delivered, DeliveryLedger, Network, Reassembly, SourceQueues};
use crate::routing::{neighbor, route_port};
use crate::stats::NetStats;
use crate::types::{Cycle, Direction, NodeId, Port};

/// The ideal zero-router-latency network.
///
/// # Examples
///
/// ```
/// use noc::config::NocConfig;
/// use noc::flit::Packet;
/// use noc::ideal::IdealNetwork;
/// use noc::network::Network;
/// use noc::types::{MessageClass, NodeId, PacketId};
///
/// let mut net = IdealNetwork::new(NocConfig::paper());
/// net.inject(Packet::new(
///     PacketId(1),
///     NodeId::new(0),
///     NodeId::new(63),
///     MessageClass::Request,
///     1,
/// ));
/// let d = net.run_to_drain(100);
/// // 14 hops at 2 hops/cycle: far faster than the mesh's 2 cycles/hop.
/// assert!(d[0].delivered < 12);
/// ```
#[derive(Debug)]
pub struct IdealNetwork {
    cfg: NocConfig,
    now: Cycle,
    /// `buffers[node][in_port][class]`.
    buffers: Vec<Vec<Vec<VcBuffer>>>,
    sources: Vec<SourceQueues>,
    reasm: Vec<Reassembly>,
    ledger: DeliveryLedger,
    /// Flits that finished their wire traversal this cycle, buffered at the
    /// start of the next (end-of-cycle latching): `(node, in_port, class,
    /// flit)`.
    arrivals: Vec<(usize, usize, usize, Flit)>,
    stats: NetStats,
    cancel: CancelToken,
}

impl IdealNetwork {
    /// Builds an ideal network for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`NocConfig::validate`].
    pub fn new(cfg: NocConfig) -> Self {
        cfg.validate().expect("invalid NoC configuration");
        let n = cfg.nodes();
        IdealNetwork {
            buffers: (0..n)
                .map(|_| {
                    (0..Port::COUNT)
                        .map(|_| {
                            (0..cfg.vcs_per_port)
                                .map(|_| VcBuffer::new(cfg.vc_depth as usize))
                                .collect()
                        })
                        .collect()
                })
                .collect(),
            sources: (0..n).map(|_| SourceQueues::new()).collect(),
            reasm: (0..n).map(|_| Reassembly::new()).collect(),
            ledger: DeliveryLedger::new(),
            arrivals: Vec::new(),
            stats: NetStats::new(),
            cancel: CancelToken::new(),
            cfg,
            now: 0,
        }
    }

    fn deliver_arrivals(&mut self) {
        let arrivals = std::mem::take(&mut self.arrivals);
        for (node, port, class, flit) in arrivals {
            if flit.dest.index() == node {
                if let Some(head) = self.reasm[node].accept(flit) {
                    let hops = self
                        .cfg
                        .coord(head.src)
                        .manhattan(self.cfg.coord(head.dest));
                    self.ledger.complete(head, self.now, hops, &mut self.stats);
                }
            } else {
                self.buffers[node][port][class]
                    .push(flit)
                    .unwrap_or_else(|e| panic!("ideal arrival invariant violated: {e}"));
            }
        }
    }

    fn inject_from_sources(&mut self) {
        for node in 0..self.cfg.nodes() {
            for class in 0..self.cfg.vcs_per_port {
                let Some(front) = self.sources[node].queues[class].front() else {
                    continue;
                };
                {
                    let buf = &self.buffers[node][Port::Local.index()][class];
                    if buf.free() == 0 || !can_follow(buf, front) {
                        continue;
                    }
                }
                let mut flit = *front;
                flit.injected = self.now;
                self.sources[node].queues[class].pop_front();
                self.buffers[node][Port::Local.index()][class]
                    .push(flit)
                    .expect("space and contiguity checked");
            }
        }
    }

    /// Moves every front flit up to `max_hops_per_cycle` hops, oldest
    /// packet first, subject to link availability and buffer space.
    fn advance_flits(&mut self) {
        // Candidate fronts, sorted by age for deterministic oldest-first
        // service (ideal arbitration).
        let mut candidates: Vec<(Cycle, u64, u8, usize, usize, usize)> = Vec::new();
        for node in 0..self.cfg.nodes() {
            for port in 0..Port::COUNT {
                for class in 0..self.cfg.vcs_per_port {
                    if let Some(f) = self.buffers[node][port][class].front() {
                        candidates.push((f.created, f.packet.0, f.seq, node, port, class));
                    }
                }
            }
        }
        candidates.sort_unstable();

        // One flit per link per cycle; links are identified by
        // (node, direction). One buffer read per (node, class) per cycle is
        // implicit (only the front flit is considered).
        let mut link_busy = vec![false; self.cfg.nodes() * 4];
        let busy_idx = |node: usize, d: Direction| node * 4 + d as usize;
        // Arrivals staged *this* cycle, per (node, in_port, class): count
        // and the last staged flit, so same-cycle landings respect
        // capacity and packet contiguity.
        let mut staged: std::collections::BTreeMap<(usize, usize, usize), (usize, Flit)> =
            std::collections::BTreeMap::new();

        for (_, _, _, node, port, class) in candidates {
            let Some(&flit) = self.buffers[node][port][class].front() else {
                continue;
            };
            let here = NodeId::new(node as u16);
            if flit.dest == here {
                // Loopback (e.g. a core accessing its own LLC slice):
                // eject straight into the local NI.
                let flit = self.buffers[node][port][class]
                    .pop()
                    .expect("front checked");
                self.stats.local_grants += 1;
                self.arrivals.push((node, port, class, flit));
                continue;
            }

            // Plan up to max_hops_per_cycle hops along the XY route,
            // stopping early at busy links, occupied pass-through routers,
            // or the destination.
            let mut path: Vec<(usize, Direction)> = Vec::new();
            let mut at = here;
            while path.len() < usize::from(self.cfg.max_hops_per_cycle) {
                let port = route_port(&self.cfg, at, flit.dest);
                let Some(dir) = port.direction() else {
                    break; // at the destination
                };
                if link_busy[busy_idx(at.index(), dir)] {
                    break;
                }
                if at != here {
                    // Passing through `at`: the buffer this flit would
                    // otherwise land in must be empty, or it would
                    // overtake queued traffic of its own class.
                    let in_port = incoming_port(&path);
                    if !self.buffers[at.index()][in_port][class].is_empty() {
                        break;
                    }
                }
                let next = neighbor(&self.cfg, at, dir).expect("route stays on mesh");
                path.push((at.index(), dir));
                at = next;
                if next == flit.dest {
                    break;
                }
            }
            // Shorten until the landing point can accept the flit,
            // accounting for arrivals already staged there this cycle.
            while let Some(&(n0, d0)) = path.last() {
                let landing = neighbor(&self.cfg, NodeId::new(n0 as u16), d0).expect("on mesh");
                if landing == flit.dest {
                    break;
                }
                let in_port = Port::Dir(d0.opposite()).index();
                let buf = &self.buffers[landing.index()][in_port][class];
                let key = (landing.index(), in_port, class);
                let (staged_n, follow_ok) = match staged.get(&key) {
                    Some(&(n, last)) => (
                        n,
                        last.is_tail() || (last.packet == flit.packet && flit.seq == last.seq + 1),
                    ),
                    None => (0, can_follow(buf, &flit)),
                };
                if buf.free() > staged_n && follow_ok {
                    break;
                }
                path.pop();
            }
            let Some(&(n_last, d_last)) = path.last() else {
                continue;
            };
            let landing = neighbor(&self.cfg, NodeId::new(n_last as u16), d_last).expect("on mesh");
            let land_port = Port::Dir(d_last.opposite()).index();
            // Commit: claim links, move the flit.
            for &(n, d) in &path {
                link_busy[busy_idx(n, d)] = true;
                self.stats.link_traversals += 1;
            }
            let flit = self.buffers[node][port][class]
                .pop()
                .expect("front checked above");
            self.stats.local_grants += 1;
            if landing != flit.dest {
                staged
                    .entry((landing.index(), land_port, class))
                    .and_modify(|(n, last)| {
                        *n += 1;
                        *last = flit;
                    })
                    .or_insert((1, flit));
            }
            self.arrivals
                .push((landing.index(), land_port, class, flit));
        }
    }
}

/// The input-port index a flit arriving over the last link of `path`
/// lands on.
fn incoming_port(path: &[(usize, Direction)]) -> usize {
    let (_, d) = *path.last().expect("nonempty path");
    Port::Dir(d.opposite()).index()
}

/// Whether `flit` may be enqueued behind the current back of `buf` without
/// interleaving packets.
fn can_follow(buf: &VcBuffer, flit: &Flit) -> bool {
    match buf.back() {
        None => true,
        Some(last) if last.is_tail() => true,
        Some(last) => last.packet == flit.packet && flit.seq == last.seq + 1,
    }
}

impl Network for IdealNetwork {
    fn config(&self) -> &NocConfig {
        &self.cfg
    }

    fn now(&self) -> Cycle {
        self.now
    }

    fn inject(&mut self, packet: Packet) {
        let mut packet = packet;
        if packet.created == 0 {
            packet.created = self.now;
        }
        self.stats.record_injected(packet.class);
        self.ledger.register(packet);
        self.sources[packet.src.index()].enqueue_packet(&packet);
    }

    fn step(&mut self) {
        self.now += 1;
        self.stats.cycles += 1;
        if self.cancel.is_cancelled() {
            return; // the clock advanced; bounded loops still terminate
        }
        self.deliver_arrivals();
        self.inject_from_sources();
        self.advance_flits();
    }

    fn drain_delivered(&mut self) -> Vec<Delivered> {
        self.ledger.drain()
    }

    fn in_flight(&self) -> usize {
        self.ledger.in_flight()
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn install_cancel(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    fn state_digest(&self) -> Option<u64> {
        let mut h = StateHasher::new();
        self.digest_state(&mut h);
        Some(h.finish())
    }
}

impl StateDigest for IdealNetwork {
    fn digest_state(&self, h: &mut StateHasher) {
        h.write_u64(self.now);
        for node in &self.buffers {
            for port in node {
                for vc in port {
                    vc.digest_state(h);
                }
            }
        }
        for src in &self.sources {
            src.digest_state(h);
        }
        for reasm in &self.reasm {
            reasm.digest_state(h);
        }
        self.ledger.digest_state(h);
        h.write_usize(self.arrivals.len());
        for &(node, port, class, flit) in &self.arrivals {
            h.write_usize(node);
            h.write_usize(port);
            h.write_usize(class);
            flit.digest_state(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{MessageClass, PacketId};

    fn net() -> IdealNetwork {
        IdealNetwork::new(NocConfig::paper())
    }

    fn pkt(id: u64, src: u16, dest: u16, class: MessageClass, len: u8) -> Packet {
        Packet::new(
            PacketId(id),
            NodeId::new(src),
            NodeId::new(dest),
            class,
            len,
        )
    }

    #[test]
    fn zero_load_two_hops_per_cycle() {
        let mut lat = Vec::new();
        for dest in [1u16, 2, 4, 6] {
            let mut n = net();
            n.inject(pkt(1, 0, dest, MessageClass::Request, 1));
            let d = n.run_to_drain(100);
            lat.push(d[0].delivered - d[0].packet.created);
        }
        // Injection (1 cycle) + ceil(hops / 2) wire cycles.
        assert_eq!(lat, vec![2, 2, 3, 4]);
    }

    #[test]
    fn much_faster_than_mesh_on_long_paths() {
        let mut n = net();
        n.inject(pkt(1, 0, 63, MessageClass::Request, 1));
        let d = n.run_to_drain(100);
        let lat = d[0].delivered - d[0].packet.created;
        // 14 hops at 2 hops/cycle ≈ 8 cycles; the mesh takes 31.
        assert!(lat <= 9, "ideal latency {lat} too high");
    }

    #[test]
    fn multi_flit_serialization_still_applies() {
        let mut a = net();
        a.inject(pkt(1, 0, 7, MessageClass::Response, 1));
        let da = a.run_to_drain(100);
        let mut b = net();
        b.inject(pkt(1, 0, 7, MessageClass::Response, 5));
        let db = b.run_to_drain(100);
        let one = da[0].delivered - da[0].packet.created;
        let five = db[0].delivered - db[0].packet.created;
        assert_eq!(five - one, 4, "four extra serialization cycles");
    }

    #[test]
    fn all_random_packets_delivered() {
        use nistats::rng::Rng;
        let mut rng = Rng::new(11);
        let mut n = net();
        let mut sent = 0u64;
        for cycle in 0..2_000u64 {
            if cycle < 1_000 && rng.gen_bool(0.4) {
                let src = rng.gen_range_u16(0, 64);
                let mut dest = rng.gen_range_u16(0, 64);
                if dest == src {
                    dest = (dest + 1) % 64;
                }
                let class = match rng.gen_range_u8(0, 3) {
                    0 => MessageClass::Request,
                    1 => MessageClass::Coherence,
                    _ => MessageClass::Response,
                };
                let len = if class == MessageClass::Response {
                    5
                } else {
                    1
                };
                sent += 1;
                n.inject(pkt(sent, src, dest, class, len));
            }
            n.step();
        }
        let mut delivered = n.drain_delivered().len() as u64;
        delivered += n.run_to_drain(10_000).len() as u64;
        assert_eq!(delivered, sent);
    }

    #[test]
    fn contention_is_still_modeled() {
        // Many packets to one destination must serialize on the final link.
        let mut n = net();
        for i in 0..16u64 {
            n.inject(pkt(i + 1, (i % 8) as u16 * 8, 63, MessageClass::Request, 1));
        }
        let d = n.run_to_drain(10_000);
        assert_eq!(d.len(), 16);
        let last = d.iter().map(|x| x.delivered).max().unwrap();
        assert!(
            last >= 8,
            "16 single-flit packets over shared links take time"
        );
    }

    #[test]
    fn ideal_beats_mesh_on_average_latency() {
        use crate::mesh::MeshNetwork;
        use nistats::rng::Rng;
        let mut lat = Vec::new();
        for ideal in [false, true] {
            let mut rng = Rng::new(3);
            let mut n: Box<dyn Network> = if ideal {
                Box::new(IdealNetwork::new(NocConfig::paper()))
            } else {
                Box::new(MeshNetwork::new(NocConfig::paper()))
            };
            let mut sent = 0;
            for cycle in 0..3_000u64 {
                if cycle < 2_000 && rng.gen_bool(0.2) {
                    let src = rng.gen_range_u16(0, 64);
                    let dest = (src + rng.gen_range_u16(1, 64)) % 64;
                    sent += 1;
                    let class = if sent % 2 == 0 {
                        MessageClass::Request
                    } else {
                        MessageClass::Response
                    };
                    let len = if class == MessageClass::Response {
                        5
                    } else {
                        1
                    };
                    n.inject(pkt(sent, src, dest, class, len));
                }
                n.step();
                n.drain_delivered();
            }
            lat.push(n.stats().avg_latency());
        }
        assert!(
            lat[1] < lat[0] * 0.55,
            "ideal ({}) should be far below mesh ({})",
            lat[1],
            lat[0]
        );
    }
}
