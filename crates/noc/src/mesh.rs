//! The mesh data network with a 1-stage speculative router pipeline.
//!
//! This is both the paper's **Mesh** baseline and the datapath of
//! **Mesh+PRA** (Figure 4): every router carries the PRA extensions —
//! per-output-port timeslot [`OutputSchedule`]s, a per-input-port latch,
//! bypass paths, reserved credits and the multi-flit guard — but they stay
//! inert until a control plane (the `pra` crate) installs reservations
//! through [`MeshNetwork::install_hop`].
//!
//! # Pipeline timing
//!
//! A flit latched at a router at the end of cycle *t* performs route
//! computation, VC allocation and speculative switch allocation during
//! cycle *t+1* and traverses the crossbar and link during *t+2*, arriving
//! at the next router at the end of *t+2*: two cycles per hop at zero
//! load, exactly Table I's mesh. With reservations installed, a flit
//! instead moves up to [`NocConfig::max_hops_per_cycle`] hops in a single
//! cycle through preset crossbars, with no allocation cycles at all.

use crate::arbiter::RoundRobin;
use crate::buffer::InputUnit;
use crate::cancel::CancelToken;
use crate::config::NocConfig;
use crate::credit::{MultiFlitGuard, OutVc};
use crate::digest::{StateDigest, StateHasher};
use crate::faults::{FaultEvent, FaultState, FaultStats};
use crate::flit::{Flit, Packet};
use crate::network::{Delivered, DeliveryLedger, Network, Reassembly, SourceQueues};
use crate::reliable::{
    escalation_action, EjectNote, EscalationAction, RelOrder, ReliableLayer, ReliableStats,
};
use crate::reserve::{FlitSource, Landing, OutputSchedule, Reservation};
use crate::routing::{neighbor, route_port, Route};
use crate::stats::NetStats;
use crate::types::{Cycle, Direction, MessageClass, NodeId, PacketId, Port};
use crate::watchdog::AuditReport;

#[cfg(feature = "obs")]
use niobs::Event;

use std::collections::BTreeMap;

/// West-first turn-model state of a flit sitting at input port `in_port`:
/// `true` iff every hop it has taken so far went west, so a further west
/// hop is still legal. A flit at the local port has taken no hops; a flit
/// that arrived through the east-facing port was travelling west, and by
/// induction (west hops are only ever taken from all-west states) all its
/// earlier hops were west too. Any other input port means a non-west hop
/// happened and west is forbidden from here on.
fn west_ok_from(in_port: Port) -> bool {
    in_port == Port::Local || in_port == Port::Dir(Direction::East)
}

/// One mesh router's state.
///
/// Per-(port, VC) state is stored struct-of-arrays style in flat vectors
/// indexed `port * vcs + vc` (see [`Router::pv`]): one contiguous slab
/// per kind of state instead of a `Vec<Vec<_>>` of heap objects, so the
/// hot loop walks cache lines with plain index arithmetic.
#[derive(Debug)]
struct Router {
    /// Input units, indexed by [`Port::index`].
    inputs: Vec<InputUnit>,
    /// Downstream credit/ownership state, flattened `port * vcs + vc`.
    out_vcs: Vec<OutVc>,
    /// Multi-flit interleaving guards, flattened `port * vcs + vc`.
    guards: Vec<MultiFlitGuard>,
    /// PRA timeslot tables, one per output port.
    schedules: Vec<OutputSchedule>,
    /// Which packet each input VC is currently streaming to which output
    /// port, flattened `in_port * vcs + vc`.
    active_out: Vec<Option<ActiveStream>>,
    /// Output ports locked to a multi-flit packet until its tail passes
    /// (no flit-level interleaving on a link mid-packet — the blocking
    /// behaviour the paper's LSD unit exploits).
    port_lock: Vec<Option<PacketId>>,
    /// Per-input-port VC selection arbiters.
    sa_in: Vec<RoundRobin>,
    /// Per-output-port input selection arbiters.
    sa_out: Vec<RoundRobin>,
    /// VCs per port, the stride of the flattened per-(port, VC) arrays.
    vcs: usize,
    /// Number of `Some` entries in `active_out` — derived state (kept in
    /// sync by [`Router::set_active`], excluded from the digest). Zero
    /// proves no stream holds an output port, which lets the LSD stall
    /// scan skip the router without reading any buffer fronts.
    active_count: u16,
}

impl Router {
    fn new(cfg: &NocConfig) -> Self {
        let vcs = cfg.vcs_per_port;
        Router {
            inputs: (0..Port::COUNT)
                .map(|_| InputUnit::new(vcs, cfg.vc_depth as usize))
                .collect(),
            out_vcs: (0..Port::COUNT * vcs)
                .map(|_| OutVc::new(cfg.vc_depth))
                .collect(),
            guards: (0..Port::COUNT * vcs)
                .map(|_| MultiFlitGuard::new())
                .collect(),
            schedules: (0..Port::COUNT).map(|_| OutputSchedule::new()).collect(),
            active_out: vec![None; Port::COUNT * vcs],
            port_lock: vec![None; Port::COUNT],
            sa_in: (0..Port::COUNT).map(|_| RoundRobin::new(vcs)).collect(),
            sa_out: (0..Port::COUNT)
                .map(|_| RoundRobin::new(Port::COUNT))
                .collect(),
            vcs,
            active_count: 0,
        }
    }

    /// Flat index of `(port, vc)` into the per-(port, VC) slabs.
    #[inline(always)]
    fn pv(&self, port: usize, vc: usize) -> usize {
        port * self.vcs + vc
    }

    #[inline(always)]
    fn out_vc(&self, port: usize, vc: usize) -> &OutVc {
        &self.out_vcs[self.pv(port, vc)]
    }

    #[inline(always)]
    fn out_vc_mut(&mut self, port: usize, vc: usize) -> &mut OutVc {
        let i = self.pv(port, vc);
        &mut self.out_vcs[i]
    }

    #[inline(always)]
    fn guard(&self, port: usize, vc: usize) -> &MultiFlitGuard {
        &self.guards[self.pv(port, vc)]
    }

    #[inline(always)]
    fn guard_mut(&mut self, port: usize, vc: usize) -> &mut MultiFlitGuard {
        let i = self.pv(port, vc);
        &mut self.guards[i]
    }

    #[inline(always)]
    fn active(&self, in_port: usize, vc: usize) -> Option<ActiveStream> {
        self.active_out[self.pv(in_port, vc)]
    }

    #[inline(always)]
    fn set_active(&mut self, in_port: usize, vc: usize, stream: Option<ActiveStream>) {
        let i = self.pv(in_port, vc);
        self.active_count += u16::from(stream.is_some());
        self.active_count -= u16::from(self.active_out[i].is_some());
        self.active_out[i] = stream;
    }

    /// Whether any input VC on this router buffers a flit. Routers with
    /// empty input buffers are skipped by switch allocation entirely:
    /// with no fronts, every VC is ineligible, the per-input arbiter
    /// finds no requests (and provably does not rotate — see
    /// [`RoundRobin::grant`]), and no output sees a bid, so the full
    /// allocation pass over such a router is a no-op.
    #[inline]
    fn has_buffered_input(&self) -> bool {
        self.inputs.iter().any(|iu| iu.buffered_flits() > 0)
    }
}

/// A packet currently streaming from an input VC to an output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ActiveStream {
    out_port: Port,
    packet: PacketId,
    len: u8,
    /// Flits granted (reactively) or force-moved through the port so far.
    sent: u8,
}

/// A switch-allocation grant awaiting its switch/link traversal cycle.
#[derive(Debug, Clone, Copy)]
struct Grant {
    node: usize,
    in_port: Port,
    vc: usize,
    out_port: Port,
    packet: PacketId,
    seq: u8,
}

/// A flit on a link, to be delivered at the start of the next cycle.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    node: usize,
    in_port: Port,
    vc: usize,
    flit: Flit,
}

/// A credit travelling back upstream.
#[derive(Debug, Clone, Copy)]
struct CreditReturn {
    node: usize,
    out_port: Port,
    vc: usize,
}

/// Result of validating a pre-allocated chain before execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChainCheck {
    /// The whole remaining path can execute.
    Ok,
    /// A structural problem (missing continuation, foreign owner): waste
    /// the reservation and fall back to reactive routing.
    Unsound,
    /// A link on the path is faulted at its traversal cycle: waste the
    /// reservation so the data survives on the baseline mesh — the PRA
    /// graceful-degradation path.
    Faulted,
}

/// Location of an installed reservation, kept for cancellation.
#[derive(Debug, Clone, Copy)]
struct ResvLoc {
    node: usize,
    out_port: Port,
    cycle: Cycle,
}

/// Reusable per-cycle working buffers. Every buffer is drained or
/// cleared before it is returned here, so the scratch never carries
/// architectural state between cycles and is deliberately excluded from
/// the digest; keeping the (empty) vectors alive recycles their
/// capacity and removes all steady-state heap traffic from the hot loop.
#[derive(Debug, Default)]
struct StepScratch {
    /// Empty buffer ping-ponged with [`MeshNetwork::credit_returns`].
    credits_free: Vec<CreditReturn>,
    /// Empty buffer ping-ponged with [`MeshNetwork::arrivals`].
    arrivals_free: Vec<Arrival>,
    /// Empty buffer ping-ponged with [`MeshNetwork::grants`].
    grants_free: Vec<Grant>,
    /// `(node, in_port, vc)` buffers read by a grant this cycle.
    read_this_cycle: Vec<(usize, Port, usize)>,
    /// Reservation chain heads pending execution this cycle.
    heads: Vec<(u8, u64, usize, Port)>,
    /// Stage-1 switch-allocation bids: `(in_port, vc, out_port, flit)`.
    bids: Vec<(Port, usize, Port, Flit)>,
    /// Per-VC eligibility mask, sized `vcs_per_port`.
    eligible: Vec<bool>,
    /// Per-VC bid targets, sized `vcs_per_port`.
    targets: Vec<Option<(Port, Flit)>>,
}

/// Description of one hop of a proactively allocated path, installed by
/// the PRA control plane. `start` is the cycle the packet's *head* flit
/// traverses this router's `out_port`; flit `s` traverses at `start + s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopPlan {
    /// Router performing the traversal.
    pub node: NodeId,
    /// Output port being reserved.
    pub out_port: Port,
    /// Cycle of the head flit's traversal.
    pub start: Cycle,
    /// Packet being pre-allocated.
    pub packet: PacketId,
    /// Packet length in flits (every flit gets a slot).
    pub len: u8,
    /// Message class (selects VC and guard).
    pub class: MessageClass,
    /// Where each flit is read from at this router.
    pub source: FlitSource,
    /// What happens at the downstream router.
    pub landing: Landing,
    /// Downstream credits to reserve for a [`Landing::Vc`] landing. The
    /// paper's PRA always books the full packet (`len`); flit-granular
    /// schemes (FRFC) book only their peak occupancy.
    pub reserve: u8,
}

/// Why a [`HopPlan`] could not be installed.
#[must_use]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstallError {
    /// A timeslot on the output port is already reserved by another packet.
    SlotTaken,
    /// A reactive grant already committed the port for one of the cycles.
    PortCommitted,
    /// The downstream VC cannot cover the whole packet (credits, a foreign
    /// reservation, or an owner with unknown drain time).
    NoDownstreamBuffer,
    /// The downstream latch is claimed by another packet in the window.
    LatchBusy,
    /// The output port leads off the mesh edge (control-plane routing bug).
    NoSuchNeighbor,
}

impl std::fmt::Display for InstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            InstallError::SlotTaken => "timeslot already reserved",
            InstallError::PortCommitted => "port committed to a reactive grant",
            InstallError::NoDownstreamBuffer => "downstream buffer unavailable for the full packet",
            InstallError::LatchBusy => "downstream latch claimed by another packet",
            InstallError::NoSuchNeighbor => "output port leaves the mesh",
        };
        f.write_str(s)
    }
}

impl std::error::Error for InstallError {}

/// The mesh network (baseline and PRA datapath).
///
/// # Examples
///
/// ```
/// use noc::config::NocConfig;
/// use noc::flit::Packet;
/// use noc::mesh::MeshNetwork;
/// use noc::network::Network;
/// use noc::types::{MessageClass, NodeId, PacketId};
///
/// let mut net = MeshNetwork::new(NocConfig::paper());
/// net.inject(Packet::new(
///     PacketId(1),
///     NodeId::new(0),
///     NodeId::new(63),
///     MessageClass::Request,
///     1,
/// ));
/// let delivered = net.run_to_drain(1_000);
/// assert_eq!(delivered.len(), 1);
/// ```
#[derive(Debug)]
pub struct MeshNetwork {
    cfg: NocConfig,
    now: Cycle,
    routers: Vec<Router>,
    sources: Vec<SourceQueues>,
    reasm: Vec<Reassembly>,
    ledger: DeliveryLedger,
    grants: Vec<Grant>,
    arrivals: Vec<Arrival>,
    credit_returns: Vec<CreditReturn>,
    resv_index: BTreeMap<PacketId, Vec<ResvLoc>>,
    /// Flit traversals per directed link, indexed `node * 4 + direction`.
    link_use: Vec<u64>,
    stats: NetStats,
    /// Fault-injection state; `None` (no plan configured) makes every
    /// fault hook a no-op and the datapath bit-identical to a build
    /// without the subsystem.
    faults: Option<FaultState>,
    /// End-to-end reliable-delivery overlay; `None` (the default) keeps
    /// every hook a no-op and the digest byte-identical to a build
    /// without the subsystem (see [`crate::reliable`]).
    reliable: Option<ReliableLayer>,
    /// Reusable scratch for due retransmit/escalate orders; never holds
    /// state between cycles.
    rel_orders: Vec<RelOrder>,
    /// Reusable scratch for copy ids purged by an escalation; never
    /// holds state between cycles.
    rel_purges: Vec<PacketId>,
    /// Cooperative cancellation flag; a cancelled step only advances the
    /// clock (see [`crate::cancel`]).
    cancel: CancelToken,
    /// Reusable per-cycle buffers; never holds state between cycles.
    scratch: StepScratch,
    /// Whether the quiescent fast path may be taken (see
    /// [`Network::set_skip_ahead`]).
    skip_ahead: bool,
    /// Cached quiescence verdict: `true` only while the fabric is
    /// provably idle (see [`MeshNetwork::is_quiescent`]); cleared by
    /// every operation that introduces new work.
    idle: bool,
    /// Conservative per-node activity flags — derived state, excluded
    /// from the digest. `buffered_nodes[n]` is set whenever a flit
    /// enters one of node `n`'s input VCs and cleared lazily when a
    /// scan finds the router drained, so `false` *proves* the router
    /// holds no buffered flits (while `true` may be stale). Skipping a
    /// `false` node is therefore bit-exact, never a behaviour change.
    buffered_nodes: Vec<bool>,
    /// Same contract for output-schedule entries plus latch claims
    /// (set on install, cleared lazily by `expire_reservations`).
    resv_nodes: Vec<bool>,
    /// Same contract for NI source-queue occupancy (set on inject,
    /// cleared lazily by `inject_from_sources`).
    source_nodes: Vec<bool>,
    /// Observability handle; detached by default (every hook is then a
    /// single branch). Absent entirely without the `obs` feature.
    #[cfg(feature = "obs")]
    obs: niobs::ObsHandle,
}

impl MeshNetwork {
    /// Builds a mesh for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`NocConfig::validate`].
    pub fn new(cfg: NocConfig) -> Self {
        cfg.validate().expect("invalid NoC configuration");
        let n = cfg.nodes();
        let faults = cfg.faults.clone().map(|plan| FaultState::new(plan, &cfg));
        let reliable = cfg.reliability.map(|rc| ReliableLayer::new(rc, n));
        let scratch = StepScratch {
            eligible: vec![false; cfg.vcs_per_port],
            targets: vec![None; cfg.vcs_per_port],
            ..StepScratch::default()
        };
        MeshNetwork {
            faults,
            reliable,
            rel_orders: Vec::new(),
            rel_purges: Vec::new(),
            routers: (0..n).map(|_| Router::new(&cfg)).collect(),
            sources: (0..n).map(|_| SourceQueues::new()).collect(),
            reasm: (0..n).map(|_| Reassembly::new()).collect(),
            ledger: DeliveryLedger::new(),
            grants: Vec::new(),
            arrivals: Vec::new(),
            credit_returns: Vec::new(),
            resv_index: BTreeMap::new(),
            link_use: vec![0; n * 4],
            stats: NetStats::new(),
            cancel: CancelToken::new(),
            scratch,
            skip_ahead: true,
            idle: false,
            buffered_nodes: vec![false; n],
            resv_nodes: vec![false; n],
            source_nodes: vec![false; n],
            cfg,
            now: 0,
            #[cfg(feature = "obs")]
            obs: niobs::ObsHandle::disabled(),
        }
    }

    /// Records an observability event at the current cycle. The closure
    /// runs only when a sink is attached, so hooks cost one branch on
    /// the unobserved path.
    #[cfg(feature = "obs")]
    #[inline]
    fn emit(&self, make: impl FnOnce() -> niobs::Event) {
        self.obs.emit(self.now, make);
    }

    /// Flit traversals of the directed link leaving `node` toward `dir`
    /// since construction.
    pub fn link_use(&self, node: NodeId, dir: crate::types::Direction) -> u64 {
        self.link_use[node.index() * 4 + dir as usize]
    }

    // ------------------------------------------------------------------
    // PRA integration surface (used by the `pra` crate's control plane)
    // ------------------------------------------------------------------

    /// The cycle currently being (or about to be) executed: reservations
    /// may only target cycles `>= upcoming_cycle()`.
    pub fn upcoming_cycle(&self) -> Cycle {
        self.now + 1
    }

    /// Checks whether `plan` can be installed without touching any state.
    ///
    /// # Errors
    ///
    /// Returns the first [`InstallError`] encountered.
    pub fn check_hop(&self, plan: &HopPlan) -> Result<(), InstallError> {
        let node = plan.node.index();
        let router = &self.routers[node];
        let p = plan.out_port.index();
        let window = plan.start..plan.start + plan.len as Cycle;

        if !router.schedules[p].range_free(window.clone(), plan.packet) {
            return Err(InstallError::SlotTaken);
        }
        // A reactive grant may already hold the port for the very next
        // cycle (grants are only ever pending for one cycle ahead).
        if window.contains(&self.upcoming_cycle())
            && self
                .grants
                .iter()
                .any(|g| g.node == node && g.out_port == plan.out_port && g.packet != plan.packet)
        {
            return Err(InstallError::PortCommitted);
        }
        match plan.landing {
            Landing::Vc(vc) => {
                if plan.out_port == Port::Local {
                    // Ejection into the NI: always sinkable.
                    return Ok(());
                }
                let out_vc = router.out_vc(p, vc);
                // All requested credits must be reservable and the stream
                // must be provably clear by `start`.
                if out_vc.reserved_for().is_some_and(|h| h != plan.packet) {
                    return Err(InstallError::NoDownstreamBuffer);
                }
                let already = if out_vc.reserved_for() == Some(plan.packet) {
                    out_vc.reserved()
                } else {
                    0
                };
                if out_vc.credits().saturating_sub(out_vc.reserved() - already)
                    < plan.reserve + already
                {
                    return Err(InstallError::NoDownstreamBuffer);
                }
                match out_vc.owner() {
                    None => {}
                    Some(o) if o == plan.packet => {}
                    Some(_) if out_vc.free_after().is_none_or(|c| c > plan.start) => {
                        return Err(InstallError::NoDownstreamBuffer);
                    }
                    Some(_) => {}
                }
                Ok(())
            }
            Landing::Latch => {
                let dir = plan
                    .out_port
                    .direction()
                    .expect("latch landing requires a directional port");
                let next =
                    neighbor(&self.cfg, plan.node, dir).ok_or(InstallError::NoSuchNeighbor)?;
                let in_port = Port::Dir(dir.opposite());
                let iu = &self.routers[next.index()].inputs[in_port.index()];
                if iu.latch_available(window.start..window.end + 1, plan.packet) {
                    Ok(())
                } else {
                    Err(InstallError::LatchBusy)
                }
            }
            Landing::Bypass => {
                // The downstream router's own reservation (installed as part
                // of the same segment) carries the resource checks.
                let dir = plan
                    .out_port
                    .direction()
                    .expect("bypass landing requires a directional port");
                neighbor(&self.cfg, plan.node, dir)
                    .map(|_| ())
                    .ok_or(InstallError::NoSuchNeighbor)
            }
        }
    }

    /// Installs `plan`, reserving timeslots, downstream buffer credits,
    /// latch claims and the multi-flit guard.
    ///
    /// # Errors
    ///
    /// Fails with the same conditions as [`MeshNetwork::check_hop`];
    /// nothing is modified on failure.
    pub fn install_hop(&mut self, plan: &HopPlan) -> Result<(), InstallError> {
        self.check_hop(plan)?;
        let node = plan.node.index();
        let p = plan.out_port.index();
        let vc = plan.class.vc();
        let window = plan.start..plan.start + plan.len as Cycle;

        for s in 0..plan.len {
            let ok = self.routers[node].schedules[p].try_insert(
                plan.start + s as Cycle,
                Reservation {
                    packet: plan.packet,
                    seq: s,
                    source: plan.source,
                    landing: plan.landing,
                },
            );
            debug_assert!(ok, "checked slot must insert");
            self.resv_index
                .entry(plan.packet)
                .or_default()
                .push(ResvLoc {
                    node,
                    out_port: plan.out_port,
                    cycle: plan.start + s as Cycle,
                });
        }
        match plan.landing {
            Landing::Vc(lvc) if plan.out_port != Port::Local => {
                let reserved = self.routers[node].out_vc_mut(p, lvc).try_reserve(
                    plan.packet,
                    plan.reserve,
                    plan.start,
                );
                debug_assert!(reserved, "checked reservation must succeed");
            }
            Landing::Latch => {
                let dir = plan.out_port.direction().expect("checked directional");
                let next = neighbor(&self.cfg, plan.node, dir).expect("checked neighbor");
                let in_port = Port::Dir(dir.opposite());
                // Occupied from each flit's store cycle through its read in
                // the following cycle.
                self.routers[next.index()].inputs[in_port.index()]
                    .latch_claim(window.start..window.end + 1, plan.packet);
                self.resv_nodes[next.index()] = true;
            }
            _ => {}
        }
        self.routers[node].guard_mut(p, vc).set(plan.packet);
        self.resv_nodes[node] = true;
        self.idle = false;
        #[cfg(feature = "obs")]
        self.emit(|| Event::ReservationInstalled {
            packet: plan.packet.0,
            node: node as u64,
            out_port: p as u8,
            start: plan.start,
            len: plan.len,
        });
        Ok(())
    }

    /// Converts a previously installed full-buffer landing into `landing`
    /// (the ACK signal: the next segment allocated successfully, so the
    /// packet passes through instead of stopping). Releases the reserved
    /// downstream credits; a conversion to [`Landing::Latch`] also claims
    /// the downstream latch over `window` (callers must have verified
    /// availability via [`MeshNetwork::latch_available`]).
    #[allow(clippy::too_many_arguments)]
    pub fn convert_landing(
        &mut self,
        node: NodeId,
        out_port: Port,
        packet: PacketId,
        window: std::ops::Range<Cycle>,
        landing: Landing,
        len: u8,
        class: MessageClass,
    ) {
        let router = &mut self.routers[node.index()];
        let p = out_port.index();
        let updated = router.schedules[p].update_landing(window.clone(), packet, landing);
        debug_assert!(
            updated == len as usize,
            "ACK found {updated} of {len} slots to convert (callers must check \
             reserved_slots_of first)"
        );
        router
            .out_vc_mut(p, class.vc())
            .release_reservation(packet, len);
        self.idle = false;
        if landing == Landing::Latch {
            let dir = out_port.direction().expect("latch landing is directional");
            let next = neighbor(&self.cfg, node, dir).expect("landing stays on mesh");
            let in_port = Port::Dir(dir.opposite());
            // The latch is occupied from the store cycle through the read
            // cycle of the last flit: one cycle beyond the write window.
            self.routers[next.index()].inputs[in_port.index()]
                .latch_claim(window.start..window.end + 1, packet);
            self.resv_nodes[next.index()] = true;
        }
    }

    /// Whether the latch of `(node, in_port)` is free for `packet` over
    /// `window` (same-packet claims never conflict).
    pub fn latch_available(
        &self,
        node: NodeId,
        in_port: Port,
        window: std::ops::Range<Cycle>,
        packet: PacketId,
    ) -> bool {
        self.routers[node.index()].inputs[in_port.index()].latch_available(window, packet)
    }

    /// Whether `packet` holds any outstanding reservation anywhere in the
    /// network (used to avoid launching redundant control packets).
    pub fn has_reservations(&self, packet: PacketId) -> bool {
        self.resv_index.contains_key(&packet)
    }

    /// How many of `packet`'s slots remain on `(node, out_port)` within
    /// `window` (used by the control plane to verify a landing is still
    /// convertible before sending an ACK).
    pub fn reserved_slots_of(
        &self,
        node: NodeId,
        out_port: Port,
        packet: PacketId,
        window: std::ops::Range<Cycle>,
    ) -> usize {
        self.routers[node.index()].schedules[out_port.index()]
            .iter()
            .filter(|(c, r)| window.contains(c) && r.packet == packet)
            .count()
    }

    /// Read access to an output schedule (for the control plane's
    /// conflict checks and for tests).
    pub fn schedule(&self, node: NodeId, out_port: Port) -> &OutputSchedule {
        &self.routers[node.index()].schedules[out_port.index()]
    }

    /// Read access to downstream-VC credit state.
    pub fn out_vc(&self, node: NodeId, out_port: Port, vc: usize) -> &OutVc {
        self.routers[node.index()].out_vc(out_port.index(), vc)
    }

    /// The multi-flit guard of `(node, out_port, class)`.
    pub fn guard(&self, node: NodeId, out_port: Port, class: MessageClass) -> &MultiFlitGuard {
        self.routers[node.index()].guard(out_port.index(), class.vc())
    }

    /// Snapshot of an input VC's front flit.
    pub fn vc_front(&self, node: NodeId, in_port: Port, vc: usize) -> Option<Flit> {
        self.routers[node.index()].inputs[in_port.index()]
            .vc(vc)
            .front()
            .copied()
    }

    /// Number of flits of `packet` buffered in `(node, in_port, vc)`.
    pub fn vc_count_of(&self, node: NodeId, in_port: Port, vc: usize, packet: PacketId) -> usize {
        self.routers[node.index()].inputs[in_port.index()]
            .vc(vc)
            .count_of(packet)
    }

    /// Reports stalled packets for the Long Stall Detection unit: for each
    /// input VC whose front is a head flit that wants an output port
    /// currently streaming another packet, returns
    /// `(node, in_port, vc, head flit, out_port, blocker, blocker_finish)`
    /// where `blocker_finish` is `Some(cycle)` when the blocking stream
    /// drains deterministically (all its remaining flits buffered here with
    /// enough downstream credits); the port is free for traversals at
    /// cycles `>= cycle`.
    #[allow(clippy::type_complexity)]
    pub fn stalled_heads(&self) -> Vec<(NodeId, Port, usize, Flit, Port, PacketId, Option<Cycle>)> {
        let mut out = Vec::new();
        for (n, router) in self.routers.iter().enumerate() {
            // `buffered_nodes[n] == false` proves the router holds no
            // flits, hence no fronts and no stalls; `active_count == 0`
            // proves no stream holds an output port, so nothing can
            // block a front. Skipping either case is exact.
            if !self.buffered_nodes[n] || router.active_count == 0 {
                continue;
            }
            let here = NodeId::new(n as u16);
            for in_port in Port::ALL {
                if router.inputs[in_port.index()].buffered_flits() == 0 {
                    continue;
                }
                for vc in 0..self.cfg.vcs_per_port {
                    let Some(front) = router.inputs[in_port.index()].vc(vc).front() else {
                        continue;
                    };
                    if !front.is_head() {
                        continue;
                    }
                    let Some(out_port) = self.route_out(here, front.dest, west_ok_from(in_port))
                    else {
                        continue;
                    };
                    if out_port == Port::Local {
                        continue;
                    }
                    let p = out_port.index();
                    // Find the stream currently holding that port (any input
                    // VC actively sending to it).
                    let mut blocking: Option<(usize, ActiveStream)> = None;
                    'scan: for ip in 0..Port::COUNT {
                        for v in 0..self.cfg.vcs_per_port {
                            if let Some(st) = router.active(ip, v) {
                                if st.out_port.index() == p && st.packet != front.packet {
                                    blocking = Some((v, st));
                                    break 'scan;
                                }
                            }
                        }
                    }
                    let Some((blk_vc, stream)) = blocking else {
                        continue;
                    };
                    let finish = self.deterministic_finish(here, blk_vc, stream, out_port);
                    out.push((here, in_port, vc, *front, out_port, stream.packet, finish));
                }
            }
        }
        out
    }

    /// Predicts when the blocking `stream` frees `out_port`. The paper's
    /// condition: with enough downstream buffers for the whole in-transfer
    /// packet, the stream drains one flit per cycle and the end of the
    /// transmission is exactly determined. If the prediction is ever wrong
    /// (the stream starves upstream), the resulting reservation simply
    /// wastes and is counted — it can never corrupt the stream, because
    /// forced moves re-validate ownership at execution time.
    fn deterministic_finish(
        &self,
        node: NodeId,
        blk_vc: usize,
        stream: ActiveStream,
        out_port: Port,
    ) -> Option<Cycle> {
        let router = &self.routers[node.index()];
        let remaining = stream.len.saturating_sub(stream.sent);
        if remaining == 0 {
            // Tail already granted: the port frees after the pending
            // traversal.
            return Some(self.upcoming_cycle() + 1);
        }
        if out_port != Port::Local {
            let out_vc = router.out_vc(out_port.index(), blk_vc);
            if out_vc.usable_credits(stream.packet) < remaining {
                return None;
            }
        }
        // Remaining flits are granted at cycles upcoming..upcoming+remaining-1
        // and traverse one cycle later each; the port's last busy cycle is
        // upcoming + remaining, so it is free from upcoming + remaining + 1.
        Some(self.upcoming_cycle() + remaining as Cycle + 1)
    }

    /// Marks the blocking stream on `(node, out_port, vc)` as draining
    /// deterministically until `cycle` so PRA allocation can reserve slots
    /// past it.
    pub fn mark_free_after(&mut self, node: NodeId, out_port: Port, vc: usize, cycle: Cycle) {
        self.routers[node.index()]
            .out_vc_mut(out_port.index(), vc)
            .set_free_after(cycle);
    }

    /// Injection backlog of `(node, class)`: flits still queued in the NI
    /// plus flits of other packets occupying the local input VC. The
    /// control plane only launches source pre-allocation when the path to
    /// the first link is predictable (backlog 0).
    pub fn source_backlog(&self, node: NodeId, class: MessageClass) -> usize {
        let q = self.sources[node.index()].queues[class.vc()].len();
        let buf = self.routers[node.index()].inputs[Port::Local.index()].vc(class.vc());
        q + buf.len()
    }

    /// Exclusive access to the statistics (the PRA control plane adds its
    /// own counters).
    pub fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    // ------------------------------------------------------------------
    // Cycle execution
    // ------------------------------------------------------------------

    // hot
    fn apply_credit_returns(&mut self) {
        // Swap the pending returns out against an empty recycled buffer:
        // both vectors keep their capacity forever, so the steady state
        // never allocates.
        let mut returns = std::mem::replace(
            &mut self.credit_returns,
            std::mem::take(&mut self.scratch.credits_free),
        );
        // Armed credit-loss faults each destroy one matching in-flight
        // credit (and fizzle silently when none is travelling that lane
        // this cycle).
        #[cfg(feature = "obs")]
        let mut credit_loss_nodes: Vec<u64> = Vec::new();
        if let Some(f) = self.faults.as_mut() {
            for (node, dir, vc) in std::mem::take(&mut f.credit_losses_now) {
                let victim = returns
                    .iter()
                    .position(|cr| cr.node == node && cr.out_port == Port::Dir(dir) && cr.vc == vc);
                if let Some(i) = victim {
                    returns.swap_remove(i);
                    f.note_lost_credit(node, dir, vc);
                    #[cfg(feature = "obs")]
                    credit_loss_nodes.push(node as u64);
                }
            }
        }
        #[cfg(feature = "obs")]
        for n in credit_loss_nodes {
            self.emit(|| Event::FaultApplied {
                node: n,
                kind: "credit_loss",
            });
        }
        for &cr in &returns {
            self.routers[cr.node]
                .out_vc_mut(cr.out_port.index(), cr.vc)
                .return_credit();
            #[cfg(feature = "obs")]
            {
                let (node, port, vci) = (cr.node as u64, cr.out_port.index() as u8, cr.vc as u8);
                self.emit(|| Event::CreditReturn {
                    node,
                    port,
                    vc: vci,
                });
            }
        }
        returns.clear();
        self.scratch.credits_free = returns;
    }

    /// Completes delivery of a fully reassembled packet at `node`.
    ///
    /// With the reliability overlay on, the layer decides the packet's
    /// disposition first: a committed retransmission copy is re-badged
    /// to the original id before entering the delivered ring (so
    /// consumers and stats see exactly one delivery under the original
    /// identity), and a duplicate is suppressed — dropped from the
    /// ledger without touching delivery stats.
    // hot
    #[cfg_attr(not(feature = "obs"), allow(unused_variables))]
    fn eject_complete(&mut self, head: Flit, node: usize) {
        if self.reliable.is_some() {
            let note = self
                .reliable
                .as_mut()
                .and_then(|rel| rel.note_ejected(head.packet));
            match note {
                Some(EjectNote::Commit { original }) => {
                    let hops = self
                        .cfg
                        .coord(head.src)
                        .manhattan(self.cfg.coord(head.dest));
                    if original == head.packet {
                        self.ledger.complete(head, self.now, hops, &mut self.stats);
                    } else {
                        self.ledger
                            .complete_as(head, original, self.now, hops, &mut self.stats);
                    }
                    #[cfg(feature = "obs")]
                    self.emit(|| Event::PacketEjected {
                        packet: original.0,
                        node: node as u64,
                    });
                    return;
                }
                Some(EjectNote::Suppress) => {
                    // The reassembler already consumed the flits; drop
                    // the copy's ledger entry without a delivery record.
                    let _ = self.ledger.forget(head.packet);
                    #[cfg(feature = "obs")]
                    self.emit(|| Event::DuplicateSuppressed {
                        packet: head.packet.0,
                        node: node as u64,
                    });
                    return;
                }
                // Untracked packet (injected before the overlay existed
                // is impossible, but stay permissive): normal path.
                None => {}
            }
        }
        let hops = self
            .cfg
            .coord(head.src)
            .manhattan(self.cfg.coord(head.dest));
        self.ledger.complete(head, self.now, hops, &mut self.stats);
        #[cfg(feature = "obs")]
        self.emit(|| Event::PacketEjected {
            packet: head.packet.0,
            node: node as u64,
        });
    }

    // hot
    fn deliver_arrivals(&mut self) {
        let mut arrivals = std::mem::replace(
            &mut self.arrivals,
            std::mem::take(&mut self.scratch.arrivals_free),
        );
        for a in arrivals.drain(..) {
            if a.in_port == Port::Local && a.flit.dest.index() == a.node {
                // Ejected flit: reassemble at the NI.
                if let Some(head) = self.reasm[a.node].accept(a.flit) {
                    self.eject_complete(head, a.node);
                }
            } else {
                self.routers[a.node].inputs[a.in_port.index()]
                    .vc_mut(a.vc)
                    .push(a.flit)
                    .unwrap_or_else(|e| {
                        panic!(
                            "arrival at n{} port {} vc {} violated buffer invariants: {e}",
                            a.node, a.in_port, a.vc
                        )
                    });
                self.buffered_nodes[a.node] = true;
            }
        }
        self.scratch.arrivals_free = arrivals;
    }

    /// Moves flits from NI source queues into the local input VCs
    /// (1 flit per class per cycle — the NI's three class FIFOs each have
    /// their own port into the router's local input unit).
    // hot
    fn inject_from_sources(&mut self) {
        for node in 0..self.cfg.nodes() {
            if !self.source_nodes[node] {
                continue;
            }
            let mut remaining = false;
            for class in 0..3 {
                let Some(front) = self.sources[node].queues[class].front() else {
                    continue;
                };
                let vc = self.routers[node].inputs[Port::Local.index()].vc(class);
                if vc.free() == 0 {
                    remaining = true;
                    continue;
                }
                let mut flit = *front;
                flit.injected = self.now;
                self.sources[node].queues[class].pop_front();
                self.routers[node].inputs[Port::Local.index()]
                    .vc_mut(class)
                    .push(flit)
                    .expect("free slot was checked");
                self.buffered_nodes[node] = true;
                remaining |= !self.sources[node].queues[class].is_empty();
            }
            self.source_nodes[node] = remaining;
        }
    }

    /// Executes reactive grants decided in the previous cycle.
    // hot
    fn execute_grants(&mut self, read_this_cycle: &mut Vec<(usize, Port, usize)>) {
        let mut grants = std::mem::replace(
            &mut self.grants,
            std::mem::take(&mut self.scratch.grants_free),
        );
        for g in grants.drain(..) {
            let flit = {
                let buf = self.routers[g.node].inputs[g.in_port.index()].vc_mut(g.vc);
                match buf.front() {
                    Some(f) if f.packet == g.packet && f.seq == g.seq => {
                        buf.pop().expect("front exists")
                    }
                    _ => panic!(
                        "granted flit {}#{} vanished from n{} {}:{}",
                        g.packet, g.seq, g.node, g.in_port, g.vc
                    ),
                }
            };
            read_this_cycle.push((g.node, g.in_port, g.vc));
            self.finish_traversal(g.node, g.in_port, g.vc, g.out_port, flit, false);
        }
        self.scratch.grants_free = grants;
    }

    /// Common tail of a traversal (reactive or forced, single-hop): stages
    /// the arrival, returns the upstream credit, and releases ownership and
    /// guards on tails. `forced` selects the stats counter only; resource
    /// handling is identical. The credit on the downstream VC was already
    /// consumed (at grant time for reactive traversals, by the caller for
    /// forced moves).
    // hot
    fn finish_traversal(
        &mut self,
        node: usize,
        in_port: Port,
        vc: usize,
        out_port: Port,
        flit: Flit,
        forced: bool,
    ) {
        if forced {
            self.stats.reserved_moves += 1;
        } else {
            self.stats.local_grants += 1;
        }
        // Credit back to the upstream router for the slot just freed.
        if let Port::Dir(d) = in_port {
            let here = NodeId::new(node as u16);
            let upstream = neighbor(&self.cfg, here, d).expect("flit arrived from a real neighbor");
            self.credit_returns.push(CreditReturn {
                node: upstream.index(),
                out_port: Port::Dir(d.opposite()),
                vc,
            });
        }
        match out_port {
            Port::Local => {
                self.stage_arrival_local(node, flit);
            }
            Port::Dir(d) => {
                self.stats.link_traversals += 1;
                self.link_use[node * 4 + d as usize] += 1;
                #[cfg(feature = "obs")]
                self.emit(|| Event::LinkTraverse {
                    packet: flit.packet.0,
                    seq: flit.seq,
                    node: node as u64,
                    out_port: out_port.index() as u8,
                    reserved: forced,
                });
                let here = NodeId::new(node as u16);
                let next = neighbor(&self.cfg, here, d).expect("route stays on the mesh");
                self.arrivals.push(Arrival {
                    node: next.index(),
                    in_port: Port::Dir(d.opposite()),
                    vc,
                    flit,
                });
            }
        }
        if flit.is_tail() {
            let p = out_port.index();
            self.routers[node]
                .out_vc_mut(p, vc)
                .release_owner(flit.packet);
            self.routers[node].guard_mut(p, vc).clear(flit.packet);
        }
    }

    fn stage_arrival_local(&mut self, node: usize, flit: Flit) {
        self.arrivals.push(Arrival {
            node,
            in_port: Port::Local,
            vc: flit.class.vc(),
            flit,
        });
    }

    /// Executes reservations scheduled for the current cycle (the PRA
    /// arbiter's cycle: preset crossbars, up to `max_hops_per_cycle` hops).
    // hot
    fn execute_reservations(&mut self, read_this_cycle: &[(usize, Port, usize)]) {
        // Collect chain heads: reservations at `now` whose source is not a
        // bypass (bypass slots are consumed as chain continuations).
        // Executed in ascending flit-sequence order: within a packet the
        // chain that READS a latch moves flit `s` while the upstream chain
        // WRITES flit `s + 1` into the same latch this cycle, so the read
        // must come first.
        let mut heads = std::mem::take(&mut self.scratch.heads);
        for (n, router) in self.routers.iter().enumerate() {
            if !self.resv_nodes[n] {
                continue;
            }
            for out_port in Port::ALL {
                let sched = &router.schedules[out_port.index()];
                if sched.is_empty() {
                    continue;
                }
                if let Some(r) = sched.get(self.now) {
                    if !matches!(r.source, FlitSource::Bypass { .. }) {
                        heads.push((r.seq, r.packet.0, n, out_port));
                    }
                }
            }
        }
        heads.sort_unstable();
        for &(_, _, node, out_port) in &heads {
            let Some(resv) = self.routers[node].schedules[out_port.index()].take(self.now) else {
                continue; // consumed by an earlier chain this cycle
            };
            self.execute_chain(node, out_port, resv, read_this_cycle);
        }
        heads.clear();
        self.scratch.heads = heads;
    }

    /// Read-only validation that the **entire remaining pre-allocated
    /// path** of the flit behind `resv` can execute, walking bypass
    /// continuations (same cycle) and latch parkings (subsequent cycles)
    /// up to the final buffer landing, whose VC must not be owned by a
    /// foreign packet mid-stream (which would interleave flits).
    ///
    /// Only chains that read from a *buffer* are validated: once a flit
    /// leaves its buffer onto a pre-allocated path, the path is immutable
    /// (guards block foreign multi-flit heads, reserved credits block
    /// foreign reservations), so latch-source chains always proceed —
    /// a flit in a latch has nowhere else to go. (This also means a
    /// latch-parked flit rides out a transient fault on its next link:
    /// pre-transmission faults only gate entry into the fabric's moving
    /// parts, never flits already committed to a preset path.)
    ///
    /// Under fault injection, every link on the path is additionally
    /// checked against the fault horizon of its traversal cycle; a
    /// faulted link cancels the chain ([`ChainCheck::Faulted`]) so the
    /// flit falls back to reactive routing.
    fn chain_check(&self, node: usize, out_port: Port, resv: &Reservation) -> ChainCheck {
        if matches!(resv.source, FlitSource::Latch { .. }) {
            return ChainCheck::Ok;
        }
        let mut cur_node = node;
        let mut cur_out = out_port;
        let mut landing = resv.landing;
        let mut cycle = self.now;
        let (packet, seq) = (resv.packet, resv.seq);
        let Some(dest) = self.find_resv_dest(packet) else {
            return ChainCheck::Unsound;
        };
        loop {
            if let Port::Dir(d) = cur_out {
                if !self.chain_link_usable(cur_node, d, cycle) {
                    return ChainCheck::Faulted;
                }
            }
            match landing {
                Landing::Vc(lvc) => {
                    if cur_out == Port::Local {
                        return ChainCheck::Ok;
                    }
                    let out_vc = self.routers[cur_node].out_vc(cur_out.index(), lvc);
                    return match out_vc.owner() {
                        None => ChainCheck::Ok,
                        Some(p) if p == packet => ChainCheck::Ok,
                        Some(_) => ChainCheck::Unsound,
                    };
                }
                Landing::Latch => {
                    // The flit parks one cycle and continues from the next
                    // router's reservation at `cycle + 1`.
                    let here = NodeId::new(cur_node as u16);
                    let Some(dir) = cur_out.direction() else {
                        return ChainCheck::Unsound;
                    };
                    let Some(next) = neighbor(&self.cfg, here, dir) else {
                        return ChainCheck::Unsound;
                    };
                    let Some(cont_port) = self.route_out(next, dest, dir == Direction::West) else {
                        return ChainCheck::Unsound;
                    };
                    match self.routers[next.index()].schedules[cont_port.index()].get(cycle + 1) {
                        Some(r2)
                            if r2.packet == packet
                                && r2.seq == seq
                                && matches!(r2.source, FlitSource::Latch { .. }) =>
                        {
                            cycle += 1;
                            cur_node = next.index();
                            cur_out = cont_port;
                            landing = r2.landing;
                        }
                        _ => return ChainCheck::Unsound,
                    }
                }
                Landing::Bypass => {
                    let here = NodeId::new(cur_node as u16);
                    let Some(dir) = cur_out.direction() else {
                        return ChainCheck::Unsound;
                    };
                    let Some(next) = neighbor(&self.cfg, here, dir) else {
                        return ChainCheck::Unsound;
                    };
                    let Some(cont_port) = self.route_out(next, dest, dir == Direction::West) else {
                        return ChainCheck::Unsound;
                    };
                    match self.routers[next.index()].schedules[cont_port.index()].get(cycle) {
                        Some(r2)
                            if r2.packet == packet
                                && r2.seq == seq
                                && matches!(r2.source, FlitSource::Bypass { .. }) =>
                        {
                            cur_node = next.index();
                            cur_out = cont_port;
                            landing = r2.landing;
                        }
                        _ => return ChainCheck::Unsound,
                    }
                }
            }
        }
    }

    /// Destination of `packet`, looked up from the delivery ledger.
    fn find_resv_dest(&self, packet: PacketId) -> Option<NodeId> {
        self.ledger.dest_of(packet)
    }

    fn execute_chain(
        &mut self,
        node: usize,
        out_port: Port,
        resv: Reservation,
        read_this_cycle: &[(usize, Port, usize)],
    ) {
        match self.chain_check(node, out_port, &resv) {
            ChainCheck::Ok => {}
            verdict => {
                if verdict == ChainCheck::Faulted {
                    if let Some(f) = self.faults.as_mut() {
                        f.note_faulted_chain_cancel();
                    }
                }
                self.waste_and_cancel(node, out_port, self.now, resv);
                return;
            }
        }
        // 1. Fetch the expected flit.
        let fetched: Option<(Flit, Port, usize)> = match resv.source {
            FlitSource::Vc { port, vc } => {
                let already_read = read_this_cycle.contains(&(node, port, vc));
                let buf = self.routers[node].inputs[port.index()].vc_mut(vc);
                match buf.front() {
                    Some(f) if f.packet == resv.packet && f.seq == resv.seq && !already_read => {
                        let f = buf.pop().expect("front exists");
                        Some((f, port, vc))
                    }
                    _ => None,
                }
            }
            FlitSource::Latch { from } => {
                let iu = &mut self.routers[node].inputs[Port::Dir(from).index()];
                match iu.latch() {
                    Some(f) if f.packet == resv.packet && f.seq == resv.seq => {
                        let f = iu.latch_take().expect("latch holds flit");
                        Some((f, Port::Dir(from), usize::MAX))
                    }
                    _ => None,
                }
            }
            FlitSource::Bypass { .. } => {
                unreachable!("bypass reservations are consumed by their upstream chain")
            }
        };
        let Some((flit, in_port, in_vc)) = fetched else {
            self.waste_and_cancel(node, out_port, self.now, resv);
            return;
        };

        // 2. Walk the chain through preset crossbars.
        let mut cur_node = node;
        let mut cur_out = out_port;
        let mut cur_resv = resv;
        let mut first = true;
        let mut hops_this_cycle = 0u8;
        loop {
            hops_this_cycle += 1;
            debug_assert!(
                hops_this_cycle <= self.cfg.max_hops_per_cycle,
                "pre-allocated chain exceeds the wire budget"
            );
            let vc = flit.class.vc();
            self.stats.reserved_moves += 1;

            if first {
                // Upstream credit for the slot freed at the chain's origin
                // (latch sources hold no credit).
                if in_vc != usize::MAX {
                    if let Port::Dir(d) = in_port {
                        let here = NodeId::new(cur_node as u16);
                        let upstream =
                            neighbor(&self.cfg, here, d).expect("flit arrived from a neighbor");
                        self.credit_returns.push(CreditReturn {
                            node: upstream.index(),
                            out_port: Port::Dir(d.opposite()),
                            vc,
                        });
                    }
                }
                first = false;
            }

            if cur_out == Port::Local {
                debug_assert!(matches!(cur_resv.landing, Landing::Vc(_)));
                // Pre-allocated ejection: the crossbar is preset, so the
                // flit reaches the NI within this cycle (no staging).
                if let Some(head) = self.reasm[cur_node].accept(flit) {
                    self.eject_complete(head, cur_node);
                }
                self.after_reserved_slot(cur_node, cur_out, &flit);
                return;
            }

            self.stats.link_traversals += 1;
            let here = NodeId::new(cur_node as u16);
            let dir = cur_out.direction().expect("non-local checked");
            self.link_use[cur_node * 4 + dir as usize] += 1;
            #[cfg(feature = "obs")]
            self.emit(|| Event::LinkTraverse {
                packet: flit.packet.0,
                seq: flit.seq,
                node: cur_node as u64,
                out_port: cur_out.index() as u8,
                reserved: true,
            });
            let next = neighbor(&self.cfg, here, dir).expect("reserved route stays on mesh");
            let next_in = Port::Dir(dir.opposite());

            match cur_resv.landing {
                Landing::Vc(lvc) => {
                    // Consume the (reserved) credit and enter the buffer.
                    self.routers[cur_node]
                        .out_vc_mut(cur_out.index(), lvc)
                        .consume_credit(flit.packet);
                    if flit.is_head() && flit.len_flits > 1 {
                        self.routers[cur_node]
                            .out_vc_mut(cur_out.index(), lvc)
                            .allocate(flit.packet);
                        #[cfg(feature = "obs")]
                        self.emit(|| Event::VcAllocated {
                            packet: flit.packet.0,
                            node: cur_node as u64,
                            out_port: cur_out.index() as u8,
                            vc: lvc as u8,
                        });
                    }
                    if flit.is_tail() {
                        self.routers[cur_node]
                            .out_vc_mut(cur_out.index(), lvc)
                            .release_owner(flit.packet);
                    }
                    self.arrivals.push(Arrival {
                        node: next.index(),
                        in_port: next_in,
                        vc: lvc,
                        flit,
                    });
                    self.after_reserved_slot(cur_node, cur_out, &flit);
                    return;
                }
                Landing::Latch => {
                    self.routers[next.index()].inputs[next_in.index()]
                        .latch_store(flit)
                        .unwrap_or_else(|_| {
                            panic!("latch at {next} occupied despite claim bookkeeping")
                        });
                    self.after_reserved_slot(cur_node, cur_out, &flit);
                    return;
                }
                Landing::Bypass => {
                    self.after_reserved_slot(cur_node, cur_out, &flit);
                    // Continue through the next router's preset crossbar.
                    let cont_port = self
                        .route_out(next, flit.dest, west_ok_from(next_in))
                        .expect("validated chain stays routable");
                    let next_sched = &mut self.routers[next.index()].schedules[cont_port.index()];
                    match next_sched.get(self.now).copied() {
                        Some(r2)
                            if r2.packet == flit.packet
                                && r2.seq == flit.seq
                                && matches!(r2.source, FlitSource::Bypass { .. }) =>
                        {
                            next_sched.take(self.now);
                            cur_node = next.index();
                            cur_out = cont_port;
                            cur_resv = r2;
                        }
                        _ => {
                            // The continuation slot is missing — a control
                            // plane invariant violation.
                            panic!(
                                "bypass landing at {next} without a continuation reservation \
                                 for {} seq {}",
                                flit.packet, flit.seq
                            );
                        }
                    }
                }
            }
        }
    }

    /// Post-processing after a reserved slot was used by `flit`: on tails,
    /// clear the guard; when the packet holds no further slots on the
    /// port, also clear any leftover guard (cancel path).
    fn after_reserved_slot(&mut self, node: usize, out_port: Port, flit: &Flit) {
        let p = out_port.index();
        let vc = flit.class.vc();
        if flit.is_tail() || !self.routers[node].schedules[p].has_packet(flit.packet) {
            self.routers[node].guard_mut(p, vc).clear(flit.packet);
        }
    }

    /// A forced move found its flit missing: count the waste and cancel the
    /// packet's remaining slots for this and later flits so they fall back
    /// to reactive routing. Earlier flits keep their slots and drain.
    fn waste_and_cancel(&mut self, node: usize, out_port: Port, cycle: Cycle, resv: Reservation) {
        let (packet, from_seq) = (resv.packet, resv.seq);
        self.stats.wasted_reservations += 1;
        #[cfg(feature = "obs")]
        self.emit(|| Event::ReservationWasted {
            packet: packet.0,
            node: node as u64,
        });
        // The reservation was already taken from the schedule; release the
        // resources it held.
        self.release_cancelled(node, out_port, packet, &[(cycle, resv)]);
        // Cancel across every router the packet has slots on, from the next
        // cycle onward (slots for the current cycle at other routers are
        // earlier flits mid-chain). Cancelled slots were allocated and will
        // never be used, so they count as waste too.
        let cancelled = self.cancel_packet_from(packet, from_seq, self.now + 1);
        self.stats.wasted_reservations += cancelled as u64;
        // Also drop this router's remaining same-cycle slots for >= seq.
        let removed = self.routers[node].schedules[out_port.index()]
            .cancel_packet(packet, from_seq, self.now);
        self.stats.wasted_reservations += removed.len() as u64;
        self.release_cancelled(node, out_port, packet, &removed);
    }

    /// Cancels `packet`'s reservations for flits `>= from_seq` at cycles
    /// `>= from_cycle` everywhere, releasing reserved credits, latch claims
    /// and guards. Used on waste and on packet completion (as a safety
    /// net — normally all slots are consumed).
    pub fn cancel_packet_from(
        &mut self,
        packet: PacketId,
        from_seq: u8,
        from_cycle: Cycle,
    ) -> usize {
        let Some(locs) = self.resv_index.get(&packet).cloned() else {
            return 0;
        };
        let mut touched: Vec<(usize, Port)> = Vec::new();
        for loc in &locs {
            if loc.cycle >= from_cycle && !touched.contains(&(loc.node, loc.out_port)) {
                touched.push((loc.node, loc.out_port));
            }
        }
        let mut total = 0;
        for (node, out_port) in touched {
            let removed = self.routers[node].schedules[out_port.index()]
                .cancel_packet(packet, from_seq, from_cycle);
            total += removed.len();
            self.release_cancelled(node, out_port, packet, &removed);
        }
        if let Some(locs) = self.resv_index.get_mut(&packet) {
            locs.retain(|l| l.cycle < from_cycle);
            if locs.is_empty() {
                self.resv_index.remove(&packet);
            }
        }
        total
    }

    fn release_cancelled(
        &mut self,
        node: usize,
        out_port: Port,
        packet: PacketId,
        removed: &[(Cycle, Reservation)],
    ) {
        let p = out_port.index();
        for (_cycle, r) in removed {
            match r.landing {
                Landing::Vc(lvc) if out_port != Port::Local => {
                    self.routers[node]
                        .out_vc_mut(p, lvc)
                        .release_reservation(packet, 1);
                }
                Landing::Latch => {
                    // Latch claims are deliberately NOT released here:
                    // consecutive flits of a packet share claim cycles, so
                    // releasing a cancelled flit's claims could expose a
                    // cycle where an earlier, still-valid flit occupies the
                    // latch. Claims lapse via `latch_expire`.
                }
                _ => {}
            }
        }
        if !removed.is_empty() && !self.routers[node].schedules[p].has_packet(packet) {
            for vc in 0..self.cfg.vcs_per_port {
                self.routers[node].guard_mut(p, vc).clear(packet);
            }
        }
    }

    /// Route computation, VC allocation and (speculative) switch allocation
    /// for traversals in the next cycle.
    // hot
    fn allocate(&mut self) {
        let next_cycle = self.now + 1;
        // Working buffers come out of the scratch for the whole pass
        // (they cannot live in `self` across the `&mut self` call to
        // `eligible_front`), and go back cleared at the end.
        let mut bids = std::mem::take(&mut self.scratch.bids);
        let mut eligible = std::mem::take(&mut self.scratch.eligible);
        let mut targets = std::mem::take(&mut self.scratch.targets);
        for node in 0..self.cfg.nodes() {
            // An idle router allocates nothing and rotates no arbiter;
            // skipping it outright is bit-exact (see
            // [`Router::has_buffered_input`]). The lazily-cleared flag
            // makes the skip a single byte test instead of a five-unit
            // scan across the whole fabric every cycle.
            if !self.buffered_nodes[node] {
                continue;
            }
            if !self.routers[node].has_buffered_input() {
                self.buffered_nodes[node] = false;
                continue;
            }
            let here = NodeId::new(node as u16);
            // Stage 1: each input port nominates one VC.
            bids.clear();
            for in_port in Port::ALL {
                // An empty input unit yields no fronts, so its arbiter
                // sees an all-false mask and does not rotate: skipping
                // it is bit-exact, exactly as for the whole-router skip.
                if self.routers[node].inputs[in_port.index()].buffered_flits() == 0 {
                    continue;
                }
                eligible.fill(false);
                targets.fill(None);
                for vc in 0..self.cfg.vcs_per_port {
                    if let Some((out_port, flit)) = Self::eligible_front_at(
                        &self.cfg,
                        &mut self.faults,
                        &mut self.stats,
                        &self.routers[node],
                        here,
                        in_port,
                        vc,
                        next_cycle,
                    ) {
                        eligible[vc] = true;
                        targets[vc] = Some((out_port, flit));
                    }
                }
                // Class priority (when configured) masks the bid set to
                // the highest-priority class with an eligible flit;
                // round-robin breaks ties inside the class. The default
                // `None` leaves the historical class-oblivious arbiter
                // untouched.
                if let Some(prio) = self.cfg.class_priority {
                    let best = eligible
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| **e)
                        .map(|(vc, _)| *prio.get(vc).unwrap_or(&0))
                        .max();
                    if let Some(best) = best {
                        for (vc, e) in eligible.iter_mut().enumerate() {
                            if *e && *prio.get(vc).unwrap_or(&0) < best {
                                *e = false;
                            }
                        }
                    }
                }
                let router = &mut self.routers[node];
                if let Some(vc) = router.sa_in[in_port.index()].grant(&eligible) {
                    let (out_port, flit) = targets[vc].expect("eligible target");
                    bids.push((in_port, vc, out_port, flit));
                }
            }
            // Stage 2: each output port grants one input. With no bids
            // every output sees an all-false request mask and skips
            // before touching its arbiter, so the pass is a no-op.
            if bids.is_empty() {
                continue;
            }
            for out_port in Port::ALL {
                let mut requests = [false; Port::COUNT];
                for (in_port, _, op, _) in &bids {
                    if *op == out_port {
                        requests[in_port.index()] = true;
                    }
                }
                // Same masking at the output stage: only the
                // best-priority class competing for this port may win.
                if let Some(prio) = self.cfg.class_priority {
                    let best = bids
                        .iter()
                        .filter(|(_, _, op, _)| *op == out_port)
                        .map(|(_, _, _, flit)| *prio.get(flit.class.vc()).unwrap_or(&0))
                        .max();
                    if let Some(best) = best {
                        for (in_port, _, op, flit) in &bids {
                            if *op == out_port && *prio.get(flit.class.vc()).unwrap_or(&0) < best {
                                requests[in_port.index()] = false;
                            }
                        }
                    }
                }
                if !requests.iter().any(|r| *r) {
                    continue;
                }
                let router = &mut self.routers[node];
                let Some(win_in) = router.sa_out[out_port.index()].grant(&requests) else {
                    continue;
                };
                let (in_port, vc, _, flit) = *bids
                    .iter()
                    .find(|(ip, _, op, _)| ip.index() == win_in && *op == out_port)
                    .expect("winner came from the bid list");
                self.commit_grant(node, in_port, vc, out_port, flit);
            }
        }
        bids.clear();
        self.scratch.bids = bids;
        self.scratch.eligible = eligible;
        self.scratch.targets = targets;
    }

    /// Whether the front flit of `(here, in_port, vc)` may bid for a
    /// traversal at `next_cycle`, and toward which output port.
    ///
    /// Takes its borrows field-by-field (instead of `&mut self`) so the
    /// switch-allocation loop indexes `routers[node]` once per call
    /// rather than once per field access — this runs tens of times per
    /// cycle and the repeated bounds-checked indexing was measurable.
    // hot
    #[allow(clippy::too_many_arguments)]
    fn eligible_front_at(
        cfg: &NocConfig,
        faults: &mut Option<FaultState>,
        stats: &mut NetStats,
        router: &Router,
        here: NodeId,
        in_port: Port,
        vc: usize,
        next_cycle: Cycle,
    ) -> Option<(Port, Flit)> {
        let node = here.index();
        let flit = *router.inputs[in_port.index()].vc(vc).front()?;
        let active = router.active(in_port.index(), vc);

        let (out_port, needs_alloc) = match active {
            Some(st) if st.packet == flit.packet && !flit.is_head() => (st.out_port, false),
            _ => {
                let routed = match faults {
                    Some(f) if f.degraded() => f.next_hop(here, flit.dest, west_ok_from(in_port)),
                    _ => Some(route_port(cfg, here, flit.dest)),
                };
                match routed {
                    Some(port) => (port, true),
                    None => return None,
                }
            }
        };
        // The link must be usable at the traversal cycle (`next_cycle` is
        // exactly the prepared fault horizon); transiently faulted links
        // refuse new traffic rather than eat flits mid-wire.
        if let Port::Dir(d) = out_port {
            if let Some(f) = faults.as_mut() {
                if !f.link_usable_next(cfg, node, d) {
                    f.note_blocked_by_fault();
                    return None;
                }
            }
        }
        let p = out_port.index();

        // Never race a pending forced move for the same packet on this port.
        if router.schedules[p].has_packet(flit.packet) {
            return None;
        }
        // The port is locked to another multi-flit packet until its tail
        // passes: no flit-level interleaving on the link.
        if let Some(holder) = router.port_lock[p] {
            if holder != flit.packet {
                return None;
            }
        }
        // Reserved timeslot: the port is unusable for reactive traffic.
        if router.schedules[p].is_reserved(next_cycle) {
            stats.blocked_by_reservation_cycles += 1;
            return None;
        }

        if out_port == Port::Local {
            // Ejection: the NI always sinks flits.
            return Some((out_port, flit));
        }

        let out_vc = router.out_vc(p, vc);
        let guard = router.guard(p, vc);
        let ok = if needs_alloc {
            if flit.len_flits > 1 {
                // Multi-flit head (or an orphaned continuation whose head
                // went ahead on a pre-allocated path): needs ownership and
                // the guard's blessing.
                let admitted = guard.admits(flit.packet);
                if !admitted && out_vc.can_allocate(flit.packet) {
                    stats.blocked_by_reservation_cycles += 1;
                }
                admitted && out_vc.can_allocate(flit.packet)
            } else {
                // Single-flit packet: atomic, no ownership, guard-exempt.
                let free = out_vc.owner().is_none() && out_vc.can_send(flit.packet);
                if !free
                    && out_vc.owner().is_none()
                    && out_vc.credits() > 0
                    && !out_vc.can_send(flit.packet)
                {
                    stats.blocked_by_reservation_cycles += 1;
                }
                free
            }
        } else {
            out_vc.can_send(flit.packet)
        };
        ok.then_some((out_port, flit))
    }

    // hot
    fn commit_grant(&mut self, node: usize, in_port: Port, vc: usize, out_port: Port, flit: Flit) {
        let p = out_port.index();
        if out_port != Port::Local {
            let out_vc = self.routers[node].out_vc_mut(p, vc);
            let allocates =
                flit.len_flits > 1 && (flit.is_head() || out_vc.owner() != Some(flit.packet));
            if allocates {
                out_vc.allocate(flit.packet);
            }
            out_vc.consume_credit(flit.packet);
            #[cfg(feature = "obs")]
            if allocates {
                self.emit(|| Event::VcAllocated {
                    packet: flit.packet.0,
                    node: node as u64,
                    out_port: p as u8,
                    vc: vc as u8,
                });
            }
        }
        if flit.len_flits > 1 {
            self.routers[node].port_lock[p] = if flit.is_tail() {
                None
            } else {
                Some(flit.packet)
            };
        }
        let next_active = if flit.is_tail() {
            None
        } else {
            let sent = match self.routers[node].active(in_port.index(), vc) {
                Some(st) if st.packet == flit.packet => st.sent + 1,
                _ => 1,
            };
            Some(ActiveStream {
                out_port,
                packet: flit.packet,
                len: flit.len_flits,
                sent,
            })
        };
        self.routers[node].set_active(in_port.index(), vc, next_active);
        self.grants.push(Grant {
            node,
            in_port,
            vc,
            out_port,
            packet: flit.packet,
            seq: flit.seq,
        });
        #[cfg(feature = "obs")]
        self.emit(|| Event::SwitchGrant {
            packet: flit.packet.0,
            seq: flit.seq,
            node: node as u64,
            out_port: p as u8,
        });
    }

    /// Expires past reservations (waste) and stale latch claims.
    // hot
    fn expire_reservations(&mut self) {
        for node in 0..self.cfg.nodes() {
            // Expiry only has work where schedules or latch claims exist;
            // the lazily-cleared flag (set on every install) turns the
            // common reservation-free router into a single byte test.
            if !self.resv_nodes[node] {
                continue;
            }
            let router = &self.routers[node];
            let quiet = router.schedules.iter().all(OutputSchedule::is_empty)
                && router.inputs.iter().all(|iu| !iu.has_latch_claims());
            if quiet {
                self.resv_nodes[node] = false;
                continue;
            }
            for out_port in Port::ALL {
                let expired = self.routers[node].schedules[out_port.index()].expire(self.now);
                if expired.is_empty() {
                    continue;
                }
                self.stats.wasted_reservations += expired.len() as u64;
                #[cfg(feature = "obs")]
                for (_, r) in &expired {
                    self.emit(|| Event::ReservationWasted {
                        packet: r.packet.0,
                        node: node as u64,
                    });
                }
                let by_packet: Vec<PacketId> = expired.iter().map(|(_, r)| r.packet).collect();
                self.release_cancelled(node, out_port, by_packet[0], &expired);
                // release_cancelled handles credits/latches per entry but
                // guards per packet; cover remaining packets.
                for pk in by_packet {
                    if !self.routers[node].schedules[out_port.index()].has_packet(pk) {
                        for vc in 0..self.cfg.vcs_per_port {
                            self.routers[node].guard_mut(out_port.index(), vc).clear(pk);
                        }
                    }
                }
            }
            for in_port in Port::ALL {
                self.routers[node].inputs[in_port.index()].latch_expire(self.now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection & graceful degradation
    // ------------------------------------------------------------------

    /// The output port toward `dest` at `here`: XY while the topology is
    /// intact, west-first detour tables once permanently degraded, `None`
    /// when `dest` became unreachable. `west_ok` is the turn-model state:
    /// whether the flit has travelled exclusively west so far (so a west
    /// hop is still legal), derivable locally from the input port via
    /// [`west_ok_from`].
    fn route_out(&self, here: NodeId, dest: NodeId, west_ok: bool) -> Option<Port> {
        match &self.faults {
            Some(f) if f.degraded() => f.next_hop(here, dest, west_ok),
            _ => Some(route_port(&self.cfg, here, dest)),
        }
    }

    /// Whether the directed link `(node, dir)` may carry a flit at
    /// `cycle`, consulting the right transient horizon: the executing
    /// cycle, the prepared next cycle, or permanent-only damage beyond
    /// the prepared window.
    fn chain_link_usable(&self, node: usize, dir: Direction, cycle: Cycle) -> bool {
        let Some(f) = &self.faults else { return true };
        if cycle <= self.now {
            f.link_usable_now(&self.cfg, node, dir)
        } else if cycle == self.now + 1 {
            f.link_usable_next(&self.cfg, node, dir)
        } else {
            f.link_usable_permanent(&self.cfg, node, dir)
        }
    }

    /// Advances the fault clock one cycle and applies any permanent
    /// topology fault that becomes effective now.
    fn apply_faults(&mut self) {
        let due = self
            .faults
            .as_mut()
            .expect("caller checked faults.is_some()")
            .begin_cycle(self.now, &self.cfg);
        for ev in due {
            match ev {
                FaultEvent::PermanentLink { node, dir, .. } => {
                    #[cfg(feature = "obs")]
                    self.emit(|| Event::FaultApplied {
                        node: node.index() as u64,
                        kind: "permanent_link",
                    });
                    if let Some(nb) = neighbor(&self.cfg, node, dir) {
                        let dying = [(node.index(), dir), (nb.index(), dir.opposite())];
                        self.apply_topology_fault(&dying, None);
                    }
                }
                FaultEvent::RouterDown { node, .. } => {
                    #[cfg(feature = "obs")]
                    self.emit(|| Event::FaultApplied {
                        node: node.index() as u64,
                        kind: "router_down",
                    });
                    if node.index() < self.cfg.nodes() {
                        self.apply_topology_fault(&[], Some(node.index()));
                    }
                }
                _ => unreachable!("begin_cycle returns only topology events"),
            }
        }
    }

    /// Drives the reliability overlay one cycle: scans for entries whose
    /// retransmission deadline has passed and either mints a fresh copy
    /// into the fabric or escalates the packet to a permanent-fault
    /// reclassification (see [`crate::reliable`]). Orders come out in
    /// packet-id order (the layer's map order), so the cycle is
    /// deterministic regardless of how losses interleaved.
    fn process_reliability(&mut self) {
        let mut orders = std::mem::take(&mut self.rel_orders);
        self.reliable
            .as_ref()
            .expect("caller checked reliable.is_some()")
            .collect_due(self.now, &mut orders);
        for order in orders.drain(..) {
            match order {
                RelOrder::Retransmit { original } => {
                    let (copy, attempt) = self
                        .reliable
                        .as_mut()
                        .expect("reliable is on")
                        .mint_copy(original, self.now);
                    #[cfg(feature = "obs")]
                    self.emit(|| Event::PacketRetransmitted {
                        packet: original.0,
                        copy: copy.id.0,
                        node: copy.src.index() as u64,
                        attempt,
                    });
                    #[cfg(not(feature = "obs"))]
                    let _ = attempt;
                    if !self.inject_copy(copy) {
                        // The fabric refused the copy (endpoint dead or
                        // unreachable). The attempt stays charged and the
                        // backoff deadline stays armed, so the budget
                        // still bounds the storm and escalation follows.
                        self.reliable
                            .as_mut()
                            .expect("reliable is on")
                            .note_copy_refused(copy.id, self.now);
                    }
                }
                RelOrder::Escalate { original } => {
                    let mut purges = std::mem::take(&mut self.rel_purges);
                    let (src, dest) = self
                        .reliable
                        .as_mut()
                        .expect("reliable is on")
                        .begin_escalation(original, &mut purges);
                    #[cfg(feature = "obs")]
                    self.emit(|| Event::FaultEscalated {
                        packet: original.0,
                        node: src.index() as u64,
                    });
                    for id in purges.drain(..) {
                        self.purge_packet(id);
                    }
                    self.rel_purges = purges;
                    if escalation_action(self.faults.is_some())
                        == EscalationAction::ReclassifyFirstHop
                    {
                        self.reclassify_first_hop(src, dest);
                    }
                }
            }
        }
        self.rel_orders = orders;
    }

    /// Re-injects a retransmission copy into the fabric. Mirrors the
    /// refusal check of [`Network::inject`] but records neither an
    /// injection, a refusal, nor an injection event: the copy is a
    /// transport-layer artifact, invisible to offered-load and NI
    /// statistics (a refused copy surfaces through the retry budget,
    /// which stays charged and eventually escalates). Returns `false`
    /// when the fabric refuses the copy.
    fn inject_copy(&mut self, copy: Packet) -> bool {
        if let Some(f) = self.faults.as_ref() {
            if f.router_dead(copy.src.index())
                || f.router_dead(copy.dest.index())
                || (f.degraded() && f.next_hop(copy.src, copy.dest, true).is_none())
            {
                return false;
            }
        }
        self.idle = false;
        self.ledger.register(copy);
        self.source_nodes[copy.src.index()] = true;
        self.sources[copy.src.index()].enqueue_packet(&copy);
        true
    }

    /// Escalation's topology action: a packet that exhausted its retry
    /// budget is evidence the loss is not transient, so reclassify the
    /// first hop of its route as permanently dead and rebuild the detour
    /// tables — the same machinery a scheduled permanent fault uses.
    fn reclassify_first_hop(&mut self, src: NodeId, dest: NodeId) {
        // A dead endpoint already explains the loss — the evidence
        // points at the endpoint, not the path, so there is no healthy
        // link to reclassify (and cutting the source's first hop would
        // punish unrelated traffic).
        if let Some(f) = &self.faults {
            if f.router_dead(src.index()) || f.router_dead(dest.index()) {
                return;
            }
        }
        let Some(Port::Dir(dir)) = self.route_out(src, dest, true) else {
            return; // ejects locally or already unroutable: nothing to cut
        };
        if !self.link_alive(src, dir) {
            return; // already dead — nothing left to reclassify
        }
        let Some(nb) = neighbor(&self.cfg, src, dir) else {
            return;
        };
        #[cfg(feature = "obs")]
        self.emit(|| Event::FaultApplied {
            node: src.index() as u64,
            kind: "escalated_link",
        });
        let dying = [(src.index(), dir), (nb.index(), dir.opposite())];
        self.apply_topology_fault(&dying, None);
    }

    /// Applies one permanent cut: dooms every packet the damage strands,
    /// marks the damage, purges the doomed packets (with full credit
    /// restitution), rebuilds the route tables, then sweeps for anything
    /// left unroutable.
    ///
    /// Packets kept alive provably keep their old routes: removing an
    /// edge only changes the next hop at nodes whose shortest path
    /// crossed the cut, and every such packet is in the doomed set. So
    /// surviving wormholes never diverge mid-flight and in-order
    /// reassembly is preserved.
    fn apply_topology_fault(
        &mut self,
        dying_links: &[(usize, Direction)],
        dying_node: Option<usize>,
    ) {
        // 1. Doomed set, computed with the pre-fault routes.
        let doomed = self.doomed_packets(dying_links, dying_node);
        // 2. Mark the damage.
        {
            let f = self.faults.as_mut().expect("faults active");
            if let Some(node) = dying_node {
                f.mark_router_dead(NodeId::new(node as u16));
            } else if let Some(&(node, dir)) = dying_links.first() {
                f.mark_link_dead(&self.cfg, NodeId::new(node as u16), dir);
            }
        }
        // 3. Purge the doomed packets.
        for id in doomed {
            self.purge_packet(id);
        }
        // 4. Reroute the survivors.
        self.faults
            .as_mut()
            .expect("faults active")
            .rebuild_routes(&self.cfg);
        // 5. Safety net.
        self.purge_unroutable();
    }

    /// Packets the damage strands: any flit at a dying node, a dying
    /// destination, or — once the packet has committed flits into the
    /// fabric — any flit whose remaining route crosses the cut (flits
    /// behind it must follow the committed wormhole path). Packets still
    /// entirely in their source queue reroute freely and are kept.
    fn doomed_packets(
        &self,
        dying_links: &[(usize, Direction)],
        dying_node: Option<usize>,
    ) -> Vec<PacketId> {
        let locs = self.flit_locations();
        let mut doomed = Vec::new();
        for p in self.ledger.iter_in_flight() {
            if dying_node == Some(p.dest.index()) {
                doomed.push(p.id);
                continue;
            }
            let Some(entries) = locs.get(&p.id) else {
                continue;
            };
            let at_dying = dying_node.is_some_and(|dn| entries.iter().any(|&(n, _, _)| n == dn));
            let committed = entries.iter().any(|&(_, beyond, _)| beyond);
            let crosses = committed
                && entries
                    .iter()
                    .any(|&(n, _, cw)| self.route_crosses(n, cw, p.dest, dying_links, dying_node));
            if at_dying || crosses {
                doomed.push(p.id);
            }
        }
        doomed
    }

    /// Whether the current route from `from` toward `dest` traverses a
    /// dying link or router. Walks the pre-fault tables from turn-model
    /// state `west_ok`, so it must run before the damage is marked.
    fn route_crosses(
        &self,
        from: usize,
        west_ok: bool,
        dest: NodeId,
        dying_links: &[(usize, Direction)],
        dying_node: Option<usize>,
    ) -> bool {
        let mut here = from;
        let mut cw = west_ok;
        for _ in 0..=self.cfg.nodes() {
            if dying_node == Some(here) {
                return true;
            }
            let Some(port) = self.route_out(NodeId::new(here as u16), dest, cw) else {
                return true;
            };
            let Port::Dir(d) = port else {
                return false; // arrived
            };
            if dying_links.contains(&(here, d)) {
                return true;
            }
            cw = cw && d == Direction::West;
            here = neighbor(&self.cfg, NodeId::new(here as u16), d)
                .expect("route stays on the mesh")
                .index();
        }
        true // defensive: a non-terminating route counts as doomed
    }

    /// Where every in-flight packet's flits currently sit, as
    /// `(node, beyond_source, west_ok)` per flit. Source-queue flits are
    /// not yet committed to a path (and have taken no hops, so west is
    /// still open); everything else (local and directional VC buffers,
    /// latches, staged arrivals) follows the route that was current when
    /// the wormhole formed, with the turn-model state read off the input
    /// port it sits at.
    fn flit_locations(&self) -> BTreeMap<PacketId, Vec<(usize, bool, bool)>> {
        let mut map: BTreeMap<PacketId, Vec<(usize, bool, bool)>> = BTreeMap::new();
        for (n, sq) in self.sources.iter().enumerate() {
            for q in &sq.queues {
                for f in q {
                    map.entry(f.packet).or_default().push((n, false, true));
                }
            }
        }
        for (n, router) in self.routers.iter().enumerate() {
            for in_port in Port::ALL {
                let iu = &router.inputs[in_port.index()];
                for vc in 0..self.cfg.vcs_per_port {
                    for f in iu.vc(vc).iter() {
                        map.entry(f.packet)
                            .or_default()
                            .push((n, true, west_ok_from(in_port)));
                    }
                }
                if let Some(f) = iu.latch() {
                    map.entry(f.packet)
                        .or_default()
                        .push((n, true, west_ok_from(in_port)));
                }
            }
        }
        for a in &self.arrivals {
            map.entry(a.flit.packet)
                .or_default()
                .push((a.node, true, west_ok_from(a.in_port)));
        }
        map
    }

    /// Removes every trace of `packet` from the fabric, restoring the
    /// credits its flits and pending grants hold so the surviving
    /// topology keeps a closed credit ledger, and counts the loss in
    /// [`FaultStats`].
    fn purge_packet(&mut self, id: PacketId) {
        // Reservations: timeslots, reserved credits, guards.
        self.cancel_packet_from(id, 0, 0);
        // Pending grants: each consumed a downstream credit at commit
        // time while its flit still sits in the input buffer. Filtered
        // in place (order-preserving) so no replacement list is built.
        let mut i = 0;
        while i < self.grants.len() {
            let g = self.grants[i];
            if g.packet != id {
                i += 1;
                continue;
            }
            self.grants.remove(i);
            if g.out_port != Port::Local {
                self.routers[g.node]
                    .out_vc_mut(g.out_port.index(), g.vc)
                    .return_credit();
            }
        }
        // Source queues: flits not yet in the fabric hold no credits.
        for sq in &mut self.sources {
            for q in &mut sq.queues {
                q.retain(|f| f.packet != id);
            }
        }
        // Buffered flits and latches. A flit buffered at a directional
        // input occupies a slot the upstream router paid a credit for;
        // latch flits hold none (their buffer credit was returned when
        // the chain read them out).
        for n in 0..self.cfg.nodes() {
            let here = NodeId::new(n as u16);
            for in_port in Port::ALL {
                for vc in 0..self.cfg.vcs_per_port {
                    let removed = self.routers[n].inputs[in_port.index()]
                        .vc_mut(vc)
                        .remove_packet(id);
                    if removed > 0 {
                        if let Port::Dir(e) = in_port {
                            let up = neighbor(&self.cfg, here, e)
                                .expect("flit arrived from a real neighbor");
                            for _ in 0..removed {
                                self.routers[up.index()]
                                    .out_vc_mut(Port::Dir(e.opposite()).index(), vc)
                                    .return_credit();
                            }
                        }
                    }
                }
                let iu = &mut self.routers[n].inputs[in_port.index()];
                if iu.latch().is_some_and(|f| f.packet == id) {
                    iu.latch_take();
                }
                iu.latch_release(id, 0);
            }
            // Streams, port locks, ownership and guards.
            let router = &mut self.routers[n];
            for p in 0..Port::COUNT {
                if router.port_lock[p] == Some(id) {
                    router.port_lock[p] = None;
                }
                for vc in 0..self.cfg.vcs_per_port {
                    if router.active(p, vc).is_some_and(|st| st.packet == id) {
                        router.set_active(p, vc, None);
                    }
                    router.out_vc_mut(p, vc).release_owner(id);
                    router.guard_mut(p, vc).clear(id);
                }
            }
        }
        // Staged arrivals: the credit was consumed upstream at grant
        // time. Same in-place, order-preserving filter as the grants.
        let mut i = 0;
        while i < self.arrivals.len() {
            let a = self.arrivals[i];
            if a.flit.packet != id {
                i += 1;
                continue;
            }
            self.arrivals.remove(i);
            if let Port::Dir(e) = a.in_port {
                let here = NodeId::new(a.node as u16);
                let up = neighbor(&self.cfg, here, e).expect("arrival came from a real neighbor");
                self.routers[up.index()]
                    .out_vc_mut(Port::Dir(e.opposite()).index(), a.vc)
                    .return_credit();
            }
        }
        // Ledger, partial reassembly, loss accounting. With the
        // reliability overlay on, a purge is absorbed: the layer arms a
        // fast retransmit (NACK-on-purge) instead of the fault counters
        // recording a permanent loss.
        if let Some(p) = self.ledger.forget(id) {
            self.reasm[p.dest.index()].forget(id);
            let absorbed = self
                .reliable
                .as_mut()
                .is_some_and(|rel| rel.note_purged(id, self.now));
            if !absorbed {
                let f = self
                    .faults
                    .as_mut()
                    .expect("purges only run under fault injection");
                f.note_purged_packet(u64::from(p.len_flits));
            }
            #[cfg(feature = "obs")]
            self.emit(|| Event::PacketDropped {
                packet: id.0,
                flits: p.len_flits,
            });
        }
    }

    /// Purges any packet that can no longer reach its destination on the
    /// rebuilt topology. Redundant with the targeted doomed-set purge —
    /// kept as a safety net so a missed corner case degrades to counted
    /// loss, never to a stuck wormhole.
    fn purge_unroutable(&mut self) {
        let locs = self.flit_locations();
        let mut doomed = Vec::new();
        {
            let f = self.faults.as_ref().expect("faults active");
            for p in self.ledger.iter_in_flight() {
                let dest_dead = f.router_dead(p.dest.index());
                let unroutable = locs.get(&p.id).is_some_and(|entries| {
                    entries.iter().any(|&(n, _, cw)| {
                        self.route_out(NodeId::new(n as u16), p.dest, cw).is_none()
                    })
                });
                if dest_dead || unroutable {
                    doomed.push(p.id);
                }
            }
        }
        for id in doomed {
            self.purge_packet(id);
        }
    }

    // ------------------------------------------------------------------
    // Fault status & audit surface
    // ------------------------------------------------------------------

    /// Whether a fault plan is active on this network.
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// Whether `node`'s router is alive (always true without faults).
    pub fn node_alive(&self, node: NodeId) -> bool {
        self.faults
            .as_ref()
            .is_none_or(|f| !f.router_dead(node.index()))
    }

    /// Whether the directed link leaving `node` toward `dir` exists and
    /// is not permanently dead. Transient faults are invisible here: the
    /// control plane routes on topology, not on single-cycle glitches.
    pub fn link_alive(&self, node: NodeId, dir: Direction) -> bool {
        match &self.faults {
            Some(f) => f.link_usable_permanent(&self.cfg, node.index(), dir),
            None => neighbor(&self.cfg, node, dir).is_some(),
        }
    }

    /// Whether the control network at `node` is corrupting packets around
    /// the current cycle (PRA treats corruption as a drop).
    pub fn control_fault_at(&self, node: NodeId) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.control_fault_at(node.index()))
    }

    /// Records a control packet dropped because of a fault (called by the
    /// PRA control plane, which performs the drop itself).
    pub fn note_control_drop(&mut self) {
        if let Some(f) = self.faults.as_mut() {
            f.note_control_drop();
        }
    }

    /// Fault counters, when fault injection is active.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(|f| &f.stats)
    }

    /// The route a packet would take from `src` to `dest` on the current
    /// topology: XY while intact, the west-first detour once degraded,
    /// `None` when `dest` is unreachable.
    pub fn compute_route(&self, src: NodeId, dest: NodeId) -> Option<Route> {
        match &self.faults {
            Some(f) if f.degraded() => {
                let mut dirs = Vec::new();
                let mut here = src;
                let mut cw = true;
                for _ in 0..=self.cfg.nodes() {
                    match f.next_hop(here, dest, cw)? {
                        Port::Local => return Some(Route::from_dirs(&self.cfg, src, dest, dirs)),
                        Port::Dir(d) => {
                            dirs.push(d);
                            cw = cw && d == Direction::West;
                            here = neighbor(&self.cfg, here, d).expect("route stays on mesh");
                        }
                    }
                }
                None // defensive: next-hop tables never cycle
            }
            _ => Some(Route::compute(&self.cfg, src, dest)),
        }
    }

    /// Takes a full structural snapshot for the invariant watchdog:
    /// counts every flit the fabric should hold against the flits it
    /// actually holds, and closes the credit-conservation sum on every
    /// live link VC.
    pub fn audit_now(&self) -> AuditReport {
        let mut expected_flits = 0u64;
        let mut oldest_packet_age = 0u64;
        for p in self.ledger.iter_in_flight() {
            expected_flits += p.len_flits as u64;
            oldest_packet_age = oldest_packet_age.max(self.now.saturating_sub(p.created));
        }
        let mut present_flits = 0u64;
        for (n, router) in self.routers.iter().enumerate() {
            for in_port in Port::ALL {
                let iu = &router.inputs[in_port.index()];
                present_flits += iu.buffered_flits() as u64;
                if iu.latch().is_some() {
                    present_flits += 1;
                }
            }
            present_flits += self.reasm[n].accepted_flits();
            present_flits += self.sources[n]
                .queues
                .iter()
                .map(|q| q.len() as u64)
                .sum::<u64>();
        }
        present_flits += self.arrivals.len() as u64;

        // The reliability overlay tracks packets the ledger no longer
        // sees: a purged copy awaiting retransmission is a "gap" —
        // still in flight end to end, with zero flits in the fabric.
        let mut packets_in_flight = self.ledger.in_flight();
        let rel_stats = self.reliable.as_ref().map(|r| r.stats());
        if let Some(rel) = &self.reliable {
            packets_in_flight += rel.extra_in_flight();
            if let Some(created) = rel.oldest_unresolved_created() {
                oldest_packet_age = oldest_packet_age.max(self.now.saturating_sub(created));
            }
        }

        AuditReport {
            cycle: self.now,
            packets_in_flight,
            expected_flits,
            present_flits,
            delivered_packets: self.stats.delivered(),
            lost_packets: self.faults.as_ref().map_or(0, |f| f.stats.lost_packets),
            credit_violations: self.count_credit_violations(),
            oldest_packet_age,
            escalated_packets: rel_stats.map_or(0, |s| s.escalations),
            retransmits: rel_stats.map_or(0, |s| s.retransmits),
            reliability_horizon: self
                .reliable
                .as_ref()
                .map(|r| r.config().delivery_horizon()),
        }
    }

    /// Number of `(node, direction, vc)` lanes between live routers whose
    /// credit-conservation sum does not close: upstream credits +
    /// downstream occupancy + staged arrivals + credits in flight back +
    /// credits held by pending grants + credits destroyed by faults must
    /// equal the configured VC depth.
    fn count_credit_violations(&self) -> u64 {
        let mut violations = 0u64;
        for n in 0..self.cfg.nodes() {
            let here = NodeId::new(n as u16);
            if let Some(f) = &self.faults {
                if f.router_dead(n) {
                    continue;
                }
            }
            for dir in Direction::ALL {
                let Some(nb) = neighbor(&self.cfg, here, dir) else {
                    continue;
                };
                if let Some(f) = &self.faults {
                    if f.router_dead(nb.index()) {
                        continue;
                    }
                }
                let back = Port::Dir(dir.opposite());
                for vc in 0..self.cfg.vcs_per_port {
                    let credits =
                        self.routers[n].out_vc(Port::Dir(dir).index(), vc).credits() as u64;
                    let occupancy =
                        self.routers[nb.index()].inputs[back.index()].vc(vc).len() as u64;
                    let staged = self
                        .arrivals
                        .iter()
                        .filter(|a| a.node == nb.index() && a.in_port == back && a.vc == vc)
                        .count() as u64;
                    let in_flight_back = self
                        .credit_returns
                        .iter()
                        .filter(|cr| cr.node == n && cr.out_port == Port::Dir(dir) && cr.vc == vc)
                        .count() as u64;
                    let granted = self
                        .grants
                        .iter()
                        .filter(|g| g.node == n && g.out_port == Port::Dir(dir) && g.vc == vc)
                        .count() as u64;
                    let lost = self
                        .faults
                        .as_ref()
                        .map_or(0, |f| f.lost_credits(n, dir, vc));
                    let sum = credits + occupancy + staged + in_flight_back + granted + lost;
                    if sum != self.cfg.vc_depth as u64 {
                        violations += 1;
                    }
                }
            }
        }
        violations
    }

    /// Debug-build check of the activity-flag contract: a cleared flag
    /// must *prove* the absence of the state it gates (a stale `true`
    /// is allowed, a wrong `false` would silently skip work).
    #[cfg(debug_assertions)]
    fn assert_activity_flags(&self) {
        for (n, r) in self.routers.iter().enumerate() {
            debug_assert!(
                self.buffered_nodes[n] || !r.has_buffered_input(),
                "buffered_nodes[{n}] cleared while input VCs hold flits"
            );
            let resv_quiet = r.schedules.iter().all(OutputSchedule::is_empty)
                && r.inputs.iter().all(|iu| !iu.has_latch_claims());
            debug_assert!(
                self.resv_nodes[n] || resv_quiet,
                "resv_nodes[{n}] cleared while schedules or latch claims exist"
            );
            debug_assert!(
                self.source_nodes[n]
                    || self.sources[n]
                        .queues
                        .iter()
                        .all(std::collections::VecDeque::is_empty),
                "source_nodes[{n}] cleared while NI queues hold flits"
            );
        }
    }

    /// Whether the fabric is provably quiescent: with nothing in flight,
    /// staged, reserved, or claimed anywhere, a full [`Network::step`]
    /// mutates only the clock and cycle counter — every phase walks
    /// empty collections and the arbiters see no requests (and so never
    /// rotate). Fault plans disqualify outright (the fault clock itself
    /// advances every cycle). The cheap global checks run first; the
    /// per-router scan only runs when they all pass, which at any
    /// non-trivial load is rejected on the first test.
    fn is_quiescent(&self) -> bool {
        if self.faults.is_some()
            || self.reliable.is_some()
            || self.ledger.in_flight() != 0
            || !self.grants.is_empty()
            || !self.arrivals.is_empty()
            || !self.credit_returns.is_empty()
            || !self.resv_index.is_empty()
        {
            return false;
        }
        // `resv_index` empty does NOT imply the schedules are: a slot can
        // survive `cancel_packet_from` (seq/cycle asymmetry) after its
        // index entry is dropped, and it still expires — with stats
        // side effects — on a later step. Scan the schedules directly.
        // Buffered flits, latches and source queues are guaranteed empty
        // by flit conservation once `in_flight` is zero, but they are
        // cheap to confirm and this predicate must never be wrong.
        self.routers.iter().all(|r| {
            r.schedules.iter().all(OutputSchedule::is_empty)
                && r.inputs.iter().all(|iu| {
                    !iu.has_latch_claims() && iu.latch().is_none() && iu.buffered_flits() == 0
                })
        }) && self
            .sources
            .iter()
            .all(|s| s.queues.iter().all(std::collections::VecDeque::is_empty))
    }
}

impl Network for MeshNetwork {
    fn config(&self) -> &NocConfig {
        &self.cfg
    }

    fn now(&self) -> Cycle {
        self.now
    }

    fn inject(&mut self, packet: Packet) {
        // A dead or unreachable endpoint refuses the injection outright
        // (the NI knows its router died); refusals are counted, never
        // registered, so they do not distort delivery statistics.
        if let Some(f) = self.faults.as_mut() {
            if f.router_dead(packet.src.index())
                || f.router_dead(packet.dest.index())
                || (f.degraded() && f.next_hop(packet.src, packet.dest, true).is_none())
            {
                f.note_injection_refused();
                #[cfg(feature = "obs")]
                self.emit(|| Event::InjectionRefused {
                    node: packet.src.index() as u64,
                });
                return;
            }
        }
        let mut packet = packet;
        if packet.created == 0 {
            packet.created = self.now;
        }
        self.stats.record_injected(packet.class);
        #[cfg(feature = "obs")]
        self.emit(|| Event::PacketInjected {
            packet: packet.id.0,
            src: packet.src.index() as u64,
            dest: packet.dest.index() as u64,
            class: packet.class.vc() as u8,
            len: packet.len_flits,
        });
        self.idle = false;
        self.ledger.register(packet);
        self.source_nodes[packet.src.index()] = true;
        self.sources[packet.src.index()].enqueue_packet(&packet);
        if let Some(rel) = self.reliable.as_mut() {
            rel.track(&packet, self.now);
        }
    }

    // hot
    fn step(&mut self) {
        self.now += 1;
        self.stats.cycles += 1;
        if self.cancel.is_cancelled() {
            return; // the clock advanced; bounded loops still terminate
        }
        if self.skip_ahead && self.idle {
            // Quiescent fast path: a full step over an idle fabric would
            // mutate nothing beyond the clock (see `is_quiescent`), so
            // skip it. `idle` was proven at the end of the last full
            // step and is invalidated by every work-introducing call.
            return;
        }
        if self.faults.is_some() {
            self.apply_faults();
        }
        if self.reliable.is_some() {
            self.process_reliability();
        }
        self.apply_credit_returns();
        self.deliver_arrivals();
        self.inject_from_sources();
        let mut read_this_cycle = std::mem::take(&mut self.scratch.read_this_cycle);
        self.execute_grants(&mut read_this_cycle);
        self.execute_reservations(&read_this_cycle);
        read_this_cycle.clear();
        self.scratch.read_this_cycle = read_this_cycle;
        self.allocate();
        self.expire_reservations();
        #[cfg(debug_assertions)]
        self.assert_activity_flags();
        if self.skip_ahead && !self.idle {
            self.idle = self.is_quiescent();
        }
    }

    fn drain_delivered(&mut self) -> Vec<Delivered> {
        let mut out = Vec::new();
        self.drain_delivered_into(&mut out);
        out
    }

    fn drain_delivered_into(&mut self, out: &mut Vec<Delivered>) {
        let start = out.len();
        self.ledger.drain_into(out);
        for delivered in &out[start..] {
            // Purge any leftover PRA state for completed packets.
            let id = delivered.packet.id;
            if self.resv_index.contains_key(&id) {
                self.cancel_packet_from(id, 0, 0);
            }
        }
    }

    fn set_skip_ahead(&mut self, enabled: bool) {
        self.skip_ahead = enabled;
        if !enabled {
            self.idle = false;
        }
    }

    fn in_flight(&self) -> usize {
        // Gaps — tracked packets whose every copy was purged — are
        // still in flight end to end: a retransmission is pending.
        self.ledger.in_flight()
            + self
                .reliable
                .as_ref()
                .map_or(0, ReliableLayer::extra_in_flight)
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn audit(&self) -> Option<AuditReport> {
        Some(self.audit_now())
    }

    fn reliable_stats(&self) -> Option<ReliableStats> {
        self.reliable.as_ref().map(ReliableLayer::stats)
    }

    fn install_cancel(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    fn state_digest(&self) -> Option<u64> {
        let mut h = StateHasher::new();
        self.digest_state(&mut h);
        Some(h.finish())
    }

    #[cfg(feature = "obs")]
    fn install_obs(&mut self, sink: niobs::SharedSink) {
        self.obs.attach(sink);
    }
}

impl StateDigest for Router {
    fn digest_state(&self, h: &mut StateHasher) {
        for input in &self.inputs {
            input.digest_state(h);
        }
        // The flat `port * vcs + vc` layout iterates port-major, which is
        // exactly the nested order the digest has always used.
        for vc in &self.out_vcs {
            vc.digest_state(h);
        }
        for guard in &self.guards {
            guard.digest_state(h);
        }
        for sched in &self.schedules {
            sched.digest_state(h);
        }
        for slot in &self.active_out {
            match slot {
                None => h.write_u8(0),
                Some(s) => {
                    h.write_u8(1);
                    h.write_usize(s.out_port.index());
                    h.write_u64(s.packet.0);
                    h.write_u8(s.len);
                    h.write_u8(s.sent);
                }
            }
        }
        for lock in &self.port_lock {
            h.write_opt_u64(lock.map(|p| p.0));
        }
        for rr in self.sa_in.iter().chain(self.sa_out.iter()) {
            rr.digest_state(h);
        }
    }
}

impl StateDigest for MeshNetwork {
    fn digest_state(&self, h: &mut StateHasher) {
        h.write_u64(self.now);
        for router in &self.routers {
            router.digest_state(h);
        }
        for src in &self.sources {
            src.digest_state(h);
        }
        for reasm in &self.reasm {
            reasm.digest_state(h);
        }
        self.ledger.digest_state(h);
        h.write_usize(self.grants.len());
        for g in &self.grants {
            h.write_usize(g.node);
            h.write_usize(g.in_port.index());
            h.write_usize(g.vc);
            h.write_usize(g.out_port.index());
            h.write_u64(g.packet.0);
            h.write_u8(g.seq);
        }
        h.write_usize(self.arrivals.len());
        for a in &self.arrivals {
            h.write_usize(a.node);
            h.write_usize(a.in_port.index());
            h.write_usize(a.vc);
            a.flit.digest_state(h);
        }
        h.write_usize(self.credit_returns.len());
        for c in &self.credit_returns {
            h.write_usize(c.node);
            h.write_usize(c.out_port.index());
            h.write_usize(c.vc);
        }
        h.write_usize(self.resv_index.len());
        for (packet, locs) in &self.resv_index {
            h.write_u64(packet.0);
            h.write_usize(locs.len());
            for loc in locs {
                h.write_usize(loc.node);
                h.write_usize(loc.out_port.index());
                h.write_u64(loc.cycle);
            }
        }
        match &self.faults {
            None => h.write_u8(0),
            Some(f) => {
                h.write_u8(1);
                f.digest_state(h);
            }
        }
        // The reliability overlay writes NOTHING when absent — not even
        // a tag byte — so every digest trail recorded before the
        // subsystem existed stays byte-identical.
        if let Some(rel) = &self.reliable {
            rel.digest_state(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Direction;

    fn net() -> MeshNetwork {
        MeshNetwork::new(NocConfig::paper())
    }

    fn pkt(id: u64, src: u16, dest: u16, class: MessageClass, len: u8) -> Packet {
        Packet::new(
            PacketId(id),
            NodeId::new(src),
            NodeId::new(dest),
            class,
            len,
        )
    }

    #[test]
    fn class_priority_prefers_the_prioritised_class_at_a_contended_port() {
        // Two single-flit packets from different input ports race for
        // the same output link on the same cycle; with response
        // priority configured the response must win the first grant.
        let run = |priority: Option<[u8; 3]>| {
            let mut cfg = NocConfig::paper();
            cfg.class_priority = priority;
            let mut n = MeshNetwork::new(cfg);
            // Both route east through node 1 toward node 3.
            n.inject(pkt(1, 0, 3, MessageClass::Request, 1));
            n.inject(pkt(2, 1, 3, MessageClass::Response, 1));
            let d = n.run_to_drain(200);
            assert_eq!(d.len(), 2);
            let lat = |id: u64| {
                d.iter()
                    .find(|x| x.packet.id.0 == id)
                    .map(|x| x.delivered - x.packet.created)
                    .expect("delivered")
            };
            (lat(1), lat(2))
        };
        // Response class on VC2 must not be slower than the request
        // when it outranks it.
        let (req, rsp) = run(Some([0, 0, 9]));
        assert!(
            rsp <= req,
            "prioritised response ({rsp}) must not trail the request ({req})"
        );
        // And the default keeps working (both still arrive).
        let (req0, rsp0) = run(None);
        assert!(req0 > 0 && rsp0 > 0);
    }

    #[test]
    fn class_priority_reduces_prioritised_latency_under_load() {
        use crate::traffic::{Pattern, TrafficGen};
        // Under contended hotspot traffic, granting requests strict
        // priority must not make them slower than the class-oblivious
        // arbiter does (deterministic: same seed both runs).
        let run = |priority: Option<[u8; 3]>| {
            let mut cfg = NocConfig::paper();
            cfg.class_priority = priority;
            let mut n = MeshNetwork::new(cfg.clone());
            let mut gen = TrafficGen::new(cfg, Pattern::Hotspot(NodeId::new(27)), 0.02, 17)
                .response_fraction(0.5);
            for _ in 0..2_000 {
                gen.tick(&mut n);
                n.step();
                n.drain_delivered();
            }
            gen.stop();
            let deadline = n.now() + 50_000;
            while n.in_flight() > 0 && n.now() < deadline {
                n.step();
                n.drain_delivered();
            }
            n.stats().avg_latency_of(MessageClass::Request)
        };
        let plain = run(None);
        let prioritised = run(Some([9, 0, 0]));
        assert!(
            prioritised <= plain * 1.05,
            "request priority must not hurt requests: {prioritised} vs {plain}"
        );
    }

    #[test]
    fn zero_load_latency_single_flit() {
        let mut n = net();
        // (0,0) -> (3,0): 3 hops.
        n.inject(pkt(1, 0, 3, MessageClass::Request, 1));
        let d = n.run_to_drain(100);
        assert_eq!(d.len(), 1);
        // Injection into the VC during cycle 1, SA at 1, ST at 2, and so on:
        // two cycles per hop plus injection (1), ejection SA/ST (2) = +3.
        let lat = d[0].delivered - d[0].packet.created;
        assert_eq!(d[0].hops, 3);
        assert_eq!(lat, 2 * 3 + 3, "zero-load mesh latency");
    }

    #[test]
    fn zero_load_latency_scales_with_hops() {
        let mut lat = Vec::new();
        for dest in [1u16, 2, 4, 7] {
            let mut n = net();
            n.inject(pkt(1, 0, dest, MessageClass::Request, 1));
            let d = n.run_to_drain(200);
            lat.push(d[0].delivered - d[0].packet.created);
        }
        assert_eq!(lat, vec![5, 7, 11, 17]);
    }

    #[test]
    fn multi_flit_serialization_latency() {
        let mut n = net();
        n.inject(pkt(1, 0, 1, MessageClass::Response, 5));
        let d = n.run_to_drain(100);
        // Tail follows head by 4 cycles.
        assert_eq!(d[0].delivered - d[0].packet.created, 5 + 4);
    }

    #[test]
    fn xy_turn_packets_arrive() {
        let mut n = net();
        n.inject(pkt(1, 0, 63, MessageClass::Response, 5));
        let d = n.run_to_drain(200);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].hops, 14);
        assert_eq!(d[0].delivered - d[0].packet.created, 2 * 14 + 3 + 4);
    }

    #[test]
    fn many_random_packets_all_delivered() {
        use nistats::rng::Rng;
        let mut rng = Rng::new(7);
        let mut n = net();
        let mut sent = 0u64;
        for cycle in 0..2_000u64 {
            if cycle < 1_000 && rng.gen_bool(0.3) {
                let src = rng.gen_range_u16(0, 64);
                let mut dest = rng.gen_range_u16(0, 64);
                if dest == src {
                    dest = (dest + 1) % 64;
                }
                let class = match rng.gen_range_u8(0, 3) {
                    0 => MessageClass::Request,
                    1 => MessageClass::Coherence,
                    _ => MessageClass::Response,
                };
                let len = if class == MessageClass::Response {
                    5
                } else {
                    1
                };
                sent += 1;
                n.inject(pkt(sent, src, dest, class, len));
            }
            n.step();
        }
        let mut delivered = n.drain_delivered().len() as u64;
        delivered += n.run_to_drain(10_000).len() as u64;
        assert_eq!(delivered, sent, "every injected packet must arrive");
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn heavy_same_destination_contention_resolves() {
        let mut n = net();
        let mut id = 0;
        for src in 0..8u16 {
            for _ in 0..3 {
                id += 1;
                n.inject(pkt(id, src * 8, 63, MessageClass::Response, 5));
            }
        }
        let d = n.run_to_drain(20_000);
        assert_eq!(d.len() as u64, id);
    }

    #[test]
    fn per_class_isolation_no_cross_blocking_deadlock() {
        let mut n = net();
        // Saturate responses and check requests still flow.
        for i in 0..20u64 {
            n.inject(pkt(100 + i, 0, 63, MessageClass::Response, 5));
        }
        n.inject(pkt(1, 0, 63, MessageClass::Request, 1));
        let d = n.run_to_drain(20_000);
        assert_eq!(d.len(), 21);
    }

    #[test]
    fn stats_track_injections_and_deliveries() {
        let mut n = net();
        n.inject(pkt(1, 0, 5, MessageClass::Request, 1));
        n.inject(pkt(2, 3, 9, MessageClass::Response, 5));
        n.run_to_drain(200);
        let s = n.stats();
        assert_eq!(s.injected(), 2);
        assert_eq!(s.delivered(), 2);
        assert_eq!(s.flits_delivered[MessageClass::Response.vc()], 5);
        assert!(s.avg_latency() > 0.0);
        assert!(s.local_grants > 0);
        assert_eq!(s.reserved_moves, 0, "no PRA activity on the baseline");
    }

    #[test]
    fn install_hop_reserves_and_blocks_local_traffic() {
        let mut n = net();
        // Reserve node 1's east port at a future window for packet 99.
        let plan = HopPlan {
            node: NodeId::new(1),
            out_port: Port::Dir(Direction::East),
            start: 10,
            packet: PacketId(99),
            len: 5,
            class: MessageClass::Response,
            source: FlitSource::Vc {
                port: Port::Dir(Direction::West),
                vc: 2,
            },
            landing: Landing::Vc(2),
            reserve: 5,
        };
        n.install_hop(&plan).unwrap();
        assert!(n
            .schedule(NodeId::new(1), Port::Dir(Direction::East))
            .is_reserved(10));
        assert_eq!(
            n.out_vc(NodeId::new(1), Port::Dir(Direction::East), 2)
                .reserved(),
            5
        );
        assert_eq!(
            n.guard(
                NodeId::new(1),
                Port::Dir(Direction::East),
                MessageClass::Response
            )
            .holder(),
            Some(PacketId(99))
        );
        // Conflicting plan by another packet fails.
        let mut plan2 = plan;
        plan2.packet = PacketId(100);
        assert_eq!(n.check_hop(&plan2), Err(InstallError::SlotTaken));
        // Same port, disjoint window, but the downstream VC is exhausted.
        plan2.start = 20;
        assert_eq!(n.check_hop(&plan2), Err(InstallError::NoDownstreamBuffer));
    }

    #[test]
    fn wasted_reservation_expires_and_releases() {
        let mut n = net();
        let plan = HopPlan {
            node: NodeId::new(1),
            out_port: Port::Dir(Direction::East),
            start: 5,
            packet: PacketId(99),
            len: 2,
            class: MessageClass::Response,
            source: FlitSource::Vc {
                port: Port::Dir(Direction::West),
                vc: 2,
            },
            landing: Landing::Vc(2),
            reserve: 2,
        };
        n.install_hop(&plan).unwrap();
        for _ in 0..10 {
            n.step();
        }
        let s = n.stats();
        assert_eq!(s.wasted_reservations, 2, "both slots expired unused");
        assert_eq!(
            n.out_vc(NodeId::new(1), Port::Dir(Direction::East), 2)
                .reserved(),
            0,
            "reserved credits released"
        );
        assert_eq!(
            n.guard(
                NodeId::new(1),
                Port::Dir(Direction::East),
                MessageClass::Response
            )
            .holder(),
            None,
            "guard released"
        );
    }

    #[test]
    fn forced_single_hop_move_executes() {
        let mut n = net();
        // Packet from node 0 to node 2. Pre-allocate the first hop
        // (node 0 east at the cycle its head would otherwise wait for SA).
        let p = pkt(1, 0, 2, MessageClass::Request, 1);
        n.inject(p);
        // Injection lands the flit in node 0's local VC during cycle 1; a
        // forced move can use it at cycle 2 at the earliest... reserve
        // cycle 2 on node 0's east port.
        let plan = HopPlan {
            node: NodeId::new(0),
            out_port: Port::Dir(Direction::East),
            start: 2,
            packet: PacketId(1),
            len: 1,
            class: MessageClass::Request,
            source: FlitSource::Vc {
                port: Port::Local,
                vc: 0,
            },
            landing: Landing::Vc(0),
            reserve: 1,
        };
        n.install_hop(&plan).unwrap();
        let d = n.run_to_drain(100);
        assert_eq!(d.len(), 1);
        assert!(n.stats().reserved_moves >= 1);
        assert_eq!(n.stats().wasted_reservations, 0);
        // A single pre-allocated hop saves nothing at zero load (the
        // speculative pipeline is just as fast); the win comes from
        // multi-hop chains and loaded ports. Latency matches the baseline.
        assert_eq!(d[0].delivered - d[0].packet.created, 7);
    }

    #[test]
    fn forced_two_hop_chain_executes() {
        let mut n = net();
        let p = pkt(1, 0, 2, MessageClass::Request, 1);
        n.inject(p);
        // Chain: node0 east (source VC, landing bypass) + node1 east
        // (source bypass, landing VC at node 2) both at cycle 2.
        n.install_hop(&HopPlan {
            node: NodeId::new(0),
            out_port: Port::Dir(Direction::East),
            start: 2,
            packet: PacketId(1),
            len: 1,
            class: MessageClass::Request,
            source: FlitSource::Vc {
                port: Port::Local,
                vc: 0,
            },
            landing: Landing::Bypass,
            reserve: 1,
        })
        .unwrap();
        n.install_hop(&HopPlan {
            node: NodeId::new(1),
            out_port: Port::Dir(Direction::East),
            start: 2,
            packet: PacketId(1),
            len: 1,
            class: MessageClass::Request,
            source: FlitSource::Bypass {
                from: Direction::West,
            },
            landing: Landing::Vc(0),
            reserve: 1,
        })
        .unwrap();
        let d = n.run_to_drain(100);
        assert_eq!(d.len(), 1);
        assert_eq!(n.stats().wasted_reservations, 0);
        // Two hops in one cycle: arrival at node 2's VC at cycle 3,
        // ejection SA at 4, delivery at 5 — vs 12 for the plain mesh.
        assert_eq!(d[0].delivered - d[0].packet.created, 5);
    }

    #[test]
    fn stalled_heads_reports_deterministic_drain() {
        let mut n = net();
        // A long response streams 0 -> 7 along row 0; a request injected at
        // node 1 a little later wants the same east port while the
        // response's port lock holds it.
        n.inject(pkt(1, 0, 7, MessageClass::Response, 5));
        for _ in 0..3 {
            n.step();
        }
        n.inject(pkt(2, 1, 5, MessageClass::Request, 1));
        let mut seen = false;
        let mut predicted: Option<(Cycle, Cycle)> = None; // (observed_at, finish)
        for _ in 0..60 {
            n.step();
            for (node, in_port, _, flit, out_port, blocker, finish) in n.stalled_heads() {
                if flit.packet == PacketId(2) && blocker == PacketId(1) {
                    assert_eq!(out_port, Port::Dir(Direction::East));
                    assert_eq!(node, NodeId::new(1));
                    assert_eq!(in_port, Port::Local);
                    if let Some(f) = finish {
                        seen = true;
                        predicted.get_or_insert((n.now(), f));
                    }
                }
            }
        }
        assert!(
            seen,
            "the blocked request must be reported with a drain time"
        );
        let (at, finish) = predicted.unwrap();
        assert!(finish > at, "drain prediction lies in the future");
        let mut d = n.drain_delivered();
        d.extend(n.run_to_drain(1_000));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn source_backlog_visibility() {
        let mut n = net();
        assert_eq!(n.source_backlog(NodeId::new(0), MessageClass::Response), 0);
        n.inject(pkt(1, 0, 5, MessageClass::Response, 5));
        assert_eq!(n.source_backlog(NodeId::new(0), MessageClass::Response), 5);
        n.step();
        // One flit moved into the VC; backlog counts both queue and VC.
        assert_eq!(n.source_backlog(NodeId::new(0), MessageClass::Response), 5);
    }
}
