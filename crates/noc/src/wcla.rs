//! Worst-case latency analysis (WCLA) for wormhole meshes.
//!
//! Static, buffer-aware per-flow latency bounds in the style of
//! Giroudot & Mifdaoui's graph-based analysis of wormhole NoCs under
//! bursty traffic: every flow's bound accounts for
//!
//! * **direct contention** — flows sharing a physical link with the
//!   flow under analysis, charged by their full burst allowance
//!   (σ·L flits per contender on every shared link);
//! * **indirect contention** — flows that do not touch the flow's route
//!   but delay its direct contenders, folded in as the worst direct
//!   interference burst (`route jitter`) among the contenders on each
//!   shared link;
//! * **buffer-aware backpressure** — a blocked wormhole packet spans up
//!   to `ceil(L/vc_depth)` routers, so one unit of interference can
//!   stall the flow across that many hops (the β multiplier);
//! * **busy-period amplification** — interference on a link loaded at
//!   utilisation ρ is served over `1/(1−ρ)` of its raw duration.
//!
//! The analysis is *conservative by construction* and refuses to emit a
//! bound when any contended link's utilisation reaches
//! [`UTILIZATION_LIMIT`] — beyond that, wormhole queues grow without
//! bound and no finite worst case exists. It is exercised end-to-end by
//! the `analyzer::wcla` property suite (simulated max latency ≤ bound
//! on every covered scenario) and by `sweep --check-bounds`.
//!
//! The module deliberately lives in `noc` (not `crates/analyzer`) so the
//! sweep runner can gate points against bounds without a dependency
//! cycle; `analyzer::wcla` wraps it with routing-verification and the
//! property tests.

use std::collections::BTreeMap;

use crate::config::NocConfig;
use crate::routing::Route;
use crate::traffic::{InjectionProcess, Pattern};
use crate::types::{Direction, MessageClass, NodeId};

/// Links loaded at or above this flit utilisation are refused: the
/// busy-period argument needs strictly sub-unit load, and the margin
/// keeps the `1/(1−ρ)` amplification factor finite and sane.
pub const UTILIZATION_LIMIT: f64 = 0.8;

/// A directed physical link in the analysed topology, including the
/// injection and ejection links that model source queueing and sink
/// serialisation. `Ord` so link tables iterate deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Link {
    /// NI → router at `NodeId` (source serialisation).
    Inject(u16),
    /// Router → NI at `NodeId` (sink serialisation).
    Eject(u16),
    /// Router `NodeId` → neighbour in `Direction`.
    Wire(u16, Direction),
}

impl std::fmt::Display for Link {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Link::Inject(n) => write!(f, "inject@{n}"),
            Link::Eject(n) => write!(f, "eject@{n}"),
            Link::Wire(n, d) => write!(f, "{n}->{d:?}"),
        }
    }
}

/// One analysed traffic flow: a (source, destination, class) stream
/// with a token-bucket-style arrival envelope of at most
/// `sigma_pkts + rho·t` packets in any window of `t` cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Source node.
    pub src: NodeId,
    /// Destination node (must differ from `src`).
    pub dest: NodeId,
    /// Message class carried by the flow.
    pub class: MessageClass,
    /// Burst allowance in packets (≥ 1): the most packets the flow can
    /// emit back-to-back.
    pub sigma_pkts: u64,
    /// Long-run mean rate in packets/cycle.
    pub rho: f64,
    /// Packet length in flits.
    pub len_flits: u8,
}

/// Why the analysis refused to produce bounds.
#[must_use]
#[derive(Debug, Clone, PartialEq)]
pub enum WclaError {
    /// A link's long-run flit load reaches [`UTILIZATION_LIMIT`]; no
    /// finite worst case exists (or the margin is too thin to trust).
    Overloaded {
        /// The saturated link.
        link: Link,
        /// Its flit utilisation (flits/cycle).
        utilization: f64,
    },
    /// A flow is malformed (self-loop, zero-length packet, bad rate…).
    BadFlow {
        /// Index into the flow list.
        index: usize,
        /// Human-readable reason.
        message: String,
    },
    /// The flow set cannot be derived (e.g. an unbounded Bernoulli
    /// process has no finite burst).
    UnboundedProcess,
}

impl std::fmt::Display for WclaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WclaError::Overloaded { link, utilization } => write!(
                f,
                "link {link} is loaded at {utilization:.3} flits/cycle (limit {UTILIZATION_LIMIT}); \
                 no finite worst-case latency exists"
            ),
            WclaError::BadFlow { index, message } => write!(f, "flow {index}: {message}"),
            WclaError::UnboundedProcess => f.write_str(
                "the injection process has no finite burst bound (Bernoulli); \
                 worst-case analysis needs a bounded process",
            ),
        }
    }
}

impl std::error::Error for WclaError {}

/// The analytical worst case for one flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowBound {
    /// Index into the analysed flow list.
    pub flow: usize,
    /// Route length in hops.
    pub hops: usize,
    /// Zero-load latency component in cycles.
    pub zero_load: u64,
    /// Total bound in cycles (zero-load + contention + backpressure).
    pub bound: u64,
}

/// Result of a successful analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct WclaReport {
    /// Per-flow bounds, in flow-list order.
    pub bounds: Vec<FlowBound>,
    /// Worst link utilisation observed (flits/cycle).
    pub max_utilization: f64,
    /// Number of distinct links carrying traffic.
    pub links: usize,
}

impl WclaReport {
    /// The worst bound among flows of `class`, if any flow carries it.
    pub fn class_bound(&self, flows: &[FlowSpec], class: MessageClass) -> Option<u64> {
        self.bounds
            .iter()
            .filter(|b| flows.get(b.flow).map(|f| f.class) == Some(class))
            .map(|b| b.bound)
            .max()
    }
}

/// Links traversed by a flow, in route order: injection, one wire per
/// hop, ejection.
fn flow_links(cfg: &NocConfig, flow: &FlowSpec) -> Vec<Link> {
    let route = Route::compute(cfg, flow.src, flow.dest);
    let mut links = Vec::with_capacity(route.hops() + 2);
    links.push(Link::Inject(flow.src.index() as u16));
    for hop in 0..route.hops() {
        let here = route.node_at(cfg, hop);
        if let Some(dir) = route.dir_at(hop) {
            links.push(Link::Wire(here.index() as u16, dir));
        }
    }
    links.push(Link::Eject(flow.dest.index() as u16));
    links
}

/// Zero-load latency of a flow on the wormhole mesh: two cycles per hop
/// (switch allocation + traversal), three cycles of injection/ejection
/// overhead, plus tail serialisation.
fn zero_load_latency(hops: usize, len_flits: u8) -> u64 {
    2 * hops as u64 + 3 + u64::from(len_flits).saturating_sub(1)
}

fn validate_flows(cfg: &NocConfig, flows: &[FlowSpec]) -> Result<(), WclaError> {
    for (index, f) in flows.iter().enumerate() {
        if f.src == f.dest {
            return Err(WclaError::BadFlow {
                index,
                message: "source equals destination".to_string(),
            });
        }
        if f.src.index() >= cfg.nodes() || f.dest.index() >= cfg.nodes() {
            return Err(WclaError::BadFlow {
                index,
                message: "endpoint outside the mesh".to_string(),
            });
        }
        if f.len_flits == 0 || f.len_flits > cfg.max_packet_len {
            return Err(WclaError::BadFlow {
                index,
                message: format!(
                    "packet length {} outside 1..={}",
                    f.len_flits, cfg.max_packet_len
                ),
            });
        }
        if f.sigma_pkts == 0 {
            return Err(WclaError::BadFlow {
                index,
                message: "burst allowance must be at least 1 packet".to_string(),
            });
        }
        if !f.rho.is_finite() || f.rho <= 0.0 || f.rho > 1.0 {
            return Err(WclaError::BadFlow {
                index,
                message: format!("rate {} outside (0, 1]", f.rho),
            });
        }
    }
    Ok(())
}

/// Computes a conservative worst-case latency bound for every flow.
///
/// # Errors
///
/// [`WclaError::BadFlow`] for malformed flows and
/// [`WclaError::Overloaded`] when any link's long-run flit utilisation
/// reaches [`UTILIZATION_LIMIT`] (no finite bound exists).
pub fn analyze_flows(cfg: &NocConfig, flows: &[FlowSpec]) -> Result<WclaReport, WclaError> {
    validate_flows(cfg, flows)?;

    // Per-link aggregates over all flows crossing it.
    #[derive(Default)]
    struct LinkLoad {
        /// Long-run flit utilisation Σ ρ·L.
        rho_flits: f64,
        /// Aggregate burst Σ σ·L in flits.
        sigma_flits: u64,
    }
    let all_links: Vec<Vec<Link>> = flows.iter().map(|f| flow_links(cfg, f)).collect();
    let mut loads: BTreeMap<Link, LinkLoad> = BTreeMap::new();
    for (f, links) in flows.iter().zip(&all_links) {
        for link in links {
            let entry = loads.entry(*link).or_default();
            entry.rho_flits += f.rho * f64::from(f.len_flits);
            entry.sigma_flits += f.sigma_pkts * u64::from(f.len_flits);
        }
    }
    let mut max_utilization = 0.0f64;
    for (link, load) in &loads {
        max_utilization = max_utilization.max(load.rho_flits);
        if load.rho_flits >= UTILIZATION_LIMIT {
            return Err(WclaError::Overloaded {
                link: *link,
                utilization: load.rho_flits,
            });
        }
    }

    // Backpressure factor: a blocked packet of the longest contending
    // length spans ceil(L/vc_depth) routers, so one flit of
    // interference can stall a flow across that many hops at once.
    let max_len = flows
        .iter()
        .map(|f| u64::from(f.len_flits))
        .max()
        .unwrap_or(1);
    let beta = 1 + max_len.div_ceil(u64::from(cfg.vc_depth.max(1)));

    // Route jitter of a flow: the direct interference burst it can
    // absorb along its own route (used as the indirect-contention
    // surrogate for flows it delays elsewhere).
    let route_jitter: Vec<u64> = flows
        .iter()
        .zip(&all_links)
        .map(|(f, links)| {
            links
                .iter()
                .map(|link| {
                    let total = loads.get(link).map(|l| l.sigma_flits).unwrap_or(0);
                    total.saturating_sub(f.sigma_pkts * u64::from(f.len_flits))
                })
                .sum()
        })
        .collect();
    // Worst route jitter among the flows crossing each link.
    let mut link_jitter: BTreeMap<Link, u64> = BTreeMap::new();
    for (idx, links) in all_links.iter().enumerate() {
        for link in links {
            let slot = link_jitter.entry(*link).or_insert(0);
            *slot = (*slot).max(route_jitter[idx]);
        }
    }

    let mut bounds = Vec::with_capacity(flows.len());
    for (idx, (f, links)) in flows.iter().zip(&all_links).enumerate() {
        let hops = links.len() - 2;
        let zero_load = zero_load_latency(hops, f.len_flits);
        // Queueing behind the flow's own earlier burst packets.
        let own_flits = f.sigma_pkts * u64::from(f.len_flits);
        let self_burst = own_flits - u64::from(f.len_flits);
        let mut contention = 0u64;
        for link in links {
            let Some(load) = loads.get(link) else {
                continue;
            };
            let direct = load.sigma_flits.saturating_sub(own_flits);
            let indirect = link_jitter.get(link).copied().unwrap_or(0);
            let raw = beta * (direct + indirect);
            // Busy-period amplification on a ρ-loaded link.
            let amplified = (raw as f64 / (1.0 - load.rho_flits)).ceil();
            contention += amplified as u64;
        }
        bounds.push(FlowBound {
            flow: idx,
            hops,
            zero_load,
            bound: zero_load + self_burst + contention,
        });
    }

    Ok(WclaReport {
        bounds,
        max_utilization,
        links: loads.len(),
    })
}

/// The deliberately *unsound* bound a first implementation might ship:
/// it assumes every contender holds exactly one flit (ignoring burst
/// allowances), no buffer backpressure (β = 1) and no busy-period
/// amplification. Kept as the bug double the `analyzer::wcla` property
/// suite must refute — bursty traffic demonstrably exceeds it.
///
/// # Errors
///
/// Same validation failures as [`analyze_flows`]; never refuses on
/// utilisation (part of what makes it unsound).
pub fn naive_bound(cfg: &NocConfig, flows: &[FlowSpec]) -> Result<Vec<FlowBound>, WclaError> {
    validate_flows(cfg, flows)?;
    let all_links: Vec<Vec<Link>> = flows.iter().map(|f| flow_links(cfg, f)).collect();
    let mut crossing: BTreeMap<Link, u64> = BTreeMap::new();
    for links in &all_links {
        for link in links {
            *crossing.entry(*link).or_insert(0) += 1;
        }
    }
    Ok(flows
        .iter()
        .zip(&all_links)
        .enumerate()
        .map(|(idx, (f, links))| {
            let hops = links.len() - 2;
            let zero_load = zero_load_latency(hops, f.len_flits);
            let contention: u64 = links
                .iter()
                .map(|link| crossing.get(link).copied().unwrap_or(1) - 1)
                .sum();
            FlowBound {
                flow: idx,
                hops,
                zero_load,
                bound: zero_load + contention,
            }
        })
        .collect())
}

/// Derives the flow set a synthetic `(pattern, process, rate,
/// response_fraction)` workload offers, for use with
/// [`analyze_flows`]. Requests are single-flit, responses are
/// `cfg.max_packet_len` flits, and each flow's burst allowance is the
/// process's per-node burst bound (conservatively assigned in full to
/// every flow of the node, since a whole burst may target one
/// destination).
///
/// # Errors
///
/// [`WclaError::UnboundedProcess`] for the Bernoulli process, whose
/// bursts have no finite bound.
pub fn flows_for_pattern(
    cfg: &NocConfig,
    pattern: Pattern,
    process: InjectionProcess,
    rate: f64,
    response_fraction: f64,
) -> Result<Vec<FlowSpec>, WclaError> {
    let Some(burst) = process.burst_bound() else {
        return Err(WclaError::UnboundedProcess);
    };
    let sigma = burst.max(1) + 1; // +1: a new burst can start right after.
    let nodes = cfg.nodes();
    let mut flows = Vec::new();
    let mut push = |src: usize, dest: usize, share: f64| {
        if src == dest {
            return;
        }
        let req_rate = rate * share * (1.0 - response_fraction);
        let rsp_rate = rate * share * response_fraction;
        if req_rate > 0.0 {
            flows.push(FlowSpec {
                src: NodeId::new(src as u16),
                dest: NodeId::new(dest as u16),
                class: MessageClass::Request,
                sigma_pkts: sigma,
                rho: req_rate,
                len_flits: 1,
            });
        }
        if rsp_rate > 0.0 {
            flows.push(FlowSpec {
                src: NodeId::new(src as u16),
                dest: NodeId::new(dest as u16),
                class: MessageClass::Response,
                sigma_pkts: sigma,
                rho: rsp_rate,
                len_flits: cfg.max_packet_len,
            });
        }
    };
    match pattern {
        Pattern::UniformRandom | Pattern::CoreToLlc => {
            let share = 1.0 / (nodes as f64 - 1.0);
            for src in 0..nodes {
                for dest in 0..nodes {
                    push(src, dest, share);
                }
            }
        }
        Pattern::Transpose => {
            for src in 0..nodes {
                let c = cfg.coord(NodeId::new(src as u16));
                let t = crate::types::Coord::new(c.y, c.x);
                let mut dest = cfg.node_at(t).index();
                if dest == src {
                    dest = (src + 1) % nodes;
                }
                push(src, dest, 1.0);
            }
        }
        Pattern::Hotspot(h) => {
            for src in 0..nodes {
                push(src, h.index(), 1.0);
            }
        }
        Pattern::Complement => {
            for src in 0..nodes {
                push(src, (src + nodes / 2) % nodes, 1.0);
            }
        }
    }
    Ok(flows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn radix4() -> NocConfig {
        crate::config::NocConfigBuilder::new()
            .radix(4)
            .build()
            .expect("radix-4 config")
    }

    fn flow(src: u16, dest: u16, class: MessageClass, len: u8) -> FlowSpec {
        FlowSpec {
            src: NodeId::new(src),
            dest: NodeId::new(dest),
            class,
            sigma_pkts: 4,
            rho: 0.01,
            len_flits: len,
        }
    }

    #[test]
    fn lone_flow_bound_is_near_zero_load() {
        let cfg = radix4();
        let flows = vec![flow(0, 3, MessageClass::Request, 1)];
        let report = analyze_flows(&cfg, &flows).expect("light load analyses");
        assert_eq!(report.bounds.len(), 1);
        assert_eq!(report.bounds[0].hops, 3);
        assert_eq!(report.bounds[0].zero_load, 9);
        // Only self-burst queueing on top of zero load.
        assert!(report.bounds[0].bound >= 9);
        assert!(report.bounds[0].bound <= 9 + 3 * 5);
    }

    #[test]
    fn contending_flows_raise_the_bound() {
        let cfg = radix4();
        let lone = analyze_flows(&cfg, &[flow(0, 3, MessageClass::Request, 1)])
            .expect("lone flow analyses");
        let contended = analyze_flows(
            &cfg,
            &[
                flow(0, 3, MessageClass::Request, 1),
                flow(1, 3, MessageClass::Response, 5),
                flow(2, 3, MessageClass::Response, 5),
            ],
        )
        .expect("contended set analyses");
        assert!(contended.bounds[0].bound > lone.bounds[0].bound);
    }

    #[test]
    fn overloaded_links_are_refused() {
        let cfg = radix4();
        // 15 response flows of 5 flits at 0.05 pkts/cycle into node 0:
        // ejection load 3.75 flits/cycle.
        let flows: Vec<FlowSpec> = (1..16)
            .map(|src| FlowSpec {
                rho: 0.05,
                ..flow(src, 0, MessageClass::Response, 5)
            })
            .collect();
        match analyze_flows(&cfg, &flows) {
            Err(WclaError::Overloaded { link, utilization }) => {
                assert_eq!(link, Link::Eject(0));
                assert!(utilization > UTILIZATION_LIMIT);
            }
            other => panic!("expected overload refusal, got {other:?}"),
        }
    }

    #[test]
    fn malformed_flows_are_rejected() {
        let cfg = radix4();
        let cases = [
            FlowSpec {
                dest: NodeId::new(0),
                ..flow(0, 0, MessageClass::Request, 1)
            },
            FlowSpec {
                len_flits: 0,
                ..flow(0, 1, MessageClass::Request, 1)
            },
            FlowSpec {
                sigma_pkts: 0,
                ..flow(0, 1, MessageClass::Request, 1)
            },
            FlowSpec {
                rho: 0.0,
                ..flow(0, 1, MessageClass::Request, 1)
            },
            FlowSpec {
                src: NodeId::new(99),
                ..flow(0, 1, MessageClass::Request, 1)
            },
        ];
        for bad in cases {
            assert!(
                matches!(
                    analyze_flows(&cfg, std::slice::from_ref(&bad)),
                    Err(WclaError::BadFlow { .. })
                ),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn naive_bound_is_tighter_than_the_sound_bound() {
        let cfg = radix4();
        let flows = vec![
            flow(0, 3, MessageClass::Request, 1),
            flow(1, 3, MessageClass::Response, 5),
            flow(2, 3, MessageClass::Response, 5),
        ];
        let sound = analyze_flows(&cfg, &flows).expect("sound analysis");
        let naive = naive_bound(&cfg, &flows).expect("naive analysis");
        for (s, n) in sound.bounds.iter().zip(&naive) {
            assert!(
                n.bound <= s.bound,
                "naive {} must not exceed sound {}",
                n.bound,
                s.bound
            );
        }
    }

    #[test]
    fn pattern_flow_derivation() {
        let cfg = radix4();
        let process = InjectionProcess::OnOff {
            on_len: 4,
            off_len: 28,
        };
        let flows = flows_for_pattern(&cfg, Pattern::Hotspot(NodeId::new(5)), process, 0.01, 0.5)
            .expect("bounded process derives flows");
        // 15 sources × 2 classes.
        assert_eq!(flows.len(), 30);
        assert!(flows.iter().all(|f| f.dest == NodeId::new(5)));
        assert!(flows.iter().all(|f| f.sigma_pkts == 5));
        let uniform = flows_for_pattern(&cfg, Pattern::UniformRandom, process, 0.01, 0.5)
            .expect("uniform derives flows");
        assert_eq!(uniform.len(), 16 * 15 * 2);
        assert!(matches!(
            flows_for_pattern(
                &cfg,
                Pattern::UniformRandom,
                InjectionProcess::Bernoulli,
                0.01,
                0.5
            ),
            Err(WclaError::UnboundedProcess)
        ));
    }

    #[test]
    fn class_bound_selects_per_class_maxima() {
        let cfg = radix4();
        let flows = vec![
            flow(0, 3, MessageClass::Request, 1),
            flow(12, 15, MessageClass::Response, 5),
        ];
        let report = analyze_flows(&cfg, &flows).expect("analyses");
        let req = report
            .class_bound(&flows, MessageClass::Request)
            .expect("request bound");
        let rsp = report
            .class_bound(&flows, MessageClass::Response)
            .expect("response bound");
        assert!(rsp > req, "longer packets bound higher: {rsp} vs {req}");
        assert_eq!(report.class_bound(&flows, MessageClass::Coherence), None);
    }
}
