//! Packets and flits.
//!
//! A [`Packet`] is the unit of transfer requested by a client (a network
//! interface); a [`Flit`] is the unit of flow control inside the network.
//! Flits carry a copy of the routing-relevant packet fields so that the
//! simulator never chases pointers on the critical path.

use crate::types::{Cycle, MessageClass, NodeId, PacketId};

/// Position of a flit inside its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit of a multi-flit packet: carries routing information.
    Head,
    /// Intermediate flit of a multi-flit packet.
    Body,
    /// Last flit of a multi-flit packet: releases allocated resources.
    Tail,
    /// The only flit of a single-flit packet (head and tail at once).
    Single,
}

impl FlitKind {
    /// Whether this flit performs head duties (routing, VC allocation).
    pub const fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::Single)
    }

    /// Whether this flit performs tail duties (resource release).
    pub const fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::Single)
    }
}

/// A packet descriptor as seen by network clients.
///
/// # Examples
///
/// ```
/// use noc::flit::Packet;
/// use noc::types::{MessageClass, NodeId, PacketId};
///
/// let p = Packet::new(
///     PacketId(1),
///     NodeId::new(0),
///     NodeId::new(63),
///     MessageClass::Response,
///     5,
/// );
/// assert_eq!(p.len_flits, 5);
/// assert!(p.is_multi_flit());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Unique packet identifier.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Protocol message class (selects the virtual channel).
    pub class: MessageClass,
    /// Packet length in flits (≥ 1).
    pub len_flits: u8,
    /// Cycle at which the client handed the packet to the network interface.
    pub created: Cycle,
    /// Opaque client tag (e.g. an outstanding-miss identifier in the system
    /// model). The network carries it untouched.
    pub tag: u64,
}

impl Packet {
    /// Creates a packet descriptor with `created` and `tag` zeroed.
    ///
    /// # Panics
    ///
    /// Panics if `len_flits` is zero.
    pub fn new(
        id: PacketId,
        src: NodeId,
        dest: NodeId,
        class: MessageClass,
        len_flits: u8,
    ) -> Self {
        assert!(len_flits >= 1, "a packet must contain at least one flit");
        Packet {
            id,
            src,
            dest,
            class,
            len_flits,
            created: 0,
            tag: 0,
        }
    }

    /// Sets the creation cycle (builder style).
    pub fn at(mut self, created: Cycle) -> Self {
        self.created = created;
        self
    }

    /// Sets the opaque client tag (builder style).
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// Whether the packet occupies more than one flit.
    pub const fn is_multi_flit(&self) -> bool {
        self.len_flits > 1
    }

    /// The kind of the flit at position `seq` within this packet.
    ///
    /// # Panics
    ///
    /// Panics if `seq >= len_flits`.
    pub fn flit_kind(&self, seq: u8) -> FlitKind {
        assert!(seq < self.len_flits, "flit seq out of range");
        if self.len_flits == 1 {
            FlitKind::Single
        } else if seq == 0 {
            FlitKind::Head
        } else if seq == self.len_flits - 1 {
            FlitKind::Tail
        } else {
            FlitKind::Body
        }
    }

    /// Materialises flit `seq` of this packet.
    ///
    /// # Panics
    ///
    /// Panics if `seq >= len_flits`.
    pub fn flit(&self, seq: u8) -> Flit {
        Flit {
            packet: self.id,
            kind: self.flit_kind(seq),
            seq,
            src: self.src,
            dest: self.dest,
            class: self.class,
            len_flits: self.len_flits,
            created: self.created,
            injected: 0,
        }
    }

    /// Iterator over all flits of the packet in order.
    pub fn flits(&self) -> impl Iterator<Item = Flit> + '_ {
        (0..self.len_flits).map(move |s| self.flit(s))
    }
}

/// A single flit in flight or in a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Packet this flit belongs to.
    pub packet: PacketId,
    /// Head/body/tail/single marker.
    pub kind: FlitKind,
    /// Position of this flit within the packet (0-based).
    pub seq: u8,
    /// Source node of the packet.
    pub src: NodeId,
    /// Destination node of the packet.
    pub dest: NodeId,
    /// Message class of the packet.
    pub class: MessageClass,
    /// Total packet length in flits.
    pub len_flits: u8,
    /// Cycle the packet was handed to the source network interface.
    pub created: Cycle,
    /// Cycle the head flit entered the source router (set by the NI).
    pub injected: Cycle,
}

impl Flit {
    /// Whether this flit performs head duties.
    pub const fn is_head(&self) -> bool {
        self.kind.is_head()
    }

    /// Whether this flit performs tail duties.
    pub const fn is_tail(&self) -> bool {
        self.kind.is_tail()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(len: u8) -> Packet {
        Packet::new(
            PacketId(42),
            NodeId::new(1),
            NodeId::new(2),
            MessageClass::Response,
            len,
        )
    }

    #[test]
    fn single_flit_packet_is_head_and_tail() {
        let p = packet(1);
        let f = p.flit(0);
        assert_eq!(f.kind, FlitKind::Single);
        assert!(f.is_head() && f.is_tail());
        assert!(!p.is_multi_flit());
    }

    #[test]
    fn multi_flit_kinds() {
        let p = packet(5);
        let kinds: Vec<_> = p.flits().map(|f| f.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FlitKind::Head,
                FlitKind::Body,
                FlitKind::Body,
                FlitKind::Body,
                FlitKind::Tail
            ]
        );
        assert!(p.is_multi_flit());
    }

    #[test]
    fn flit_sequence_numbers_are_contiguous() {
        let p = packet(4);
        let seqs: Vec<_> = p.flits().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_packet_rejected() {
        let _ = packet(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_flit_rejected() {
        let p = packet(2);
        let _ = p.flit(2);
    }

    #[test]
    fn builder_setters() {
        let p = packet(1).at(99).with_tag(7);
        assert_eq!(p.created, 99);
        assert_eq!(p.tag, 7);
        assert_eq!(p.flit(0).created, 99);
    }
}
