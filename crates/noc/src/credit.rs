//! Output-side credit and virtual-channel ownership tracking.
//!
//! Every router output port tracks, per downstream virtual channel:
//!
//! * **credits** — free flit slots in the downstream buffer,
//! * **ownership** — which multi-flit packet is currently streaming into
//!   the downstream VC (wormhole contiguity), and
//! * **reservations** — credits and future use promised to a proactively
//!   allocated packet (PRA), unavailable to other traffic.
//!
//! Single-flit packets never take ownership: they are atomic and cannot
//! interleave, which is exactly why the paper lets short packets keep using
//! an output port whose message class is flagged for a proactively
//! allocated multi-flit packet.

use crate::types::{Cycle, PacketId};

/// Credit/ownership state for one downstream virtual channel, viewed from
/// the upstream router's output port.
#[derive(Debug, Clone)]
pub struct OutVc {
    depth: u8,
    credits: u8,
    /// Multi-flit packet currently streaming into the downstream VC.
    owner: Option<PacketId>,
    /// Credits promised to a proactively allocated packet.
    reserved: u8,
    /// Packet the reservation belongs to.
    reserved_for: Option<PacketId>,
    /// When `owner` is draining deterministically (all remaining flits
    /// buffered locally with sufficient credits), the cycle after which the
    /// VC is guaranteed free. Used by PRA allocation to grant future slots
    /// past the current stream.
    free_after: Option<Cycle>,
}

impl OutVc {
    /// Creates the state for a downstream VC of `depth` flits, fully
    /// credited.
    pub fn new(depth: u8) -> Self {
        OutVc {
            depth,
            credits: depth,
            owner: None,
            reserved: 0,
            reserved_for: None,
            free_after: None,
        }
    }

    /// Buffer depth of the downstream VC.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Raw credit count (free downstream slots, reserved or not).
    pub fn credits(&self) -> u8 {
        self.credits
    }

    /// Credits reserved for a proactively allocated packet.
    pub fn reserved(&self) -> u8 {
        self.reserved
    }

    /// The packet holding the reservation, if any.
    pub fn reserved_for(&self) -> Option<PacketId> {
        self.reserved_for
    }

    /// The multi-flit packet currently streaming into the downstream VC.
    pub fn owner(&self) -> Option<PacketId> {
        self.owner
    }

    /// Credits usable by `packet` right now: reserved credits are only
    /// usable by the reservation holder.
    pub fn usable_credits(&self, packet: PacketId) -> u8 {
        if self.reserved_for == Some(packet) {
            self.credits
        } else {
            self.credits.saturating_sub(self.reserved)
        }
    }

    /// Whether `packet` may send a flit into the downstream VC this cycle
    /// under normal (reactive) allocation. Heads of multi-flit packets must
    /// additionally pass [`OutVc::can_allocate`].
    pub fn can_send(&self, packet: PacketId) -> bool {
        self.usable_credits(packet) > 0
    }

    /// Whether a *head* flit of `packet` (multi-flit) may claim the VC.
    pub fn can_allocate(&self, packet: PacketId) -> bool {
        (self.owner.is_none() || self.owner == Some(packet)) && self.can_send(packet)
    }

    /// Claims VC ownership for a multi-flit packet.
    ///
    /// # Panics
    ///
    /// Panics if the VC is owned by a different packet (allocator bug).
    pub fn allocate(&mut self, packet: PacketId) {
        assert!(
            self.owner.is_none() || self.owner == Some(packet),
            "VC already owned by {:?} while allocating {packet}",
            self.owner
        );
        if self.owner != Some(packet) {
            // A drain prediction recorded for a previous owner must not
            // outlive it.
            self.free_after = None;
        }
        self.owner = Some(packet);
    }

    /// Consumes one credit as a flit of `packet` departs. Reserved credits
    /// are consumed first when the sender holds the reservation.
    ///
    /// # Panics
    ///
    /// Panics on credit underflow (flow-control bug).
    pub fn consume_credit(&mut self, packet: PacketId) {
        assert!(self.credits > 0, "credit underflow");
        self.credits -= 1;
        if self.reserved_for == Some(packet) && self.reserved > 0 {
            self.reserved -= 1;
            if self.reserved == 0 {
                self.reserved_for = None;
            }
        }
    }

    /// Returns one credit (the downstream buffer freed a slot).
    ///
    /// # Panics
    ///
    /// Panics if credits would exceed the buffer depth.
    pub fn return_credit(&mut self) {
        assert!(
            self.credits < self.depth,
            "credit overflow: more credits than buffer slots"
        );
        self.credits += 1;
    }

    /// Releases ownership when the tail flit has been sent.
    pub fn release_owner(&mut self, packet: PacketId) {
        if self.owner == Some(packet) {
            self.owner = None;
            self.free_after = None;
        }
    }

    /// Attempts to reserve `count` credits for a proactively allocated
    /// `packet` whose first flit will depart at `start`.
    ///
    /// Reservation succeeds when no other packet holds a reservation, the
    /// unreserved credits cover `count`, and the VC is either unowned or
    /// owned by a stream known (via [`OutVc::set_free_after`]) to finish
    /// before `start`. Ownership itself is *not* taken here — the
    /// port-level [`MultiFlitGuard`] keeps competing multi-flit heads away
    /// while still admitting single-flit packets, exactly as the paper's
    /// per-message-class flag does.
    ///
    /// Returns `true` on success.
    pub fn try_reserve(&mut self, packet: PacketId, count: u8, start: Cycle) -> bool {
        if let Some(holder) = self.reserved_for {
            if holder != packet {
                return false;
            }
        }
        let owner_ok = match self.owner {
            None => true,
            Some(p) if p == packet => true,
            Some(_) => multi_flit_owner_clears_by(self.free_after, start),
        };
        if !owner_ok {
            return false;
        }
        if self.credits.saturating_sub(self.reserved) < count {
            return false;
        }
        self.reserved += count;
        self.reserved_for = Some(packet);
        true
    }

    /// Releases `count` reserved credits of `packet` (ACK received: the
    /// landing moved further downstream, or the packet completed).
    pub fn release_reservation(&mut self, packet: PacketId, count: u8) {
        if self.reserved_for == Some(packet) {
            self.reserved = self.reserved.saturating_sub(count);
            if self.reserved == 0 {
                self.reserved_for = None;
            }
        }
    }

    /// Records that the current owner drains deterministically and the VC
    /// is free for traversals at cycles `>= cycle`.
    pub fn set_free_after(&mut self, cycle: Cycle) {
        self.free_after = Some(cycle);
    }

    /// The recorded deterministic-drain horizon, if any.
    pub fn free_after(&self) -> Option<Cycle> {
        self.free_after
    }
}

fn multi_flit_owner_clears_by(free_after: Option<Cycle>, start: Cycle) -> bool {
    matches!(free_after, Some(c) if c <= start)
}

/// Per-output-port guard preventing two multi-flit packets from
/// interleaving when one of them holds a proactive reservation
/// (the paper's "special flag corresponding to the message class").
#[derive(Debug, Clone, Default)]
pub struct MultiFlitGuard {
    holder: Option<PacketId>,
}

impl MultiFlitGuard {
    /// Creates a clear guard.
    pub fn new() -> Self {
        MultiFlitGuard::default()
    }

    /// Whether a multi-flit `packet` may use the port's message class.
    /// Single-flit packets bypass the guard entirely.
    pub fn admits(&self, packet: PacketId) -> bool {
        self.holder.is_none() || self.holder == Some(packet)
    }

    /// The packet holding the guard, if any.
    pub fn holder(&self) -> Option<PacketId> {
        self.holder
    }

    /// Sets the guard for `packet`.
    pub fn set(&mut self, packet: PacketId) {
        self.holder = Some(packet);
    }

    /// Clears the guard if held by `packet`.
    pub fn clear(&mut self, packet: PacketId) {
        if self.holder == Some(packet) {
            self.holder = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PacketId = PacketId(1);
    const Q: PacketId = PacketId(2);

    #[test]
    fn fresh_vc_is_fully_credited() {
        let vc = OutVc::new(5);
        assert_eq!(vc.credits(), 5);
        assert!(vc.can_allocate(P));
        assert!(vc.can_send(P));
    }

    #[test]
    fn credit_consume_return_round_trip() {
        let mut vc = OutVc::new(2);
        vc.consume_credit(P);
        vc.consume_credit(P);
        assert!(!vc.can_send(P));
        vc.return_credit();
        assert!(vc.can_send(P));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn credit_underflow_panics() {
        let mut vc = OutVc::new(1);
        vc.consume_credit(P);
        vc.consume_credit(P);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn credit_overflow_panics() {
        let mut vc = OutVc::new(1);
        vc.return_credit();
    }

    #[test]
    fn ownership_blocks_other_multiflit_heads() {
        let mut vc = OutVc::new(5);
        vc.allocate(P);
        assert!(!vc.can_allocate(Q));
        assert!(vc.can_allocate(P));
        vc.release_owner(P);
        assert!(vc.can_allocate(Q));
    }

    #[test]
    fn reservation_hides_credits_from_others() {
        let mut vc = OutVc::new(5);
        assert!(vc.try_reserve(P, 5, 10));
        assert_eq!(vc.usable_credits(Q), 0);
        assert_eq!(vc.usable_credits(P), 5);
        assert!(!vc.can_send(Q));
        assert!(vc.can_send(P));
    }

    #[test]
    fn partial_reservation_leaves_credits_for_singles() {
        let mut vc = OutVc::new(5);
        assert!(vc.try_reserve(P, 3, 10));
        assert_eq!(vc.usable_credits(Q), 2);
    }

    #[test]
    fn reservation_fails_when_credits_short() {
        let mut vc = OutVc::new(5);
        vc.consume_credit(Q);
        assert!(!vc.try_reserve(P, 5, 10));
        assert!(vc.try_reserve(P, 4, 10));
    }

    #[test]
    fn reservation_fails_against_unknown_owner_drain() {
        let mut vc = OutVc::new(5);
        vc.allocate(Q);
        assert!(!vc.try_reserve(P, 2, 10));
        vc.set_free_after(8);
        assert!(vc.try_reserve(P, 2, 10));
    }

    #[test]
    fn reservation_respects_owner_drain_deadline() {
        let mut vc = OutVc::new(5);
        vc.allocate(Q);
        vc.set_free_after(12);
        assert!(!vc.try_reserve(P, 2, 10), "drain finishes after start");
    }

    #[test]
    fn consume_drains_own_reservation_first() {
        let mut vc = OutVc::new(5);
        assert!(vc.try_reserve(P, 2, 10));
        vc.consume_credit(P);
        vc.consume_credit(P);
        assert_eq!(vc.reserved(), 0);
        assert_eq!(vc.reserved_for(), None);
        assert_eq!(vc.credits(), 3);
    }

    #[test]
    fn release_reservation_restores_availability() {
        let mut vc = OutVc::new(5);
        assert!(vc.try_reserve(P, 5, 10));
        vc.release_reservation(P, 5);
        assert_eq!(vc.usable_credits(Q), 5);
        assert!(vc.can_allocate(Q));
    }

    #[test]
    fn second_reservation_by_other_packet_fails() {
        let mut vc = OutVc::new(5);
        assert!(vc.try_reserve(P, 2, 10));
        assert!(!vc.try_reserve(Q, 1, 20));
    }

    #[test]
    fn guard_admits_singles_holder_and_blocks_others() {
        let mut g = MultiFlitGuard::new();
        assert!(g.admits(P));
        g.set(P);
        assert!(g.admits(P));
        assert!(!g.admits(Q));
        g.clear(Q);
        assert!(!g.admits(Q), "clear by non-holder is a no-op");
        g.clear(P);
        assert!(g.admits(Q));
    }
}

mod digest_impls {
    use super::{MultiFlitGuard, OutVc};
    use crate::digest::{StateDigest, StateHasher};

    impl StateDigest for OutVc {
        fn digest_state(&self, h: &mut StateHasher) {
            h.write_u8(self.depth);
            h.write_u8(self.credits);
            h.write_opt_u64(self.owner.map(|p| p.0));
            h.write_u8(self.reserved);
            h.write_opt_u64(self.reserved_for.map(|p| p.0));
            h.write_opt_u64(self.free_after);
        }
    }

    impl StateDigest for MultiFlitGuard {
        fn digest_state(&self, h: &mut StateHasher) {
            h.write_opt_u64(self.holder.map(|p| p.0));
        }
    }
}
