//! Deterministic dimension-order (XY) routing.
//!
//! All organisations in the paper route minimally in dimension order: first
//! along X to the destination column, then along Y to the destination row.
//! XY routing is deadlock-free on a mesh without extra virtual channels,
//! which lets each message class own a single VC.

use crate::config::NocConfig;
use crate::types::{Coord, Direction, NodeId, Port};

/// A precomputed route: the sequence of output directions taken at each
/// router from source to destination (empty if `src == dest`).
///
/// # Examples
///
/// ```
/// use noc::config::NocConfig;
/// use noc::routing::Route;
/// use noc::types::NodeId;
///
/// let cfg = NocConfig::paper();
/// let route = Route::compute(&cfg, NodeId::new(0), NodeId::new(18));
/// assert_eq!(route.hops(), 4); // (0,0) -> (2,2): two east, two south
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    src: NodeId,
    dest: NodeId,
    dirs: Vec<Direction>,
}

impl Route {
    /// Computes the XY route from `src` to `dest`.
    pub fn compute(cfg: &NocConfig, src: NodeId, dest: NodeId) -> Route {
        let s = cfg.coord(src);
        let d = cfg.coord(dest);
        let mut dirs = Vec::with_capacity(s.manhattan(d) as usize);
        let xdir = if d.x > s.x {
            Some(Direction::East)
        } else if d.x < s.x {
            Some(Direction::West)
        } else {
            None
        };
        if let Some(dir) = xdir {
            for _ in 0..(d.x as i32 - s.x as i32).unsigned_abs() {
                dirs.push(dir);
            }
        }
        let ydir = if d.y > s.y {
            Some(Direction::South)
        } else if d.y < s.y {
            Some(Direction::North)
        } else {
            None
        };
        if let Some(dir) = ydir {
            for _ in 0..(d.y as i32 - s.y as i32).unsigned_abs() {
                dirs.push(dir);
            }
        }
        Route { src, dest, dirs }
    }

    /// Builds a route from an explicit hop sequence (used by
    /// fault-degraded routing, where routes come from BFS next-hop
    /// tables rather than XY).
    ///
    /// # Panics
    ///
    /// Panics if following `dirs` from `src` leaves the mesh or does not
    /// end at `dest`.
    pub fn from_dirs(cfg: &NocConfig, src: NodeId, dest: NodeId, dirs: Vec<Direction>) -> Route {
        let mut c = cfg.coord(src);
        for dir in &dirs {
            let (dx, dy) = dir.delta();
            let (nx, ny) = (c.x as i32 + dx, c.y as i32 + dy);
            assert!(cfg.in_bounds(nx, ny), "route leaves the mesh");
            c = Coord::new(nx as u8, ny as u8);
        }
        assert_eq!(cfg.node_at(c), dest, "route does not end at destination");
        Route { src, dest, dirs }
    }

    /// Source node of the route.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Destination node of the route.
    pub fn dest(&self) -> NodeId {
        self.dest
    }

    /// Total hop count.
    pub fn hops(&self) -> usize {
        self.dirs.len()
    }

    /// Direction taken at the router `hop` hops from the source
    /// (`hop = 0` is the source router itself), or `None` past the end.
    pub fn dir_at(&self, hop: usize) -> Option<Direction> {
        self.dirs.get(hop).copied()
    }

    /// The sequence of directions from source to destination.
    pub fn dirs(&self) -> &[Direction] {
        &self.dirs
    }

    /// The node reached after `hop` hops from the source.
    ///
    /// # Panics
    ///
    /// Panics if `hop > self.hops()`.
    pub fn node_at(&self, cfg: &NocConfig, hop: usize) -> NodeId {
        assert!(hop <= self.dirs.len(), "hop index past route end");
        let mut c = cfg.coord(self.src);
        for dir in &self.dirs[..hop] {
            c = step(c, *dir);
        }
        cfg.node_at(c)
    }
}

/// Moves one hop from `c` in direction `dir` without bounds checking
/// (callers walk validated routes, which never leave the mesh).
pub fn step(c: Coord, dir: Direction) -> Coord {
    let (dx, dy) = dir.delta();
    Coord::new((c.x as i32 + dx) as u8, (c.y as i32 + dy) as u8)
}

/// Computes the output port a flit headed for `dest` takes at router
/// `here` under XY routing. Returns [`Port::Local`] when `here == dest`.
///
/// # Examples
///
/// ```
/// use noc::config::NocConfig;
/// use noc::routing::route_port;
/// use noc::types::{Direction, NodeId, Port};
///
/// let cfg = NocConfig::paper();
/// // Node 0 = (0,0); node 3 = (3,0): go east first.
/// assert_eq!(
///     route_port(&cfg, NodeId::new(0), NodeId::new(3)),
///     Port::Dir(Direction::East)
/// );
/// assert_eq!(route_port(&cfg, NodeId::new(5), NodeId::new(5)), Port::Local);
/// ```
pub fn route_port(cfg: &NocConfig, here: NodeId, dest: NodeId) -> Port {
    let h = cfg.coord(here);
    let d = cfg.coord(dest);
    if d.x > h.x {
        Port::Dir(Direction::East)
    } else if d.x < h.x {
        Port::Dir(Direction::West)
    } else if d.y > h.y {
        Port::Dir(Direction::South)
    } else if d.y < h.y {
        Port::Dir(Direction::North)
    } else {
        Port::Local
    }
}

/// The neighbour of `here` in direction `dir`, or `None` at the mesh edge.
pub fn neighbor(cfg: &NocConfig, here: NodeId, dir: Direction) -> Option<NodeId> {
    let c = cfg.coord(here);
    let (dx, dy) = dir.delta();
    let (nx, ny) = (c.x as i32 + dx, c.y as i32 + dy);
    if cfg.in_bounds(nx, ny) {
        Some(cfg.node_at(Coord::new(nx as u8, ny as u8)))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_is_minimal_and_x_first() {
        let cfg = NocConfig::paper();
        let r = Route::compute(&cfg, NodeId::new(0), NodeId::new(63));
        assert_eq!(r.hops(), 14);
        // X first: 7 easts then 7 souths.
        assert!(r.dirs()[..7].iter().all(|d| *d == Direction::East));
        assert!(r.dirs()[7..].iter().all(|d| *d == Direction::South));
    }

    #[test]
    fn route_ends_at_destination() {
        let cfg = NocConfig::paper();
        for (s, d) in [(0u16, 63u16), (63, 0), (7, 56), (12, 34), (5, 5)] {
            let r = Route::compute(&cfg, NodeId::new(s), NodeId::new(d));
            assert_eq!(r.node_at(&cfg, r.hops()), NodeId::new(d));
            assert_eq!(
                r.hops() as u32,
                cfg.coord(NodeId::new(s))
                    .manhattan(cfg.coord(NodeId::new(d)))
            );
        }
    }

    #[test]
    fn route_port_consistency_with_route() {
        let cfg = NocConfig::paper();
        let src = NodeId::new(3);
        let dest = NodeId::new(60);
        let r = Route::compute(&cfg, src, dest);
        let mut here = src;
        for hop in 0..r.hops() {
            let port = route_port(&cfg, here, dest);
            assert_eq!(port, Port::Dir(r.dir_at(hop).unwrap()));
            here = neighbor(&cfg, here, r.dir_at(hop).unwrap()).unwrap();
        }
        assert_eq!(route_port(&cfg, here, dest), Port::Local);
    }

    #[test]
    fn neighbor_edges() {
        let cfg = NocConfig::paper();
        assert_eq!(neighbor(&cfg, NodeId::new(0), Direction::North), None);
        assert_eq!(neighbor(&cfg, NodeId::new(0), Direction::West), None);
        assert_eq!(
            neighbor(&cfg, NodeId::new(0), Direction::East),
            Some(NodeId::new(1))
        );
        assert_eq!(
            neighbor(&cfg, NodeId::new(0), Direction::South),
            Some(NodeId::new(8))
        );
        assert_eq!(neighbor(&cfg, NodeId::new(63), Direction::South), None);
        assert_eq!(neighbor(&cfg, NodeId::new(63), Direction::East), None);
    }

    #[test]
    fn self_route_is_empty() {
        let cfg = NocConfig::paper();
        let r = Route::compute(&cfg, NodeId::new(10), NodeId::new(10));
        assert_eq!(r.hops(), 0);
        assert_eq!(r.node_at(&cfg, 0), NodeId::new(10));
    }

    #[test]
    fn xy_routes_have_at_most_one_turn() {
        let cfg = NocConfig::paper();
        for s in 0..64u16 {
            for d in 0..64u16 {
                let r = Route::compute(&cfg, NodeId::new(s), NodeId::new(d));
                let mut turns = 0;
                for w in r.dirs().windows(2) {
                    if w[0] != w[1] {
                        turns += 1;
                    }
                }
                assert!(turns <= 1, "route {s}->{d} has {turns} turns");
            }
        }
    }
}
