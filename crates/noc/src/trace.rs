//! Packet-trace recording and replay.
//!
//! A [`Trace`] captures an injection schedule — `(cycle, packet)` pairs —
//! either built programmatically or recorded from a live simulation via
//! [`TraceRecorder`]. Replaying a trace through [`TracePlayer`] drives any
//! [`Network`] with exactly the same offered load, which makes
//! cross-organisation comparisons trace-identical (the methodology the
//! paper inherits from trace-driven NoC studies) and lets system-level
//! traffic be captured once and re-examined in isolation.
//!
//! Traces serialize to a compact JSON form for archival.

use nistats::json::{Json, JsonError};

use crate::flit::Packet;
use crate::network::Network;
use crate::types::{Cycle, MessageClass, NodeId, PacketId};

/// Error returned when trace JSON cannot be decoded.
#[must_use]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid trace: {}", self.message)
    }
}

impl std::error::Error for TraceParseError {}

impl From<JsonError> for TraceParseError {
    fn from(e: JsonError) -> Self {
        TraceParseError {
            message: e.to_string(),
        }
    }
}

/// One scheduled injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Cycle at which the packet is handed to the source NI.
    pub cycle: Cycle,
    /// Source node index.
    pub src: u16,
    /// Destination node index.
    pub dest: u16,
    /// Message class.
    pub class: MessageClass,
    /// Packet length in flits.
    pub len_flits: u8,
    /// Advance notice given to PRA-capable networks, in cycles
    /// (0 = no announcement).
    pub announce_lead: u32,
}

/// An injection schedule.
///
/// # Examples
///
/// ```
/// use noc::trace::{Trace, TraceEntry};
/// use noc::types::MessageClass;
///
/// let mut trace = Trace::new();
/// trace.push(TraceEntry {
///     cycle: 5,
///     src: 0,
///     dest: 9,
///     class: MessageClass::Request,
///     len_flits: 1,
///     announce_lead: 0,
/// });
/// let json = trace.to_json();
/// let back = Trace::from_json(&json).unwrap();
/// assert_eq!(trace, back);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an entry (entries are kept sorted by cycle lazily; replay
    /// sorts once).
    pub fn push(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// Number of scheduled injections.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The scheduled injections.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// The last scheduled cycle (0 for an empty trace).
    pub fn horizon(&self) -> Cycle {
        self.entries.iter().map(|e| e.cycle).max().unwrap_or(0)
    }

    /// Serializes to compact JSON. The message class is encoded as its
    /// virtual-channel index.
    pub fn to_json(&self) -> String {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                Json::object(vec![
                    ("cycle".into(), Json::UInt(e.cycle)),
                    ("src".into(), Json::UInt(e.src as u64)),
                    ("dest".into(), Json::UInt(e.dest as u64)),
                    ("class".into(), Json::UInt(e.class.vc() as u64)),
                    ("len_flits".into(), Json::UInt(e.len_flits as u64)),
                    ("announce_lead".into(), Json::UInt(e.announce_lead as u64)),
                ])
            })
            .collect();
        Json::object(vec![("entries".into(), Json::Array(entries))]).to_string()
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns an error if `s` is not a valid serialized trace.
    pub fn from_json(s: &str) -> Result<Trace, TraceParseError> {
        let doc = Json::parse(s)?;
        let field = |v: &Json, key: &str| -> Result<u64, TraceParseError> {
            v.get(key).and_then(Json::as_u64).ok_or(TraceParseError {
                message: format!("missing or non-integer field '{key}'"),
            })
        };
        let entries = doc
            .get("entries")
            .and_then(Json::as_array)
            .ok_or(TraceParseError {
                message: "missing 'entries' array".into(),
            })?;
        let mut trace = Trace::new();
        for e in entries {
            let class_vc = field(e, "class")? as usize;
            if class_vc >= MessageClass::ALL.len() {
                return Err(TraceParseError {
                    message: format!("message class index {class_vc} out of range"),
                });
            }
            trace.push(TraceEntry {
                cycle: field(e, "cycle")?,
                src: field(e, "src")? as u16,
                dest: field(e, "dest")? as u16,
                class: MessageClass::from_vc(class_vc),
                len_flits: field(e, "len_flits")? as u8,
                announce_lead: field(e, "announce_lead")? as u32,
            });
        }
        Ok(trace)
    }

    /// Validates all entries against a node count.
    ///
    /// # Errors
    ///
    /// Returns the index of the first invalid entry.
    pub fn validate(&self, nodes: u16) -> Result<(), usize> {
        for (i, e) in self.entries.iter().enumerate() {
            if e.src >= nodes || e.dest >= nodes || e.len_flits == 0 {
                return Err(i);
            }
        }
        Ok(())
    }
}

impl FromIterator<TraceEntry> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceEntry>>(iter: T) -> Self {
        Trace {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceEntry> for Trace {
    fn extend<T: IntoIterator<Item = TraceEntry>>(&mut self, iter: T) {
        self.entries.extend(iter);
    }
}

/// Records injections from client code into a [`Trace`].
#[derive(Debug, Default)]
pub struct TraceRecorder {
    trace: Trace,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Records an injection of `packet` at `cycle` with `announce_lead`
    /// advance notice.
    pub fn record(&mut self, cycle: Cycle, packet: &Packet, announce_lead: u32) {
        self.trace.push(TraceEntry {
            cycle,
            src: packet.src.index() as u16,
            dest: packet.dest.index() as u16,
            class: packet.class,
            len_flits: packet.len_flits,
            announce_lead,
        });
    }

    /// Finishes recording.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

/// Replays a [`Trace`] against a network, driving announcements and
/// injections on schedule.
#[derive(Debug)]
pub struct TracePlayer {
    entries: Vec<TraceEntry>,
    next: usize,
    next_id: u64,
    injected: u64,
}

impl TracePlayer {
    /// Prepares a player (sorts the schedule by cycle).
    pub fn new(trace: Trace) -> Self {
        let mut entries = trace.entries;
        entries.sort_by_key(|e| e.cycle);
        TracePlayer {
            entries,
            next: 0,
            next_id: 0,
            injected: 0,
        }
    }

    /// Packets injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Whether every entry has been injected.
    pub fn finished(&self) -> bool {
        self.next >= self.entries.len()
    }

    /// Performs this cycle's announcements and injections. Call once per
    /// cycle *before* [`Network::step`]; uses `net.now()` as the clock.
    pub fn tick(&mut self, net: &mut dyn Network) {
        let now = net.now();
        // Announcements fire `lead` cycles before the scheduled injection.
        // Scan a bounded window ahead (leads are small).
        for e in self.entries[self.next..]
            .iter()
            .take_while(|e| e.cycle <= now + 64)
        {
            if e.announce_lead > 0 && e.cycle == now + e.announce_lead as Cycle {
                let preview = Packet::new(
                    PacketId(self.peek_id_for(e)),
                    NodeId::new(e.src),
                    NodeId::new(e.dest),
                    e.class,
                    e.len_flits,
                );
                net.announce(&preview, e.announce_lead);
            }
        }
        while self.next < self.entries.len() && self.entries[self.next].cycle == now {
            let e = self.entries[self.next];
            self.next += 1;
            self.next_id += 1;
            self.injected += 1;
            net.inject(
                Packet::new(
                    PacketId(self.next_id),
                    NodeId::new(e.src),
                    NodeId::new(e.dest),
                    e.class,
                    e.len_flits,
                )
                .at(now),
            );
        }
    }

    /// The id the entry will get at injection time (ids are assigned in
    /// schedule order, so an entry's id is its position + 1).
    fn peek_id_for(&self, e: &TraceEntry) -> u64 {
        let pos = self.entries[self.next..]
            .iter()
            .position(|x| std::ptr::eq(x, e))
            .expect("entry from this player");
        self.next_id + pos as u64 + 1
    }
}

/// Replays `trace` to completion on `net`; returns `(delivered, cycles)`.
pub fn replay(net: &mut dyn Network, trace: Trace) -> (u64, Cycle) {
    let mut player = TracePlayer::new(trace);
    let mut delivered = 0u64;
    while !player.finished() || net.in_flight() > 0 {
        player.tick(net);
        net.step();
        delivered += net.drain_delivered().len() as u64;
        if net.now() > player.entries.last().map(|e| e.cycle).unwrap_or(0) + 100_000 {
            break; // safety net for tests
        }
    }
    (delivered, net.now())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;
    use crate::ideal::IdealNetwork;
    use crate::mesh::MeshNetwork;
    use crate::smart::SmartNetwork;
    use nistats::rng::Rng;

    fn random_trace(n: usize, seed: u64, with_leads: bool) -> Trace {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                let src = rng.gen_range_u16(0, 64);
                let mut dest = rng.gen_range_u16(0, 64);
                if dest == src {
                    dest = (dest + 1) % 64;
                }
                let response = rng.gen_bool(0.5);
                TraceEntry {
                    cycle: rng.gen_range_u64(4, 400),
                    src,
                    dest,
                    class: if response {
                        MessageClass::Response
                    } else {
                        MessageClass::Request
                    },
                    len_flits: if response { 5 } else { 1 },
                    announce_lead: if with_leads && response { 4 } else { 0 },
                }
            })
            .collect()
    }

    #[test]
    fn json_round_trip() {
        let t = random_trace(50, 3, true);
        let j = t.to_json();
        assert_eq!(Trace::from_json(&j).unwrap(), t);
    }

    #[test]
    fn validate_catches_bad_entries() {
        let mut t = Trace::new();
        t.push(TraceEntry {
            cycle: 0,
            src: 64,
            dest: 0,
            class: MessageClass::Request,
            len_flits: 1,
            announce_lead: 0,
        });
        assert_eq!(t.validate(64), Err(0));
        assert_eq!(t.validate(128), Ok(()));
    }

    #[test]
    fn replay_delivers_everything_on_all_organisations() {
        let t = random_trace(80, 7, false);
        let cfg = NocConfig::paper();
        for which in 0..3 {
            let mut net: Box<dyn Network> = match which {
                0 => Box::new(MeshNetwork::new(cfg.clone())),
                1 => Box::new(SmartNetwork::new(cfg.clone())),
                _ => Box::new(IdealNetwork::new(cfg.clone())),
            };
            let (delivered, _) = replay(net.as_mut(), t.clone());
            assert_eq!(delivered, t.len() as u64, "org {which}");
        }
    }

    #[test]
    fn identical_traces_give_identical_stats() {
        let t = random_trace(60, 9, false);
        let cfg = NocConfig::paper();
        let mut a = MeshNetwork::new(cfg.clone());
        let mut b = MeshNetwork::new(cfg);
        replay(&mut a, t.clone());
        replay(&mut b, t);
        assert_eq!(a.stats().total_latency, b.stats().total_latency);
    }

    #[test]
    fn recorder_round_trip() {
        let mut rec = TraceRecorder::new();
        let p = Packet::new(
            PacketId(1),
            NodeId::new(3),
            NodeId::new(9),
            MessageClass::Response,
            5,
        );
        rec.record(42, &p, 4);
        let t = rec.into_trace();
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].cycle, 42);
        assert_eq!(t.entries()[0].announce_lead, 4);
        assert_eq!(t.horizon(), 42);
    }

    #[test]
    fn player_reports_progress() {
        let t = random_trace(10, 1, false);
        let cfg = NocConfig::paper();
        let mut net = MeshNetwork::new(cfg);
        let mut player = TracePlayer::new(t);
        assert!(!player.finished());
        for _ in 0..500 {
            player.tick(&mut net);
            net.step();
        }
        assert!(player.finished());
        assert_eq!(player.injected(), 10);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let cfg = NocConfig::paper();
        let mut net = MeshNetwork::new(cfg);
        let (delivered, _) = replay(&mut net, Trace::new());
        assert_eq!(delivered, 0);
    }
}
