//! Arbiters for virtual-channel and switch allocation.
//!
//! The routers use separable allocation: a per-input round-robin stage picks
//! one candidate VC per input port, then a per-output round-robin stage
//! picks one input per output port. [`RoundRobin`] provides the rotating
//! priority; [`MatrixArbiter`] offers a least-recently-served alternative
//! used in ablation studies.

/// A rotating-priority arbiter over `n` requesters.
///
/// # Examples
///
/// ```
/// use noc::arbiter::RoundRobin;
///
/// let mut rr = RoundRobin::new(3);
/// assert_eq!(rr.grant(&[true, true, true]), Some(0));
/// assert_eq!(rr.grant(&[true, true, true]), Some(1));
/// assert_eq!(rr.grant(&[true, true, true]), Some(2));
/// assert_eq!(rr.grant(&[true, true, true]), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobin {
    n: usize,
    /// Index with the highest priority next arbitration.
    next: usize,
}

impl RoundRobin {
    /// Creates an arbiter over `n` requesters with priority starting at 0.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one requester");
        RoundRobin { n, next: 0 }
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the arbiter has no requesters (never true; see [`RoundRobin::new`]).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Grants the highest-priority requester among those with
    /// `requests[i] == true`, rotating priority past the winner.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != self.len()`.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector size mismatch");
        for off in 0..self.n {
            let i = (self.next + off) % self.n;
            if requests[i] {
                self.next = (i + 1) % self.n;
                return Some(i);
            }
        }
        None
    }

    /// Like [`RoundRobin::grant`] but without rotating the priority.
    /// Useful for speculative queries.
    pub fn peek(&self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector size mismatch");
        (0..self.n)
            .map(|off| (self.next + off) % self.n)
            .find(|&i| requests[i])
    }
}

/// A matrix (least-recently-served) arbiter over `n` requesters.
///
/// Keeps a full precedence matrix; the winner's precedence over every other
/// requester is cleared, making it the lowest priority until others win.
#[derive(Debug, Clone)]
pub struct MatrixArbiter {
    n: usize,
    /// `prec[i * n + j]` is true when `i` beats `j`.
    prec: Vec<bool>,
}

impl MatrixArbiter {
    /// Creates a matrix arbiter where lower indices initially win.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one requester");
        let mut prec = vec![false; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                prec[i * n + j] = true;
            }
        }
        MatrixArbiter { n, prec }
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the arbiter has no requesters (never true; see [`MatrixArbiter::new`]).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Grants the requester that beats every other active requester.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != self.len()`.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector size mismatch");
        let winner = (0..self.n).find(|&i| {
            requests[i] && (0..self.n).all(|j| j == i || !requests[j] || self.prec[i * self.n + j])
        })?;
        for j in 0..self.n {
            if j != winner {
                self.prec[winner * self.n + j] = false;
                self.prec[j * self.n + winner] = true;
            }
        }
        Some(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_fair_under_full_load() {
        let mut rr = RoundRobin::new(4);
        let mut counts = [0usize; 4];
        for _ in 0..400 {
            let g = rr.grant(&[true; 4]).unwrap();
            counts[g] += 1;
        }
        assert_eq!(counts, [100; 4]);
    }

    #[test]
    fn round_robin_skips_idle_requesters() {
        let mut rr = RoundRobin::new(4);
        assert_eq!(rr.grant(&[false, false, true, false]), Some(2));
        assert_eq!(rr.grant(&[true, false, true, false]), Some(0));
        assert_eq!(rr.grant(&[true, false, true, false]), Some(2));
    }

    #[test]
    fn round_robin_none_when_no_requests() {
        let mut rr = RoundRobin::new(3);
        assert_eq!(rr.grant(&[false; 3]), None);
        // Priority unchanged by a no-grant round.
        assert_eq!(rr.grant(&[true, false, false]), Some(0));
    }

    #[test]
    fn peek_does_not_rotate() {
        let rr = RoundRobin::new(3);
        assert_eq!(rr.peek(&[true; 3]), Some(0));
        assert_eq!(rr.peek(&[true; 3]), Some(0));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_request_size_panics() {
        let mut rr = RoundRobin::new(3);
        let _ = rr.grant(&[true; 4]);
    }

    #[test]
    fn matrix_is_least_recently_served() {
        let mut m = MatrixArbiter::new(3);
        assert_eq!(m.grant(&[true; 3]), Some(0));
        assert_eq!(m.grant(&[true; 3]), Some(1));
        assert_eq!(m.grant(&[true; 3]), Some(2));
        assert_eq!(m.grant(&[true; 3]), Some(0));
        // After 0 wins, a lone request from 0 still wins.
        assert_eq!(m.grant(&[true, false, false]), Some(0));
        // But with 1 active, 1 beats 0 (0 served more recently).
        assert_eq!(m.grant(&[true, true, false]), Some(1));
    }

    #[test]
    fn matrix_fairness_under_full_load() {
        let mut m = MatrixArbiter::new(4);
        let mut counts = [0usize; 4];
        for _ in 0..400 {
            counts[m.grant(&[true; 4]).unwrap()] += 1;
        }
        assert_eq!(counts, [100; 4]);
    }
}

mod digest_impls {
    use super::RoundRobin;
    use crate::digest::{StateDigest, StateHasher};

    impl StateDigest for RoundRobin {
        fn digest_state(&self, h: &mut StateHasher) {
            h.write_usize(self.n);
            h.write_usize(self.next);
        }
    }
}
