//! Per-output-port timeslot reservation tables.
//!
//! These tables are the software analogue of the paper's per-output-port
//! bit vectors (*Valid*, *Input Select*, *Local VC Select*, *Downstream VC
//! Select*, Figure 4). Hardware shifts the vectors left each cycle; the
//! simulator instead keys a sparse map by absolute cycle and prunes expired
//! entries, which is behaviourally identical and much cheaper to model.
//!
//! The tables are pure mechanism: the PRA control network (in the `pra`
//! crate) decides *what* to reserve; the mesh datapath in this crate only
//! executes reservations and refuses to grant reactive traffic on reserved
//! timeslots.

use std::collections::BTreeMap;

use crate::types::{Cycle, Direction, PacketId, Port};

/// Where a reserved traversal reads its flit from at this router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlitSource {
    /// The front of the local input VC `(port, vc)` (the *Local VC Select*
    /// field of the paper's bit vectors).
    Vc {
        /// Input port holding the flit.
        port: Port,
        /// Virtual channel within that port.
        vc: usize,
    },
    /// The single-flit latch of input direction `from` (a flit parked here
    /// during the previous cycle of a multi-hop path).
    Latch {
        /// Direction the flit originally arrived from.
        from: Direction,
    },
    /// The flit arrives over the incoming link *this same cycle* and passes
    /// straight through the crossbar (single-cycle multi-hop bypass).
    Bypass {
        /// Direction the flit arrives from.
        from: Direction,
    },
}

/// What happens at the downstream end of a reserved traversal
/// (the *Downstream VC Select* field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Landing {
    /// Enter the downstream VC buffer (end of the pre-allocated path, or
    /// arrival at the destination router).
    Vc(usize),
    /// Park in the downstream input latch for one cycle and continue the
    /// pre-allocated path next cycle.
    Latch,
    /// Continue through the downstream crossbar in the same cycle
    /// (the downstream router also holds a [`FlitSource::Bypass`]
    /// reservation for this flit at this cycle).
    Bypass,
}

/// One reserved timeslot on an output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Packet the slot belongs to.
    pub packet: PacketId,
    /// Flit sequence number expected to use the slot.
    pub seq: u8,
    /// Where the flit is read from at this router.
    pub source: FlitSource,
    /// What happens at the downstream router.
    pub landing: Landing,
}

/// Timeslot reservation table for a single output port.
///
/// # Examples
///
/// ```
/// use noc::reserve::{FlitSource, Landing, OutputSchedule, Reservation};
/// use noc::types::{PacketId, Port};
///
/// let mut sched = OutputSchedule::new();
/// let r = Reservation {
///     packet: PacketId(9),
///     seq: 0,
///     source: FlitSource::Vc { port: Port::Local, vc: 2 },
///     landing: Landing::Vc(2),
/// };
/// assert!(sched.try_insert(100, r));
/// assert!(sched.is_reserved(100));
/// assert!(!sched.is_reserved(101));
/// ```
#[derive(Debug, Clone, Default)]
pub struct OutputSchedule {
    slots: BTreeMap<Cycle, Reservation>,
}

impl OutputSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        OutputSchedule::default()
    }

    /// Whether any packet holds `cycle`.
    pub fn is_reserved(&self, cycle: Cycle) -> bool {
        self.slots.contains_key(&cycle)
    }

    /// The reservation at `cycle`, if any.
    pub fn get(&self, cycle: Cycle) -> Option<&Reservation> {
        self.slots.get(&cycle)
    }

    /// Whether every cycle in `cycles` is free (or already held by
    /// `packet`, which never conflicts with itself).
    pub fn range_free(&self, cycles: std::ops::Range<Cycle>, packet: PacketId) -> bool {
        self.slots.range(cycles).all(|(_, r)| r.packet == packet)
    }

    /// Inserts a reservation; fails (returning `false`) if the slot is held
    /// by a different packet.
    pub fn try_insert(&mut self, cycle: Cycle, r: Reservation) -> bool {
        match self.slots.get(&cycle) {
            Some(existing) if existing.packet != r.packet => false,
            _ => {
                self.slots.insert(cycle, r);
                true
            }
        }
    }

    /// Removes and returns the reservation at `cycle`.
    pub fn take(&mut self, cycle: Cycle) -> Option<Reservation> {
        self.slots.remove(&cycle)
    }

    /// Updates the landing of `packet`'s reservations at every cycle in
    /// `cycles` (the ACK signal converting a conservative full-buffer
    /// landing into a latch/bypass pass-through). Returns the number of
    /// slots updated.
    pub fn update_landing(
        &mut self,
        cycles: std::ops::Range<Cycle>,
        packet: PacketId,
        landing: Landing,
    ) -> usize {
        let mut n = 0;
        for (_, r) in self.slots.range_mut(cycles) {
            if r.packet == packet {
                r.landing = landing;
                n += 1;
            }
        }
        n
    }

    /// Removes all reservations of `packet` for flits with sequence number
    /// `>= from_seq` at cycles `>= from_cycle`; returns the removed
    /// entries. Used when a forced move finds its flit missing: earlier
    /// flits already in the pre-allocated path keep their slots so they can
    /// drain, later flits fall back to reactive routing.
    pub fn cancel_packet(
        &mut self,
        packet: PacketId,
        from_seq: u8,
        from_cycle: Cycle,
    ) -> Vec<(Cycle, Reservation)> {
        let doomed: Vec<Cycle> = self
            .slots
            .range(from_cycle..)
            .filter(|(_, r)| r.packet == packet && r.seq >= from_seq)
            .map(|(c, _)| *c)
            .collect();
        doomed
            .into_iter()
            .map(|c| (c, self.slots.remove(&c).expect("slot exists")))
            .collect()
    }

    /// Drops reservations strictly before `now` (already in the past);
    /// returns the expired entries. Executed slots are removed by
    /// [`OutputSchedule::take`], so anything left to expire was wasted.
    pub fn expire(&mut self, now: Cycle) -> Vec<(Cycle, Reservation)> {
        let doomed: Vec<Cycle> = self.slots.range(..now).map(|(c, _)| *c).collect();
        doomed
            .into_iter()
            .map(|c| (c, self.slots.remove(&c).expect("slot exists")))
            .collect()
    }

    /// Whether `packet` holds any outstanding slot in this schedule.
    pub fn has_packet(&self, packet: PacketId) -> bool {
        self.slots.values().any(|r| r.packet == packet)
    }

    /// Number of outstanding reserved slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the schedule holds no reservations.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates over `(cycle, reservation)` pairs in cycle order.
    pub fn iter(&self) -> impl Iterator<Item = (Cycle, &Reservation)> {
        self.slots.iter().map(|(c, r)| (*c, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PacketId = PacketId(1);
    const Q: PacketId = PacketId(2);

    fn resv(packet: PacketId, seq: u8) -> Reservation {
        Reservation {
            packet,
            seq,
            source: FlitSource::Vc {
                port: Port::Local,
                vc: 2,
            },
            landing: Landing::Vc(2),
        }
    }

    #[test]
    fn insert_and_conflict() {
        let mut s = OutputSchedule::new();
        assert!(s.try_insert(5, resv(P, 0)));
        assert!(!s.try_insert(5, resv(Q, 0)), "other packet conflicts");
        assert!(s.try_insert(5, resv(P, 1)), "same packet may overwrite");
        assert_eq!(s.get(5).unwrap().seq, 1);
    }

    #[test]
    fn range_free_semantics() {
        let mut s = OutputSchedule::new();
        s.try_insert(5, resv(P, 0));
        assert!(s.range_free(0..5, Q));
        assert!(!s.range_free(3..6, Q));
        assert!(s.range_free(3..6, P), "own slots do not conflict");
        assert!(s.range_free(6..10, Q));
    }

    #[test]
    fn cancel_respects_seq_and_cycle_floor() {
        let mut s = OutputSchedule::new();
        for (c, seq) in [(10, 0u8), (11, 1), (12, 2), (13, 3)] {
            s.try_insert(c, resv(P, seq));
        }
        // Cancel flits >= seq 2 from cycle 11 on: removes (12,2), (13,3).
        assert_eq!(s.cancel_packet(P, 2, 11).len(), 2);
        assert!(s.is_reserved(10));
        assert!(s.is_reserved(11));
        assert!(!s.is_reserved(12));
    }

    #[test]
    fn expire_counts_wasted_slots() {
        let mut s = OutputSchedule::new();
        s.try_insert(3, resv(P, 0));
        s.try_insert(7, resv(P, 1));
        let expired = s.expire(5);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].0, 3);
        assert_eq!(s.len(), 1);
        assert!(s.is_reserved(7));
    }

    #[test]
    fn update_landing_only_touches_own_slots() {
        let mut s = OutputSchedule::new();
        s.try_insert(5, resv(P, 0));
        s.try_insert(6, resv(Q, 0));
        let n = s.update_landing(0..10, P, Landing::Latch);
        assert_eq!(n, 1);
        assert_eq!(s.get(5).unwrap().landing, Landing::Latch);
        assert_eq!(s.get(6).unwrap().landing, Landing::Vc(2));
    }

    #[test]
    fn take_removes_slot() {
        let mut s = OutputSchedule::new();
        s.try_insert(5, resv(P, 0));
        assert_eq!(s.take(5).unwrap().packet, P);
        assert!(s.is_empty());
        assert!(s.take(5).is_none());
    }
}

mod digest_impls {
    use super::OutputSchedule;
    use crate::digest::{StateDigest, StateHasher};

    impl StateDigest for OutputSchedule {
        fn digest_state(&self, h: &mut StateHasher) {
            h.write_usize(self.slots.len());
            for (&cycle, r) in &self.slots {
                h.write_u64(cycle);
                r.digest_state(h);
            }
        }
    }
}
