//! Network statistics.
//!
//! [`NetStats`] is shared by every organisation: per-class packet/flit
//! counters, end-to-end latency accounting, and resource-utilisation
//! counters used by the paper's Section V.B analysis.

use crate::types::{Cycle, MessageClass};

/// Accumulated statistics for one network instance.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Packets handed to the network, per message class (indexed by VC).
    pub packets_injected: [u64; 3],
    /// Packets fully delivered, per message class.
    pub packets_delivered: [u64; 3],
    /// Flits delivered, per message class.
    pub flits_delivered: [u64; 3],
    /// Sum over delivered packets of `delivered - created` cycles.
    pub total_latency: u64,
    /// Per-class latency sums (indexed by VC).
    pub total_latency_by_class: [u64; 3],
    /// Sum over delivered packets of `injected - created` (source queueing).
    pub total_queue_latency: u64,
    /// Sum of hop counts of delivered packets.
    pub total_hops: u64,
    /// Worst observed end-to-end packet latency.
    pub max_latency: u64,
    /// Worst observed end-to-end latency per message class (indexed by
    /// VC) — the quantity the QoS bound gate compares against the
    /// analytical worst case.
    pub max_latency_by_class: [u64; 3],
    /// Total link traversals (each flit × each link, bypassed or not).
    pub link_traversals: u64,
    /// Switch-allocation grants issued by reactive (local) arbiters.
    pub local_grants: u64,
    /// Traversals executed from reserved timeslots (PRA forced moves).
    pub reserved_moves: u64,
    /// Reserved timeslots that expired unused (the data flit was absent).
    pub wasted_reservations: u64,
    /// Cycles in which a flit requested an output port that was idle but
    /// blocked by a reservation or multi-flit guard for another packet
    /// (the paper's "resource underutilisation" measure).
    pub blocked_by_reservation_cycles: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// End-to-end latency histogram: bucket `i` counts packets with
    /// latency `i` cycles; the last bucket absorbs the overflow. Sized
    /// for server-scale round trips.
    pub latency_histogram: Vec<u64>,
    /// Per-class latency histograms (indexed by VC), same bucketing as
    /// [`NetStats::latency_histogram`]; lazily allocated on first
    /// delivery of the class.
    pub latency_histogram_by_class: [Vec<u64>; 3],
}

impl NetStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        NetStats::default()
    }

    /// Zeroes every counter and the latency histogram, opening a fresh
    /// measurement window. Called at the warm-up/measurement boundary so
    /// reported statistics cover only the measured interval (the paper's
    /// SimFlex-style methodology); in-flight packets delivered after the
    /// reset count toward the new window.
    pub fn reset(&mut self) {
        *self = NetStats::default();
    }

    /// Records an injection of a packet of class `class`.
    pub fn record_injected(&mut self, class: MessageClass) {
        self.packets_injected[class.vc()] += 1;
    }

    /// Records a delivery.
    pub fn record_delivered(
        &mut self,
        class: MessageClass,
        len_flits: u8,
        created: Cycle,
        injected: Cycle,
        delivered: Cycle,
        hops: u32,
    ) {
        self.packets_delivered[class.vc()] += 1;
        self.flits_delivered[class.vc()] += len_flits as u64;
        let lat = delivered.saturating_sub(created);
        self.total_latency += lat;
        self.total_latency_by_class[class.vc()] += lat;
        if self.latency_histogram.is_empty() {
            self.latency_histogram = vec![0; 513];
        }
        let bucket = (lat as usize).min(self.latency_histogram.len() - 1);
        self.latency_histogram[bucket] += 1;
        let class_hist = &mut self.latency_histogram_by_class[class.vc()];
        if class_hist.is_empty() {
            *class_hist = vec![0; 513];
        }
        let class_bucket = (lat as usize).min(class_hist.len() - 1);
        class_hist[class_bucket] += 1;
        self.total_queue_latency += injected.saturating_sub(created);
        self.total_hops += hops as u64;
        self.max_latency = self.max_latency.max(lat);
        self.max_latency_by_class[class.vc()] = self.max_latency_by_class[class.vc()].max(lat);
    }

    /// Total packets delivered across classes.
    pub fn delivered(&self) -> u64 {
        self.packets_delivered.iter().sum()
    }

    /// Total packets injected across classes.
    pub fn injected(&self) -> u64 {
        self.packets_injected.iter().sum()
    }

    /// Mean latency of `class` packets in cycles (0 when none delivered).
    pub fn avg_latency_of(&self, class: MessageClass) -> f64 {
        let n = self.packets_delivered[class.vc()];
        if n == 0 {
            0.0
        } else {
            self.total_latency_by_class[class.vc()] as f64 / n as f64
        }
    }

    /// Mean end-to-end packet latency in cycles (0 when nothing delivered).
    pub fn avg_latency(&self) -> f64 {
        let n = self.delivered();
        if n == 0 {
            0.0
        } else {
            self.total_latency as f64 / n as f64
        }
    }

    /// Mean source-queueing latency in cycles.
    pub fn avg_queue_latency(&self) -> f64 {
        let n = self.delivered();
        if n == 0 {
            0.0
        } else {
            self.total_queue_latency as f64 / n as f64
        }
    }

    /// Mean hop count of delivered packets.
    pub fn avg_hops(&self) -> f64 {
        let n = self.delivered();
        if n == 0 {
            0.0
        } else {
            self.total_hops as f64 / n as f64
        }
    }

    /// The latency at or below which `quantile` (0..=1) of delivered
    /// packets completed; `None` when nothing was delivered. The last
    /// histogram bucket is open-ended, so a result equal to the bucket
    /// count is a lower bound.
    ///
    /// # Panics
    ///
    /// Panics if `quantile` is outside `[0, 1]`.
    pub fn latency_percentile(&self, quantile: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&quantile), "quantile within [0, 1]");
        let total = self.delivered();
        if total == 0 {
            return None;
        }
        let target = (quantile * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (lat, n) in self.latency_histogram.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(lat as u64);
            }
        }
        Some(self.latency_histogram.len() as u64)
    }

    /// Like [`NetStats::latency_percentile`], restricted to packets of
    /// `class`; `None` when the class delivered nothing.
    ///
    /// # Panics
    ///
    /// Panics if `quantile` is outside `[0, 1]`.
    pub fn latency_percentile_of(&self, class: MessageClass, quantile: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&quantile), "quantile within [0, 1]");
        let total = self.packets_delivered[class.vc()];
        if total == 0 {
            return None;
        }
        let hist = &self.latency_histogram_by_class[class.vc()];
        let target = (quantile * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (lat, n) in hist.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(lat as u64);
            }
        }
        Some(hist.len() as u64)
    }

    /// Fraction of in-network time spent blocked behind proactively
    /// reserved resources (Section V.B's ≈0.01% figure).
    pub fn reservation_blocking_fraction(&self) -> f64 {
        if self.total_latency == 0 {
            0.0
        } else {
            self.blocked_by_reservation_cycles as f64 / self.total_latency as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_accounting() {
        let mut s = NetStats::new();
        s.record_injected(MessageClass::Request);
        s.record_delivered(MessageClass::Request, 1, 10, 12, 30, 4);
        s.record_injected(MessageClass::Response);
        s.record_delivered(MessageClass::Response, 5, 0, 0, 10, 2);
        assert_eq!(s.delivered(), 2);
        assert_eq!(s.injected(), 2);
        assert_eq!(s.total_latency, 30);
        assert_eq!(s.avg_latency(), 15.0);
        assert_eq!(s.avg_queue_latency(), 1.0);
        assert_eq!(s.avg_hops(), 3.0);
        assert_eq!(s.max_latency, 20);
        assert_eq!(s.flits_delivered[MessageClass::Response.vc()], 5);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = NetStats::new();
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.avg_queue_latency(), 0.0);
        assert_eq!(s.avg_hops(), 0.0);
        assert_eq!(s.reservation_blocking_fraction(), 0.0);
    }

    #[test]
    fn percentiles_from_histogram() {
        let mut s = NetStats::new();
        for lat in [10u64, 10, 10, 10, 10, 10, 10, 10, 10, 100] {
            s.record_delivered(MessageClass::Request, 1, 0, 0, lat, 1);
        }
        assert_eq!(s.latency_percentile(0.5), Some(10));
        assert_eq!(s.latency_percentile(0.9), Some(10));
        assert_eq!(s.latency_percentile(0.95), Some(100));
        assert_eq!(s.latency_percentile(1.0), Some(100));
        assert_eq!(NetStats::new().latency_percentile(0.5), None);
    }

    #[test]
    fn overflow_latencies_land_in_last_bucket() {
        let mut s = NetStats::new();
        s.record_delivered(MessageClass::Request, 1, 0, 0, 10_000, 1);
        assert_eq!(s.latency_percentile(1.0), Some(512));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_panics() {
        let s = NetStats::new();
        let _ = s.latency_percentile(1.5);
    }

    #[test]
    fn per_class_percentiles_and_max() {
        let mut s = NetStats::new();
        for lat in [5u64, 5, 5, 50] {
            s.record_delivered(MessageClass::Request, 1, 0, 0, lat, 1);
        }
        s.record_delivered(MessageClass::Response, 5, 0, 0, 200, 3);
        assert_eq!(s.latency_percentile_of(MessageClass::Request, 0.5), Some(5));
        assert_eq!(
            s.latency_percentile_of(MessageClass::Request, 1.0),
            Some(50)
        );
        assert_eq!(
            s.latency_percentile_of(MessageClass::Response, 0.99),
            Some(200)
        );
        assert_eq!(s.latency_percentile_of(MessageClass::Coherence, 0.5), None);
        assert_eq!(s.max_latency_by_class[MessageClass::Request.vc()], 50);
        assert_eq!(s.max_latency_by_class[MessageClass::Response.vc()], 200);
        assert_eq!(s.max_latency, 200);
    }

    #[test]
    fn reset_zeroes_per_class_and_response_counters() {
        // Regression: the warm-up window must not leak into per-class
        // tails after the measurement-boundary reset (the
        // `TrafficGen::response_fraction` × `NetStats::reset`
        // interaction).
        let mut s = NetStats::new();
        for _ in 0..100 {
            s.record_injected(MessageClass::Response);
            s.record_delivered(MessageClass::Response, 5, 0, 0, 400, 6);
        }
        s.record_injected(MessageClass::Request);
        s.record_delivered(MessageClass::Request, 1, 0, 0, 9, 1);
        s.reset();
        assert_eq!(s.injected(), 0);
        assert_eq!(s.delivered(), 0);
        assert_eq!(s.packets_injected, [0; 3]);
        assert_eq!(s.packets_delivered, [0; 3]);
        assert_eq!(s.flits_delivered, [0; 3]);
        assert_eq!(s.total_latency_by_class, [0; 3]);
        assert_eq!(s.max_latency_by_class, [0; 3]);
        assert_eq!(s.latency_percentile_of(MessageClass::Response, 0.99), None);
        assert!(s
            .latency_histogram_by_class
            .iter()
            .all(|h| h.iter().all(|&n| n == 0)));
        // Post-reset deliveries open a clean window.
        s.record_delivered(MessageClass::Response, 5, 0, 0, 12, 2);
        assert_eq!(
            s.latency_percentile_of(MessageClass::Response, 0.99),
            Some(12)
        );
        assert_eq!(s.max_latency_by_class[MessageClass::Response.vc()], 12);
    }

    #[test]
    fn blocking_fraction() {
        let mut s = NetStats::new();
        s.record_delivered(MessageClass::Request, 1, 0, 0, 100, 4);
        s.blocked_by_reservation_cycles = 1;
        assert!((s.reservation_blocking_fraction() - 0.01).abs() < 1e-12);
    }
}
