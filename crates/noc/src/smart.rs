//! The SMART single-cycle multi-hop network.
//!
//! SMART (Krishna et al., HPCA 2013) lets a flit traverse several hops in
//! one clock cycle over repeated wires, at the cost of an extra pipeline
//! stage that broadcasts a *SMART-hop setup request* (SSR) over a
//! dedicated multi-drop network. Per Table I of the paper: a SMART hop is
//! a two-stage router pipeline (RC/VA/SSA, then multi-tile link
//! allocation) followed by a single-cycle link traversal covering up to
//! two tiles — **three cycles per router traversal at zero load**, each
//! covering up to [`NocConfig::max_hops_per_cycle`] tiles.
//!
//! The paper's server-class wire budget (fat tiles, 2 GHz) caps the
//! traversal at two tiles, which is exactly why SMART barely beats the
//! mesh there (Figure 2): it saves one cycle per bypassed router but pays
//! one cycle of setup per traversal.
//!
//! # Modelling notes
//!
//! * Buffers are per input port and class, exactly as in the mesh model;
//!   whole-packet buffer reservation at the landing router stands in for
//!   SMART's "stop-anywhere" buffer guarantee. (Per-port buffering also
//!   preserves XY's channel-dependency acyclicity, which whole-packet
//!   reservation needs for deadlock freedom.)
//! * Bypass paths hold their links for the packet duration; local flits
//!   wanting a held link wait (SMART's `Prio=Local` applies at SSR time:
//!   an establishment never extends through a router whose local traffic
//!   already claimed the link).
//! * Multi-hop bypass is straight-line only (SMART-1D), matching the
//!   control-segment restriction of the paper's PRA network.

use crate::arbiter::RoundRobin;
use crate::buffer::VcBuffer;
use crate::cancel::CancelToken;
use crate::config::NocConfig;
use crate::flit::{Flit, Packet};
use crate::network::{Delivered, DeliveryLedger, Network, Reassembly, SourceQueues};
use crate::routing::{neighbor, route_port};
use crate::stats::NetStats;
use crate::types::{Cycle, Direction, NodeId, PacketId, Port};

/// Per-(node, class) buffer state.
#[derive(Debug)]
struct BufState {
    fifo: VcBuffer,
    /// Slots promised to in-flight transfers landing here.
    reserved: u8,
    /// Multi-flit packet currently streaming into this buffer.
    owner: Option<PacketId>,
    /// A transfer or pipeline stage is already working on this buffer's
    /// front packet.
    busy: bool,
}

/// An SSR awaiting processing (SA won in the previous cycle).
#[derive(Debug, Clone, Copy)]
struct SsrRequest {
    node: usize,
    port: usize,
    class: usize,
    packet: PacketId,
    len: u8,
    dest: NodeId,
    dir: Direction,
}

/// An established multi-hop path streaming one flit per cycle.
#[derive(Debug, Clone)]
struct Transfer {
    node: usize,
    port: usize,
    class: usize,
    packet: PacketId,
    next_seq: u8,
    remaining: u8,
    /// Links held for the duration of the transfer.
    links: Vec<(usize, Direction)>,
    /// Landing `(node, input port)`.
    landing: (usize, usize),
    /// Ejection into the local NI instead of a downstream buffer.
    eject: bool,
}

/// The SMART network.
///
/// # Examples
///
/// ```
/// use noc::config::NocConfig;
/// use noc::flit::Packet;
/// use noc::network::Network;
/// use noc::smart::SmartNetwork;
/// use noc::types::{MessageClass, NodeId, PacketId};
///
/// let mut net = SmartNetwork::new(NocConfig::paper());
/// net.inject(Packet::new(
///     PacketId(1),
///     NodeId::new(0),
///     NodeId::new(7),
///     MessageClass::Request,
///     1,
/// ));
/// let d = net.run_to_drain(100);
/// assert_eq!(d.len(), 1);
/// ```
#[derive(Debug)]
pub struct SmartNetwork {
    cfg: NocConfig,
    now: Cycle,
    /// `bufs[node][port][class]` (port = input side; `Port::Local` holds
    /// freshly injected flits).
    bufs: Vec<Vec<Vec<BufState>>>,
    sources: Vec<SourceQueues>,
    reasm: Vec<Reassembly>,
    ledger: DeliveryLedger,
    ssr_stage: Vec<SsrRequest>,
    transfers: Vec<Transfer>,
    arrivals: Vec<(usize, usize, usize, Flit, bool)>,
    sa_rr: Vec<RoundRobin>,
    stats: NetStats,
    cancel: CancelToken,
}

impl SmartNetwork {
    /// Builds a SMART network for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`NocConfig::validate`].
    pub fn new(cfg: NocConfig) -> Self {
        cfg.validate().expect("invalid NoC configuration");
        let n = cfg.nodes();
        SmartNetwork {
            bufs: (0..n)
                .map(|_| {
                    (0..Port::COUNT)
                        .map(|_| {
                            (0..cfg.vcs_per_port)
                                .map(|_| BufState {
                                    fifo: VcBuffer::new(cfg.vc_depth as usize),
                                    reserved: 0,
                                    owner: None,
                                    busy: false,
                                })
                                .collect()
                        })
                        .collect()
                })
                .collect(),
            sources: (0..n).map(|_| SourceQueues::new()).collect(),
            reasm: (0..n).map(|_| Reassembly::new()).collect(),
            ledger: DeliveryLedger::new(),
            ssr_stage: Vec::new(),
            transfers: Vec::new(),
            arrivals: Vec::new(),
            sa_rr: (0..n * 5)
                .map(|_| RoundRobin::new(Port::COUNT * cfg.vcs_per_port))
                .collect(),
            stats: NetStats::new(),
            cancel: CancelToken::new(),
            cfg,
            now: 0,
        }
    }

    fn deliver_arrivals(&mut self) {
        let arrivals = std::mem::take(&mut self.arrivals);
        for (node, port, class, flit, eject) in arrivals {
            if eject {
                if let Some(head) = self.reasm[node].accept(flit) {
                    let hops = self
                        .cfg
                        .coord(head.src)
                        .manhattan(self.cfg.coord(head.dest));
                    self.ledger.complete(head, self.now, hops, &mut self.stats);
                }
            } else {
                let buf = &mut self.bufs[node][port][class];
                buf.reserved = buf.reserved.saturating_sub(1);
                buf.fifo
                    .push(flit)
                    .unwrap_or_else(|e| panic!("SMART arrival invariant violated: {e}"));
            }
        }
    }

    fn inject_from_sources(&mut self) {
        for node in 0..self.cfg.nodes() {
            for class in 0..self.cfg.vcs_per_port {
                let Some(front) = self.sources[node].queues[class].front() else {
                    continue;
                };
                let buf = &mut self.bufs[node][Port::Local.index()][class];
                if (buf.fifo.free() as u8) <= buf.reserved {
                    continue;
                }
                if let Some(last) = buf.fifo.back() {
                    if !last.is_tail() && (last.packet != front.packet || front.seq != last.seq + 1)
                    {
                        continue;
                    }
                }
                let mut flit = *front;
                flit.injected = self.now;
                self.sources[node].queues[class].pop_front();
                buf.fifo.push(flit).expect("space and contiguity checked");
            }
        }
    }

    /// Moves one flit per active transfer (the single-cycle multi-tile
    /// traversal stage). Completed transfers release their links.
    fn advance_transfers(&mut self) {
        let mut done: Vec<usize> = Vec::new();
        for (i, t) in self.transfers.iter_mut().enumerate() {
            let buf = &mut self.bufs[t.node][t.port][t.class];
            let front_ok = matches!(
                buf.fifo.front(),
                Some(f) if f.packet == t.packet && f.seq == t.next_seq
            );
            if !front_ok {
                continue; // upstream flits not here yet; hold the path
            }
            let flit = buf.fifo.pop().expect("front checked");
            if flit.is_tail() && buf.owner == Some(t.packet) {
                buf.owner = None;
            }
            self.stats.link_traversals += t.links.len() as u64;
            self.stats.local_grants += 1;
            self.arrivals
                .push((t.landing.0, t.landing.1, t.class, flit, t.eject));
            t.next_seq += 1;
            t.remaining -= 1;
            if t.remaining == 0 {
                done.push(i);
                self.bufs[t.node][t.port][t.class].busy = false;
            }
        }
        for i in done.into_iter().rev() {
            self.transfers.swap_remove(i);
        }
    }

    /// Links currently held by active transfers.
    fn held_links(&self) -> Vec<(usize, Direction)> {
        self.transfers
            .iter()
            .flat_map(|t| t.links.iter().copied())
            .collect()
    }

    /// Processes SSRs queued by the previous cycle's switch allocation:
    /// tries to establish a path of up to `max_hops_per_cycle` straight
    /// hops, falling back to a single hop, else back to SA.
    fn process_ssrs(&mut self) {
        let reqs = std::mem::take(&mut self.ssr_stage);
        let mut held = self.held_links();
        for r in reqs {
            let here = NodeId::new(r.node as u16);
            let in_port = Port::Dir(r.dir.opposite()).index();
            // Longest straight extension within the wire budget: the route
            // must continue in `r.dir` through every bypassed router
            // (SMART-1D) with all links free and the landing able to hold
            // the whole packet. Try the farthest stop first.
            let mut straight: Vec<NodeId> = Vec::new();
            let mut at = here;
            while straight.len() < usize::from(self.cfg.max_hops_per_cycle) {
                if !straight.is_empty() && route_port(&self.cfg, at, r.dest) != Port::Dir(r.dir) {
                    break; // the route turns (or ends) at `at`
                }
                let Some(next) = neighbor(&self.cfg, at, r.dir) else {
                    break;
                };
                straight.push(next);
                at = next;
                if next == r.dest {
                    break;
                }
            }
            let mut landing = None;
            for stop in (1..=straight.len()).rev() {
                let links: Vec<(usize, Direction)> = std::iter::once((r.node, r.dir))
                    .chain(straight[..stop - 1].iter().map(|n| (n.index(), r.dir)))
                    .collect();
                let land = straight[stop - 1];
                if links.iter().all(|l| !held.contains(l))
                    && self.can_land(land.index(), in_port, r.class, r.packet, r.len)
                {
                    landing = Some((land.index(), links));
                    break;
                }
            }
            match landing {
                Some((land, links)) => {
                    held.extend(links.iter().copied());
                    let lb = &mut self.bufs[land][in_port][r.class];
                    lb.reserved += r.len;
                    if r.len > 1 {
                        lb.owner = Some(r.packet);
                    }
                    self.transfers.push(Transfer {
                        node: r.node,
                        port: r.port,
                        class: r.class,
                        packet: r.packet,
                        next_seq: 0,
                        remaining: r.len,
                        links,
                        landing: (land, in_port),
                        eject: false,
                    });
                }
                None => {
                    // Path setup failed: back to switch allocation.
                    self.bufs[r.node][r.port][r.class].busy = false;
                }
            }
        }
    }

    fn can_land(&self, node: usize, port: usize, class: usize, packet: PacketId, len: u8) -> bool {
        let buf = &self.bufs[node][port][class];
        let free = buf.fifo.free() as u8;
        if free < buf.reserved + len {
            return false;
        }
        match buf.owner {
            None => true,
            Some(p) => p == packet,
        }
    }

    /// Switch allocation: fronts bid for their output direction; one
    /// winner per (node, direction); winners enter the SSR stage. Ejection
    /// transfers are established directly (no multi-tile setup needed).
    fn allocate(&mut self) {
        let slots = Port::COUNT * self.cfg.vcs_per_port;
        for node in 0..self.cfg.nodes() {
            let here = NodeId::new(node as u16);
            // Collect per-output-direction requests over (in_port, class).
            let mut want: Vec<Vec<bool>> = vec![vec![false; slots]; 5];
            for in_port in 0..Port::COUNT {
                for class in 0..self.cfg.vcs_per_port {
                    let buf = &self.bufs[node][in_port][class];
                    if buf.busy {
                        continue;
                    }
                    let Some(front) = buf.fifo.front() else {
                        continue;
                    };
                    if !front.is_head() {
                        // An orphaned continuation cannot happen in SMART:
                        // transfers always move whole packets.
                        continue;
                    }
                    let port = route_port(&self.cfg, here, front.dest);
                    want[port.index()][in_port * self.cfg.vcs_per_port + class] = true;
                }
            }
            for port in Port::ALL {
                let requests = &want[port.index()];
                if !requests.iter().any(|r| *r) {
                    continue;
                }
                let rr = &mut self.sa_rr[node * 5 + port.index()];
                let Some(slot) = rr.grant(requests) else {
                    continue;
                };
                let (in_port, class) = (slot / self.cfg.vcs_per_port, slot % self.cfg.vcs_per_port);
                let front = *self.bufs[node][in_port][class]
                    .fifo
                    .front()
                    .expect("bid had a front");
                self.bufs[node][in_port][class].busy = true;
                match port {
                    Port::Local => {
                        // Ejection: 1 flit/cycle into the NI from next cycle.
                        self.transfers.push(Transfer {
                            node,
                            port: in_port,
                            class,
                            packet: front.packet,
                            next_seq: 0,
                            remaining: front.len_flits,
                            links: Vec::new(),
                            landing: (node, in_port),
                            eject: true,
                        });
                    }
                    Port::Dir(dir) => {
                        self.ssr_stage.push(SsrRequest {
                            node,
                            port: in_port,
                            class,
                            packet: front.packet,
                            len: front.len_flits,
                            dest: front.dest,
                            dir,
                        });
                    }
                }
            }
        }
    }
}

impl Network for SmartNetwork {
    fn config(&self) -> &NocConfig {
        &self.cfg
    }

    fn now(&self) -> Cycle {
        self.now
    }

    fn inject(&mut self, packet: Packet) {
        let mut packet = packet;
        if packet.created == 0 {
            packet.created = self.now;
        }
        self.stats.record_injected(packet.class);
        self.ledger.register(packet);
        self.sources[packet.src.index()].enqueue_packet(&packet);
    }

    fn step(&mut self) {
        self.now += 1;
        self.stats.cycles += 1;
        if self.cancel.is_cancelled() {
            return; // the clock advanced; bounded loops still terminate
        }
        self.deliver_arrivals();
        self.inject_from_sources();
        self.advance_transfers();
        self.process_ssrs();
        self.allocate();
    }

    fn drain_delivered(&mut self) -> Vec<Delivered> {
        self.ledger.drain()
    }

    fn in_flight(&self) -> usize {
        self.ledger.in_flight()
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn install_cancel(&mut self, token: CancelToken) {
        self.cancel = token;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{MessageClass, PacketId};

    fn net() -> SmartNetwork {
        SmartNetwork::new(NocConfig::paper())
    }

    fn pkt(id: u64, src: u16, dest: u16, class: MessageClass, len: u8) -> Packet {
        Packet::new(
            PacketId(id),
            NodeId::new(src),
            NodeId::new(dest),
            class,
            len,
        )
    }

    #[test]
    fn zero_load_three_cycles_per_traversal() {
        // Straight-line distances: latency = 1 (inject) + 3 * ceil(H/2) + 2.
        let mut lat = Vec::new();
        for dest in [1u16, 2, 4, 7] {
            let mut n = net();
            n.inject(pkt(1, 0, dest, MessageClass::Request, 1));
            let d = n.run_to_drain(100);
            lat.push(d[0].delivered - d[0].packet.created);
        }
        assert_eq!(lat, vec![6, 6, 9, 15]);
    }

    #[test]
    fn smart_vs_mesh_zero_load() {
        use crate::mesh::MeshNetwork;
        // Long straight path: SMART wins (12 vs 14 router cycles);
        // one-hop path: SMART loses (extra setup cycle).
        for (dest, smart_wins) in [(7u16, true), (1u16, false)] {
            let mut s = net();
            s.inject(pkt(1, 0, dest, MessageClass::Request, 1));
            let ds = s.run_to_drain(100);
            let mut m = MeshNetwork::new(NocConfig::paper());
            m.inject(pkt(1, 0, dest, MessageClass::Request, 1));
            let dm = m.run_to_drain(100);
            let (ls, lm) = (ds[0].delivered, dm[0].delivered);
            if smart_wins {
                assert!(
                    ls < lm,
                    "SMART {ls} should beat mesh {lm} at distance {dest}"
                );
            } else {
                assert!(
                    ls > lm,
                    "SMART {ls} should trail mesh {lm} at distance {dest}"
                );
            }
        }
    }

    #[test]
    fn turns_break_the_bypass() {
        // 0 -> 9 is (1,1): one east, one south; two traversals of one hop.
        let mut n = net();
        n.inject(pkt(1, 0, 9, MessageClass::Request, 1));
        let d = n.run_to_drain(100);
        // 1 + 3 (east) + 3 (south) + 2 = 9.
        assert_eq!(d[0].delivered - d[0].packet.created, 9);
    }

    #[test]
    fn multi_flit_packets_stream() {
        let mut n = net();
        n.inject(pkt(1, 0, 4, MessageClass::Response, 5));
        let d = n.run_to_drain(200);
        assert_eq!(d.len(), 1);
        // Serialization adds len-1 cycles over the single-flit case (9).
        assert_eq!(d[0].delivered - d[0].packet.created, 9 + 4);
    }

    #[test]
    fn all_random_packets_delivered() {
        use nistats::rng::Rng;
        let mut rng = Rng::new(5);
        let mut n = net();
        let mut sent = 0u64;
        for cycle in 0..3_000u64 {
            if cycle < 1_500 && rng.gen_bool(0.3) {
                let src = rng.gen_range_u16(0, 64);
                let mut dest = rng.gen_range_u16(0, 64);
                if dest == src {
                    dest = (dest + 1) % 64;
                }
                let class = match rng.gen_range_u8(0, 3) {
                    0 => MessageClass::Request,
                    1 => MessageClass::Coherence,
                    _ => MessageClass::Response,
                };
                let len = if class == MessageClass::Response {
                    5
                } else {
                    1
                };
                sent += 1;
                n.inject(pkt(sent, src, dest, class, len));
            }
            n.step();
        }
        let mut delivered = n.drain_delivered().len() as u64;
        delivered += n.run_to_drain(20_000).len() as u64;
        assert_eq!(delivered, sent);
    }

    #[test]
    fn contention_truncates_bypass() {
        // Two streams crossing the same column: packets still arrive and
        // link traversals are conserved.
        let mut n = net();
        for i in 0..8u64 {
            n.inject(pkt(i * 2 + 1, 0, 7, MessageClass::Response, 5));
            n.inject(pkt(i * 2 + 2, 16, 23, MessageClass::Response, 5));
        }
        let d = n.run_to_drain(20_000);
        assert_eq!(d.len(), 16);
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;
    use crate::types::{MessageClass, PacketId};

    #[test]
    fn no_packets_stuck_under_sustained_load() {
        use nistats::rng::Rng;
        let mut rng = Rng::new(5);
        let mut n = SmartNetwork::new(NocConfig::paper());
        let mut sent = 0u64;
        for cycle in 0..3_000u64 {
            if cycle < 1_500 && rng.gen_bool(0.3) {
                let src = rng.gen_range_u16(0, 64);
                let mut dest = rng.gen_range_u16(0, 64);
                if dest == src {
                    dest = (dest + 1) % 64;
                }
                let class = match rng.gen_range_u8(0, 3) {
                    0 => MessageClass::Request,
                    1 => MessageClass::Coherence,
                    _ => MessageClass::Response,
                };
                let len = if class == MessageClass::Response {
                    5
                } else {
                    1
                };
                sent += 1;
                n.inject(Packet::new(
                    PacketId(sent),
                    NodeId::new(src),
                    NodeId::new(dest),
                    class,
                    len,
                ));
            }
            n.step();
        }
        n.drain_delivered();
        n.run_to_drain(20_000);
        if n.in_flight() > 0 {
            eprintln!(
                "stuck: {} packets in flight at cycle {}",
                n.in_flight(),
                n.now()
            );
            eprintln!("active transfers: {}", n.transfers.len());
            for t in &n.transfers {
                eprintln!("  transfer pkt {:?} at node {} port {} class {} next_seq {} remaining {} landing {:?} eject {} links {:?}",
                    t.packet, t.node, t.port, t.class, t.next_seq, t.remaining, t.landing, t.eject, t.links);
                let buf = &n.bufs[t.node][t.port][t.class];
                eprintln!(
                    "    src buf: front {:?} len {} reserved {} owner {:?} busy {}",
                    buf.fifo.front().map(|f| (f.packet, f.seq)),
                    buf.fifo.len(),
                    buf.reserved,
                    buf.owner,
                    buf.busy
                );
            }
            eprintln!("ssr stage: {}", n.ssr_stage.len());
            for node in 0..64 {
                for port in 0..5 {
                    for class in 0..3 {
                        let b = &n.bufs[node][port][class];
                        if !b.fifo.is_empty() || b.reserved > 0 || b.owner.is_some() || b.busy {
                            eprintln!("  buf[{}][{}][{}]: len {} front {:?} reserved {} owner {:?} busy {}",
                                node, port, class, b.fifo.len(), b.fifo.front().map(|f| (f.packet, f.seq, f.dest)), b.reserved, b.owner, b.busy);
                        }
                    }
                }
            }
            for node in 0..64usize {
                for class in 0..3 {
                    let q = &n.sources[node].queues[class];
                    if !q.is_empty() {
                        eprintln!(
                            "  srcq[{}][{}]: {} flits, front {:?}",
                            node,
                            class,
                            q.len(),
                            q.front().map(|f| (f.packet, f.seq))
                        );
                    }
                }
            }
            panic!("stuck");
        }
    }
}
