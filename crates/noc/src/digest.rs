//! Architectural-state digests for divergence detection.
//!
//! A [`StateHasher`] folds the simulator's architectural state — VC
//! buffer contents, credit counters, reservations, staged events, fault
//! state, RNG state — into one 64-bit FNV-1a digest. Two runs of the
//! same point that agree on every sampled digest are executing the same
//! cycle-by-cycle history; the first disagreeing sample pins the cycle
//! at which they diverged.
//!
//! The hash is *order-sensitive by construction*: implementations of
//! [`StateDigest`] must visit fields in a fixed, documented order
//! (struct declaration order, container iteration order) so the digest
//! is a pure function of architectural state. Anything nondeterministic
//! (wall-clock, allocator addresses, hash-map iteration) must never be
//! fed to the hasher — which is why the simulator's containers are
//! `Vec`/`VecDeque`/`BTreeMap` throughout.

/// Incremental FNV-1a 64-bit hasher over architectural state.
///
/// FNV-1a is not cryptographic; it is chosen for zero dependencies,
/// total determinism across platforms, and good avalanche on the small
/// integer fields that dominate simulator state.
#[derive(Debug, Clone)]
pub struct StateHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for StateHasher {
    fn default() -> Self {
        StateHasher { state: FNV_OFFSET }
    }
}

impl StateHasher {
    /// Creates a hasher at the standard FNV offset basis.
    pub fn new() -> Self {
        StateHasher::default()
    }

    /// Folds one byte into the digest.
    fn byte(&mut self, b: u8) {
        self.state ^= u64::from(b);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Folds raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    /// Folds a `u64` (little-endian) into the digest.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `u32` into the digest.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `u8` into the digest.
    pub fn write_u8(&mut self, v: u8) {
        self.byte(v);
    }

    /// Folds a `usize` into the digest (widened to `u64` so 32- and
    /// 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds a `bool` into the digest.
    pub fn write_bool(&mut self, v: bool) {
        self.byte(u8::from(v));
    }

    /// Folds an optional `u64` into the digest, distinguishing `None`
    /// from `Some(0)`.
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.write_u8(0),
            Some(x) => {
                self.write_u8(1);
                self.write_u64(x);
            }
        }
    }

    /// The accumulated digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// State that can be folded into a [`StateHasher`].
///
/// Implementations must be deterministic: the same architectural state
/// must always produce the same byte stream, independent of host,
/// thread count, or allocation history.
pub trait StateDigest {
    /// Folds this value's architectural state into `h`.
    fn digest_state(&self, h: &mut StateHasher);
}

/// Convenience: digest a single value from scratch.
pub fn digest_of<T: StateDigest + ?Sized>(v: &T) -> u64 {
    let mut h = StateHasher::new();
    v.digest_state(&mut h);
    h.finish()
}

impl StateDigest for crate::flit::Flit {
    fn digest_state(&self, h: &mut StateHasher) {
        h.write_u64(self.packet.0);
        h.write_bool(self.is_head());
        h.write_bool(self.is_tail());
        h.write_u8(self.seq);
        h.write_usize(self.src.index());
        h.write_usize(self.dest.index());
        h.write_usize(self.class.vc());
        h.write_u8(self.len_flits);
        h.write_u64(self.created);
        h.write_u64(self.injected);
    }
}

impl StateDigest for crate::flit::Packet {
    fn digest_state(&self, h: &mut StateHasher) {
        h.write_u64(self.id.0);
        h.write_usize(self.src.index());
        h.write_usize(self.dest.index());
        h.write_usize(self.class.vc());
        h.write_u8(self.len_flits);
        h.write_u64(self.created);
        h.write_u64(self.tag);
    }
}

impl StateDigest for crate::reserve::FlitSource {
    fn digest_state(&self, h: &mut StateHasher) {
        match *self {
            crate::reserve::FlitSource::Vc { port, vc } => {
                h.write_u8(0);
                h.write_usize(port.index());
                h.write_usize(vc);
            }
            crate::reserve::FlitSource::Latch { from } => {
                h.write_u8(1);
                h.write_usize(from as usize);
            }
            crate::reserve::FlitSource::Bypass { from } => {
                h.write_u8(2);
                h.write_usize(from as usize);
            }
        }
    }
}

impl StateDigest for crate::reserve::Landing {
    fn digest_state(&self, h: &mut StateHasher) {
        match *self {
            crate::reserve::Landing::Vc(vc) => {
                h.write_u8(0);
                h.write_usize(vc);
            }
            crate::reserve::Landing::Latch => h.write_u8(1),
            crate::reserve::Landing::Bypass => h.write_u8(2),
        }
    }
}

impl StateDigest for crate::reserve::Reservation {
    fn digest_state(&self, h: &mut StateHasher) {
        h.write_u64(self.packet.0);
        h.write_u8(self.seq);
        self.source.digest_state(h);
        self.landing.digest_state(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vector() {
        // FNV-1a 64 of "a" is a published test vector.
        let mut h = StateHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn empty_hash_is_offset_basis() {
        assert_eq!(StateHasher::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn option_none_differs_from_some_zero() {
        let mut a = StateHasher::new();
        a.write_opt_u64(None);
        let mut b = StateHasher::new();
        b.write_opt_u64(Some(0));
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn field_order_matters() {
        let mut a = StateHasher::new();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = StateHasher::new();
        b.write_u32(2);
        b.write_u32(1);
        assert_ne!(a.finish(), b.finish());
    }
}
