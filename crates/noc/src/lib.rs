//! # noc — a cycle-accurate network-on-chip simulator
//!
//! This crate is the interconnect substrate of the *Near-Ideal
//! Networks-on-Chip for Servers* (HPCA 2017) reproduction: a flit-level,
//! cycle-accurate simulator for the network organisations the paper
//! evaluates on a 64-core tiled server processor:
//!
//! * [`mesh::MeshNetwork`] — the baseline 2-D mesh with a one-stage
//!   speculative router pipeline (two cycles per hop at zero load). The
//!   same datapath carries the PRA extensions of the paper's Figure 4
//!   (timeslot schedules, latch and bypass pseudo-VCs, reserved credits)
//!   which stay inert until the `pra` crate's control plane drives them.
//! * [`smart::SmartNetwork`] — the SMART single-cycle multi-hop network
//!   (two-stage pipeline plus SMART-hop setup; up to two tiles per cycle).
//! * [`ideal::IdealNetwork`] — the hypothetical zero-router-delay network
//!   (only wire delay, serialization and contention remain).
//!
//! All organisations implement the [`network::Network`] trait, so system
//! models and benchmarks are generic over the interconnect.
//!
//! ## Quick start
//!
//! ```
//! use noc::config::NocConfig;
//! use noc::flit::Packet;
//! use noc::mesh::MeshNetwork;
//! use noc::network::Network;
//! use noc::types::{MessageClass, NodeId, PacketId};
//!
//! let mut net = MeshNetwork::new(NocConfig::paper());
//! net.inject(Packet::new(
//!     PacketId(1),
//!     NodeId::new(0),
//!     NodeId::new(63),
//!     MessageClass::Request,
//!     1,
//! ));
//! let delivered = net.run_to_drain(1_000);
//! assert_eq!(delivered.len(), 1);
//! println!("latency: {} cycles", delivered[0].delivered);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arbiter;
pub mod buffer;
pub mod cancel;
pub mod config;
pub mod credit;
pub mod digest;
pub mod faults;
pub mod flit;
pub mod ideal;
pub mod mesh;
pub mod network;
pub mod reliable;
pub mod reserve;
pub mod routing;
pub mod smart;
pub mod stats;
pub mod trace;
pub mod traffic;
pub mod types;
pub mod watchdog;
pub mod wcla;
pub mod zeroload;

pub use cancel::CancelToken;
pub use config::NocConfig;
pub use digest::{StateDigest, StateHasher};
pub use flit::{Flit, Packet};
pub use network::{Delivered, Network};
pub use reliable::{ReliabilityConfig, ReliableStats, RetrySemantics};
pub use types::{Cycle, MessageClass, NodeId, PacketId};
