//! Runtime invariant watchdog: structural audits of the mesh plus
//! progress monitoring, producing [`InvariantViolation`]s instead of
//! silent corruption.
//!
//! The mesh can describe its own conservation state as an
//! [`AuditReport`] (see [`crate::network::Network::audit`]): every flit
//! of every registered packet must be somewhere — a source queue, a VC
//! buffer, a pipeline latch, a staged link traversal, or the
//! destination's reassembly buffer — and every credit of every link VC
//! must be held by exactly one side (or explicitly destroyed by a fault).
//! The [`Watchdog`] consumes these reports periodically and raises:
//!
//! * [`InvariantViolation::FlitConservation`] — flits vanished or were
//!   duplicated (the audit sum does not close);
//! * [`InvariantViolation::CreditImbalance`] — some link VC's credits
//!   plus in-flight flits plus recorded losses no longer equal its
//!   buffer depth;
//! * [`InvariantViolation::Livelock`] — the oldest in-flight packet
//!   exceeds a generous age bound (it is moving nowhere);
//! * [`InvariantViolation::Deadlock`] — packets are in flight but the
//!   delivered-plus-lost count has not advanced for a configurable
//!   budget of cycles.
//!
//! The conservation checks are exact and fire on real bugs only; the
//! progress checks are heuristics with deliberately generous defaults,
//! because fault-degraded routing (BFS detours around dead links) gives
//! up XY's analytic deadlock-freedom and detection is the fallback.

use crate::types::Cycle;

/// A point-in-time structural snapshot of a network, taken between
/// cycles. Produced by [`crate::network::Network::audit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditReport {
    /// Cycle at which the snapshot was taken.
    pub cycle: Cycle,
    /// Packets currently registered (injected, not yet delivered).
    pub packets_in_flight: usize,
    /// Flits those packets should have somewhere in the fabric.
    pub expected_flits: u64,
    /// Flits actually found (queues + buffers + latches + staged
    /// traversals + reassembly).
    pub present_flits: u64,
    /// Packets delivered so far.
    pub delivered_packets: u64,
    /// Packets destroyed by faults so far (0 without fault injection).
    pub lost_packets: u64,
    /// Link VCs whose credit-conservation sum does not close.
    pub credit_violations: u64,
    /// Age (cycles since creation) of the oldest in-flight packet.
    pub oldest_packet_age: u64,
    /// Packets escalated to permanent-fault reclassification by the
    /// reliability overlay so far (0 with reliability off).
    pub escalated_packets: u64,
    /// Retransmission copies minted by the reliability overlay so far
    /// (0 with reliability off). Counts as forward progress: a storm of
    /// retransmissions is the protocol working, not a deadlock.
    pub retransmits: u64,
    /// Reliability delivery horizon: the computable worst-case number of
    /// cycles between a packet's injection and its delivery-or-escalation
    /// (see `ReliabilityConfig::delivery_horizon`). `None` with
    /// reliability off, leaving the plain age bound in force.
    pub reliability_horizon: Option<u64>,
}

/// One detected invariant violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantViolation {
    /// Flits vanished from or were duplicated in the fabric.
    FlitConservation {
        /// Cycle of detection.
        cycle: Cycle,
        /// Flits the delivery ledger says must exist.
        expected: u64,
        /// Flits the audit actually found.
        present: u64,
    },
    /// Credits and buffer occupancy disagree on some link VC.
    CreditImbalance {
        /// Cycle of detection.
        cycle: Cycle,
        /// Number of link VCs out of balance.
        lanes: u64,
    },
    /// A packet has been in flight implausibly long.
    Livelock {
        /// Cycle of detection.
        cycle: Cycle,
        /// Age of the oldest in-flight packet.
        age: u64,
        /// The configured bound it exceeded.
        limit: u64,
    },
    /// In-flight packets exist but nothing has completed for a long time.
    Deadlock {
        /// Cycle of detection.
        cycle: Cycle,
        /// Cycles since the last completion (delivery or loss).
        stalled_for: u64,
        /// Packets stuck in flight.
        in_flight: usize,
    },
    /// With reliability on, a packet outlived the protocol's computable
    /// delivery-or-escalation horizon: the retransmission state machine
    /// itself is stuck, which the bounded retry budget should make
    /// impossible.
    DeliveryHorizon {
        /// Cycle of detection.
        cycle: Cycle,
        /// Age of the oldest unresolved packet.
        age: u64,
        /// The horizon bound it exceeded (base age bound + protocol
        /// horizon).
        horizon: u64,
    },
    /// A sampled architectural-state digest disagrees with the reference
    /// trail for the same point and cycle (see [`crate::digest`]): the
    /// two runs diverged at or before `cycle`.
    DigestMismatch {
        /// First sampled cycle at which the digests disagree.
        cycle: Cycle,
        /// Digest the reference trail recorded.
        expected: u64,
        /// Digest this run produced.
        got: u64,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            InvariantViolation::FlitConservation {
                cycle,
                expected,
                present,
            } => write!(
                f,
                "cycle {cycle}: flit conservation broken (expected {expected}, found {present})"
            ),
            InvariantViolation::CreditImbalance { cycle, lanes } => {
                write!(f, "cycle {cycle}: credit imbalance on {lanes} link VC(s)")
            }
            InvariantViolation::Livelock { cycle, age, limit } => write!(
                f,
                "cycle {cycle}: possible livelock (oldest packet age {age} > {limit})"
            ),
            InvariantViolation::DeliveryHorizon {
                cycle,
                age,
                horizon,
            } => write!(
                f,
                "cycle {cycle}: delivery horizon exceeded (oldest unresolved packet age {age} > \
                 {horizon}; the reliability protocol should have delivered or escalated it)"
            ),
            InvariantViolation::DigestMismatch {
                cycle,
                expected,
                got,
            } => write!(
                f,
                "cycle {cycle}: state digest mismatch (expected {expected:#018x}, got {got:#018x})"
            ),
            InvariantViolation::Deadlock {
                cycle,
                stalled_for,
                in_flight,
            } => write!(
                f,
                "cycle {cycle}: possible deadlock ({in_flight} packet(s) in flight, \
                 no completion for {stalled_for} cycles)"
            ),
        }
    }
}

/// Watchdog tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Audit every this-many cycles (audits are O(network state)).
    pub check_interval: u64,
    /// Oldest tolerated in-flight packet age before a livelock report.
    pub max_packet_age: u64,
    /// Tolerated completion drought (with traffic in flight) before a
    /// deadlock report.
    pub no_progress_budget: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            check_interval: 64,
            max_packet_age: 20_000,
            no_progress_budget: 10_000,
        }
    }
}

/// Periodic consumer of [`AuditReport`]s; accumulates violations.
#[derive(Debug, Clone)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    violations: Vec<InvariantViolation>,
    checks_run: u64,
    /// delivered + lost at the last observed completion advance.
    last_completed: u64,
    last_progress_cycle: Cycle,
    /// Episode latches so a persistent condition reports once, not once
    /// per check.
    deadlock_reported: bool,
    livelock_reported: bool,
}

impl Watchdog {
    /// A watchdog with the given tuning.
    pub fn new(cfg: WatchdogConfig) -> Self {
        Watchdog {
            cfg,
            violations: Vec::new(),
            checks_run: 0,
            last_completed: 0,
            last_progress_cycle: 0,
            deadlock_reported: false,
            livelock_reported: false,
        }
    }

    /// The configured tuning.
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// Whether an audit is due at `cycle` (on the check interval).
    pub fn due(&self, cycle: Cycle) -> bool {
        cycle.is_multiple_of(self.cfg.check_interval)
    }

    /// Consumes one report; returns how many new violations it raised.
    pub fn observe(&mut self, r: &AuditReport) -> usize {
        self.checks_run += 1;
        let before = self.violations.len();

        if r.present_flits != r.expected_flits {
            self.violations.push(InvariantViolation::FlitConservation {
                cycle: r.cycle,
                expected: r.expected_flits,
                present: r.present_flits,
            });
        }
        if r.credit_violations > 0 {
            self.violations.push(InvariantViolation::CreditImbalance {
                cycle: r.cycle,
                lanes: r.credit_violations,
            });
        }

        // Retransmissions and escalations count as forward progress:
        // under a fault storm the protocol can spend far longer than
        // `no_progress_budget` re-sending before anything completes,
        // and that is the protocol working, not a deadlock.
        let completed = r.delivered_packets + r.lost_packets + r.escalated_packets + r.retransmits;
        if completed != self.last_completed || r.packets_in_flight == 0 {
            self.last_completed = completed;
            self.last_progress_cycle = r.cycle;
            self.deadlock_reported = false;
        } else {
            let stalled_for = r.cycle.saturating_sub(self.last_progress_cycle);
            if stalled_for >= self.cfg.no_progress_budget && !self.deadlock_reported {
                self.deadlock_reported = true;
                self.violations.push(InvariantViolation::Deadlock {
                    cycle: r.cycle,
                    stalled_for,
                    in_flight: r.packets_in_flight,
                });
            }
        }

        // With reliability on, a packet may legitimately age through the
        // whole retransmission schedule, so the age bound stretches by
        // the protocol's computable horizon — but past that the protocol
        // itself has failed to deliver-or-escalate, a distinct (and
        // exact, not heuristic) violation.
        match r.reliability_horizon {
            Some(h) => {
                let limit = self.cfg.max_packet_age.saturating_add(h);
                if r.oldest_packet_age > limit {
                    if !self.livelock_reported {
                        self.livelock_reported = true;
                        self.violations.push(InvariantViolation::DeliveryHorizon {
                            cycle: r.cycle,
                            age: r.oldest_packet_age,
                            horizon: limit,
                        });
                    }
                } else {
                    self.livelock_reported = false;
                }
            }
            None => {
                if r.oldest_packet_age > self.cfg.max_packet_age {
                    if !self.livelock_reported {
                        self.livelock_reported = true;
                        self.violations.push(InvariantViolation::Livelock {
                            cycle: r.cycle,
                            age: r.oldest_packet_age,
                            limit: self.cfg.max_packet_age,
                        });
                    }
                } else {
                    self.livelock_reported = false;
                }
            }
        }

        self.violations.len() - before
    }

    /// All violations raised so far.
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Whether no violation has ever been raised.
    pub fn is_quiet(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of reports consumed.
    pub fn checks_run(&self) -> u64 {
        self.checks_run
    }
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog::new(WatchdogConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean(cycle: Cycle) -> AuditReport {
        AuditReport {
            cycle,
            packets_in_flight: 2,
            expected_flits: 10,
            present_flits: 10,
            delivered_packets: cycle / 64,
            lost_packets: 0,
            credit_violations: 0,
            oldest_packet_age: 40,
            escalated_packets: 0,
            retransmits: 0,
            reliability_horizon: None,
        }
    }

    #[test]
    fn quiet_on_clean_reports() {
        let mut wd = Watchdog::default();
        for c in (64..10_000).step_by(64) {
            assert_eq!(wd.observe(&clean(c)), 0);
        }
        assert!(wd.is_quiet());
    }

    #[test]
    fn flit_conservation_fires() {
        let mut wd = Watchdog::default();
        let mut r = clean(64);
        r.present_flits = 9;
        assert_eq!(wd.observe(&r), 1);
        assert!(matches!(
            wd.violations()[0],
            InvariantViolation::FlitConservation {
                expected: 10,
                present: 9,
                ..
            }
        ));
    }

    #[test]
    fn credit_imbalance_fires() {
        let mut wd = Watchdog::default();
        let mut r = clean(64);
        r.credit_violations = 3;
        assert_eq!(wd.observe(&r), 1);
        assert!(matches!(
            wd.violations()[0],
            InvariantViolation::CreditImbalance { lanes: 3, .. }
        ));
    }

    #[test]
    fn deadlock_fires_once_per_episode_and_resets_on_progress() {
        let mut wd = Watchdog::new(WatchdogConfig {
            check_interval: 64,
            max_packet_age: u64::MAX,
            no_progress_budget: 1_000,
        });
        let stuck = |cycle| AuditReport {
            delivered_packets: 5,
            ..clean(cycle)
        };
        let mut fired = 0;
        for c in (64..4_000).step_by(64) {
            fired += wd.observe(&stuck(c));
        }
        assert_eq!(fired, 1, "one report per stall episode");
        // Progress clears the episode...
        let mut r = stuck(4_032);
        r.delivered_packets = 6;
        assert_eq!(wd.observe(&r), 0);
        // ...and a new stall reports again.
        let mut fired = 0;
        for c in (4_096..8_000).step_by(64) {
            fired += wd.observe(&stuck(c));
        }
        assert_eq!(fired, 1);
    }

    #[test]
    fn empty_network_never_deadlocks() {
        let mut wd = Watchdog::new(WatchdogConfig {
            check_interval: 64,
            max_packet_age: u64::MAX,
            no_progress_budget: 100,
        });
        for c in (64..50_000).step_by(64) {
            let mut r = clean(c);
            r.packets_in_flight = 0;
            r.delivered_packets = 7;
            assert_eq!(wd.observe(&r), 0);
        }
        assert!(wd.is_quiet());
    }

    #[test]
    fn retransmissions_count_as_progress() {
        // Regression: under a fault storm the protocol retransmits for a
        // long time before anything completes; that must not read as a
        // deadlock.
        let mut wd = Watchdog::new(WatchdogConfig {
            check_interval: 64,
            max_packet_age: u64::MAX,
            no_progress_budget: 1_000,
        });
        for c in (64..50_000).step_by(64) {
            let mut r = clean(c);
            r.delivered_packets = 5; // flat: nothing completes...
            r.retransmits = c / 64; // ...but retransmissions advance
            assert_eq!(wd.observe(&r), 0);
        }
        assert!(wd.is_quiet());
        // With retransmits flat too, the stall is real and still fires.
        for c in (50_048..80_000).step_by(64) {
            let mut r = clean(c);
            r.delivered_packets = 5;
            r.retransmits = 781;
            wd.observe(&r);
        }
        assert_eq!(wd.violations().len(), 1);
        assert!(matches!(
            wd.violations()[0],
            InvariantViolation::Deadlock { .. }
        ));
    }

    #[test]
    fn reliability_stretches_the_age_bound_to_the_horizon() {
        let mut wd = Watchdog::new(WatchdogConfig {
            check_interval: 64,
            max_packet_age: 500,
            no_progress_budget: u64::MAX,
        });
        // Age past the plain bound but within bound + horizon: quiet.
        let mut r = clean(64);
        r.delivered_packets = 1;
        r.reliability_horizon = Some(2_000);
        r.oldest_packet_age = 2_400;
        assert_eq!(wd.observe(&r), 0);
        // Past bound + horizon: the exact delivery-horizon violation,
        // not the livelock heuristic.
        let mut r2 = clean(128);
        r2.delivered_packets = 2;
        r2.reliability_horizon = Some(2_000);
        r2.oldest_packet_age = 2_501;
        assert_eq!(wd.observe(&r2), 1);
        assert!(matches!(
            wd.violations()[0],
            InvariantViolation::DeliveryHorizon {
                age: 2_501,
                horizon: 2_500,
                ..
            }
        ));
    }

    #[test]
    fn livelock_fires_on_old_packets() {
        let mut wd = Watchdog::new(WatchdogConfig {
            check_interval: 64,
            max_packet_age: 500,
            no_progress_budget: u64::MAX,
        });
        let mut r = clean(64);
        r.delivered_packets = 1;
        r.oldest_packet_age = 501;
        assert_eq!(wd.observe(&r), 1);
        // Latched: same condition does not re-fire...
        let mut r2 = clean(128);
        r2.delivered_packets = 2;
        r2.oldest_packet_age = 900;
        assert_eq!(wd.observe(&r2), 0);
        // ...until it clears and recurs.
        let mut r3 = clean(192);
        r3.delivered_packets = 3;
        r3.oldest_packet_age = 10;
        assert_eq!(wd.observe(&r3), 0);
        let mut r4 = clean(256);
        r4.delivered_packets = 4;
        r4.oldest_packet_age = 700;
        assert_eq!(wd.observe(&r4), 1);
    }
}
