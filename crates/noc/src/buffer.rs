//! Input-side buffering: virtual-channel FIFOs and the PRA latch.
//!
//! Each router input port owns one [`VcBuffer`] per message class plus a
//! single-flit [`InputUnit::latch`] used only by proactively allocated
//! multi-hop paths (the paper's Figure 4 "Latch" pseudo-VC). The bypass
//! pseudo-VC has no storage — it is purely combinational and therefore has
//! no representation here.

use std::collections::VecDeque;

use crate::flit::Flit;
use crate::types::{Cycle, PacketId};

/// Error returned when an enqueue would corrupt buffer invariants.
#[must_use]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufferError {
    /// The buffer is at capacity; the upstream credit logic is broken.
    Overflow,
    /// The arriving flit would interleave two packets mid-stream.
    Interleaved {
        /// Packet currently mid-stream at the queue tail.
        streaming: PacketId,
        /// Packet of the offending flit.
        arriving: PacketId,
    },
}

impl std::fmt::Display for BufferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BufferError::Overflow => f.write_str("virtual channel buffer overflow"),
            BufferError::Interleaved {
                streaming,
                arriving,
            } => write!(
                f,
                "flit of packet {arriving} would interleave into the stream of packet {streaming}"
            ),
        }
    }
}

impl std::error::Error for BufferError {}

/// A fixed-depth flit FIFO implementing one virtual channel.
///
/// Flits live in a flat ring (`slots`/`head`/`len`): the backing store
/// grows once up to `depth` and is recycled in place forever after, so
/// steady-state pushes and pops never touch the allocator and indexing
/// is plain modular arithmetic.
///
/// # Examples
///
/// ```
/// use noc::buffer::VcBuffer;
/// use noc::flit::Packet;
/// use noc::types::{MessageClass, NodeId, PacketId};
///
/// let mut vc = VcBuffer::new(5);
/// let p = Packet::new(PacketId(1), NodeId::new(0), NodeId::new(1), MessageClass::Request, 1);
/// vc.push(p.flit(0))?;
/// assert_eq!(vc.len(), 1);
/// assert_eq!(vc.pop().unwrap().packet, PacketId(1));
/// # Ok::<(), noc::buffer::BufferError>(())
/// ```
#[derive(Debug, Clone)]
pub struct VcBuffer {
    depth: usize,
    slots: Vec<Flit>,
    head: usize,
    len: usize,
}

impl VcBuffer {
    /// Creates an empty buffer holding up to `depth` flits.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "VC depth must be at least one flit");
        VcBuffer {
            depth,
            slots: Vec::with_capacity(depth),
            head: 0,
            len: 0,
        }
    }

    /// Physical slot index of logical position `i` (0 = front).
    #[inline(always)]
    fn slot(&self, i: usize) -> usize {
        (self.head + i) % self.depth
    }

    /// Configured capacity in flits.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of buffered flits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no flits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Free slots remaining.
    pub fn free(&self) -> usize {
        self.depth - self.len
    }

    /// The flit at the head of the FIFO, if any.
    pub fn front(&self) -> Option<&Flit> {
        (self.len > 0).then(|| &self.slots[self.head])
    }

    /// The most recently enqueued flit, if any.
    pub fn back(&self) -> Option<&Flit> {
        (self.len > 0).then(|| &self.slots[self.slot(self.len - 1)])
    }

    /// Enqueues a flit, enforcing capacity and packet-contiguity invariants.
    ///
    /// Packets must arrive contiguously: once a head flit of a multi-flit
    /// packet is enqueued, only flits of that packet may follow until its
    /// tail arrives. This mirrors the hardware guarantee provided by
    /// per-packet virtual-channel ownership.
    ///
    /// # Errors
    ///
    /// [`BufferError::Overflow`] if full; [`BufferError::Interleaved`] if
    /// contiguity would be violated.
    pub fn push(&mut self, flit: Flit) -> Result<(), BufferError> {
        if self.len >= self.depth {
            return Err(BufferError::Overflow);
        }
        if let Some(last) = self.back() {
            if !last.is_tail() && (last.packet != flit.packet || flit.seq != last.seq + 1) {
                return Err(BufferError::Interleaved {
                    streaming: last.packet,
                    arriving: flit.packet,
                });
            }
        }
        let idx = self.slot(self.len);
        // The ring grows lazily: physical slots are written strictly in
        // sequence until all `depth` exist, so the write position is at
        // most one past the initialized prefix.
        if idx == self.slots.len() {
            self.slots.push(flit);
        } else {
            self.slots[idx] = flit;
        }
        self.len += 1;
        Ok(())
    }

    /// Dequeues the front flit.
    pub fn pop(&mut self) -> Option<Flit> {
        if self.len == 0 {
            return None;
        }
        let flit = self.slots[self.head];
        self.head = (self.head + 1) % self.depth;
        self.len -= 1;
        Some(flit)
    }

    /// Iterates over buffered flits front to back.
    pub fn iter(&self) -> impl Iterator<Item = &Flit> {
        (0..self.len).map(|i| &self.slots[self.slot(i)])
    }

    /// Number of buffered flits belonging to `packet`.
    pub fn count_of(&self, packet: PacketId) -> usize {
        self.iter().filter(|f| f.packet == packet).count()
    }

    /// Removes every flit of `packet` (used by fault purges) and returns
    /// how many were removed. Removing a whole packet keeps the remaining
    /// runs contiguous, so buffer invariants survive. Survivors are
    /// compacted toward the front of the ring in place.
    pub fn remove_packet(&mut self, packet: PacketId) -> usize {
        let before = self.len;
        let mut kept = 0;
        for i in 0..self.len {
            let flit = self.slots[self.slot(i)];
            if flit.packet != packet {
                let dst = self.slot(kept);
                self.slots[dst] = flit;
                kept += 1;
            }
        }
        self.len = kept;
        before - kept
    }
}

/// One router input port: per-class VCs plus the PRA latch.
#[derive(Debug, Clone)]
pub struct InputUnit {
    vcs: Vec<VcBuffer>,
    /// Single-flit temporary storage used by pre-allocated multi-hop paths.
    /// A flit written here during cycle `c` is read during cycle `c + 1`.
    latch: Option<Flit>,
    /// Cycles for which the latch has been promised to a pre-allocated
    /// packet: `(cycle, packet)` pairs kept sorted by cycle.
    latch_claims: VecDeque<(Cycle, PacketId)>,
}

impl InputUnit {
    /// Creates an input unit with `vcs` virtual channels of `depth` flits.
    pub fn new(vcs: usize, depth: usize) -> Self {
        InputUnit {
            vcs: (0..vcs).map(|_| VcBuffer::new(depth)).collect(),
            latch: None,
            latch_claims: VecDeque::new(),
        }
    }

    /// Shared access to virtual channel `vc`.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub fn vc(&self, vc: usize) -> &VcBuffer {
        &self.vcs[vc]
    }

    /// Exclusive access to virtual channel `vc`.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub fn vc_mut(&mut self, vc: usize) -> &mut VcBuffer {
        &mut self.vcs[vc]
    }

    /// Number of virtual channels.
    pub fn vc_count(&self) -> usize {
        self.vcs.len()
    }

    /// The flit currently held in the latch, if any.
    pub fn latch(&self) -> Option<&Flit> {
        self.latch.as_ref()
    }

    /// Stores `flit` in the latch.
    ///
    /// # Errors
    ///
    /// Returns the flit back if the latch is already occupied (a
    /// pre-allocation bookkeeping bug; callers treat this as fatal).
    pub fn latch_store(&mut self, flit: Flit) -> Result<(), Flit> {
        if self.latch.is_some() {
            return Err(flit);
        }
        self.latch = Some(flit);
        Ok(())
    }

    /// Removes and returns the latched flit.
    pub fn latch_take(&mut self) -> Option<Flit> {
        self.latch.take()
    }

    /// Whether the latch is free over `cycles` and can be claimed for
    /// `packet`. Existing claims by the same packet do not conflict.
    pub fn latch_available(&self, cycles: std::ops::Range<Cycle>, packet: PacketId) -> bool {
        self.latch_claims
            .iter()
            .all(|&(c, p)| p == packet || !cycles.contains(&c))
    }

    /// Claims the latch for `packet` over `cycles`.
    pub fn latch_claim(&mut self, cycles: std::ops::Range<Cycle>, packet: PacketId) {
        for c in cycles {
            self.latch_claims.push_back((c, packet));
        }
        self.latch_claims
            .make_contiguous()
            .sort_unstable_by_key(|&(c, _)| c);
    }

    /// Releases claims for `packet` at cycles at or after `from`.
    pub fn latch_release(&mut self, packet: PacketId, from: Cycle) {
        self.latch_claims
            .retain(|&(c, p)| !(p == packet && c >= from));
    }

    /// Drops claims older than `now` (already in the past).
    pub fn latch_expire(&mut self, now: Cycle) {
        while matches!(self.latch_claims.front(), Some(&(c, _)) if c < now) {
            self.latch_claims.pop_front();
        }
    }

    /// Whether any latch claims are outstanding (past or future).
    pub fn has_latch_claims(&self) -> bool {
        !self.latch_claims.is_empty()
    }

    /// Total flits buffered across all VCs (latch excluded).
    pub fn buffered_flits(&self) -> usize {
        self.vcs.iter().map(VcBuffer::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::Packet;
    use crate::types::{MessageClass, NodeId, PacketId};

    fn pkt(id: u64, len: u8) -> Packet {
        Packet::new(
            PacketId(id),
            NodeId::new(0),
            NodeId::new(1),
            MessageClass::Response,
            len,
        )
    }

    #[test]
    fn fifo_order_preserved() {
        let mut vc = VcBuffer::new(5);
        let p = pkt(1, 3);
        for f in p.flits() {
            vc.push(f).unwrap();
        }
        let seqs: Vec<_> = std::iter::from_fn(|| vc.pop()).map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn overflow_detected() {
        let mut vc = VcBuffer::new(2);
        let p = pkt(1, 3);
        vc.push(p.flit(0)).unwrap();
        vc.push(p.flit(1)).unwrap();
        assert_eq!(vc.push(p.flit(2)), Err(BufferError::Overflow));
    }

    #[test]
    fn interleaving_detected() {
        let mut vc = VcBuffer::new(5);
        let p = pkt(1, 3);
        let q = pkt(2, 1);
        vc.push(p.flit(0)).unwrap();
        assert!(matches!(
            vc.push(q.flit(0)),
            Err(BufferError::Interleaved { .. })
        ));
    }

    #[test]
    fn single_flit_may_precede_a_stream() {
        let mut vc = VcBuffer::new(5);
        let q = pkt(2, 1);
        let p = pkt(1, 2);
        vc.push(q.flit(0)).unwrap();
        vc.push(p.flit(0)).unwrap();
        vc.push(p.flit(1)).unwrap();
        assert_eq!(vc.len(), 3);
    }

    #[test]
    fn out_of_order_same_packet_detected() {
        let mut vc = VcBuffer::new(5);
        let p = pkt(1, 3);
        vc.push(p.flit(0)).unwrap();
        assert!(matches!(
            vc.push(p.flit(2)),
            Err(BufferError::Interleaved { .. })
        ));
    }

    #[test]
    fn latch_single_occupancy() {
        let mut iu = InputUnit::new(3, 5);
        let p = pkt(1, 1);
        iu.latch_store(p.flit(0)).unwrap();
        assert!(iu.latch_store(p.flit(0)).is_err());
        assert_eq!(iu.latch_take().unwrap().packet, PacketId(1));
        assert!(iu.latch().is_none());
    }

    #[test]
    fn latch_claims_conflict_detection() {
        let mut iu = InputUnit::new(3, 5);
        iu.latch_claim(10..13, PacketId(1));
        assert!(!iu.latch_available(12..14, PacketId(2)));
        assert!(iu.latch_available(13..15, PacketId(2)));
        assert!(
            iu.latch_available(10..13, PacketId(1)),
            "same packet never conflicts"
        );
        iu.latch_release(PacketId(1), 11);
        assert!(iu.latch_available(11..14, PacketId(2)));
        assert!(!iu.latch_available(10..11, PacketId(2)));
        iu.latch_expire(11);
        assert!(iu.latch_available(0..100, PacketId(2)));
    }

    #[test]
    fn count_of_counts_only_matching_packet() {
        let mut vc = VcBuffer::new(5);
        let q = pkt(2, 1);
        let p = pkt(1, 2);
        vc.push(q.flit(0)).unwrap();
        vc.push(p.flit(0)).unwrap();
        vc.push(p.flit(1)).unwrap();
        assert_eq!(vc.count_of(PacketId(1)), 2);
        assert_eq!(vc.count_of(PacketId(2)), 1);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_depth_rejected() {
        let _ = VcBuffer::new(0);
    }
}

mod digest_impls {
    use super::{InputUnit, VcBuffer};
    use crate::digest::{StateDigest, StateHasher};

    impl StateDigest for VcBuffer {
        fn digest_state(&self, h: &mut StateHasher) {
            h.write_usize(self.depth);
            h.write_usize(self.len());
            for flit in self.iter() {
                flit.digest_state(h);
            }
        }
    }

    impl StateDigest for InputUnit {
        fn digest_state(&self, h: &mut StateHasher) {
            h.write_usize(self.vcs.len());
            for vc in &self.vcs {
                vc.digest_state(h);
            }
            match self.latch {
                None => h.write_u8(0),
                Some(flit) => {
                    h.write_u8(1);
                    flit.digest_state(h);
                }
            }
            h.write_usize(self.latch_claims.len());
            for &(cycle, packet) in &self.latch_claims {
                h.write_u64(cycle);
                h.write_u64(packet.0);
            }
        }
    }
}
