//! Fundamental identifiers and enumerations shared by every network
//! organisation in this workspace.
//!
//! The types here are deliberately small `Copy` values: the simulator moves
//! millions of flits per run and never heap-allocates per flit.

use std::fmt;

/// A cycle count. The simulator clock is a monotonically increasing `u64`.
pub type Cycle = u64;

/// Identifier of a node (tile) in the network.
///
/// Nodes are numbered row-major: node `y * radix + x` sits at column `x`,
/// row `y` of the mesh.
///
/// # Examples
///
/// ```
/// use noc::types::NodeId;
///
/// let n = NodeId::new(9);
/// assert_eq!(n.index(), 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node id from a raw index.
    pub const fn new(index: u16) -> Self {
        NodeId(index)
    }

    /// The raw index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

/// Two-dimensional mesh coordinate of a node.
///
/// # Examples
///
/// ```
/// use noc::types::{Coord, NodeId};
///
/// let c = Coord::from_node(NodeId::new(9), 8);
/// assert_eq!((c.x, c.y), (1, 1));
/// assert_eq!(c.to_node(8), NodeId::new(9));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column (X position), 0-based from the west edge.
    pub x: u8,
    /// Row (Y position), 0-based from the north edge.
    pub y: u8,
}

impl Coord {
    /// Creates a coordinate from explicit column/row values.
    pub const fn new(x: u8, y: u8) -> Self {
        Coord { x, y }
    }

    /// Converts a node id to its coordinate in a mesh of the given `radix`
    /// (nodes per row).
    pub fn from_node(node: NodeId, radix: u16) -> Self {
        let idx = node.0;
        Coord {
            x: (idx % radix) as u8,
            y: (idx / radix) as u8,
        }
    }

    /// Converts this coordinate back to a node id in a mesh of the given
    /// `radix`.
    pub fn to_node(self, radix: u16) -> NodeId {
        NodeId(self.y as u16 * radix + self.x as u16)
    }

    /// Manhattan distance (hop count on a minimal mesh path) to `other`.
    pub fn manhattan(self, other: Coord) -> u32 {
        let dx = (self.x as i32 - other.x as i32).unsigned_abs();
        let dy = (self.y as i32 - other.y as i32).unsigned_abs();
        dx + dy
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Protocol message class. Each class travels in its own virtual channel to
/// guarantee protocol-level deadlock freedom (Dally & Towles, ch. 14).
///
/// The paper's server-processor network carries exactly these three classes;
/// requests and coherence messages are single-flit ("short") packets while
/// responses carry a cache line and are multi-flit ("long") packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MessageClass {
    /// Core → LLC slice requests (single flit).
    Request,
    /// Directory/coherence traffic (single flit, negligible volume).
    Coherence,
    /// LLC → core data responses (header + cache line; multi-flit).
    Response,
}

impl MessageClass {
    /// All message classes in virtual-channel index order.
    pub const ALL: [MessageClass; 3] = [
        MessageClass::Request,
        MessageClass::Coherence,
        MessageClass::Response,
    ];

    /// The virtual-channel index reserved for this class (one VC per class).
    pub const fn vc(self) -> usize {
        match self {
            MessageClass::Request => 0,
            MessageClass::Coherence => 1,
            MessageClass::Response => 2,
        }
    }

    /// Inverse of [`MessageClass::vc`].
    ///
    /// # Panics
    ///
    /// Panics if `vc` is not in `0..3`.
    pub fn from_vc(vc: usize) -> Self {
        match vc {
            0 => MessageClass::Request,
            1 => MessageClass::Coherence,
            2 => MessageClass::Response,
            _ => panic!("virtual channel {vc} does not map to a message class"),
        }
    }
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageClass::Request => "request",
            MessageClass::Coherence => "coherence",
            MessageClass::Response => "response",
        };
        f.write_str(s)
    }
}

/// Unique identifier of a packet for the lifetime of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Cardinal mesh direction, also used to name router ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// Toward decreasing `y`.
    North,
    /// Toward increasing `y`.
    South,
    /// Toward increasing `x`.
    East,
    /// Toward decreasing `x`.
    West,
}

impl Direction {
    /// All four directions in port-index order.
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::South,
        Direction::East,
        Direction::West,
    ];

    /// The direction a flit travelling this way arrives *from* at the next
    /// router (i.e. the opposite direction).
    pub const fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }

    /// Unit step of this direction as `(dx, dy)`.
    pub const fn delta(self) -> (i32, i32) {
        match self {
            Direction::North => (0, -1),
            Direction::South => (0, 1),
            Direction::East => (1, 0),
            Direction::West => (-1, 0),
        }
    }

    /// Whether this direction moves along the X dimension.
    pub const fn is_x(self) -> bool {
        matches!(self, Direction::East | Direction::West)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::South => "S",
            Direction::East => "E",
            Direction::West => "W",
        };
        f.write_str(s)
    }
}

/// A router port: one of the four mesh directions or the local
/// injection/ejection port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Port {
    /// A link toward the neighbouring router in the given direction.
    Dir(Direction),
    /// The local port connecting the router to its tile's network interface.
    Local,
}

impl Port {
    /// All five ports in index order (N, S, E, W, Local).
    pub const ALL: [Port; 5] = [
        Port::Dir(Direction::North),
        Port::Dir(Direction::South),
        Port::Dir(Direction::East),
        Port::Dir(Direction::West),
        Port::Local,
    ];

    /// Number of ports on a mesh router.
    pub const COUNT: usize = 5;

    /// Dense index of this port in `0..Port::COUNT`.
    pub const fn index(self) -> usize {
        match self {
            Port::Dir(Direction::North) => 0,
            Port::Dir(Direction::South) => 1,
            Port::Dir(Direction::East) => 2,
            Port::Dir(Direction::West) => 3,
            Port::Local => 4,
        }
    }

    /// Inverse of [`Port::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is not in `0..Port::COUNT`.
    pub fn from_index(index: usize) -> Self {
        Port::ALL[index]
    }

    /// The direction of this port, or `None` for the local port.
    pub const fn direction(self) -> Option<Direction> {
        match self {
            Port::Dir(d) => Some(d),
            Port::Local => None,
        }
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Port::Dir(d) => write!(f, "{d}"),
            Port::Local => f.write_str("L"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_coord_round_trip() {
        for radix in [2u16, 4, 8, 16] {
            for idx in 0..radix * radix {
                let n = NodeId::new(idx);
                let c = Coord::from_node(n, radix);
                assert_eq!(c.to_node(radix), n, "radix {radix}, idx {idx}");
            }
        }
    }

    #[test]
    fn manhattan_distance() {
        let a = Coord::new(0, 0);
        let b = Coord::new(7, 7);
        assert_eq!(a.manhattan(b), 14);
        assert_eq!(b.manhattan(a), 14);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn message_class_vc_round_trip() {
        for class in MessageClass::ALL {
            assert_eq!(MessageClass::from_vc(class.vc()), class);
        }
    }

    #[test]
    #[should_panic(expected = "does not map")]
    fn message_class_bad_vc_panics() {
        let _ = MessageClass::from_vc(3);
    }

    #[test]
    fn direction_opposites() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            let (dx, dy) = d.delta();
            let (ox, oy) = d.opposite().delta();
            assert_eq!((dx + ox, dy + oy), (0, 0));
        }
    }

    #[test]
    fn port_index_round_trip() {
        for p in Port::ALL {
            assert_eq!(Port::from_index(p.index()), p);
        }
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(Coord::new(1, 2).to_string(), "(1,2)");
        assert_eq!(MessageClass::Request.to_string(), "request");
        assert_eq!(Port::Local.to_string(), "L");
        assert_eq!(Direction::East.to_string(), "E");
        assert_eq!(PacketId(7).to_string(), "p7");
    }
}
